"""Shared fixtures for the TailGuard reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.types import ServiceClass
from repro.workloads import (
    PoissonArrivals,
    Workload,
    get_workload,
    inverse_proportional_fanout,
    single_class_mix,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def masstree():
    return get_workload("masstree")


@pytest.fixture
def single_class() -> ServiceClass:
    return ServiceClass("single", slo_ms=1.0)


@pytest.fixture
def small_workload(masstree, single_class) -> Workload:
    """A small paper-style workload (fanouts {1, 10, 100}, one class)."""
    return Workload(
        name="small",
        arrivals=PoissonArrivals(1.0),
        fanout=inverse_proportional_fanout([1, 10, 100]),
        class_mix=single_class_mix(single_class),
        service_time=masstree.service_time,
    )


@pytest.fixture
def small_config(small_workload) -> ClusterConfig:
    return ClusterConfig(
        n_servers=100,
        policy="tailguard",
        workload=small_workload,
        n_queries=3_000,
        seed=7,
    ).at_load(0.30)
