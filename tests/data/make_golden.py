"""Regenerate golden_chrome_trace.json.

Run from the repo root after an *intentional* Chrome-exporter format
change, then review the diff::

    PYTHONPATH=src python tests/data/make_golden.py

The event stream comes from ``golden_recorder()`` in
``tests/unit/test_obs.py`` so the fixture and the test can never drift
apart.
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, os.pardir, "unit"))

from test_obs import golden_recorder  # noqa: E402

from repro.obs import write_chrome_trace  # noqa: E402


def main() -> None:
    out = os.path.join(HERE, "golden_chrome_trace.json")
    n = write_chrome_trace(golden_recorder(), out)
    print(f"wrote {n} trace events to {out}")


if __name__ == "__main__":
    main()
