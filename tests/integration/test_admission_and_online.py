"""End-to-end tests for admission control and online CDF updating."""

from dataclasses import replace

import pytest

from repro.cluster import simulate
from repro.core.admission import DeadlineMissRatioAdmission
from repro.core.deadline import DeadlineEstimator
from repro.experiments.setups import paper_oldi_config, paper_two_class_config
from repro.workloads import get_workload


class TestAdmissionControlGuarantee:
    """§IV.D: with admission control the query tail latency SLOs are
    guaranteed at all offered loads."""

    OVERLOAD = 0.68

    def _overloaded_config(self):
        return paper_oldi_config(
            "masstree", 1.0, 1.5, policy="tailguard",
            n_queries=12_000, seed=6,
        ).at_load(self.OVERLOAD)

    def test_without_admission_slo_violated(self):
        result = simulate(self._overloaded_config())
        assert result.tail(99.0, "class-I") > 1.0

    def _controller(self):
        # Duty-cycle mode with the threshold calibrated at this model's
        # max acceptable load (≈0.58 → miss ratio ≈0.9%), mirroring the
        # paper's calibration of R_th=1.7% at its own 54%.
        return DeadlineMissRatioAdmission(
            threshold=0.009, window_tasks=100_000,
            window_ms=250.0, min_samples=1_000,
            mode="duty-cycle",
        )

    def test_with_admission_slo_met(self):
        config = replace(self._overloaded_config(),
                         admission=self._controller())
        result = simulate(config)
        assert result.tail(99.0, "class-I") <= 1.0 * 1.05
        assert result.tail(99.0, "class-II") <= 1.5 * 1.05
        assert result.rejection_ratio() > 0.0

    def test_accepted_load_close_to_capacity(self):
        """Fig. 7: the accepted load stays within several points of the
        maximum acceptable load rather than collapsing."""
        config = replace(self._overloaded_config(),
                         admission=self._controller())
        result = simulate(config)
        assert result.accepted_load() > 0.35

    def test_no_rejections_at_low_load(self):
        config = replace(
            paper_oldi_config("masstree", 1.0, 1.5, policy="tailguard",
                              n_queries=6_000, seed=6).at_load(0.30),
            admission=self._controller(),
        )
        result = simulate(config)
        assert result.rejection_ratio() == 0.0


class TestOnlineUpdating:
    """§III.B.2: online updating captures heterogeneity the offline
    estimate missed."""

    LOAD = 0.35
    N_SERVERS = 100

    def _heterogeneous_cdfs(self):
        bench = get_workload("masstree")
        # Half the cluster is 60% slower than the offline profile says.
        return {
            sid: (bench.service_time.scaled(1.6) if sid < 50
                  else bench.service_time)
            for sid in range(self.N_SERVERS)
        }

    def _run(self, estimator):
        config = replace(
            paper_two_class_config("masstree", 1.5, policy="tailguard",
                                   n_queries=20_000, seed=8),
            estimator=estimator,
            server_cdfs=self._heterogeneous_cdfs(),
        )
        return simulate(config.at_load(self.LOAD))

    def test_online_converges_to_oracle(self):
        """After a run, the online estimator's learned unloaded tails
        match the oracle's (true per-group CDFs) closely, while the
        never-updated oblivious estimate stays wrong."""
        bench = get_workload("masstree")
        groups = {sid: ("slow" if sid < 50 else "fast")
                  for sid in range(self.N_SERVERS)}

        oblivious = DeadlineEstimator(bench.service_time,
                                      n_servers=self.N_SERVERS)
        online = DeadlineEstimator(
            {sid: bench.service_time for sid in range(self.N_SERVERS)},
            online_window=8_000,
            refresh_interval=4_000,
            server_groups=groups,
        )
        oracle = DeadlineEstimator(self._heterogeneous_cdfs())
        self._run(online)  # drives observations into the online CDFs

        selection = list(range(self.N_SERVERS))  # a full-fanout query
        online.invalidate()
        learned = online.unloaded_tail(99.0, servers=selection)
        truth = oracle.unloaded_tail(99.0, servers=selection)
        wrong = oblivious.unloaded_tail(99.0, fanout=self.N_SERVERS)

        assert learned == pytest.approx(truth, rel=0.10)
        # The oblivious estimate misses the slow half of the cluster.
        assert abs(wrong - truth) / truth > 0.15

    def test_online_behaviour_matches_oracle(self):
        """Per-type tails under the online estimator end up within a few
        percent of the oracle's (they converge to the same deadlines)."""
        bench = get_workload("masstree")
        groups = {sid: ("slow" if sid < 50 else "fast")
                  for sid in range(self.N_SERVERS)}
        online = DeadlineEstimator(
            {sid: bench.service_time for sid in range(self.N_SERVERS)},
            online_window=8_000,
            refresh_interval=4_000,
            server_groups=groups,
        )
        oracle = DeadlineEstimator(self._heterogeneous_cdfs())
        result_online = self._run(online)
        result_oracle = self._run(oracle)
        for key, oracle_tail in result_oracle.per_type_tails().items():
            online_tail = result_online.per_type_tails()[key]
            assert online_tail == pytest.approx(oracle_tail, rel=0.10)

    def test_online_run_completes_and_meets_loose_slo(self):
        bench = get_workload("masstree")
        groups = {sid: ("slow" if sid < 50 else "fast")
                  for sid in range(self.N_SERVERS)}
        online = DeadlineEstimator(
            {sid: bench.service_time for sid in range(self.N_SERVERS)},
            online_window=8_000,
            refresh_interval=4_000,
            server_groups=groups,
        )
        result = self._run(online)
        assert result.count() > 0
        assert result.tail(99.0, "class-II") <= 1.5 * 1.5 * 2.0
