"""Determinism of the parallel experiment runner.

The whole point of :mod:`repro.experiments.parallel` is that fanning
independent ``simulate()`` calls over worker processes never changes a
result: seeds are pinned per task *before* anything is submitted, so
``workers=4`` must reproduce ``workers=1`` bit for bit.  These tests
pin that contract on miniature fig4/fig6 grids (small enough for the
CI box; the parallel paths still genuinely cross process boundaries).
"""

import pickle

import pytest

from repro.cluster import ClusterConfig, simulate
from repro.core import AdmissionFactory, DeadlineMissRatioAdmission
from repro.errors import ExperimentError
from repro.experiments import (
    find_max_load,
    load_sweep,
    run_simulations,
)
from repro.experiments.parallel import resolve_workers
from repro.experiments.setups import (
    paper_oldi_config,
    paper_single_class_config,
)
from repro.obs import TraceRecorder


@pytest.fixture(scope="module")
def fig4_mini() -> ClusterConfig:
    return paper_single_class_config("masstree", 0.8, n_queries=3_000)


@pytest.fixture(scope="module")
def fig6_mini() -> ClusterConfig:
    return paper_oldi_config("masstree", 1.0, 1.5, n_queries=600)


class TestResolveWorkers:
    def test_serial_spellings(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_explicit_count_passes_through(self):
        assert resolve_workers(4) == 4

    def test_minus_one_means_all_cpus(self):
        assert resolve_workers(-1) >= 1

    def test_other_negatives_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_workers(-2)


class TestMaxLoadDeterminism:
    def test_workers_match_serial_probe_for_probe(self, fig4_mini):
        kwargs = dict(lo=0.2, hi=0.6, tol=0.05, seeds=(1, 2))
        serial = find_max_load(fig4_mini, **kwargs)
        parallel = find_max_load(fig4_mini, workers=4, **kwargs)
        assert parallel.max_load == serial.max_load
        # Not just the answer: the entire probe history (loads probed,
        # feasibility votes, order) must be identical.
        assert parallel.history == serial.history

    def test_speculative_stays_within_tol(self, fig4_mini):
        kwargs = dict(lo=0.2, hi=0.6, tol=0.05, seeds=(1, 2))
        plain = find_max_load(fig4_mini, **kwargs)
        spec = find_max_load(fig4_mini, workers=4, speculative=3, **kwargs)
        # Speculative bisection probes a different (deterministic) load
        # sequence, so the boundary may shift by at most one bracket.
        assert abs(spec.max_load - plain.max_load) <= kwargs["tol"]
        # The returned load must itself have probed feasible (or be lo).
        feasible = {load for load, ok in spec.history if ok}
        assert spec.max_load in feasible or spec.max_load == kwargs["lo"]

    def test_speculative_validation(self, fig4_mini):
        with pytest.raises(ExperimentError):
            find_max_load(fig4_mini, speculative=0)


class TestSweepDeterminism:
    def test_workers_match_serial_bit_for_bit(self, fig6_mini):
        loads = (0.3, 0.5)
        serial = load_sweep(fig6_mini, loads, seed=3)
        parallel = load_sweep(fig6_mini, loads, seed=3, workers=4)
        # SweepPoint is a frozen dataclass of floats/dicts: equality
        # here is bit-identity of every tail, ratio and load.
        assert parallel == serial

    def test_seed_none_falls_back_to_config_seed(self, fig6_mini):
        loads = (0.3,)
        first = load_sweep(fig6_mini, loads, seed=None)
        second = load_sweep(fig6_mini, loads, seed=None, workers=2)
        assert first == second

    def test_parallel_rejects_shared_admission_controller(self, fig6_mini):
        from dataclasses import replace

        shared = replace(
            fig6_mini, admission=DeadlineMissRatioAdmission(threshold=0.05))
        with pytest.raises(ExperimentError):
            load_sweep(shared, (0.3, 0.5), seed=1, workers=2)

    def test_parallel_admission_factory_matches_serial(self, fig4_mini):
        factory = AdmissionFactory(
            DeadlineMissRatioAdmission,
            {"threshold": 0.05, "min_samples": 200},
        )
        loads = (0.4, 0.6)
        serial = load_sweep(fig4_mini, loads, seed=2,
                            admission_factory=factory)
        parallel = load_sweep(fig4_mini, loads, seed=2,
                              admission_factory=factory, workers=2)
        assert parallel == serial

    def test_admission_factory_is_picklable(self):
        factory = AdmissionFactory(DeadlineMissRatioAdmission,
                                   {"threshold": 0.01})
        clone = pickle.loads(pickle.dumps(factory))
        controller = clone()
        assert isinstance(controller, DeadlineMissRatioAdmission)


class TestRunSimulations:
    def test_seed_stability_arrays_identical_across_workers(self, fig6_mini):
        """Same config + seed => the SimulationResult *arrays* are
        identical bit for bit whether run with 1 worker or 4 — not just
        the derived statistics.  This pins the fan-out contract at the
        raw-array level so a kernel change that perturbs, say, float
        accumulation order in one path cannot hide behind aggregated
        tails."""
        import numpy as np

        from repro.faults import CrashProcess, FaultPlan, RetryPolicy

        plan = FaultPlan(crashes=CrashProcess(mtbf_ms=80.0, mttr_ms=5.0,
                                              seed=11),
                         retry=RetryPolicy(max_retries=1, backoff_ms=0.7))
        configs = [
            fig6_mini.at_load(0.5).with_seed(13),
            fig6_mini.at_load(0.7).with_seed(13),
            fig6_mini.at_load(0.5).with_seed(13).with_faults(plan),
        ]
        serial = run_simulations(configs, workers=1)
        parallel = run_simulations(configs, workers=4)
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(p.latency, s.latency)
            np.testing.assert_array_equal(p.arrival, s.arrival)
            np.testing.assert_array_equal(p.fanout, s.fanout)
            np.testing.assert_array_equal(p.class_index, s.class_index)
            np.testing.assert_array_equal(p.rejected, s.rejected)
            np.testing.assert_array_equal(p.measured, s.measured)
            np.testing.assert_array_equal(p.failed, s.failed)
            assert p.busy_time_total == s.busy_time_total
            assert p.tasks_total == s.tasks_total
            assert p.tasks_missed_deadline == s.tasks_missed_deadline
            assert p.duration == s.duration

    def test_preserves_input_order(self, fig6_mini):
        configs = [fig6_mini.at_load(load).with_seed(7)
                   for load in (0.3, 0.45, 0.6)]
        serial = run_simulations(configs)
        parallel = run_simulations(configs, workers=4)
        assert len(parallel) == len(configs)
        for s, p in zip(serial, parallel):
            assert p.per_type_tails() == s.per_type_tails()
            assert p.deadline_miss_ratio() == s.deadline_miss_ratio()

    def test_empty_configs_rejected(self):
        with pytest.raises(ExperimentError):
            run_simulations([])

    def test_obs_merged_home_matches_serial(self, fig6_mini):
        from dataclasses import replace

        def run(workers):
            recorder = TraceRecorder()
            configs = [
                replace(fig6_mini.at_load(load).with_seed(5),
                        recorder=recorder)
                for load in (0.3, 0.5)
            ]
            run_simulations(configs, workers=workers)
            return recorder

        serial = run(None)
        merged = run(2)
        assert merged.counters == serial.counters
        assert merged.latency_hist.snapshot() == serial.latency_hist.snapshot()
        assert len(merged.events) == len(serial.events)

    def test_results_rebound_to_parent_recorder(self, fig6_mini):
        from dataclasses import replace

        recorder = TraceRecorder()
        config = replace(fig6_mini.at_load(0.3).with_seed(5),
                         recorder=recorder)
        result = run_simulations([config], workers=2)[0]
        assert result.obs is recorder

    def test_overload_and_attribution_survive_pool(self, fig6_mini):
        """coverage/degraded arrays and the attr_* columns must cross
        the shared-memory result path unchanged: an overloaded, traced,
        degrading run fanned out with workers=2 reproduces the serial
        arrays and attribution bit for bit."""
        import numpy as np

        from repro.overload import (
            AdaptiveAdmissionPolicy,
            DegradePolicy,
            OverloadPolicy,
        )

        policy = OverloadPolicy(
            admission=AdaptiveAdmissionPolicy(
                target_miss_ratio=0.05, window_tasks=300, window_ms=40.0,
                min_samples=50, ctl_interval_ms=2.0),
            degrade=DegradePolicy(min_coverage=0.5, pressure_alpha=0.1,
                                  safety=1.0),
        )

        def run(workers):
            recorder = TraceRecorder()
            overloaded = fig6_mini.at_load(1.4).with_seed(7).evolve(
                recorder=recorder, overload=policy)
            plain = fig6_mini.at_load(0.4).with_seed(7)
            return run_simulations([overloaded, plain], workers=workers)

        serial = run(None)
        parallel = run(2)
        hot_s, hot_p = serial[0], parallel[0]
        np.testing.assert_array_equal(hot_p.latency, hot_s.latency)
        np.testing.assert_array_equal(hot_p.rejected, hot_s.rejected)
        np.testing.assert_array_equal(hot_p.coverage, hot_s.coverage)
        np.testing.assert_array_equal(hot_p.degraded, hot_s.degraded)
        assert hot_p.degraded_queries == hot_s.degraded_queries
        assert hot_p.shed_tasks == hot_s.shed_tasks
        assert hot_p.attribution_summary() == hot_s.attribution_summary()

    def test_repeat_calls_reuse_pool_and_stay_identical(self, fig6_mini):
        """The persistent pool (and its warmed estimator caches) must
        not leak state between calls: back-to-back fan-outs of the same
        grid agree bit for bit."""
        import numpy as np

        configs = [fig6_mini.at_load(load).with_seed(3)
                   for load in (0.3, 0.5, 0.7)]
        first = run_simulations(configs, workers=2)
        second = run_simulations(configs, workers=2)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.latency, b.latency)
            assert a.busy_time_total == b.busy_time_total
