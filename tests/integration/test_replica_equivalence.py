"""Both simulation paths implement identical replica-layer semantics.

Same pattern as test_faults_equivalence.py — one shared trace,
pre-assigned servers, deterministic per-server service times, a fault
plan with crashes, stragglers, retries, and hedging — now with a
:class:`repro.replicas.ReplicaPolicy` layered on.  The composable
DES-kernel path (QueryHandler + TaskServer + FaultManager +
install_replicas) and the fault-aware event calendar
(repro.cluster.faultsim) must produce identical per-query latencies,
agree on which queries failed, and drive their shared
:class:`ReplicaController` through the identical decision sequence
(the controller is RNG-free, so equal feed order means equal counters,
equal suppression tallies, and an equal hedge-delay trace).

A third axis pins the *specialized* mitigated timer-lane loop against
the generic event loop: the same workload-driven config runs once
eligible for the fast loop and once with timeline sampling enabled
(which forces the generic loop without changing any latency), and the
results must be bit-identical.
"""

import math

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.server import TaskServer
from repro.distributions import Deterministic, Exponential
from repro.faults import (
    CrashProcess,
    Downtime,
    FaultPlan,
    HedgePolicy,
    RetryPolicy,
    StragglerEpisode,
    fault_horizon,
    install_faults,
)
from repro.replicas import (
    AdaptiveHedgePolicy,
    HedgeSuppressionPolicy,
    ReplicaPolicy,
    ReplicaScorer,
    install_replicas,
)
from repro.sim import Environment
from repro.types import QuerySpec, ServiceClass
from repro.workloads import (
    FixedFanout,
    PoissonArrivals,
    Workload,
    single_class_mix,
)

N_SERVERS = 8


def build_trace(n_queries=400, seed=17):
    rng = np.random.default_rng(seed)
    classes = [
        ServiceClass("class-I", slo_ms=5.0, priority=0),
        ServiceClass("class-II", slo_ms=7.5, priority=1),
    ]
    specs = []
    now = 0.0
    for qid in range(n_queries):
        now += float(rng.exponential(0.35))
        fanout = int(rng.choice([1, 2, 4, 8]))
        servers = tuple(
            int(s) for s in rng.choice(N_SERVERS, size=fanout, replace=False)
        )
        specs.append(
            QuerySpec(
                query_id=qid,
                arrival_time=now,
                fanout=fanout,
                service_class=classes[int(rng.integers(2))],
                servers=servers,
            )
        )
    return specs


def server_cdfs():
    return {
        sid: Deterministic(0.5 + 0.1 * sid) for sid in range(N_SERVERS)
    }


#: One busy plan — crashes, stragglers, retries, hedges — so every
#: replica-layer code path (scored requeue, hedge gating, outcome
#: accounting on wins, losses, and slot failures) actually fires.
PLAN = FaultPlan(
    downtimes=(Downtime(6, 15.359, 22.901),),
    crashes=CrashProcess(mtbf_ms=80.0, mttr_ms=6.0,
                         server_ids=(0, 3), seed=5),
    stragglers=(StragglerEpisode((7,), 35.183, 55.621, 2.5),),
    retry=RetryPolicy(max_retries=2, backoff_ms=0.531, timeout_ms=9.207),
    hedge=HedgePolicy(delay_ms=3.313, max_hedges=2),
)

REPLICA_POLICIES = {
    "scorer-tail": ReplicaPolicy(
        scorer=ReplicaScorer(tail_weight=0.5, tail_alpha=0.2),
    ),
    "suppression": ReplicaPolicy(
        suppression=HedgeSuppressionPolicy(
            pressure_alpha=0.1, pressure_threshold_ms=0.6,
            score_threshold=6.0),
    ),
    "adaptive": ReplicaPolicy(
        adaptive=AdaptiveHedgePolicy(
            window_hedges=40, min_samples=10, ctl_interval_ms=10.0,
            increase=1.5, decrease=0.2, max_duplicate_fraction=0.5),
    ),
    "full": ReplicaPolicy(
        scorer=ReplicaScorer(tail_weight=0.5, tail_alpha=0.2),
        suppression=HedgeSuppressionPolicy(
            pressure_alpha=0.1, pressure_threshold_ms=0.6),
        adaptive=AdaptiveHedgePolicy(
            window_hedges=40, min_samples=10, ctl_interval_ms=10.0,
            max_duplicate_fraction=0.4),
    ),
}


def controller_fingerprint(rc):
    return {
        "base_launches": rc.base_launches,
        "hedges_launched": rc.hedges_launched,
        "hedges_suppressed": rc.hedges_suppressed,
        "suppressed_by": dict(rc.suppressed_by),
        "hedge_wins": rc.hedge_wins,
        "hedge_losses": rc.hedge_losses,
        "delay_trace": list(rc.delay_trace),
        "tail_ewma": list(rc.tail_ewma),
        "pressure": rc.pressure,
    }


def run_kernel_path(specs, policy_name, rpolicy):
    env = Environment()
    policy = get_policy(policy_name)
    cdfs = server_cdfs()
    estimator = DeadlineEstimator(dict(cdfs))
    servers = [
        TaskServer(env, sid, policy, cdfs[sid], np.random.default_rng(sid))
        for sid in range(N_SERVERS)
    ]
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(123))
    install_faults(env, handler, servers, PLAN,
                   fault_horizon(specs[-1].arrival_time), cdfs)
    rc = install_replicas(env, handler, servers, rpolicy)
    env.process(handler.drive(specs))
    env.run()
    latencies = {
        record.spec.query_id: record.latency for record in handler.completed
    }
    failed = {record.spec.query_id for record in handler.failed}
    return latencies, failed, rc


def run_fast_path(specs, policy_name, rpolicy):
    config = ClusterConfig(
        n_servers=N_SERVERS,
        policy=policy_name,
        specs=specs,
        server_cdfs=server_cdfs(),
        warmup_fraction=0.0,
    ).with_faults(PLAN).with_replicas(rpolicy)
    result = simulate(config)
    latencies = {
        spec.query_id: result.latency[i]
        for i, spec in enumerate(specs)
        if not math.isnan(result.latency[i])
    }
    failed = {
        spec.query_id for i, spec in enumerate(specs) if result.failed[i]
    }
    return latencies, failed, result.replicas


@pytest.mark.parametrize("rpolicy_name", sorted(REPLICA_POLICIES))
@pytest.mark.parametrize("policy_name", ["fifo", "tailguard"])
def test_replica_paths_agree_exactly(policy_name, rpolicy_name):
    specs = build_trace()
    rpolicy = REPLICA_POLICIES[rpolicy_name]
    kernel_lat, kernel_failed, kernel_rc = run_kernel_path(
        specs, policy_name, rpolicy)
    fast_lat, fast_failed, fast_rc = run_fast_path(
        specs, policy_name, rpolicy)
    assert kernel_failed == fast_failed
    assert set(kernel_lat) == set(fast_lat)
    for qid in kernel_lat:
        assert kernel_lat[qid] == pytest.approx(fast_lat[qid], abs=1e-9), (
            f"query {qid} diverged under {policy_name}/{rpolicy_name}"
        )
    # The controller is RNG-free: identical feed order must leave the
    # two instances in bit-identical states.
    assert controller_fingerprint(kernel_rc) == controller_fingerprint(
        fast_rc)
    # Guard against vacuous agreement: the plan hedges on both paths.
    assert fast_rc.hedges_launched > 0
    assert fast_rc.hedge_wins + fast_rc.hedge_losses > 0


def test_suppression_and_adaptivity_actually_fire():
    """The equivalence above would be vacuous if no gate ever tripped."""
    specs = build_trace()
    _, _, rc = run_fast_path(specs, "tailguard",
                             REPLICA_POLICIES["suppression"])
    assert rc.hedges_suppressed > 0
    _, _, rc = run_fast_path(specs, "tailguard",
                             REPLICA_POLICIES["adaptive"])
    assert len(rc.delay_trace) > 1, "AIMD never adjusted the delay"


def test_default_scorer_is_inert():
    """A depth-only scorer is exactly pick_server: adding it to a run
    must not change a single latency on either loop family."""
    specs = build_trace()
    base = ClusterConfig(
        n_servers=N_SERVERS,
        policy="tailguard",
        specs=specs,
        server_cdfs=server_cdfs(),
        warmup_fraction=0.0,
    ).with_faults(PLAN)
    plain = simulate(base)
    scored = simulate(base.with_replicas(ReplicaPolicy(
        scorer=ReplicaScorer())))
    np.testing.assert_array_equal(plain.latency, scored.latency)
    np.testing.assert_array_equal(plain.failed, scored.failed)
    assert plain.tasks_hedged == scored.tasks_hedged
    assert plain.tasks_retried == scored.tasks_retried


def workload_config(**changes):
    # Moderate load: saturating the cluster would trip the pressure
    # gate permanently and no hedge (hence no AIMD adjustment) would
    # ever happen — the equivalence would go vacuous.
    workload = Workload(
        name="replica-eq",
        arrivals=PoissonArrivals(2.6),
        fanout=FixedFanout(4),
        class_mix=single_class_mix(ServiceClass("only", slo_ms=4.0)),
        service_time=Exponential(rate=2.0),
    )
    config = ClusterConfig(
        n_servers=N_SERVERS,
        policy="tailguard",
        workload=workload,
        n_queries=3_000,
        seed=11,
        warmup_fraction=0.0,
        faults=FaultPlan(
            crashes=CrashProcess(mtbf_ms=120.0, mttr_ms=5.0,
                                 server_ids=(1, 4), seed=3),
            stragglers=(StragglerEpisode((2, 5), 40.0, 160.0, 3.0),),
            retry=RetryPolicy(max_retries=2, backoff_ms=0.531,
                              timeout_ms=9.207),
            hedge=HedgePolicy(delay_ms=1.717, max_hedges=1),
        ),
        replicas=REPLICA_POLICIES["full"],
    )
    return config.evolve(**changes) if changes else config


@pytest.mark.parametrize("policy_name", ["fifo", "tailguard"])
def test_specialized_timer_lanes_match_generic_loop(policy_name):
    """The mitigated fast loop's replica wiring (adaptive hedge timers
    promoted from the pre-sorted deque lane to the main heap) replays
    the generic loop exactly.  Timeline sampling forces the generic
    loop without perturbing any event, so the two runs must agree
    bit-for-bit."""
    config = workload_config(policy=policy_name)
    fast = simulate(config)
    generic = simulate(config.evolve(timeline_interval_ms=1e6))
    np.testing.assert_array_equal(fast.latency, generic.latency)
    np.testing.assert_array_equal(fast.failed, generic.failed)
    assert fast.tasks_hedged == generic.tasks_hedged
    assert fast.tasks_retried == generic.tasks_retried
    assert fast.hedges_suppressed == generic.hedges_suppressed
    assert controller_fingerprint(fast.replicas) == controller_fingerprint(
        generic.replicas)
    assert fast.replicas.hedges_launched > 0
    assert len(fast.replicas.delay_trace) > 1
