"""Both simulation paths implement identical fault semantics.

Same pattern as test_equivalence.py — one shared trace, pre-assigned
servers, deterministic per-server service times — but now with fault
plans layered on: pause-mode downtime windows, kill-mode crashes with
retry/requeue, hedged requests, straggler episodes, and a seeded MTBF/
MTTR crash process.  The composable DES-kernel path (QueryHandler +
TaskServer + FaultManager) and the fault-aware event calendar
(repro.cluster.faultsim) must produce identical per-query latencies and
agree on which queries failed.
"""

import math

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.server import TaskServer
from repro.distributions import Deterministic
from repro.faults import (
    CrashProcess,
    Downtime,
    FaultPlan,
    HedgePolicy,
    RetryPolicy,
    StragglerEpisode,
    fault_horizon,
    install_faults,
)
from repro.sim import Environment
from repro.types import QuerySpec, ServiceClass

N_SERVERS = 8


def build_trace(n_queries=400, seed=9):
    rng = np.random.default_rng(seed)
    classes = [
        ServiceClass("class-I", slo_ms=5.0, priority=0),
        ServiceClass("class-II", slo_ms=7.5, priority=1),
    ]
    specs = []
    now = 0.0
    for qid in range(n_queries):
        now += float(rng.exponential(0.35))
        fanout = int(rng.choice([1, 2, 4, 8]))
        servers = tuple(
            int(s) for s in rng.choice(N_SERVERS, size=fanout, replace=False)
        )
        specs.append(
            QuerySpec(
                query_id=qid,
                arrival_time=now,
                fanout=fanout,
                service_class=classes[int(rng.integers(2))],
                servers=servers,
            )
        )
    return specs


def server_cdfs():
    return {
        sid: Deterministic(0.5 + 0.1 * sid) for sid in range(N_SERVERS)
    }


#: The fault plans under test.  Times use odd decimals so no fault
#: event ever ties exactly with a completion (the two paths order
#: different event kinds at equal times by different rules).
PLANS = {
    "pause": FaultPlan(
        downtimes=(
            Downtime(2, 10.113, 17.391),
            Downtime(5, 30.207, 38.119),
            Downtime(2, 60.551, 64.723),
        ),
    ),
    "kill-retry": FaultPlan(
        downtimes=(
            Downtime(2, 10.113, 17.391),
            Downtime(5, 30.207, 38.119),
            Downtime(2, 60.551, 64.723),
        ),
        retry=RetryPolicy(max_retries=3, backoff_ms=0.377),
    ),
    "hedge-straggler": FaultPlan(
        downtimes=(Downtime(1, 20.117, 26.393),),
        stragglers=(StragglerEpisode((3, 4), 40.109, 70.457, 3.0),),
        hedge=HedgePolicy(delay_ms=2.131, max_hedges=1),
    ),
    "everything": FaultPlan(
        downtimes=(Downtime(6, 15.359, 22.901),),
        crashes=CrashProcess(mtbf_ms=80.0, mttr_ms=6.0,
                             server_ids=(0, 3), seed=5),
        stragglers=(StragglerEpisode((7,), 35.183, 55.621, 2.5),),
        retry=RetryPolicy(max_retries=2, backoff_ms=0.531,
                          timeout_ms=9.207),
        hedge=HedgePolicy(delay_ms=3.313, max_hedges=1),
    ),
}


def run_kernel_path(specs, policy_name, plan):
    env = Environment()
    policy = get_policy(policy_name)
    cdfs = server_cdfs()
    estimator = DeadlineEstimator(dict(cdfs))
    servers = [
        TaskServer(env, sid, policy, cdfs[sid], np.random.default_rng(sid))
        for sid in range(N_SERVERS)
    ]
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(123))
    install_faults(env, handler, servers, plan,
                   fault_horizon(specs[-1].arrival_time), cdfs)
    env.process(handler.drive(specs))
    env.run()
    latencies = {
        record.spec.query_id: record.latency for record in handler.completed
    }
    failed = {record.spec.query_id for record in handler.failed}
    return latencies, failed


def run_fast_path(specs, policy_name, plan):
    config = ClusterConfig(
        n_servers=N_SERVERS,
        policy=policy_name,
        specs=specs,
        server_cdfs=server_cdfs(),
        warmup_fraction=0.0,
    ).with_faults(plan)
    result = simulate(config)
    latencies = {
        spec.query_id: result.latency[i]
        for i, spec in enumerate(specs)
        if not math.isnan(result.latency[i])
    }
    failed = {
        spec.query_id for i, spec in enumerate(specs) if result.failed[i]
    }
    return latencies, failed


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("policy_name", ["fifo", "tailguard"])
def test_fault_paths_agree_exactly(policy_name, plan_name):
    specs = build_trace()
    plan = PLANS[plan_name]
    kernel_lat, kernel_failed = run_kernel_path(specs, policy_name, plan)
    fast_lat, fast_failed = run_fast_path(specs, policy_name, plan)
    assert kernel_failed == fast_failed
    assert set(kernel_lat) == set(fast_lat)
    for qid in kernel_lat:
        assert kernel_lat[qid] == pytest.approx(fast_lat[qid], abs=1e-9), (
            f"query {qid} diverged under {policy_name}/{plan_name}"
        )


def test_faults_actually_bite():
    """Guard against vacuous equivalence: the pause plan must change
    latencies versus a fault-free run of the same trace."""
    specs = build_trace()
    faulty, _ = run_fast_path(specs, "tailguard", PLANS["pause"])
    config = ClusterConfig(
        n_servers=N_SERVERS,
        policy="tailguard",
        specs=specs,
        server_cdfs=server_cdfs(),
        warmup_fraction=0.0,
    )
    clean = simulate(config)
    clean_lat = {spec.query_id: clean.latency[i]
                 for i, spec in enumerate(specs)}
    assert any(
        abs(faulty[qid] - clean_lat[qid]) > 1e-9 for qid in faulty
    )


def test_kill_mode_and_hedging_leave_no_query_behind():
    """With mitigations on and generous budgets, every query completes
    despite crashes."""
    specs = build_trace()
    latencies, failed = run_fast_path(specs, "tailguard",
                                      PLANS["hedge-straggler"])
    assert not failed
    assert len(latencies) == len(specs)


def test_mitigations_cut_the_crash_tail():
    """The ext_fault_sweep claim: when the MTTR dwarfs the SLO, hedging
    and kill-mode retry each cut p99 by a large factor versus letting
    queued tasks wait out the repair."""
    from repro.experiments.extensions import ext_fault_sweep

    report = ext_fault_sweep(
        n_queries=3_000, mtbf_values=(500.0,), policies=("tailguard",),
    )
    p99 = {row["mitigation"]: row["p99_ms"] for row in report.rows}
    assert p99["none"] > 10.0  # the tail absorbs the 20 ms MTTR
    assert p99["hedge"] < 0.25 * p99["none"]
    assert p99["retry"] < 0.25 * p99["none"]
    assert p99["retry+hedge"] < 0.25 * p99["none"]
    hedged = {row["mitigation"]: row["tasks_hedged"] for row in report.rows}
    assert hedged["hedge"] > 0 and hedged["none"] == 0
