"""The two simulation paths implement the same semantics.

The coroutine model (QueryHandler + TaskServer on the DES kernel) and
the optimized event-calendar loop (repro.cluster.simulation) are driven
with the *same trace* — pre-assigned servers and deterministic
per-server service times so no randomness can diverge — and must
produce identical per-query latencies under every policy.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.server import TaskServer
from repro.distributions import Deterministic
from repro.sim import Environment
from repro.types import QuerySpec, ServiceClass

N_SERVERS = 8


def build_trace(n_queries=400, seed=9):
    """Random trace with pre-assigned servers and two classes."""
    rng = np.random.default_rng(seed)
    classes = [
        ServiceClass("class-I", slo_ms=5.0, priority=0),
        ServiceClass("class-II", slo_ms=7.5, priority=1),
    ]
    specs = []
    now = 0.0
    for qid in range(n_queries):
        now += float(rng.exponential(0.35))
        fanout = int(rng.choice([1, 2, 4, 8]))
        servers = tuple(
            int(s) for s in rng.choice(N_SERVERS, size=fanout, replace=False)
        )
        specs.append(
            QuerySpec(
                query_id=qid,
                arrival_time=now,
                fanout=fanout,
                service_class=classes[int(rng.integers(2))],
                servers=servers,
            )
        )
    return specs


def server_cdfs():
    """Deterministic heterogeneous service times: 0.5 .. 1.2 ms."""
    return {
        sid: Deterministic(0.5 + 0.1 * sid) for sid in range(N_SERVERS)
    }


def run_kernel_path(specs, policy_name):
    env = Environment()
    policy = get_policy(policy_name)
    cdfs = server_cdfs()
    estimator = DeadlineEstimator(dict(cdfs))
    servers = [
        TaskServer(env, sid, policy, cdfs[sid], np.random.default_rng(sid))
        for sid in range(N_SERVERS)
    ]
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(123))
    env.process(handler.drive(specs))
    env.run()
    return {
        record.spec.query_id: record.latency for record in handler.completed
    }


def run_fast_path(specs, policy_name):
    config = ClusterConfig(
        n_servers=N_SERVERS,
        policy=policy_name,
        specs=specs,
        server_cdfs=server_cdfs(),
        warmup_fraction=0.0,
    )
    result = simulate(config)
    return {spec.query_id: result.latency[i] for i, spec in enumerate(specs)}


@pytest.mark.parametrize("policy_name",
                         ["fifo", "priq", "t-edf", "tailguard", "wrr"])
def test_both_paths_agree_exactly(policy_name):
    specs = build_trace()
    kernel = run_kernel_path(specs, policy_name)
    fast = run_fast_path(specs, policy_name)
    assert set(kernel) == set(fast)
    for qid in kernel:
        assert kernel[qid] == pytest.approx(fast[qid], abs=1e-9), (
            f"query {qid} diverged under {policy_name}"
        )


def test_policies_actually_differ_on_this_trace():
    """Guard against a vacuous equivalence: the trace must be contended
    enough that at least two policies order work differently."""
    specs = build_trace()
    outcomes = {
        policy: tuple(sorted(run_fast_path(specs, policy).values()))
        for policy in ("fifo", "tailguard")
    }
    assert outcomes["fifo"] != outcomes["tailguard"]
