"""Validate the simulator against closed-form queueing theory.

These are ground-truth checks: an M/M/1 queue (Poisson arrivals,
exponential service, one server, FIFO) has known mean response time
``1/(μ−λ)`` and response-time distribution ``Exp(μ−λ)``; an M/D/1 queue
has the Pollaczek–Khinchine mean wait.  If the event-calendar simulator
reproduces them, its queueing mechanics are right.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.distributions import Deterministic, Exponential
from repro.types import ServiceClass
from repro.workloads import (
    FixedFanout,
    PoissonArrivals,
    Workload,
    single_class_mix,
)


def mm1_config(rho: float, mu: float = 1.0, n_queries: int = 120_000,
               service=None):
    service = service if service is not None else Exponential(mu)
    workload = Workload(
        name="mm1",
        arrivals=PoissonArrivals(rho * mu),
        fanout=FixedFanout(1),
        class_mix=single_class_mix(ServiceClass("only", slo_ms=1e9)),
        service_time=service,
    )
    return ClusterConfig(n_servers=1, policy="fifo", workload=workload,
                         n_queries=n_queries, seed=42,
                         warmup_fraction=0.2)


class TestMM1:
    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
    def test_mean_response_time(self, rho):
        """E[T] = 1 / (μ − λ) for M/M/1."""
        result = simulate(mm1_config(rho))
        expected = 1.0 / (1.0 - rho)
        measured = float(np.mean(result.latencies()))
        assert measured == pytest.approx(expected, rel=0.06)

    def test_response_time_distribution_is_exponential(self):
        """T ~ Exp(μ−λ): check two quantiles."""
        rho = 0.5
        result = simulate(mm1_config(rho))
        latencies = result.latencies()
        rate = 1.0 - rho
        for q in (0.5, 0.9):
            expected = -np.log(1 - q) / rate
            measured = float(np.quantile(latencies, q))
            assert measured == pytest.approx(expected, rel=0.08), q

    def test_utilization_equals_rho(self):
        result = simulate(mm1_config(0.6))
        assert result.utilization() == pytest.approx(0.6, abs=0.02)


class TestMD1:
    @pytest.mark.parametrize("rho", [0.4, 0.7])
    def test_pollaczek_khinchine_mean_wait(self, rho):
        """M/D/1: E[W] = ρ / (2 μ (1 − ρ)); E[T] = E[W] + 1/μ."""
        result = simulate(mm1_config(rho, service=Deterministic(1.0)))
        expected = rho / (2.0 * (1.0 - rho)) + 1.0
        measured = float(np.mean(result.latencies()))
        assert measured == pytest.approx(expected, rel=0.06)


class TestForkJoin:
    def test_two_way_fork_join_unloaded(self):
        """With negligible load the fanout-2 query latency is the max of
        two service draws: E[max] = 3/(2μ) for exponential service."""
        workload = Workload(
            name="fork",
            arrivals=PoissonArrivals(0.001),
            fanout=FixedFanout(2),
            class_mix=single_class_mix(ServiceClass("only", slo_ms=1e9)),
            service_time=Exponential(1.0),
        )
        config = ClusterConfig(n_servers=2, policy="fifo",
                               workload=workload, n_queries=40_000, seed=7)
        result = simulate(config)
        measured = float(np.mean(result.latencies()))
        assert measured == pytest.approx(1.5, rel=0.05)
