"""Behavioural integration tests for the queuing policies (§III.A, §IV.B).

These check the paper's qualitative claims end-to-end on the simulator:
degeneracy of PRIQ/T-EDFQ to FIFO with a single class, TailGuard's
advantage over FIFO, and per-type tail equalization.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.experiments import find_max_load
from repro.experiments.setups import (
    paper_oldi_config,
    paper_single_class_config,
    paper_two_class_config,
)


class TestSingleClassDegeneracy:
    """§III.A: 'both PRIQ and T-EDFQ degenerate to FIFO ... with a
    single class'."""

    @pytest.mark.parametrize("other_policy", ["priq", "t-edf"])
    def test_identical_latencies_to_fifo(self, other_policy):
        fifo = simulate(
            paper_single_class_config("masstree", 1.0, policy="fifo",
                                      n_queries=4_000, seed=11).at_load(0.4)
        )
        other = simulate(
            paper_single_class_config("masstree", 1.0, policy=other_policy,
                                      n_queries=4_000, seed=11).at_load(0.4)
        )
        assert np.allclose(fifo.latency, other.latency)

    def test_tailguard_differs_from_fifo(self):
        fifo = simulate(
            paper_single_class_config("masstree", 1.0, policy="fifo",
                                      n_queries=4_000, seed=11).at_load(0.4)
        )
        tailguard = simulate(
            paper_single_class_config("masstree", 1.0, policy="tailguard",
                                      n_queries=4_000, seed=11).at_load(0.4)
        )
        assert not np.allclose(fifo.latency, tailguard.latency)


class TestOldiDegeneracy:
    """§IV.C: with a single fanout, T-EDFQ behaves the same as
    TailGuard (deadlines differ by a constant)."""

    def test_tedf_equals_tailguard_with_fixed_fanout(self):
        tailguard = simulate(
            paper_oldi_config("masstree", 1.0, 1.5, policy="tailguard",
                              n_queries=1_500, seed=4).at_load(0.45)
        )
        tedf = simulate(
            paper_oldi_config("masstree", 1.0, 1.5, policy="t-edf",
                              n_queries=1_500, seed=4).at_load(0.45)
        )
        assert np.allclose(tailguard.latency, tedf.latency)


class TestTailGuardAdvantage:
    def test_higher_max_load_than_fifo_single_class(self):
        """Fig. 4's headline on a reduced scale.

        Two seeds and 20k queries damp the p99 noise of the rare
        fanout-100 type at the feasibility boundary; a small tolerance
        absorbs what remains.
        """
        kwargs = dict(n_queries=20_000, seed=1)
        seeds = (1, 2)
        tg = find_max_load(
            paper_single_class_config("masstree", 0.8, policy="tailguard",
                                      **kwargs),
            tol=0.02, seeds=seeds,
        )
        fifo = find_max_load(
            paper_single_class_config("masstree", 0.8, policy="fifo",
                                      **kwargs),
            tol=0.02, seeds=seeds,
        )
        assert tg.max_load >= fifo.max_load - 0.011

    def test_equalizes_per_type_tails(self):
        """Table III: TailGuard narrows the spread of per-fanout tails."""
        load = 0.35
        fifo = simulate(
            paper_single_class_config("masstree", 0.8, policy="fifo",
                                      n_queries=40_000, seed=2).at_load(load)
        )
        tailguard = simulate(
            paper_single_class_config("masstree", 0.8, policy="tailguard",
                                      n_queries=40_000, seed=2).at_load(load)
        )

        def spread(result):
            tails = [result.tail(99.0, fanout=k) for k in (1, 10, 100)]
            return max(tails) - min(tails)

        assert spread(tailguard) < spread(fifo)

    def test_tailguard_reduces_high_fanout_tail(self):
        """TailGuard trades k=1 latency for k=100 latency (the binding
        type), which is what raises the feasible load."""
        load = 0.35
        fifo = simulate(
            paper_single_class_config("masstree", 0.8, policy="fifo",
                                      n_queries=40_000, seed=2).at_load(load)
        )
        tailguard = simulate(
            paper_single_class_config("masstree", 0.8, policy="tailguard",
                                      n_queries=40_000, seed=2).at_load(load)
        )
        assert (tailguard.tail(99.0, fanout=100)
                <= fifo.tail(99.0, fanout=100))
        assert tailguard.tail(99.0, fanout=1) >= fifo.tail(99.0, fanout=1)


class TestTwoClassOrdering:
    def test_priq_favors_high_class(self):
        """PRIQ starves class II relative to class I (§IV.C)."""
        result = simulate(
            paper_two_class_config("masstree", 1.0, policy="priq",
                                   n_queries=20_000, seed=5).at_load(0.5)
        )
        assert (result.tail(99.0, "class-I")
                < result.tail(99.0, "class-II"))

    def test_fifo_is_class_blind(self):
        """Under FIFO both classes see statistically similar latency."""
        result = simulate(
            paper_two_class_config("masstree", 1.0, policy="fifo",
                                   n_queries=30_000, seed=5).at_load(0.5)
        )
        tail1 = result.tail(95.0, "class-I")
        tail2 = result.tail(95.0, "class-II")
        assert tail1 == pytest.approx(tail2, rel=0.15)


class TestWorkConservation:
    def test_all_queries_complete(self, small_config):
        result = simulate(small_config)
        completed = ~np.isnan(result.latency) | result.rejected
        assert completed.all()

    def test_busy_time_invariant_across_policies(self, small_config):
        """Work conservation: identical traces produce identical total
        service demand regardless of ordering policy."""
        results = {
            policy: simulate(replace(small_config, policy=policy))
            for policy in ("fifo", "tailguard")
        }
        assert results["fifo"].tasks_total == results["tailguard"].tasks_total
        assert results["fifo"].busy_time_total == pytest.approx(
            results["tailguard"].busy_time_total, rel=0.02
        )
