"""Golden-master regression corpus for the simulation kernels.

Every scenario below runs a small seeded simulation and reduces its
per-query outcome arrays to a compact digest — SHA-256 over the
canonical little-endian bytes of each array, plus every scalar counter
as an exact hex float.  The digests are checked into
``tests/golden/`` and the test asserts that the current kernels
reproduce them **byte for byte**.

The corpus pins both simulation paths:

* the event-calendar path (``repro.cluster.simulation.simulate``,
  which routes to ``repro.cluster.faultsim`` under faults/overload)
  across FIFO / PRIQ / T-EDFQ / TF-EDFQ / WRR × {plain, faults,
  overload} plus heterogeneous-CDF, online-updating, admission,
  placement, and timeline-sampling variants;
* the composable DES-kernel path (``QueryHandler`` + ``TaskServer``
  on ``repro.sim.Environment``) on a fixed pre-placed trace, with and
  without a fault plan.

Regenerating (only after an *intentional* semantics change — see
``docs/extending.md``):

    PYTHONPATH=src python tests/integration/test_golden_master.py --regen

The regen escape hatch rewrites every digest under ``tests/golden/``
from the current kernels; review the diff before committing it.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.core.admission import DeadlineMissRatioAdmission
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.server import TaskServer
from repro.distributions import Deterministic, Exponential
from repro.faults import (
    CrashProcess,
    Downtime,
    FaultPlan,
    HedgePolicy,
    RetryPolicy,
    StragglerEpisode,
    fault_horizon,
    install_faults,
)
from repro.overload import (
    AdaptiveAdmissionPolicy,
    BreakerPolicy,
    DegradePolicy,
    OverloadPolicy,
)
from repro.replicas import (
    AdaptiveHedgePolicy,
    ReplicaPolicy,
    ReplicaScorer,
    install_replicas,
)
from repro.sim import Environment
from repro.types import QuerySpec, ServiceClass
from repro.workloads import (
    PoissonArrivals,
    Workload,
    get_workload,
    inverse_proportional_fanout,
    single_class_mix,
    uniform_class_mix,
)

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------
#: Canonical dtypes: every array is normalized before hashing so the
#: digest does not depend on incidental dtype choices inside a kernel.
_CANONICAL = {
    "latency": np.float64,
    "arrival": np.float64,
    "coverage": np.float64,
    "fanout": np.int64,
    "class_index": np.int64,
    "rejected": np.uint8,
    "measured": np.uint8,
    "failed": np.uint8,
    "degraded": np.uint8,
}


def _array_sha(name: str, array: Optional[np.ndarray]) -> str:
    if array is None:
        return "absent"
    canonical = np.ascontiguousarray(
        np.asarray(array).astype(_CANONICAL[name], copy=False)
    )
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are little
        canonical = canonical.byteswap()
    return hashlib.sha256(canonical.tobytes()).hexdigest()


def _hex(value: float) -> str:
    return float(value).hex()


def digest_result(result) -> Dict:
    """Compact, exact digest of one ``SimulationResult``."""
    arrays = {
        name: _array_sha(name, getattr(result, name))
        for name in ("latency", "arrival", "fanout", "class_index",
                     "rejected", "measured", "failed", "coverage",
                     "degraded")
    }
    finite = result.latency[np.isfinite(result.latency)]
    spot = {
        "latency_head": [_hex(v) for v in result.latency[:4]],
        "latency_sum": _hex(float(np.nansum(result.latency))),
        "completed": int(finite.size),
    }
    counters = {
        "n_queries": int(result.latency.size),
        "policy": result.policy_name,
        "n_servers": result.n_servers,
        "seed": result.seed,
        "classes": [cls.name for cls in result.classes],
        "tasks_total": result.tasks_total,
        "tasks_missed_deadline": result.tasks_missed_deadline,
        "busy_time_total": _hex(result.busy_time_total),
        "duration": _hex(result.duration),
        "tasks_failed": result.tasks_failed,
        "tasks_retried": result.tasks_retried,
        "tasks_hedged": result.tasks_hedged,
        "tasks_cancelled": result.tasks_cancelled,
        "server_failures": result.server_failures,
        "degraded_queries": result.degraded_queries,
        "shed_tasks": result.shed_tasks,
        "breaker_trips": result.breaker_trips,
    }
    if result.timeline is not None:
        counters["timeline_len"] = len(result.timeline)
        counters["timeline_queued_sum"] = int(
            result.timeline.queued_tasks.sum())
        counters["timeline_busy_sum"] = int(result.timeline.busy_servers.sum())
    if result.replicas is not None:
        # Pin the replica controller's decision sequence, not just its
        # latency side effects: the launch/suppression tallies and the
        # full AIMD delay trace are bit-exact functions of the feed
        # order both kernels must reproduce.
        rc = result.replicas
        counters["hedges_suppressed"] = result.hedges_suppressed
        counters["replica_base_launches"] = rc.base_launches
        counters["replica_hedges_launched"] = rc.hedges_launched
        counters["replica_suppressed_by"] = dict(rc.suppressed_by)
        counters["replica_hedge_wins"] = rc.hedge_wins
        counters["replica_hedge_losses"] = rc.hedge_losses
        counters["replica_delay_trace"] = [
            [_hex(t), _hex(f)] for t, f in rc.delay_trace
        ]
    return {"arrays": arrays, "counters": counters, "spot": spot}


def digest_kernel_run(latencies: Dict[int, float], failed: set,
                      n_queries: int) -> Dict:
    """Digest of one DES-kernel run (latency per query id + failed set)."""
    latency = np.full(n_queries, np.nan)
    for qid, value in latencies.items():
        latency[qid] = value
    failed_mask = np.zeros(n_queries, dtype=np.uint8)
    for qid in failed:
        failed_mask[qid] = 1
    return {
        "arrays": {
            "latency": _array_sha("latency", latency),
            "failed": _array_sha("failed", failed_mask),
        },
        "counters": {
            "n_queries": n_queries,
            "completed": len(latencies),
            "failed": len(failed),
            "latency_sum": _hex(float(np.nansum(latency))),
        },
        "spot": {"latency_head": [_hex(v) for v in latency[:4]]},
    }


# ----------------------------------------------------------------------
# Event-calendar scenarios
# ----------------------------------------------------------------------
_POLICIES = ("fifo", "priq", "t-edf", "tailguard", "wrr")

_FAULT_PLAN = FaultPlan(
    downtimes=(Downtime(2, 8.113, 13.391), Downtime(5, 22.207, 28.119)),
    crashes=CrashProcess(mtbf_ms=90.0, mttr_ms=5.0, server_ids=(0, 3),
                         seed=5),
    stragglers=(StragglerEpisode((7,), 18.183, 40.621, 2.5),),
    retry=RetryPolicy(max_retries=2, backoff_ms=0.531, timeout_ms=9.207),
    hedge=HedgePolicy(delay_ms=3.313, max_hedges=1),
)

_OVERLOAD = OverloadPolicy(
    admission=AdaptiveAdmissionPolicy(
        target_miss_ratio=0.08, window_tasks=400, window_ms=30.0,
        min_samples=60, decrease=0.6, increase=0.1, floor=0.05,
        hysteresis=0.2, ctl_interval_ms=1.0, max_latch_ms=50.0,
    ),
    degrade=DegradePolicy(min_coverage=0.5, pressure_alpha=0.1, safety=1.0),
    breakers=BreakerPolicy(miss_threshold=4, open_ms=5.113,
                           half_open_probes=2, close_successes=3),
)


def _small_workload(n_classes: int = 1,
                    fanouts: Tuple[int, ...] = (1, 4, 16)) -> Workload:
    masstree = get_workload("masstree")
    if n_classes == 1:
        mix = single_class_mix(ServiceClass("single", slo_ms=1.0))
    else:
        mix = uniform_class_mix([
            ServiceClass("class-I", slo_ms=0.9, priority=0),
            ServiceClass("class-II", slo_ms=1.4, priority=1),
        ])
    return Workload(
        name="golden",
        arrivals=PoissonArrivals(1.0),
        fanout=inverse_proportional_fanout(fanouts),
        class_mix=mix,
        service_time=masstree.service_time,
    )


def _base_config(policy: str, n_classes: int = 1, **kwargs) -> ClusterConfig:
    return ClusterConfig(
        n_servers=16,
        policy=policy,
        workload=_small_workload(n_classes).at_load(0.85, 16),
        n_queries=1500,
        seed=42,
        **kwargs,
    )


def _hetero_config() -> ClusterConfig:
    cdfs = {sid: Exponential(0.4 + 0.05 * (sid % 4)) for sid in range(8)}
    return ClusterConfig(
        n_servers=8,
        policy="tailguard",
        workload=_small_workload(fanouts=(1, 4, 8)).at_load(0.8, 8),
        n_queries=1200,
        seed=7,
        server_cdfs=cdfs,
    )


def _online_config() -> ClusterConfig:
    config = _base_config("tailguard")
    cdfs = config.resolve_server_cdfs()
    estimator = DeadlineEstimator(dict(cdfs), online_window=256,
                                  refresh_interval=200)
    return config.evolve(estimator=estimator)


CALENDAR_SCENARIOS: Dict[str, Callable[[], ClusterConfig]] = {}
for _policy in _POLICIES:
    CALENDAR_SCENARIOS[f"plain_{_policy}"] = (
        lambda p=_policy: _base_config(p, n_classes=2))
    CALENDAR_SCENARIOS[f"faults_{_policy}"] = (
        lambda p=_policy: _base_config(p, n_classes=2).with_faults(
            _FAULT_PLAN))
CALENDAR_SCENARIOS["overload_tailguard"] = (
    lambda: _base_config("tailguard").evolve(overload=_OVERLOAD))
CALENDAR_SCENARIOS["overload_fifo"] = (
    lambda: _base_config("fifo").evolve(overload=_OVERLOAD))
CALENDAR_SCENARIOS["overload_faults_tailguard"] = (
    lambda: _base_config("tailguard").with_faults(_FAULT_PLAN).evolve(
        overload=_OVERLOAD))
CALENDAR_SCENARIOS["hetero_tailguard"] = _hetero_config
CALENDAR_SCENARIOS["online_tailguard"] = _online_config
CALENDAR_SCENARIOS["admission_tailguard"] = (
    lambda: _base_config("tailguard").with_admission(
        DeadlineMissRatioAdmission(threshold=0.2, window_tasks=200,
                                   min_samples=50)))
CALENDAR_SCENARIOS["timeline_tailguard"] = (
    lambda: _base_config("tailguard").evolve(timeline_interval_ms=5.0))
CALENDAR_SCENARIOS["timeline_faults_fifo"] = (
    lambda: _base_config("fifo").with_faults(_FAULT_PLAN).evolve(
        timeline_interval_ms=5.0))

# Fault-heavy at rack scale: a 100-server cluster with a cluster-wide
# crash process, a straggler episode, retries, and hedging all active at
# once — the shape the perf-gate fault scenario measures, pinned here
# bit-exactly so the columnar fault calendar cannot drift.
_FAULT_HEAVY_PLAN = FaultPlan(
    crashes=CrashProcess(mtbf_ms=60.0, mttr_ms=4.0, seed=19),
    stragglers=(StragglerEpisode((3, 11, 47), 5.113, 35.407, 3.0),),
    retry=RetryPolicy(max_retries=2, backoff_ms=0.531, timeout_ms=9.207),
    hedge=HedgePolicy(delay_ms=3.313, max_hedges=1),
)

CALENDAR_SCENARIOS["fault_heavy_tailguard"] = lambda: ClusterConfig(
    n_servers=100,
    policy="tailguard",
    workload=_small_workload(n_classes=2, fanouts=(1, 8, 32)).at_load(
        0.7, 100),
    n_queries=2000,
    seed=23,
).with_faults(_FAULT_HEAVY_PLAN)

# Straggler-heavy adaptive hedging at rack scale: long overlapping
# slowdown episodes on a 100-server cluster with the replica layer's
# scored placement and budgeted AIMD delay controller active — pins the
# controller's entire decision sequence (launch/suppression tallies and
# the hedge-delay trace are part of the digest) on top of the per-query
# latencies.
_REPLICA_STRAGGLER_PLAN = FaultPlan(
    stragglers=(
        StragglerEpisode((3, 11, 47), 0.0, 60.0, 4.0),
        StragglerEpisode((8, 21, 60, 72), 30.0, 110.0, 3.0),
    ),
    retry=RetryPolicy(max_retries=2, backoff_ms=0.531, timeout_ms=9.207),
    hedge=HedgePolicy(delay_ms=1.113, max_hedges=2),
)
_REPLICA_POLICY = ReplicaPolicy(
    scorer=ReplicaScorer(tail_weight=0.5, tail_alpha=0.2),
    adaptive=AdaptiveHedgePolicy(
        window_hedges=50, min_samples=10, ctl_interval_ms=10.0,
        max_duplicate_fraction=0.2),
)
CALENDAR_SCENARIOS["replica_straggler_tailguard"] = lambda: ClusterConfig(
    n_servers=100,
    policy="tailguard",
    workload=_small_workload(n_classes=2, fanouts=(1, 8, 32)).at_load(
        0.7, 100),
    n_queries=2000,
    seed=29,
).with_faults(_REPLICA_STRAGGLER_PLAN).with_replicas(_REPLICA_POLICY)

# Pause-mode plans (no retry, no hedge): crashes pause servers instead
# of killing work, so the calendar runs without slots/timers at all —
# the specialized no-mitigation fast loop is pinned by these.
_PAUSE_PLAN = FaultPlan(
    downtimes=(Downtime(2, 8.113, 13.391),),
    crashes=CrashProcess(mtbf_ms=90.0, mttr_ms=5.0, server_ids=(0, 3),
                         seed=5),
    stragglers=(StragglerEpisode((7,), 18.183, 40.621, 2.5),),
)
CALENDAR_SCENARIOS["faults_pause_tailguard"] = (
    lambda: _base_config("tailguard", n_classes=2).with_faults(_PAUSE_PLAN))
CALENDAR_SCENARIOS["faults_pause_fifo"] = (
    lambda: _base_config("fifo", n_classes=2).with_faults(_PAUSE_PLAN))


# ----------------------------------------------------------------------
# DES-kernel scenarios (fixed pre-placed trace)
# ----------------------------------------------------------------------
_KERNEL_N_SERVERS = 8
_KERNEL_N_QUERIES = 300

_KERNEL_PLANS: Dict[str, Optional[FaultPlan]] = {
    "plain": None,
    "faults": FaultPlan(
        downtimes=(Downtime(2, 10.113, 17.391),),
        retry=RetryPolicy(max_retries=2, backoff_ms=0.531),
        hedge=HedgePolicy(delay_ms=3.313, max_hedges=1),
    ),
}


def _kernel_trace() -> List[QuerySpec]:
    rng = np.random.default_rng(9)
    classes = [
        ServiceClass("class-I", slo_ms=5.0, priority=0),
        ServiceClass("class-II", slo_ms=7.5, priority=1),
    ]
    specs = []
    now = 0.0
    for qid in range(_KERNEL_N_QUERIES):
        now += float(rng.exponential(0.35))
        fanout = int(rng.choice([1, 2, 4, 8]))
        servers = tuple(
            int(s) for s in rng.choice(_KERNEL_N_SERVERS, size=fanout,
                                       replace=False)
        )
        specs.append(QuerySpec(
            query_id=qid, arrival_time=now, fanout=fanout,
            service_class=classes[int(rng.integers(2))], servers=servers,
        ))
    return specs


def _kernel_cdfs():
    return {sid: Deterministic(0.5 + 0.1 * sid)
            for sid in range(_KERNEL_N_SERVERS)}


def run_kernel_scenario(
        policy_name: str, plan: Optional[FaultPlan],
        rpolicy: Optional[ReplicaPolicy] = None) -> Tuple[Dict, set]:
    specs = _kernel_trace()
    env = Environment()
    policy = get_policy(policy_name)
    cdfs = _kernel_cdfs()
    estimator = DeadlineEstimator(dict(cdfs))
    servers = [
        TaskServer(env, sid, policy, cdfs[sid], np.random.default_rng(sid))
        for sid in range(_KERNEL_N_SERVERS)
    ]
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(123))
    if plan is not None:
        install_faults(env, handler, servers, plan,
                       fault_horizon(specs[-1].arrival_time), cdfs)
    if rpolicy is not None:
        install_replicas(env, handler, servers, rpolicy)
    env.process(handler.drive(specs))
    env.run()
    latencies = {
        record.spec.query_id: record.latency for record in handler.completed
    }
    failed = {record.spec.query_id for record in handler.failed}
    return latencies, failed


KERNEL_SCENARIOS: Dict[
    str, Tuple[str, Optional[FaultPlan], Optional[ReplicaPolicy]]] = {}
for _policy in _POLICIES:
    for _plan_name, _plan in _KERNEL_PLANS.items():
        KERNEL_SCENARIOS[f"kernel_{_plan_name}_{_policy}"] = (
            _policy, _plan, None)

# The DES-kernel twin of ``replica_straggler_tailguard`` (same
# mechanisms on the fixed pre-placed trace): stragglers + retries +
# hedging with the adaptive replica controller installed.
_KERNEL_REPLICA_PLAN = FaultPlan(
    stragglers=(StragglerEpisode((1, 4), 0.0, 60.0, 3.0),),
    retry=RetryPolicy(max_retries=2, backoff_ms=0.531, timeout_ms=9.207),
    hedge=HedgePolicy(delay_ms=1.717, max_hedges=2),
)
for _policy in ("fifo", "tailguard"):
    KERNEL_SCENARIOS[f"kernel_replicas_{_policy}"] = (
        _policy, _KERNEL_REPLICA_PLAN, _REPLICA_POLICY)


# ----------------------------------------------------------------------
# Digest computation / regeneration
# ----------------------------------------------------------------------
def compute_digest(name: str) -> Dict:
    if name in CALENDAR_SCENARIOS:
        result = simulate(CALENDAR_SCENARIOS[name]())
        digest = digest_result(result)
        digest["path"] = "event-calendar"
    else:
        policy, plan, rpolicy = KERNEL_SCENARIOS[name]
        latencies, failed = run_kernel_scenario(policy, plan, rpolicy)
        digest = digest_kernel_run(latencies, failed, _KERNEL_N_QUERIES)
        digest["path"] = "des-kernel"
    digest["scenario"] = name
    return digest


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


ALL_SCENARIOS = sorted(CALENDAR_SCENARIOS) + sorted(KERNEL_SCENARIOS)


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_golden_master(name):
    path = golden_path(name)
    assert path.exists(), (
        f"missing golden digest {path}; regenerate with "
        f"`PYTHONPATH=src python {__file__} --regen`"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    actual = compute_digest(name)
    assert actual == expected, (
        f"scenario {name!r} diverged from its golden digest — the kernels "
        f"no longer reproduce the pinned behavior byte-for-byte.  If the "
        f"semantics change is intentional, regenerate with "
        f"`PYTHONPATH=src python {__file__} --regen` and review the diff."
    )


def test_corpus_has_no_orphan_digests():
    """Every checked-in digest corresponds to a live scenario."""
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(ALL_SCENARIOS)


def _regen() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for stale in GOLDEN_DIR.glob("*.json"):
        if stale.stem not in ALL_SCENARIOS:
            stale.unlink()
    for name in ALL_SCENARIOS:
        digest = compute_digest(name)
        golden_path(name).write_text(
            json.dumps(digest, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {golden_path(name)}")


if __name__ == "__main__":
    if "--regen" in sys.argv[1:]:
        _regen()
    else:
        print(__doc__)
        raise SystemExit("pass --regen to rewrite the golden corpus")
