"""Both simulation paths implement identical overload semantics.

Same discipline as test_equivalence.py / test_faults_equivalence.py —
one shared overloaded trace, pre-assigned servers, deterministic
per-server service times — now with the overload-protection layer on:
adaptive AIMD admission, partial-fanout degradation, per-server circuit
breakers, and CDF drift re-bootstrap, optionally combined with fault
plans.  The composable DES-kernel path (QueryHandler + TaskServer +
install_overload) and the overload-aware event calendar
(repro.cluster.faultsim) must make identical per-query decisions:
the same queries admitted / degraded / rejected / failed, the same
coverage fractions, and bit-identical latencies.

The controller is deliberately RNG-free and both paths draw each
query's nominal servers *before* consulting it, which is what makes
this exact comparison possible.
"""

import math

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.server import TaskServer
from repro.distributions import Deterministic
from repro.faults import (
    Downtime,
    FaultPlan,
    HedgePolicy,
    RetryPolicy,
    fault_horizon,
    install_faults,
)
from repro.overload import (
    AdaptiveAdmissionPolicy,
    BreakerPolicy,
    DegradePolicy,
    DriftPolicy,
    OverloadPolicy,
    install_overload,
)
from repro.sim import Environment
from repro.types import QuerySpec, ServiceClass

N_SERVERS = 8


def build_trace(n_queries=400, seed=9):
    """A deliberately overloaded trace: mean work per ms exceeds the
    cluster's service capacity, so the admission controller engages."""
    rng = np.random.default_rng(seed)
    classes = [
        ServiceClass("class-I", slo_ms=5.0, priority=0),
        ServiceClass("class-II", slo_ms=7.5, priority=1),
    ]
    specs = []
    now = 0.0
    for qid in range(n_queries):
        now += float(rng.exponential(0.35))
        fanout = int(rng.choice([1, 2, 4, 8]))
        servers = tuple(
            int(s) for s in rng.choice(N_SERVERS, size=fanout, replace=False)
        )
        specs.append(
            QuerySpec(
                query_id=qid,
                arrival_time=now,
                fanout=fanout,
                service_class=classes[int(rng.integers(2))],
                servers=servers,
            )
        )
    return specs


def server_cdfs():
    return {
        sid: Deterministic(0.5 + 0.1 * sid) for sid in range(N_SERVERS)
    }


#: Tight window/interval so the AIMD controller reacts within the short
#: trace; max_latch_ms exercises the anti-windup path.
ADM = AdaptiveAdmissionPolicy(
    target_miss_ratio=0.08,
    window_tasks=400,
    window_ms=30.0,
    min_samples=60,
    decrease=0.6,
    increase=0.1,
    floor=0.05,
    hysteresis=0.2,
    ctl_interval_ms=1.0,
    max_latch_ms=50.0,
)

#: The overload policies under test, from a single mechanism up to all
#: four.  Breaker open_ms uses an odd decimal so re-close instants never
#: tie exactly with completions (the two paths order different event
#: kinds at equal times by different rules).
OVERLOADS = {
    "admission": OverloadPolicy(admission=ADM),
    "degrade": OverloadPolicy(
        admission=ADM,
        degrade=DegradePolicy(min_coverage=0.5, pressure_alpha=0.1,
                              safety=1.0),
    ),
    "full": OverloadPolicy(
        admission=ADM,
        degrade=DegradePolicy(min_coverage=0.5, pressure_alpha=0.1,
                              safety=1.0),
        breakers=BreakerPolicy(miss_threshold=4, open_ms=5.113,
                               half_open_probes=2, close_successes=3),
        drift=DriftPolicy(threshold=0.5, window=40, check_interval=20),
    ),
}

#: Fault plans layered under the overload policies (times use odd
#: decimals, as in test_faults_equivalence.py).
PLANS = {
    "none": None,
    "pause": FaultPlan(
        downtimes=(
            Downtime(2, 10.113, 17.391),
            Downtime(5, 30.207, 38.119),
        ),
    ),
    "kill-retry": FaultPlan(
        downtimes=(
            Downtime(2, 10.113, 17.391),
            Downtime(5, 30.207, 38.119),
        ),
        retry=RetryPolicy(max_retries=3, backoff_ms=0.377),
    ),
}


def run_kernel_path(specs, policy_name, overload, plan):
    env = Environment()
    policy = get_policy(policy_name)
    cdfs = server_cdfs()
    estimator = DeadlineEstimator(dict(cdfs))
    servers = [
        TaskServer(env, sid, policy, cdfs[sid], np.random.default_rng(sid))
        for sid in range(N_SERVERS)
    ]
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(123))
    if plan is not None:
        install_faults(env, handler, servers, plan,
                       fault_horizon(specs[-1].arrival_time), cdfs)
    install_overload(env, handler, servers, overload)
    env.process(handler.drive(specs))
    env.run()
    outcomes = {}
    for record in handler.completed:
        outcomes[record.spec.query_id] = (
            "completed", record.latency, record.coverage, record.degraded,
        )
    for record in handler.rejected:
        outcomes[record.spec.query_id] = ("rejected", None, None, None)
    for record in handler.failed:
        outcomes[record.spec.query_id] = ("failed", None, None, None)
    return outcomes, handler.overload


def run_fast_path(specs, policy_name, overload, plan):
    config = ClusterConfig(
        n_servers=N_SERVERS,
        policy=policy_name,
        specs=specs,
        server_cdfs=server_cdfs(),
        warmup_fraction=0.0,
    ).with_overload(overload)
    if plan is not None:
        config = config.with_faults(plan)
    result = simulate(config)
    outcomes = {}
    for i, spec in enumerate(specs):
        if result.rejected[i]:
            outcomes[spec.query_id] = ("rejected", None, None, None)
        elif result.failed is not None and result.failed[i]:
            outcomes[spec.query_id] = ("failed", None, None, None)
        elif not math.isnan(result.latency[i]):
            outcomes[spec.query_id] = (
                "completed",
                result.latency[i],
                float(result.coverage[i]),
                bool(result.degraded[i]),
            )
    return outcomes, result


def assert_outcomes_agree(kernel, fast, context):
    assert set(kernel) == set(fast), context
    for qid in kernel:
        k_status, k_lat, k_cov, k_deg = kernel[qid]
        f_status, f_lat, f_cov, f_deg = fast[qid]
        assert k_status == f_status, (
            f"query {qid} status diverged under {context}: "
            f"{k_status} != {f_status}"
        )
        if k_status == "completed":
            assert k_lat == pytest.approx(f_lat, abs=1e-9), (
                f"query {qid} latency diverged under {context}"
            )
            assert k_cov == pytest.approx(f_cov, abs=1e-12), (
                f"query {qid} coverage diverged under {context}"
            )
            assert k_deg == f_deg, (
                f"query {qid} degraded flag diverged under {context}"
            )


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("overload_name", sorted(OVERLOADS))
@pytest.mark.parametrize("policy_name", ["fifo", "tailguard"])
def test_overload_paths_agree_exactly(policy_name, overload_name, plan_name):
    specs = build_trace()
    overload = OVERLOADS[overload_name]
    plan = PLANS[plan_name]
    kernel, kernel_ctrl = run_kernel_path(specs, policy_name, overload, plan)
    fast, result = run_fast_path(specs, policy_name, overload, plan)
    context = f"{policy_name}/{overload_name}/{plan_name}"
    assert_outcomes_agree(kernel, fast, context)
    # The controllers walked the same AIMD trajectory...
    assert kernel_ctrl.probability_trace == result.overload.probability_trace
    # ...and agree on the aggregate overload counters.
    assert kernel_ctrl.degraded_queries == result.overload.degraded_queries
    assert kernel_ctrl.shed_tasks == result.overload.shed_tasks
    assert kernel_ctrl.breaker_trips == result.overload.breaker_trips
    assert kernel_ctrl.cdf_rebootstraps == result.overload.cdf_rebootstraps
    assert result.degraded_queries == result.overload.degraded_queries
    assert result.shed_tasks == result.overload.shed_tasks


def test_overload_actually_bites():
    """Non-vacuity: under the overloaded trace the admission controller
    rejects real traffic, degradation serves partial queries, and the
    combined run with faults trips breakers — on both paths."""
    specs = build_trace()
    fast, result = run_fast_path(specs, "tailguard", OVERLOADS["full"],
                                 PLANS["kill-retry"])
    statuses = [status for status, *_ in fast.values()]
    assert statuses.count("rejected") > 0
    assert result.overload.degraded_queries > 0
    assert result.overload.breaker_trips > 0
    assert any(deg for status, _, _, deg in fast.values()
               if status == "completed")
    # The AIMD controller moved off its initial probability.
    assert len(result.overload.probability_trace) > 1
    assert result.overload.admit_probability < 1.0 or any(
        p < 1.0 for _, p in result.overload.probability_trace
    )


def test_admission_alone_matches_unprotected_when_idle():
    """A lightly loaded trace never reaches min_samples pressure: the
    overload layer admits everything and latencies match a run without
    any policy (the wrapper is pay-for-what-you-use)."""
    rng = np.random.default_rng(3)
    cls = ServiceClass("class-I", slo_ms=5.0, priority=0)
    specs = []
    now = 0.0
    for qid in range(120):
        now += float(rng.exponential(4.0))
        servers = tuple(
            int(s) for s in rng.choice(N_SERVERS, size=2, replace=False)
        )
        specs.append(QuerySpec(query_id=qid, arrival_time=now, fanout=2,
                               service_class=cls, servers=servers))
    protected, result = run_fast_path(specs, "tailguard",
                                      OVERLOADS["admission"], None)
    clean = simulate(ClusterConfig(
        n_servers=N_SERVERS,
        policy="tailguard",
        specs=specs,
        server_cdfs=server_cdfs(),
        warmup_fraction=0.0,
    ))
    assert all(status == "completed" for status, *_ in protected.values())
    for i, spec in enumerate(specs):
        assert protected[spec.query_id][1] == pytest.approx(
            clean.latency[i], abs=1e-9
        )


# ----------------------------------------------------------------------
# Regression: mitigation traffic must respect open breakers.
# ----------------------------------------------------------------------

HEDGE_PLAN = FaultPlan(
    downtimes=(
        Downtime(2, 10.113, 17.391),
        Downtime(5, 30.207, 38.119),
    ),
    retry=RetryPolicy(max_retries=3, backoff_ms=0.377, timeout_ms=6.551),
    hedge=HedgePolicy(delay_ms=2.131, max_hedges=1),
)

BREAKER_OPEN_MS = 5.113
BREAKERS_ONLY = OverloadPolicy(
    admission=ADM,
    breakers=BreakerPolicy(miss_threshold=4, open_ms=BREAKER_OPEN_MS,
                           half_open_probes=2, close_successes=3),
)


def _assert_mitigations_respect_breakers(events):
    """No retry requeue or hedge lands on a server whose breaker is in
    its OPEN phase (the first ``open_ms`` after the trip; afterwards the
    breaker is HALF_OPEN and probe traffic is legitimate).  Two exempt
    classes: dispatch-time redirects (they route a query's *initial*
    copy off a dead server and deliberately ignore breakers on both
    paths) and ``fallback``-marked retries (every up server was
    refusing, so the retry knowingly overrode breaker state rather than
    fail the slot).  A window is clipped at the server's next
    ``SERVER_RECOVER``: a crash-tripped breaker goes straight to
    HALF_OPEN on recovery, so probe traffic after that instant is
    legitimate even inside the nominal ``open_ms`` span."""
    from repro.obs.events import (
        BREAKER_OPEN,
        SERVER_RECOVER,
        TASK_HEDGE,
        TASK_RETRY,
    )

    recoveries = {}
    for event in events:
        if event.type == SERVER_RECOVER:
            recoveries.setdefault(event.server_id, []).append(event.time)
    windows = {}
    for event in events:
        if event.type == BREAKER_OPEN:
            end = event.time + BREAKER_OPEN_MS
            for recover_t in recoveries.get(event.server_id, ()):
                if event.time < recover_t < end:
                    end = recover_t
                    break
            windows.setdefault(event.server_id, []).append(
                (event.time, end))
    assert windows, "no breaker ever opened: the regression is vacuous"

    mitigations = [
        event for event in events
        if event.type in (TASK_RETRY, TASK_HEDGE)
        and (event.extra or {}).get("reason") != "redirect"
        and not (event.extra or {}).get("fallback")
    ]
    assert mitigations, "no retry/hedge fired: the regression is vacuous"

    offenders = [
        (event.type, event.server_id, event.time)
        for event in mitigations
        for start, end in windows.get(event.server_id, ())
        if start <= event.time < end
    ]
    assert not offenders, (
        f"mitigation traffic targeted open breakers: {offenders[:5]}"
    )
    # Non-vacuity: mitigations did fire *while* some breaker was open —
    # they just went elsewhere.
    assert any(
        start <= event.time < end
        for event in mitigations
        for wins in windows.values()
        for start, end in wins
    ), "no mitigation coincided with an open breaker window"


def test_retries_and_hedges_skip_open_breakers():
    """Regression (both paths): with an active OverloadPolicy, retry
    requeue and hedge placement exclude breaker-open servers.  Before
    the fix both paths picked the least-loaded *up* server, happily
    re-queuing onto the exact server the breaker had just isolated."""
    from repro.obs import TraceRecorder

    specs = build_trace()

    # Fast path (generic event-calendar loop, traced).
    recorder = TraceRecorder()
    config = ClusterConfig(
        n_servers=N_SERVERS,
        policy="tailguard",
        specs=specs,
        server_cdfs=server_cdfs(),
        warmup_fraction=0.0,
        recorder=recorder,
    ).with_overload(BREAKERS_ONLY).with_faults(HEDGE_PLAN)
    simulate(config)
    _assert_mitigations_respect_breakers(recorder.events)

    # DES-kernel path.
    env = Environment()
    policy = get_policy("tailguard")
    cdfs = server_cdfs()
    estimator = DeadlineEstimator(dict(cdfs))
    kernel_rec = TraceRecorder()
    servers = [
        TaskServer(env, sid, policy, cdfs[sid], np.random.default_rng(sid))
        for sid in range(N_SERVERS)
    ]
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(123), recorder=kernel_rec)
    install_faults(env, handler, servers, HEDGE_PLAN,
                   fault_horizon(specs[-1].arrival_time), cdfs,
                   recorder=kernel_rec)
    install_overload(env, handler, servers, BREAKERS_ONLY,
                     recorder=kernel_rec)
    env.process(handler.drive(specs))
    env.run()
    _assert_mitigations_respect_breakers(kernel_rec.events)
