"""Property tests for the replica-controller invariants (both kernels).

Two hard guarantees the adaptive hedge controller documents:

* **Redundancy budget** — with ``max_duplicate_fraction`` set, the
  hedged fraction of launched base copies never exceeds the budget, no
  matter how hard the fault plan pushes (the gate is checked before
  every launch, and ``base_launches`` only grows afterwards).
* **Clamp band** — every AIMD delay-factor adjustment stays inside
  ``[min_factor, max_factor]``, starting from the initial 1.0.

Both are asserted on the composable DES-kernel path and the
event-calendar fast path, under a crash-burst plan and a
straggler-heavy plan, across a range of budgets — the decision
machinery is one shared RNG-free :class:`ReplicaController`, but the
feed wiring differs per kernel and per fault mechanism, so each
combination exercises a distinct code path.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.server import TaskServer
from repro.distributions import Deterministic
from repro.faults import (
    CrashProcess,
    FaultPlan,
    HedgePolicy,
    RetryPolicy,
    StragglerEpisode,
    fault_horizon,
    install_faults,
)
from repro.replicas import AdaptiveHedgePolicy, ReplicaPolicy, install_replicas
from repro.sim import Environment
from repro.types import QuerySpec, ServiceClass

N_SERVERS = 8

#: Aggressive plans: hedges fire constantly, so only the budget gate
#: stands between the controller and unbounded duplicate load.
PLANS = {
    "crash-burst": FaultPlan(
        crashes=CrashProcess(mtbf_ms=25.0, mttr_ms=4.0,
                             server_ids=(0, 2, 5), seed=9),
        retry=RetryPolicy(max_retries=2, backoff_ms=0.4, timeout_ms=6.0),
        hedge=HedgePolicy(delay_ms=0.9, max_hedges=2),
    ),
    "stragglers": FaultPlan(
        stragglers=(
            StragglerEpisode((1, 4), 0.0, 80.0, 4.0),
            StragglerEpisode((6, 7), 40.0, 140.0, 3.0),
        ),
        hedge=HedgePolicy(delay_ms=0.7, max_hedges=2),
    ),
}


def build_trace(n_queries=500, seed=31):
    rng = np.random.default_rng(seed)
    gold = ServiceClass("gold", slo_ms=4.0)
    specs = []
    now = 0.0
    for qid in range(n_queries):
        now += float(rng.exponential(0.3))
        fanout = int(rng.choice([2, 4, 8]))
        servers = tuple(
            int(s) for s in rng.choice(N_SERVERS, size=fanout, replace=False)
        )
        specs.append(QuerySpec(query_id=qid, arrival_time=now,
                               fanout=fanout, service_class=gold,
                               servers=servers))
    return specs


def server_cdfs():
    return {sid: Deterministic(0.6 + 0.05 * sid) for sid in range(N_SERVERS)}


def run_kernel_path(specs, plan, rpolicy):
    env = Environment()
    policy = get_policy("tailguard")
    cdfs = server_cdfs()
    estimator = DeadlineEstimator(dict(cdfs))
    servers = [
        TaskServer(env, sid, policy, cdfs[sid], np.random.default_rng(sid))
        for sid in range(N_SERVERS)
    ]
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(123))
    install_faults(env, handler, servers, plan,
                   fault_horizon(specs[-1].arrival_time), cdfs)
    rc = install_replicas(env, handler, servers, rpolicy)
    env.process(handler.drive(specs))
    env.run()
    return rc


def run_fast_path(specs, plan, rpolicy):
    config = ClusterConfig(
        n_servers=N_SERVERS,
        policy="tailguard",
        specs=specs,
        server_cdfs=server_cdfs(),
        warmup_fraction=0.0,
    ).with_faults(plan).with_replicas(rpolicy)
    return simulate(config).replicas


RUNNERS = {"kernel": run_kernel_path, "fast": run_fast_path}


@pytest.mark.parametrize("budget", [0.05, 0.1, 0.25])
@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("kernel", sorted(RUNNERS))
def test_prop_duplicate_load_never_exceeds_budget(kernel, plan_name, budget):
    rpolicy = ReplicaPolicy(adaptive=AdaptiveHedgePolicy(
        window_hedges=30, min_samples=10, ctl_interval_ms=5.0,
        max_duplicate_fraction=budget))
    rc = RUNNERS[kernel](build_trace(), PLANS[plan_name], rpolicy)
    # The invariant proper: at every launch the gate required
    # hedges+1 <= budget * base_launches, and base_launches is
    # monotone, so the final fraction is bounded by the budget.
    assert rc.hedges_launched <= budget * rc.base_launches
    assert rc.duplicate_fraction() <= budget
    # Non-vacuity: the plan generated enough hedge demand that the
    # budget gate actually refused some duplicates.
    assert rc.hedges_launched > 0
    assert rc.suppressed_by["budget"] > 0


@pytest.mark.parametrize("band", [(0.5, 4.0), (0.75, 1.5)])
@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("kernel", sorted(RUNNERS))
def test_prop_delay_factor_stays_in_clamp_band(kernel, plan_name, band):
    min_factor, max_factor = band
    rpolicy = ReplicaPolicy(adaptive=AdaptiveHedgePolicy(
        window_hedges=20, min_samples=5, ctl_interval_ms=2.0,
        increase=1.7, decrease=0.3, hysteresis=0.05,
        min_factor=min_factor, max_factor=max_factor,
        max_duplicate_fraction=None))
    rc = RUNNERS[kernel](build_trace(), PLANS[plan_name], rpolicy)
    times = [t for t, _ in rc.delay_trace]
    factors = [f for _, f in rc.delay_trace]
    assert rc.delay_trace[0] == (0.0, 1.0)
    assert times == sorted(times)
    for factor in factors:
        assert min_factor <= factor <= max_factor, rc.delay_trace
    # Non-vacuity: the AIMD loop really ran (several adjustments) and
    # visited at least one band edge under these aggressive settings.
    assert len(factors) > 3, rc.delay_trace
    assert min(factors) == min_factor or max(factors) == max_factor
