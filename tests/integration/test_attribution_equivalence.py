"""Latency attribution is exact, additive, and path-independent.

The forensics layer's core claim: feeding either simulator's event
stream to :func:`repro.obs.attribution.attribute_queries` yields a
per-query decomposition that (a) satisfies the additivity invariant
bit-exactly, (b) reproduces the simulator's own recorded latency, and
(c) is identical — component by component, critical copy by critical
copy — between the composable DES-kernel path and the fault-aware
event calendar.  Same discipline as test_faults_equivalence.py: one
shared trace, pre-assigned servers, deterministic per-server service
times, fault times on odd decimals so no fault event ties a completion.
"""

import math

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.server import TaskServer
from repro.distributions import Deterministic
from repro.faults import (
    CrashProcess,
    Downtime,
    FaultPlan,
    HedgePolicy,
    RetryPolicy,
    StragglerEpisode,
    fault_horizon,
    install_faults,
)
from repro.obs import TraceRecorder
from repro.obs.attribution import (
    COMPONENTS,
    ClusterAttribution,
    attribute_queries,
)
from repro.obs.slo import SLOAccountant
from repro.overload import (
    AdaptiveAdmissionPolicy,
    DegradePolicy,
    OverloadPolicy,
    install_overload,
)
from repro.sim import Environment
from repro.types import QuerySpec, ServiceClass

N_SERVERS = 8

CLASSES = [
    ServiceClass("class-I", slo_ms=5.0, priority=0),
    ServiceClass("class-II", slo_ms=7.5, priority=1),
]


def build_trace(n_queries=300, seed=9, mean_gap=0.35):
    rng = np.random.default_rng(seed)
    specs = []
    now = 0.0
    for qid in range(n_queries):
        now += float(rng.exponential(mean_gap))
        fanout = int(rng.choice([1, 2, 4, 8]))
        servers = tuple(
            int(s) for s in rng.choice(N_SERVERS, size=fanout, replace=False)
        )
        specs.append(
            QuerySpec(
                query_id=qid,
                arrival_time=now,
                fanout=fanout,
                service_class=CLASSES[int(rng.integers(2))],
                servers=servers,
            )
        )
    return specs


def server_cdfs():
    return {
        sid: Deterministic(0.5 + 0.1 * sid) for sid in range(N_SERVERS)
    }


PLANS = {
    "pause": FaultPlan(
        downtimes=(
            Downtime(2, 10.113, 17.391),
            Downtime(5, 30.207, 38.119),
        ),
    ),
    "kill-retry": FaultPlan(
        downtimes=(
            Downtime(2, 10.113, 17.391),
            Downtime(5, 30.207, 38.119),
        ),
        retry=RetryPolicy(max_retries=3, backoff_ms=0.377),
    ),
    "hedge-straggler": FaultPlan(
        downtimes=(Downtime(1, 20.117, 26.393),),
        stragglers=(StragglerEpisode((3, 4), 40.109, 70.457, 3.0),),
        hedge=HedgePolicy(delay_ms=2.131, max_hedges=1),
    ),
    "everything": FaultPlan(
        downtimes=(Downtime(6, 15.359, 22.901),),
        crashes=CrashProcess(mtbf_ms=80.0, mttr_ms=6.0,
                             server_ids=(0, 3), seed=5),
        stragglers=(StragglerEpisode((7,), 35.183, 55.621, 2.5),),
        retry=RetryPolicy(max_retries=2, backoff_ms=0.531,
                          timeout_ms=9.207),
        hedge=HedgePolicy(delay_ms=3.313, max_hedges=1),
    ),
}


def run_kernel_path(specs, policy_name, plan, overload=None):
    rec = TraceRecorder()
    env = Environment()
    policy = get_policy(policy_name)
    cdfs = server_cdfs()
    estimator = DeadlineEstimator(dict(cdfs))
    servers = [
        TaskServer(env, sid, policy, cdfs[sid], np.random.default_rng(sid),
                   recorder=rec)
        for sid in range(N_SERVERS)
    ]
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(123), recorder=rec)
    if plan is not None:
        install_faults(env, handler, servers, plan,
                       fault_horizon(specs[-1].arrival_time), cdfs,
                       recorder=rec)
    if overload is not None:
        install_overload(env, handler, servers, overload, recorder=rec)
    env.process(handler.drive(specs))
    env.run()
    latencies = {
        record.spec.query_id: record.latency for record in handler.completed
    }
    return rec, latencies


def run_fast_path(specs, policy_name, plan, overload=None):
    rec = TraceRecorder()
    config = ClusterConfig(
        n_servers=N_SERVERS,
        policy=policy_name,
        specs=specs,
        server_cdfs=server_cdfs(),
        warmup_fraction=0.0,
    ).with_recorder(rec)
    if plan is not None:
        config = config.with_faults(plan)
    if overload is not None:
        config = config.with_overload(overload)
    result = simulate(config)
    latencies = {
        spec.query_id: result.latency[i]
        for i, spec in enumerate(specs)
        if not math.isnan(result.latency[i])
    }
    return rec, latencies, result


def assert_additive(attributions, context):
    for q in attributions:
        assert q.check_additivity(), (
            f"additivity broken for query {q.query_id} under {context}"
        )
        assert q.queueing_ms >= 0.0, (
            f"negative queueing for query {q.query_id} under {context}"
        )


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("policy_name", ["fifo", "tailguard"])
def test_attribution_agrees_across_paths(policy_name, plan_name):
    specs = build_trace()
    plan = PLANS[plan_name]
    context = f"{policy_name}/{plan_name}"

    kernel_rec, kernel_lat = run_kernel_path(specs, policy_name, plan)
    fast_rec, fast_lat, result = run_fast_path(specs, policy_name, plan)

    kernel_attr = {q.query_id: q for q in attribute_queries(kernel_rec)}
    fast_attr = {q.query_id: q for q in attribute_queries(fast_rec)}

    # Every completed query gets attributed, on both paths.
    assert set(kernel_attr) == set(kernel_lat)
    assert set(fast_attr) == set(fast_lat)
    assert set(kernel_attr) == set(fast_attr), context

    assert_additive(kernel_attr.values(), f"kernel/{context}")
    assert_additive(fast_attr.values(), f"fast/{context}")

    for qid, fq in fast_attr.items():
        kq = kernel_attr[qid]
        # The attributed latency IS the simulator's recorded latency.
        assert fq.latency_ms == fast_lat[qid]
        assert kq.latency_ms == kernel_lat[qid]
        # Cross-path: same critical copy, same decomposition.
        assert kq.critical_server == fq.critical_server, (
            f"query {qid} critical server diverged under {context}"
        )
        assert kq.critical_kind == fq.critical_kind, (
            f"query {qid} critical kind diverged under {context}"
        )
        for component in COMPONENTS:
            field = f"{component}_ms"
            assert getattr(kq, field) == pytest.approx(
                getattr(fq, field), abs=1e-9
            ), f"query {qid} {component} diverged under {context}"

    # Per-class SLO accounting sees identical good/bad streams.
    kernel_slo = SLOAccountant(CLASSES)
    kernel_slo.ingest(kernel_rec)
    fast_slo = SLOAccountant(CLASSES)
    fast_slo.ingest(fast_rec)
    for name in kernel_slo.budgets:
        assert kernel_slo.budgets[name].total == fast_slo.budgets[name].total
        assert kernel_slo.budgets[name].bad == fast_slo.budgets[name].bad


def test_mitigated_plans_attribute_mitigation_time():
    """Non-vacuity: under the everything plan some queries' critical
    copies are retries or hedges, and those components carry real time."""
    specs = build_trace()
    rec, _, _ = run_fast_path(specs, "tailguard", PLANS["everything"])
    attr = ClusterAttribution.from_recorder(rec)
    kinds = {q.critical_kind for q in attr.queries}
    assert "retry" in kinds or "hedge" in kinds
    mitigation_time = (sum(q.retry_delay_ms for q in attr.queries)
                      + sum(q.hedge_wait_ms for q in attr.queries))
    assert mitigation_time > 0.0
    table = attr.mechanism_table()
    assert sum(row["share"] for row in table.values()) == pytest.approx(1.0)


def test_degraded_queries_attributed_identically():
    """Overload degradation: both paths annotate the same queries as
    degraded with the same coverage, and additivity still holds."""
    specs = build_trace()  # overloaded enough for the controller to engage
    overload = OverloadPolicy(
        admission=AdaptiveAdmissionPolicy(
            target_miss_ratio=0.08, window_tasks=400, window_ms=30.0,
            min_samples=60, decrease=0.6, increase=0.1, floor=0.05,
            hysteresis=0.2, ctl_interval_ms=1.0, max_latch_ms=50.0,
        ),
        degrade=DegradePolicy(min_coverage=0.5, pressure_alpha=0.1,
                              safety=1.0),
    )
    kernel_rec, _ = run_kernel_path(specs, "tailguard", None, overload)
    fast_rec, _, result = run_fast_path(specs, "tailguard", None, overload)

    kernel_attr = {q.query_id: q for q in attribute_queries(kernel_rec)}
    fast_attr = {q.query_id: q for q in attribute_queries(fast_rec)}
    assert set(kernel_attr) == set(fast_attr)
    assert_additive(kernel_attr.values(), "kernel/degrade")
    assert_additive(fast_attr.values(), "fast/degrade")

    degraded = 0
    for qid, fq in fast_attr.items():
        kq = kernel_attr[qid]
        assert kq.degraded == fq.degraded
        assert kq.coverage == pytest.approx(fq.coverage, abs=1e-12)
        assert kq.latency_ms == pytest.approx(fq.latency_ms, abs=1e-9)
        degraded += fq.degraded
    # The scenario actually degrades traffic, and the count matches the
    # overload controller's own books.
    assert degraded > 0
    assert degraded == result.overload.degraded_queries
