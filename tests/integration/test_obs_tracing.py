"""End-to-end tracing: recorder wired through the cluster simulator
and the DES handler/server stack, reconciled against the result."""

import io
import math
from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import simulate
from repro.core.admission import DeadlineMissRatioAdmission
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.server import TaskServer
from repro.experiments.setups import paper_single_class_config
from repro.obs import (
    DEADLINE_MISS,
    QUERY_ARRIVE,
    QUERY_REJECTED,
    SERVER_BUSY,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_ENQUEUE,
    NullRecorder,
    TraceRecorder,
    chrome_trace_events,
    write_jsonl,
)
from repro.obs.export import read_jsonl
from repro.sim.engine import Environment
from repro.types import ServiceClass
from repro.workloads import (
    PoissonArrivals,
    Workload,
    generate_queries,
    inverse_proportional_fanout,
    single_class_mix,
)


def traced_config(recorder, *, load=0.85, n_queries=2_000, admission=None):
    config = paper_single_class_config(
        "masstree", 0.6, n_servers=100, n_queries=n_queries, seed=7,
    ).at_load(load)
    return replace(config, recorder=recorder, admission=admission)


class TestClusterTracing:
    @pytest.fixture(scope="class")
    def traced(self):
        recorder = TraceRecorder(sample_interval_ms=2.0)
        result = simulate(traced_config(recorder))
        return recorder, result

    def test_result_carries_recorder(self, traced):
        recorder, result = traced
        assert result.obs is recorder

    def test_deadline_miss_events_match_result(self, traced):
        recorder, result = traced
        counts = recorder.counts_by_type()
        assert counts.get(DEADLINE_MISS, 0) == result.tasks_missed_deadline
        assert counts[TASK_DEQUEUE] == result.tasks_total
        assert counts[TASK_COMPLETE] == result.tasks_total

    def test_counters_match_result(self, traced):
        recorder, result = traced
        n_queries = int(result.latency.size)
        assert recorder.counters["tasks_dequeued"] == result.tasks_total
        assert recorder.counters["queries_arrived"] == n_queries
        assert (recorder.counters["queries_completed"]
                == int((~result.rejected).sum()))

    def test_latency_histogram_brackets_exact_percentile(self, traced):
        recorder, result = traced
        latencies = np.sort(result.latency[~result.rejected])
        hist = recorder.latency_hist
        assert hist.total_count() == latencies.size
        # The histogram's conservative p99 must sit between the exact
        # ceil-rank sample and one bucket width above it.
        rank_sample = float(latencies[math.ceil(0.99 * latencies.size) - 1])
        estimate = hist.percentile(99.0)
        assert rank_sample <= estimate
        assert estimate <= rank_sample * 10 ** (1 / hist.buckets_per_decade) + 1e-9

    def test_events_are_time_ordered(self, traced):
        recorder, _ = traced
        times = [e.time for e in recorder.events]
        assert times == sorted(times)
        assert [e.seq for e in recorder.events] == list(range(len(times)))

    def test_series_sampled_at_interval(self, traced):
        recorder, _ = traced
        series = recorder.server_series()
        assert series is not None
        assert series.n_servers == 100
        assert np.allclose(np.diff(series.time), 2.0)
        assert (series.utilization >= 0).all()
        assert (series.utilization <= 1).all()
        assert (series.miss_ratio >= 0).all()
        assert (series.miss_ratio <= 1).all()
        assert (series.queue_len >= 0).all()

    def test_jsonl_roundtrip_preserves_miss_count(self, traced):
        recorder, result = traced
        buffer = io.StringIO()
        n = write_jsonl(recorder, buffer)
        assert n == len(recorder.events)
        parsed = read_jsonl(io.StringIO(buffer.getvalue()))
        misses = sum(1 for p in parsed if p["type"] == DEADLINE_MISS)
        assert misses == result.tasks_missed_deadline

    def test_chrome_trace_is_valid(self, traced):
        recorder, result = traced
        events = chrome_trace_events(recorder)
        for event in events:
            assert {"ph", "pid", "tid"} <= event.keys()
            if event["ph"] != "M":
                assert "ts" in event
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == result.tasks_total
        assert all(e["dur"] >= 0 for e in slices)
        # Slices live on server threads: tid = server_id + 1.
        assert {e["tid"] for e in slices} <= set(range(1, 101))

    def test_null_recorder_result_identical_to_untraced(self):
        base = simulate(traced_config(None))
        nulled = simulate(traced_config(NullRecorder()))
        assert nulled.obs is None
        assert np.array_equal(base.latency, nulled.latency, equal_nan=True)
        assert np.array_equal(base.rejected, nulled.rejected)
        assert base.tasks_missed_deadline == nulled.tasks_missed_deadline

    def test_traced_run_numbers_identical_to_untraced(self):
        """Tracing observes the run; it must never perturb it."""
        base = simulate(traced_config(None))
        traced = simulate(traced_config(TraceRecorder(sample_interval_ms=1.0)))
        assert np.array_equal(base.latency, traced.latency, equal_nan=True)
        assert base.tasks_missed_deadline == traced.tasks_missed_deadline


class TestAdmissionTracing:
    def test_rejection_events_match_result(self):
        recorder = TraceRecorder()
        admission = DeadlineMissRatioAdmission(
            0.02, window_tasks=5_000, min_samples=200)
        result = simulate(traced_config(
            recorder, load=1.3, admission=admission))
        n_rejected = int(result.rejected.sum())
        assert n_rejected > 0, "load 1.3 should trigger admission control"
        counts = recorder.counts_by_type()
        assert counts[QUERY_REJECTED] == n_rejected
        assert counts[QUERY_ARRIVE] == int(result.latency.size)
        assert recorder.counters["queries_rejected"] == n_rejected
        for event in recorder.events:
            if event.type == QUERY_REJECTED:
                assert 0.0 <= event.extra["miss_ratio"] <= 1.0

    def test_admission_decision_hook(self):
        admission = DeadlineMissRatioAdmission(
            0.5, window_tasks=10, window_ms=100.0, min_samples=10)
        decisions = []
        admission.decision_hook = (
            lambda admitted, now, ratio: decisions.append((admitted, ratio)))
        for i in range(10):
            admission.record_task(missed_deadline=True, now=float(i))
        assert admission.admit(now=10.0) is False
        assert decisions == [(False, 1.0)]
        assert admission.window_occupancy() == 1.0


class TestDESTracing:
    """Recorder through the DES QueryHandler/TaskServer stack."""

    def make_workload(self, masstree):
        return Workload(
            name="des-traced",
            arrivals=PoissonArrivals(2.0),
            fanout=inverse_proportional_fanout([1, 2, 4]),
            class_mix=single_class_mix(ServiceClass("single", slo_ms=1.0)),
            service_time=masstree.service_time,
        )

    def make_stack(self, recorder, workload):
        env = Environment()
        rng = np.random.default_rng(3)
        policy = get_policy("tailguard")
        servers = [
            TaskServer(env, sid, policy, workload.service_time,
                       rng.spawn(1)[0], recorder=recorder)
            for sid in range(4)
        ]
        estimator = DeadlineEstimator(workload.service_time, n_servers=4)
        handler = QueryHandler(env, servers, estimator, policy, rng,
                               recorder=recorder)
        return env, handler

    def test_server_and_handler_events(self, masstree):
        workload = self.make_workload(masstree)
        recorder = TraceRecorder()
        env, handler = self.make_stack(recorder, workload)
        rng = np.random.default_rng(11)
        specs = generate_queries(workload, 200, rng)
        env.process(handler.drive(specs))
        env.run()
        counts = recorder.counts_by_type()
        assert counts[QUERY_ARRIVE] == 200
        n_tasks = sum(spec.fanout for spec in specs)
        assert counts[TASK_DEQUEUE] == n_tasks
        assert counts[TASK_COMPLETE] == n_tasks
        for event in recorder.events:
            if event.type == TASK_ENQUEUE:
                # The enqueue carries the queue state it observed.
                assert event.extra["queue_len"] >= 1
                assert event.extra["reorder_depth"] >= 0
            if event.type == SERVER_BUSY:
                assert 0 <= event.server_id < 4

    def test_des_tracing_does_not_perturb(self, masstree):
        workload = self.make_workload(masstree)

        def run(recorder):
            env, handler = self.make_stack(recorder, workload)
            rng = np.random.default_rng(11)
            specs = generate_queries(workload, 200, rng)
            env.process(handler.drive(specs))
            env.run()
            return [record.latency for record in handler.completed]

        assert run(None) == run(TraceRecorder())
