"""Smoke tests: every registered experiment runs end-to-end in quick
mode (the cheapest ones run here; the expensive ones are exercised by
the benchmark suite, which asserts their shapes)."""

import pytest

from repro.experiments.registry import run_experiment

CHEAP_EXPERIMENTS = [
    "fig3",
    "table2",
    "fig9a",
    "fig6",
    "fig9",
    "ablation_admission_threshold",
    "ext_request_decomposition",
]


@pytest.mark.parametrize("name", CHEAP_EXPERIMENTS)
def test_quick_experiment_produces_rows(name):
    report = run_experiment(name, quick=True)
    assert report.experiment_id == name
    assert report.rows, f"{name} produced no rows"
    for row in report.rows:
        assert set(report.columns) <= set(row)


def test_quick_fig6_has_both_classes():
    report = run_experiment("fig6", quick=True)
    classes = {row["class_name"] for row in report.rows}
    assert classes == {"class-I", "class-II"}


def test_quick_fig9_covers_all_policies():
    report = run_experiment("fig9", quick=True)
    policies = {row["policy"] for row in report.rows}
    assert policies == {"tailguard", "fifo", "priq", "t-edf"}


def test_quick_request_decomposition_strategies():
    report = run_experiment("ext_request_decomposition", quick=True)
    strategies = {row["strategy"] for row in report.rows}
    assert strategies == {"equal", "proportional", "slo-split"}
