"""Stress the coroutine path with all features enabled at once.

Runs the composable model (kernel + handler + servers) with admission
control, online estimation and every policy on a moderately contended
workload, checking global invariants rather than exact values — a
crash/regression canary for feature interactions.
"""

import numpy as np
import pytest

from repro.core.admission import DeadlineMissRatioAdmission
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import POLICIES, get_policy
from repro.core.server import TaskServer
from repro.sim import Environment
from repro.types import QuerySpec, ServiceClass
from repro.workloads import get_workload

N_SERVERS = 10
N_QUERIES = 600


def build_specs(seed=17):
    rng = np.random.default_rng(seed)
    classes = [
        ServiceClass("gold", slo_ms=1.0, priority=0),
        ServiceClass("silver", slo_ms=2.0, priority=1),
    ]
    t = 0.0
    specs = []
    for qid in range(N_QUERIES):
        t += float(rng.exponential(0.08))
        fanout = int(rng.choice([1, 2, 5, 10]))
        specs.append(
            QuerySpec(qid, t, fanout, classes[int(rng.integers(2))])
        )
    return specs


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_all_features_together(policy_name):
    bench = get_workload("masstree")
    env = Environment()
    policy = get_policy(policy_name)
    rng = np.random.default_rng(3)
    servers = [
        TaskServer(env, sid, policy, bench.service_time, child)
        for sid, child in zip(range(N_SERVERS), rng.spawn(N_SERVERS))
    ]
    estimator = DeadlineEstimator(
        bench.service_time, n_servers=N_SERVERS,
        online_window=2_000, refresh_interval=500,
        server_groups={sid: "all" for sid in range(N_SERVERS)},
    )
    admission = DeadlineMissRatioAdmission(
        0.05, window_tasks=5_000, window_ms=50.0,
        min_samples=100, mode="duty-cycle",
    )
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(5), admission=admission)
    specs = build_specs()
    env.process(handler.drive(specs))
    env.run()

    # Conservation: every query either completed or was rejected.
    assert len(handler.completed) + len(handler.rejected) == N_QUERIES
    assert handler.inflight == 0
    # Latencies are sane.
    for record in handler.completed:
        assert record.latency > 0
    # Online estimator absorbed observations.
    assert estimator.server_cdf(0).total_updates > 0
    # Servers did real work and the books balance.
    total_tasks = sum(server.tasks_served for server in servers)
    expected_tasks = sum(r.spec.fanout for r in handler.completed)
    assert total_tasks == expected_tasks
