"""A one-shard federation is the bare cluster simulation, bit for bit.

The federation front tier generates specs from the federation seed with
the same spawn discipline the cluster kernel uses, and each shard run
derives all remaining randomness from its template's seed — so pushing
a single shard through ``simulate_federation`` must reproduce
``simulate`` exactly: same latencies, same rejection/measured masks,
same counters, same metadata.  This is the property that makes the
federation a *composition* of the golden-pinned kernels rather than a
new simulator.
"""

import numpy as np
import pytest

from repro import (
    CrashProcess,
    FaultPlan,
    FederationConfig,
    RetryPolicy,
    simulate,
    simulate_federation,
)
from repro.experiments.setups import paper_single_class_config


def _shard(policy: str, *, faults=None, seed: int = 7):
    config = paper_single_class_config(
        "masstree", 5.0, policy=policy, n_servers=120, n_queries=2_500,
        seed=seed,
    ).at_load(0.55)
    if faults is not None:
        config = config.with_faults(faults)
    return config


def _fault_plan():
    return FaultPlan(
        crashes=CrashProcess(mtbf_ms=800.0, mttr_ms=5.0, seed=3),
        retry=RetryPolicy(max_retries=2, backoff_ms=0.1),
    )


def _assert_bit_identical(fed_result, bare):
    merged = fed_result.merged
    assert np.array_equal(merged.latency, bare.latency, equal_nan=True)
    assert np.array_equal(merged.arrival, bare.arrival)
    assert np.array_equal(merged.fanout, bare.fanout)
    assert np.array_equal(merged.class_index, bare.class_index)
    assert np.array_equal(merged.rejected, bare.rejected)
    assert np.array_equal(merged.measured, bare.measured)
    if bare.failed is None:
        assert merged.failed is None
    else:
        assert np.array_equal(merged.failed, bare.failed)
    assert merged.classes == bare.classes
    assert merged.policy_name == bare.policy_name
    assert merged.n_servers == bare.n_servers
    assert merged.seed == bare.seed
    assert merged.offered_load == bare.offered_load
    assert merged.mean_service_ms == bare.mean_service_ms
    assert merged.tasks_total == bare.tasks_total
    assert merged.tasks_missed_deadline == bare.tasks_missed_deadline
    assert merged.busy_time_total == bare.busy_time_total
    assert merged.duration == bare.duration
    assert merged.tasks_failed == bare.tasks_failed
    assert merged.tasks_retried == bare.tasks_retried
    assert merged.server_failures == bare.server_failures


@pytest.mark.parametrize("policy", ["tailguard", "fifo"])
def test_one_shard_federation_matches_bare_cluster(policy):
    shard = _shard(policy)
    fed = FederationConfig((shard,), workload=shard.workload,
                           n_queries=shard.n_queries, seed=shard.seed)
    _assert_bit_identical(simulate_federation(fed), simulate(shard))


@pytest.mark.parametrize("policy", ["tailguard", "fifo"])
def test_one_shard_federation_matches_under_fault_plan(policy):
    shard = _shard(policy, faults=_fault_plan())
    fed = FederationConfig((shard,), workload=shard.workload,
                           n_queries=shard.n_queries, seed=shard.seed)
    _assert_bit_identical(simulate_federation(fed), simulate(shard))


@pytest.mark.parametrize("router", ["jsq", "p2c", "least-slack", "tenant"])
def test_one_shard_identity_holds_for_every_router(router):
    # With one shard every router has exactly one choice; the identity
    # must not depend on which policy nominally made it.
    shard = _shard("tailguard")
    fed = FederationConfig((shard,), workload=shard.workload,
                           n_queries=shard.n_queries, seed=shard.seed,
                           router=router)
    _assert_bit_identical(simulate_federation(fed), simulate(shard))


def test_one_shard_federation_matches_through_worker_pool():
    shard = _shard("tailguard")
    fed = FederationConfig((shard,), workload=shard.workload,
                           n_queries=shard.n_queries, seed=shard.seed)
    _assert_bit_identical(simulate_federation(fed, workers=2),
                          simulate(shard))


def test_multi_shard_merge_restores_global_arrival_order():
    shard = _shard("tailguard")
    fed = FederationConfig(
        tuple(shard.with_seed(s) for s in range(3)),
        workload=shard.workload, n_queries=3_000, seed=11,
    )
    outcome = simulate_federation(fed)
    merged = outcome.merged
    assert np.all(np.diff(merged.arrival) >= 0)
    assert merged.latency.size == 3_000
    assert merged.n_servers == fed.total_servers
    # Every query landed on exactly the shard the router recorded, and
    # the per-shard results cover the stream exactly once.
    counts = outcome.shard_query_counts()
    assert counts.sum() == 3_000
    for s, result in enumerate(outcome.shards):
        if result is None:
            assert counts[s] == 0
        else:
            assert result.latency.size == counts[s]
