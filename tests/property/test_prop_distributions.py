"""Property-based tests for the distribution substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    BoundedPareto,
    Exponential,
    LogNormal,
    PiecewiseLinearCDF,
    Uniform,
    Weibull,
)

positive = st.floats(min_value=0.05, max_value=50.0, allow_nan=False)
probabilities = st.floats(min_value=0.001, max_value=0.999)


@st.composite
def piecewise_cdfs(draw):
    """Random valid piecewise-linear CDFs.

    Knot times are kept at least 1e-6 apart so float operations on the
    knots (e.g. scaling) cannot collapse adjacent knots together.
    """
    from hypothesis import assume

    n_knots = draw(st.integers(min_value=2, max_value=8))
    raw_times = draw(
        st.lists(st.floats(min_value=0.0, max_value=100.0),
                 min_size=n_knots, max_size=n_knots, unique=True)
    )
    times = sorted(raw_times)
    assume(min(b - a for a, b in zip(times, times[1:])) > 1e-6)
    raw_probs = draw(
        st.lists(st.floats(min_value=0.0, max_value=1.0),
                 min_size=n_knots - 2, max_size=n_knots - 2)
    )
    probs = [0.0] + sorted(raw_probs) + [1.0]
    return PiecewiseLinearCDF(list(zip(times, probs)))


class TestPiecewiseProperties:
    @given(piecewise_cdfs(), probabilities)
    @settings(max_examples=200)
    def test_quantile_cdf_consistency(self, dist, q):
        """cdf(quantile(q)) >= q, with equality off flat regions."""
        x = dist.quantile(q)
        assert dist.cdf(x) >= q - 1e-9

    @given(piecewise_cdfs())
    def test_mean_within_support(self, dist):
        lo, hi = dist.support()
        assert lo - 1e-9 <= dist.mean() <= hi + 1e-9

    @given(piecewise_cdfs())
    def test_variance_non_negative(self, dist):
        assert dist.variance() >= -1e-9

    @given(piecewise_cdfs(), probabilities, probabilities)
    def test_quantile_monotone(self, dist, q1, q2):
        lo, hi = sorted([q1, q2])
        assert dist.quantile(lo) <= dist.quantile(hi) + 1e-12

    @given(piecewise_cdfs(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50)
    def test_samples_within_support(self, dist, seed):
        rng = np.random.default_rng(seed)
        samples = dist.sample(rng, 100)
        lo, hi = dist.support()
        assert np.all(samples >= lo - 1e-9)
        assert np.all(samples <= hi + 1e-9)

    @given(piecewise_cdfs(), st.floats(min_value=0.1, max_value=10.0))
    def test_scaling_scales_mean(self, dist, factor):
        scaled = dist.scaled(factor)
        assert np.isclose(scaled.mean(), dist.mean() * factor,
                          rtol=1e-9, atol=1e-9)


class TestAnalyticInverses:
    @given(positive, probabilities)
    def test_exponential_roundtrip(self, rate, q):
        d = Exponential(rate)
        assert np.isclose(d.cdf(d.quantile(q)), q, atol=1e-9)

    @given(positive, positive, probabilities)
    def test_weibull_roundtrip(self, shape, scale, q):
        d = Weibull(shape, scale)
        assert np.isclose(d.cdf(d.quantile(q)), q, atol=1e-9)

    @given(st.floats(min_value=-2.0, max_value=2.0),
           st.floats(min_value=0.1, max_value=2.0), probabilities)
    def test_lognormal_roundtrip(self, mu, sigma, q):
        d = LogNormal(mu, sigma)
        assert np.isclose(d.cdf(d.quantile(q)), q, atol=5e-4)

    @given(st.floats(min_value=0.5, max_value=3.0),
           st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=2.0, max_value=1000.0), probabilities)
    def test_bounded_pareto_roundtrip(self, shape, low, spread, q):
        d = BoundedPareto(shape, low, low * spread)
        assert np.isclose(d.cdf(d.quantile(q)), q, atol=1e-9)

    @given(st.floats(min_value=0.0, max_value=5.0),
           st.floats(min_value=0.1, max_value=5.0), probabilities)
    def test_uniform_roundtrip(self, low, width, q):
        d = Uniform(low, low + width)
        assert np.isclose(d.cdf(d.quantile(q)), q, atol=1e-12)

    @given(positive)
    def test_exponential_mean_integration_agrees(self, rate):
        """The generic quantile-integration mean matches closed form."""
        from repro.distributions.base import Distribution

        d = Exponential(rate)
        generic = Distribution.mean(d)
        assert np.isclose(generic, 1.0 / rate, rtol=5e-3)
