"""Property-based tests for the adaptive admission controller.

Satellite guarantees of the overload subsystem: the AIMD admit
probability is a true probability under *any* feed sequence, and the
controller always recovers — after an overload burst stops (including
one driven by a seeded CrashProcess), admission returns to 1.0 within
a bounded quiet period instead of latching shut.  The recovery
property is checked on both simulation paths with the same seeds,
which double-checks that the AIMD trajectory itself is path-invariant.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, simulate
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.server import TaskServer
from repro.distributions import Deterministic
from repro.faults import CrashProcess, FaultPlan, fault_horizon, install_faults
from repro.overload import (
    AdaptiveAdmission,
    AdaptiveAdmissionPolicy,
    OverloadPolicy,
    install_overload,
)
from repro.sim import Environment
from repro.types import QuerySpec, ServiceClass

#: One task outcome: (inter-arrival gap in ms, missed_deadline).
outcome = st.tuples(st.floats(min_value=0.0, max_value=20.0,
                              allow_nan=False, allow_infinity=False),
                    st.booleans())


def build_controller(**kwargs):
    defaults = dict(target_miss_ratio=0.1, window_tasks=200,
                    window_ms=30.0, min_samples=10, decrease=0.5,
                    increase=0.1, floor=0.05, hysteresis=0.25,
                    ctl_interval_ms=1.0, max_latch_ms=50.0)
    defaults.update(kwargs)
    return AdaptiveAdmission(**defaults)


class TestProbabilityBounded:
    @given(events=st.lists(outcome, max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_probability_stays_in_unit_interval(self, events):
        """Under any time-ordered outcome/decision interleaving the
        admit probability is a probability at every step, and the
        adjustment trace is time-ordered."""
        ctl = build_controller()
        now = 0.0
        for gap, missed in events:
            now += gap
            ctl.record_task(missed, now)
            ctl.admit(now)
            assert 0.0 <= ctl.admit_probability <= 1.0
        assert all(0.0 <= p <= 1.0 for _, p in ctl.probability_trace)
        times = [t for t, _ in ctl.probability_trace]
        assert times == sorted(times)
        assert ctl.probability_trace[0] == (0.0, 1.0)

    @given(events=st.lists(outcome, max_size=300),
           floor=st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=100, deadline=None)
    def test_floor_is_respected(self, events, floor):
        ctl = build_controller(floor=floor)
        now = 0.0
        for gap, missed in events:
            now += gap
            ctl.record_task(missed, now)
            ctl.admit(now)
            assert ctl.admit_probability >= floor


class TestRecovery:
    @given(burst=st.integers(min_value=20, max_value=400))
    @settings(max_examples=50, deadline=None)
    def test_recovers_after_all_miss_burst(self, burst):
        """However deep the overload burst, once outcomes turn clean the
        probability climbs back to exactly 1.0 within the bounded number
        of control intervals the additive increase implies."""
        ctl = build_controller()
        now = 0.0
        for _ in range(burst):
            now += 0.1
            ctl.record_task(True, now)
            ctl.admit(now)
        assert ctl.admit_probability < 1.0
        # The recovery bound: one time window (30 ms) for the burst
        # misses to age out, then ceil((1 - floor)/increase) control
        # intervals to climb from the floor.  Each outer iteration below
        # advances 1.25 ms, so 24 iterations flush the window and 10
        # more climb; a small margin on top.
        intervals = 24 + int(np.ceil((1.0 - 0.05) / 0.1)) + 4
        for _ in range(intervals):
            for _ in range(5):
                now += 0.25
                ctl.record_task(False, now)
            ctl.admit(now)
        assert ctl.admit_probability == 1.0

    @given(burst=st.integers(min_value=20, max_value=400))
    @settings(max_examples=50, deadline=None)
    def test_max_latch_unlatches_silent_controller(self, burst):
        """If the burst is followed by *silence* (no outcomes at all —
        the drained-overload regime), the max-latch flush still recovers
        admission within one latch window plus the climb time."""
        ctl = build_controller()
        now = 0.0
        for _ in range(burst):
            now += 0.1
            ctl.record_task(True, now)
            ctl.admit(now)
        assert ctl.miss_ratio() > 0.0
        # One decision past the latch window flushes the stale misses;
        # subsequent decisions climb back without any new outcomes.
        now += 51.0
        intervals = int(np.ceil((1.0 - 0.05) / 0.1)) + 2
        for _ in range(intervals):
            now += 1.5
            ctl.admit(now)
        assert ctl.miss_ratio() == 0.0
        assert ctl.admit_probability == 1.0


# ----------------------------------------------------------------------
# Both simulation paths, same seeds (satellite 3)
# ----------------------------------------------------------------------
N_SERVERS = 6

POLICY = OverloadPolicy(admission=AdaptiveAdmissionPolicy(
    target_miss_ratio=0.08, window_tasks=300, window_ms=25.0,
    min_samples=40, decrease=0.6, increase=0.1, floor=0.05,
    hysteresis=0.2, ctl_interval_ms=1.0, max_latch_ms=40.0,
))


def burst_then_quiet_trace(seed):
    """A hard overload burst (aggravated by crashes) followed by a long
    quiet tail of sparse arrivals for the controller to recover in."""
    rng = np.random.default_rng(seed)
    cls = ServiceClass("class-I", slo_ms=4.0, priority=0)
    specs = []
    now = 0.0
    for qid in range(220):
        now += float(rng.exponential(0.2 if qid < 150 else 6.0))
        fanout = int(rng.choice([2, 4]))
        servers = tuple(
            int(s) for s in rng.choice(N_SERVERS, size=fanout, replace=False)
        )
        specs.append(QuerySpec(query_id=qid, arrival_time=now, fanout=fanout,
                               service_class=cls, servers=servers))
    return specs


def crash_plan(seed):
    #: Crashes only during the burst window (horizon ends before the
    #: quiet tail is over); short repairs keep queries completing.
    return FaultPlan(crashes=CrashProcess(mtbf_ms=15.0, mttr_ms=0.7,
                                          server_ids=(0, 1), seed=seed))


def kernel_trace(specs, plan):
    env = Environment()
    policy = get_policy("tailguard")
    cdfs = {sid: Deterministic(0.5 + 0.1 * sid) for sid in range(N_SERVERS)}
    estimator = DeadlineEstimator(dict(cdfs))
    servers = [
        TaskServer(env, sid, policy, cdfs[sid], np.random.default_rng(sid))
        for sid in range(N_SERVERS)
    ]
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(123))
    install_faults(env, handler, servers, plan,
                   fault_horizon(specs[-1].arrival_time), cdfs)
    ctrl = install_overload(env, handler, servers, POLICY)
    env.process(handler.drive(specs))
    env.run()
    return ctrl


def fast_trace(specs, plan):
    config = ClusterConfig(
        n_servers=N_SERVERS,
        policy="tailguard",
        specs=specs,
        server_cdfs={sid: Deterministic(0.5 + 0.1 * sid)
                     for sid in range(N_SERVERS)},
        warmup_fraction=0.0,
    ).with_overload(POLICY).with_faults(plan)
    return simulate(config).overload


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_recovery_after_crash_burst_on_both_paths(seed):
    """Under a crash-aggravated overload burst, on both paths with the
    same seeds: the probability stays in [0, 1] throughout, dips below
    1.0 during the burst, returns to exactly 1.0 by the end of the
    quiet tail — and the two paths walk the same AIMD trajectory."""
    specs = burst_then_quiet_trace(seed)
    plan = crash_plan(seed)
    kernel = kernel_trace(specs, plan)
    fast = fast_trace(specs, plan)
    for ctrl in (kernel, fast):
        probs = [p for _, p in ctrl.probability_trace]
        assert all(0.0 <= p <= 1.0 for p in probs)
        assert min(probs) < 1.0, "burst never engaged the controller"
        assert ctrl.admit_probability == 1.0, "controller failed to recover"
    assert kernel.probability_trace == fast.probability_trace
