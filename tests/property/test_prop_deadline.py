"""Property tests for deadline estimation (Eq. 5-6) invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deadline import DeadlineEstimator
from repro.distributions import (
    Exponential,
    QuantileInversionMemo,
    iid_max_quantile,
)
from repro.types import ServiceClass
from repro.workloads import get_workload

slos = st.floats(min_value=0.1, max_value=100.0)
fanouts = st.integers(min_value=1, max_value=100)
arrivals = st.floats(min_value=0.0, max_value=1e6)


def make_estimator():
    return DeadlineEstimator(get_workload("masstree").service_time,
                             n_servers=100)


class TestDeadlineProperties:
    @given(slos, fanouts, arrivals)
    @settings(max_examples=200)
    def test_deadline_decomposition(self, slo, fanout, arrival):
        """t_D − t_0 equals the budget, independent of arrival time."""
        estimator = make_estimator()
        cls = ServiceClass("c", slo)
        budget = estimator.budget(cls, fanout=fanout)
        deadline = estimator.deadline(arrival, cls, fanout=fanout)
        assert np.isclose(deadline - arrival, budget, atol=1e-6)

    @given(slos, st.integers(min_value=1, max_value=99))
    @settings(max_examples=100)
    def test_budget_monotone_in_fanout(self, slo, fanout):
        estimator = make_estimator()
        cls = ServiceClass("c", slo)
        assert (estimator.budget(cls, fanout=fanout + 1)
                <= estimator.budget(cls, fanout=fanout) + 1e-12)

    @given(st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=0.01, max_value=50.0), fanouts)
    @settings(max_examples=100)
    def test_budget_monotone_in_slo(self, slo, extra, fanout):
        """A looser SLO can only enlarge the budget, by exactly the
        SLO difference (Eq. 5 is affine in the SLO)."""
        estimator = make_estimator()
        tight = ServiceClass("tight", slo)
        loose = ServiceClass("loose", slo + extra)
        difference = (estimator.budget(loose, fanout=fanout)
                      - estimator.budget(tight, fanout=fanout))
        assert np.isclose(difference, extra, atol=1e-9)

    @given(fanouts, st.floats(min_value=50.0, max_value=99.9))
    @settings(max_examples=100)
    def test_unloaded_tail_monotone_in_percentile(self, fanout, percentile):
        estimator = make_estimator()
        low = estimator.unloaded_tail(percentile, fanout=fanout)
        high = estimator.unloaded_tail(min(percentile + 0.05, 99.99),
                                       fanout=fanout)
        assert low <= high + 1e-12

    @given(fanouts)
    @settings(max_examples=50)
    def test_cache_consistency(self, fanout):
        """Cached and freshly computed tails agree."""
        shared = Exponential(3.0)
        cached = DeadlineEstimator(shared, n_servers=100)
        first = cached.unloaded_tail(99.0, fanout=fanout)
        second = cached.unloaded_tail(99.0, fanout=fanout)
        fresh = DeadlineEstimator(shared, n_servers=100).unloaded_tail(
            99.0, fanout=fanout
        )
        assert first == second == fresh


class TestQuantileMemoProperties:
    """The memoized quantile-inversion layer must be transparent: a
    memo hit returns exactly what an uncached estimator computes, and
    no estimate change (online refresh, rebootstrap) can leak a value
    derived from superseded CDFs."""

    @given(fanouts, slos)
    @settings(max_examples=100)
    def test_budget_memo_matches_uncached(self, fanout, slo):
        shared = Exponential(3.0)
        estimator = DeadlineEstimator(shared, n_servers=100)
        cls = ServiceClass("c", slo)
        warm = estimator.budget(cls, fanout=fanout)   # populates the memo
        hit = estimator.budget(cls, fanout=fanout)    # served from it
        fresh = DeadlineEstimator(shared, n_servers=100).budget(
            cls, fanout=fanout
        )
        assert warm == hit == fresh

    @given(st.integers(min_value=1, max_value=4),
           st.lists(st.floats(min_value=0.1, max_value=20.0),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_online_refresh_never_serves_stale(self, fanout, samples):
        """Once an online refresh invalidates, budgets come from the
        updated CDFs — never from the pre-update memo entries."""
        estimator = DeadlineEstimator(
            Exponential(3.0), n_servers=4, online_window=64,
            refresh_interval=len(samples),
            server_groups={sid: "g" for sid in range(4)},
        )
        cls = ServiceClass("c", 50.0, percentile=99.0)
        estimator.budget(cls, fanout=fanout)  # warm the memo
        for value in samples:
            estimator.record(0, value)
        # len(samples) records == refresh_interval, so the caches were
        # invalidated; the truth is the current online CDF, uncached.
        expected = 50.0 - iid_max_quantile(
            estimator.server_cdf(0), fanout, 0.99
        )
        assert estimator.budget(cls, fanout=fanout) == expected

    @given(st.integers(min_value=1, max_value=3),
           st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=50)
    def test_rebootstrap_never_serves_stale(self, fanout, rate):
        estimator = DeadlineEstimator(Exponential(3.0), n_servers=3)
        cls = ServiceClass("c", 50.0, percentile=99.0)
        estimator.budget(cls, fanout=fanout)  # warm the memo
        replacement = Exponential(rate)
        for sid in range(3):
            estimator.rebootstrap(sid, replacement)
        expected = 50.0 - iid_max_quantile(replacement, fanout, 0.99)
        assert estimator.budget(cls, fanout=fanout) == expected

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=128))
    @settings(max_examples=100)
    def test_memo_version_guard_and_bound(self, max_entries, n_keys):
        memo = QuantileInversionMemo(max_entries=max_entries)
        for key in range(n_keys):
            memo.put(key, float(key))
            assert memo.get(key) == float(key)
        assert len(memo) <= max_entries
        memo.invalidate()
        # Entries from an older version are unservable, full stop.
        assert all(memo.get(key) is None for key in range(n_keys))
        memo.put("fresh", 1.0)
        assert memo.get("fresh") == 1.0
