"""Property tests for deadline estimation (Eq. 5-6) invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deadline import DeadlineEstimator
from repro.distributions import Exponential
from repro.types import ServiceClass
from repro.workloads import get_workload

slos = st.floats(min_value=0.1, max_value=100.0)
fanouts = st.integers(min_value=1, max_value=100)
arrivals = st.floats(min_value=0.0, max_value=1e6)


def make_estimator():
    return DeadlineEstimator(get_workload("masstree").service_time,
                             n_servers=100)


class TestDeadlineProperties:
    @given(slos, fanouts, arrivals)
    @settings(max_examples=200)
    def test_deadline_decomposition(self, slo, fanout, arrival):
        """t_D − t_0 equals the budget, independent of arrival time."""
        estimator = make_estimator()
        cls = ServiceClass("c", slo)
        budget = estimator.budget(cls, fanout=fanout)
        deadline = estimator.deadline(arrival, cls, fanout=fanout)
        assert np.isclose(deadline - arrival, budget, atol=1e-6)

    @given(slos, st.integers(min_value=1, max_value=99))
    @settings(max_examples=100)
    def test_budget_monotone_in_fanout(self, slo, fanout):
        estimator = make_estimator()
        cls = ServiceClass("c", slo)
        assert (estimator.budget(cls, fanout=fanout + 1)
                <= estimator.budget(cls, fanout=fanout) + 1e-12)

    @given(st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=0.01, max_value=50.0), fanouts)
    @settings(max_examples=100)
    def test_budget_monotone_in_slo(self, slo, extra, fanout):
        """A looser SLO can only enlarge the budget, by exactly the
        SLO difference (Eq. 5 is affine in the SLO)."""
        estimator = make_estimator()
        tight = ServiceClass("tight", slo)
        loose = ServiceClass("loose", slo + extra)
        difference = (estimator.budget(loose, fanout=fanout)
                      - estimator.budget(tight, fanout=fanout))
        assert np.isclose(difference, extra, atol=1e-9)

    @given(fanouts, st.floats(min_value=50.0, max_value=99.9))
    @settings(max_examples=100)
    def test_unloaded_tail_monotone_in_percentile(self, fanout, percentile):
        estimator = make_estimator()
        low = estimator.unloaded_tail(percentile, fanout=fanout)
        high = estimator.unloaded_tail(min(percentile + 0.05, 99.99),
                                       fanout=fanout)
        assert low <= high + 1e-12

    @given(fanouts)
    @settings(max_examples=50)
    def test_cache_consistency(self, fanout):
        """Cached and freshly computed tails agree."""
        shared = Exponential(3.0)
        cached = DeadlineEstimator(shared, n_servers=100)
        first = cached.unloaded_tail(99.0, fanout=fanout)
        second = cached.unloaded_tail(99.0, fanout=fanout)
        fresh = DeadlineEstimator(shared, n_servers=100).unloaded_tail(
            99.0, fanout=fanout
        )
        assert first == second == fresh
