"""Property tests for the weighted round-robin queue."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import WeightedRoundRobinTaskQueue

lane_ids = st.integers(min_value=0, max_value=3)
weights = st.dictionaries(
    lane_ids, st.floats(min_value=0.1, max_value=10.0),
    min_size=1, max_size=4,
)


class TestWRRProperties:
    @given(weights, st.lists(lane_ids, min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_conservation(self, weight_map, lanes):
        queue = WeightedRoundRobinTaskQueue(weight_map)
        for i, lane in enumerate(lanes):
            queue.push(i, (lane, 0.0))
        popped = {queue.pop() for _ in range(len(lanes))}
        assert popped == set(range(len(lanes)))
        assert len(queue) == 0

    @given(weights, st.lists(lane_ids, min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_fifo_within_lane(self, weight_map, lanes):
        queue = WeightedRoundRobinTaskQueue(weight_map)
        for i, lane in enumerate(lanes):
            queue.push((lane, i), (lane, 0.0))
        per_lane_sequences = {}
        for _ in range(len(lanes)):
            lane, index = queue.pop()
            per_lane_sequences.setdefault(lane, []).append(index)
        for sequence in per_lane_sequences.values():
            assert sequence == sorted(sequence)

    @given(st.floats(min_value=0.5, max_value=8.0),
           st.integers(min_value=50, max_value=200))
    @settings(max_examples=50)
    def test_share_ratio_long_run(self, ratio, n_per_lane):
        """With both lanes backlogged, service shares track weights."""
        queue = WeightedRoundRobinTaskQueue({0: ratio, 1: 1.0})
        for i in range(n_per_lane):
            queue.push(("a", i), (0, 0.0))
            queue.push(("b", i), (1, 0.0))
        # Pop while both lanes are non-empty.
        drained = []
        while len(queue) > 0:
            item = queue.pop()
            drained.append(item[0])
            remaining_a = sum(1 for x in drained if x == "a")
            if remaining_a == n_per_lane or (len(drained) - remaining_a
                                             == n_per_lane):
                break
        count_a = drained.count("a")
        count_b = drained.count("b")
        if count_b > 10:
            observed = count_a / count_b
            assert abs(observed - ratio) / ratio < 0.25
