"""Property tests on the cluster simulator itself.

Hypothesis generates small random traces with deterministic service
times, where strong invariants can be checked exactly: completeness,
latency lower bounds, work conservation, FIFO ordering per server, and
policy-independence of total work.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, simulate
from repro.distributions import Deterministic
from repro.types import QuerySpec, ServiceClass

N_SERVERS = 4
SERVICE_MS = 1.0
GOLD = ServiceClass("gold", slo_ms=50.0)


@st.composite
def traces(draw):
    """Small random traces with pre-assigned servers."""
    n = draw(st.integers(min_value=1, max_value=25))
    specs = []
    t = 0.0
    for qid in range(n):
        t += draw(st.floats(min_value=0.01, max_value=3.0))
        fanout = draw(st.integers(min_value=1, max_value=N_SERVERS))
        servers = tuple(
            draw(
                st.lists(st.integers(min_value=0, max_value=N_SERVERS - 1),
                         min_size=fanout, max_size=fanout, unique=True)
            )
        )
        specs.append(QuerySpec(qid, t, fanout, GOLD, servers=servers))
    return specs


def run(specs, policy="fifo"):
    config = ClusterConfig(
        n_servers=N_SERVERS,
        policy=policy,
        specs=specs,
        server_cdfs={s: Deterministic(SERVICE_MS) for s in range(N_SERVERS)},
        warmup_fraction=0.0,
    )
    return simulate(config)


class TestSimulationInvariants:
    @given(traces())
    @settings(max_examples=100, deadline=None)
    def test_every_query_completes(self, specs):
        result = run(specs)
        assert not np.isnan(result.latency).any()

    @given(traces())
    @settings(max_examples=100, deadline=None)
    def test_latency_at_least_service_time(self, specs):
        result = run(specs)
        assert np.all(result.latency >= SERVICE_MS - 1e-9)

    @given(traces())
    @settings(max_examples=100, deadline=None)
    def test_work_conservation_exact(self, specs):
        result = run(specs)
        total_tasks = sum(spec.fanout for spec in specs)
        assert result.tasks_total == total_tasks
        assert result.busy_time_total == total_tasks * SERVICE_MS

    @given(traces())
    @settings(max_examples=100, deadline=None)
    def test_total_work_policy_independent(self, specs):
        fifo = run(specs, "fifo")
        tailguard = run(specs, "tailguard")
        assert fifo.busy_time_total == tailguard.busy_time_total
        # Deterministic equal service + work conservation: the sum of
        # completion times over all tasks per server is order-invariant,
        # so the makespan is too.
        assert fifo.duration == tailguard.duration

    @given(traces())
    @settings(max_examples=100, deadline=None)
    def test_single_class_fifo_edf_equivalence(self, specs):
        """One class + one fanout-independent deadline per arrival order
        means T-EDF pops in arrival order: identical to FIFO."""
        fifo = run(specs, "fifo")
        tedf = run(specs, "t-edf")
        assert np.allclose(fifo.latency, tedf.latency)

    @given(traces())
    @settings(max_examples=50, deadline=None)
    def test_fifo_single_fanout_ordering(self, specs):
        """Under FIFO, fanout-1 queries on the same server finish in
        arrival order (a fanout>1 query's finish waits on its slowest
        task elsewhere, so only single-task queries are comparable)."""
        result = run(specs, "fifo")
        finish = result.arrival + result.latency
        for server in range(N_SERVERS):
            arrivals = [
                (spec.arrival_time, i)
                for i, spec in enumerate(specs)
                if spec.fanout == 1 and spec.servers[0] == server
            ]
            order = [i for _, i in sorted(arrivals)]
            finishes = [finish[i] for i in order]
            assert all(a <= b + 1e-9 for a, b in zip(finishes, finishes[1:]))
