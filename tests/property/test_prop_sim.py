"""Property tests for the DES kernel: ordering and conservation laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment

delays = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


class TestKernelProperties:
    @given(st.lists(delays, min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_timeouts_complete_in_sorted_order(self, delay_list):
        env = Environment()
        completions = []

        def proc(delay):
            yield env.timeout(delay)
            completions.append(delay)

        for delay in delay_list:
            env.process(proc(delay))
        env.run()
        assert completions == sorted(delay_list)
        assert env.now == max(delay_list)

    @given(st.lists(delays, min_size=1, max_size=50))
    def test_every_process_completes(self, delay_list):
        env = Environment()
        done = []

        def proc(tag, delay):
            yield env.timeout(delay)
            done.append(tag)

        for tag, delay in enumerate(delay_list):
            env.process(proc(tag, delay))
        env.run()
        assert sorted(done) == list(range(len(delay_list)))

    @given(st.lists(delays, min_size=2, max_size=50))
    @settings(max_examples=50)
    def test_sequential_delays_accumulate(self, delay_list):
        env = Environment()

        def proc():
            for delay in delay_list:
                yield env.timeout(delay)
            return env.now

        total = env.run(until=env.process(proc()))
        assert abs(total - sum(delay_list)) < 1e-6 * max(1.0, sum(delay_list))

    @given(st.lists(delays, min_size=1, max_size=30), delays)
    @settings(max_examples=50)
    def test_run_until_horizon_only_processes_past_events(
        self, delay_list, horizon
    ):
        env = Environment()
        fired = []

        def proc(delay):
            yield env.timeout(delay)
            fired.append(delay)

        for delay in delay_list:
            env.process(proc(delay))
        env.run(until=horizon)
        assert all(delay <= horizon for delay in fired)
        assert env.now == horizon
