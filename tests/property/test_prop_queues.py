"""Property tests for queue disciplines and admission control."""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import DeadlineMissRatioAdmission
from repro.core.policies import EDFTaskQueue, FIFOTaskQueue, PriorityTaskQueue

keys = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


class TestEDFQueueProperties:
    @given(st.lists(keys, min_size=1, max_size=200))
    def test_pops_in_key_order(self, key_list):
        queue = EDFTaskQueue()
        for i, key in enumerate(key_list):
            queue.push(i, (key,))
        popped_keys = [key_list[queue.pop()] for _ in range(len(key_list))]
        assert popped_keys == sorted(popped_keys)

    @given(st.lists(keys, min_size=1, max_size=100))
    def test_conservation(self, key_list):
        queue = EDFTaskQueue()
        for i, key in enumerate(key_list):
            queue.push(i, (key,))
        popped = {queue.pop() for _ in range(len(key_list))}
        assert popped == set(range(len(key_list)))

    @given(st.lists(st.tuples(keys, st.booleans()), min_size=1, max_size=200))
    def test_interleaved_push_pop_never_violates_order(self, operations):
        """Any interleaving of pushes and pops yields locally sorted pops."""
        queue = EDFTaskQueue()
        counter = 0
        for key, do_pop in operations:
            queue.push(counter, (key,))
            counter += 1
            if do_pop and len(queue) >= 2:
                first_key = queue._heap[0][0]
                queue.pop()
                second_key = queue._heap[0][0]
                assert first_key <= second_key


class TestFIFOQueueProperties:
    @given(st.lists(st.integers(), min_size=0, max_size=100))
    def test_matches_deque(self, items):
        queue = FIFOTaskQueue()
        reference = deque()
        for item in items:
            queue.push(item, (0.0,))
            reference.append(item)
        assert [queue.pop() for _ in range(len(items))] == list(reference)


class TestPriorityQueueProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=4), keys),
                    min_size=1, max_size=200))
    def test_strict_priority_then_fifo(self, entries):
        queue = PriorityTaskQueue()
        for i, (priority, arrival) in enumerate(entries):
            queue.push((i, priority), (priority, arrival))
        popped = [queue.pop() for _ in range(len(entries))]
        # Priorities must be non-decreasing relative to what remains:
        # simulate a reference implementation.
        reference = sorted(
            range(len(entries)),
            key=lambda i: (entries[i][0], i),
        )
        assert [index for index, _ in popped] == reference


class TestAdmissionProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=500),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=200)
    def test_ratio_matches_brute_force(self, outcomes, window):
        controller = DeadlineMissRatioAdmission(0.5, window_tasks=window,
                                                min_samples=1)
        for outcome in outcomes:
            controller.record_task(outcome)
        recent = outcomes[-window:]
        expected = sum(recent) / len(recent)
        assert abs(controller.miss_ratio() - expected) < 1e-12

    @given(st.lists(st.booleans(), min_size=1, max_size=300),
           st.floats(min_value=0.01, max_value=0.99))
    def test_admit_consistent_with_ratio(self, outcomes, threshold):
        controller = DeadlineMissRatioAdmission(threshold, window_tasks=100,
                                                min_samples=1)
        for outcome in outcomes:
            controller.record_task(outcome)
        assert controller.admit() == (controller.miss_ratio() <= threshold)
