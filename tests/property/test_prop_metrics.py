"""Property tests for percentile estimators and empirical CDFs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import EmpiricalDistribution, OnlineEmpiricalCDF
from repro.metrics import P2QuantileEstimator, exact_percentile

sample_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=300,
)


class TestExactPercentileProperties:
    @given(sample_lists, st.floats(min_value=0.0, max_value=100.0))
    def test_within_range(self, values, p):
        result = exact_percentile(values, p)
        assert min(values) <= result <= max(values)

    @given(sample_lists)
    def test_extremes(self, values):
        assert exact_percentile(values, 0.0) == min(values)
        assert exact_percentile(values, 100.0) == max(values)

    @given(sample_lists, st.floats(min_value=0, max_value=100),
           st.floats(min_value=0, max_value=100))
    def test_monotone_in_percentile(self, values, p1, p2):
        lo, hi = sorted([p1, p2])
        assert exact_percentile(values, lo) <= exact_percentile(values, hi)


class TestP2Properties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                              allow_nan=False),
                    min_size=5, max_size=500),
           st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=100)
    def test_estimate_within_observed_range(self, values, q):
        estimator = P2QuantileEstimator(q)
        estimator.update_many(values)
        assert min(values) - 1e-9 <= estimator.value() <= max(values) + 1e-9

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_converges_on_uniform(self, seed, q):
        rng = np.random.default_rng(seed)
        samples = rng.random(20_000)
        estimator = P2QuantileEstimator(q)
        estimator.update_many(samples)
        assert abs(estimator.value() - q) < 0.05


class TestEmpiricalProperties:
    @given(sample_lists, st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_samples(self, values, q):
        dist = EmpiricalDistribution(values)
        assert min(values) <= dist.quantile(q) <= max(values)

    @given(sample_lists)
    def test_cdf_monotone_on_samples(self, values):
        dist = EmpiricalDistribution(values)
        grid = np.sort(np.asarray(values))
        cdfs = dist.cdf(grid)
        assert np.all(np.diff(cdfs) >= -1e-12)

    @given(sample_lists)
    def test_cdf_hits_one_at_max(self, values):
        dist = EmpiricalDistribution(values)
        assert dist.cdf(max(values)) == 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False),
                    min_size=1, max_size=50),
           st.integers(min_value=2, max_value=64))
    def test_online_window_matches_tail_of_stream(self, values, window):
        online = OnlineEmpiricalCDF(window=window)
        for value in values:
            online.update(value)
        expected = sorted(values[-window:])
        assert online.n == len(expected)
        assert online.quantile(0.0) == expected[0]
        assert online.quantile(1.0) == expected[-1]
