"""Property tests for order statistics and convolution (Eq. 1-2, Eq. 7)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Exponential,
    MaxOfIID,
    MaxOfIndependent,
    SumOfIndependent,
    Uniform,
    iid_max_quantile,
)

rates = st.floats(min_value=0.1, max_value=20.0)
fanouts = st.integers(min_value=1, max_value=500)
probabilities = st.floats(min_value=0.01, max_value=0.999)


class TestIidMaxProperties:
    @given(rates, fanouts, probabilities)
    def test_closed_form_matches_power_rule(self, rate, k, q):
        base = Exponential(rate)
        assert np.isclose(
            iid_max_quantile(base, k, q),
            float(base.quantile(q ** (1.0 / k))),
            rtol=1e-12,
        )

    @given(rates, st.integers(min_value=1, max_value=99), probabilities)
    def test_monotone_in_fanout(self, rate, k, q):
        base = Exponential(rate)
        assert iid_max_quantile(base, k, q) <= iid_max_quantile(
            base, k + 1, q
        ) + 1e-12

    @given(rates, fanouts, probabilities)
    def test_max_cdf_roundtrip(self, rate, k, q):
        dist = MaxOfIID(Exponential(rate), k)
        assert np.isclose(float(dist.cdf(dist.quantile(q))), q, atol=1e-9)

    @given(rates, fanouts)
    def test_budget_decreases_with_fanout(self, rate, k):
        """Paper's core claim: larger fanout => larger unloaded tail =>
        smaller pre-dequeuing budget for the same SLO."""
        base = Exponential(rate)
        slo = iid_max_quantile(base, 1000, 0.99) * 1.5
        budget_k = slo - iid_max_quantile(base, k, 0.99)
        budget_1 = slo - iid_max_quantile(base, 1, 0.99)
        assert budget_k <= budget_1 + 1e-12


class TestHeterogeneousMax:
    @given(st.lists(rates, min_size=1, max_size=5), probabilities)
    @settings(max_examples=100, deadline=None)
    def test_product_quantile_roundtrip(self, component_rates, q):
        dist = MaxOfIndependent([Exponential(r) for r in component_rates])
        x = float(dist.quantile(q))
        assert np.isclose(float(dist.cdf(x)), q, atol=1e-6)

    @given(rates, st.integers(min_value=1, max_value=20), probabilities)
    @settings(max_examples=100, deadline=None)
    def test_reduces_to_iid(self, rate, k, q):
        base = Exponential(rate)
        het = MaxOfIndependent([base] * k)
        assert np.isclose(
            float(het.quantile(q)),
            iid_max_quantile(base, k, q),
            rtol=1e-6,
        )

    @given(st.lists(rates, min_size=2, max_size=4), probabilities)
    @settings(max_examples=50, deadline=None)
    def test_dominated_by_slowest_component(self, component_rates, q):
        components = [Exponential(r) for r in component_rates]
        dist = MaxOfIndependent(components)
        slowest = max(float(c.quantile(q)) for c in components)
        assert float(dist.quantile(q)) >= slowest - 1e-9


class TestConvolutionProperties:
    @given(st.lists(rates, min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_mean_additive(self, component_rates):
        dist = SumOfIndependent([Exponential(r) for r in component_rates],
                                resolution=1024)
        assert np.isclose(dist.mean(), sum(1.0 / r for r in component_rates))

    @given(st.lists(st.floats(min_value=0.2, max_value=5.0),
                    min_size=2, max_size=4), probabilities)
    @settings(max_examples=50, deadline=None)
    def test_tail_subadditive(self, widths, q):
        """x_q(sum) <= sum of x_q's for q >= 0.5 (Eq. 7 motivation)."""
        components = [Uniform(0.0, w) for w in widths]
        dist = SumOfIndependent(components, resolution=2048)
        if q >= 0.5:
            bound = sum(float(c.quantile(q)) for c in components)
            assert float(dist.quantile(q)) <= bound + 1e-6

    @given(st.lists(rates, min_size=1, max_size=3),
           probabilities, probabilities)
    @settings(max_examples=50, deadline=None)
    def test_quantile_monotone(self, component_rates, q1, q2):
        dist = SumOfIndependent([Exponential(r) for r in component_rates],
                                resolution=1024)
        lo, hi = sorted([q1, q2])
        assert float(dist.quantile(lo)) <= float(dist.quantile(hi)) + 1e-9
