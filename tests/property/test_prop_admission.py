"""Property-based tests for the admission controller's moving window."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import DeadlineMissRatioAdmission

#: One task outcome: (inter-arrival gap in ms, missed_deadline).
outcome = st.tuples(st.floats(min_value=0.0, max_value=50.0,
                              allow_nan=False, allow_infinity=False),
                    st.booleans())


def build_controller(window_tasks, window_ms):
    return DeadlineMissRatioAdmission(
        threshold=0.1,
        window_tasks=window_tasks,
        window_ms=window_ms,
        min_samples=1,
    )


class TestMissRatioInvariants:
    @given(events=st.lists(outcome, max_size=200),
           window_tasks=st.integers(min_value=1, max_value=50),
           window_ms=st.none() | st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=200, deadline=None)
    def test_ratio_and_occupancy_stay_bounded(self, events, window_tasks,
                                              window_ms):
        """Under any (time-ordered) outcome sequence the window's miss
        ratio and occupancy are ratios in [0, 1] at every step."""
        controller = build_controller(window_tasks, window_ms)
        now = 0.0
        for gap, missed in events:
            now += gap
            controller.record_task(missed, now=now)
            ratio = controller.miss_ratio()
            occupancy = controller.window_occupancy()
            assert 0.0 <= ratio <= 1.0
            assert 0.0 <= occupancy <= 1.0
            assert isinstance(controller.admit(now=now), bool)

    @given(events=st.lists(outcome, min_size=1, max_size=200),
           window_tasks=st.integers(min_value=1, max_value=50))
    @settings(max_examples=100, deadline=None)
    def test_window_never_exceeds_task_bound(self, events, window_tasks):
        controller = build_controller(window_tasks, window_ms=None)
        now = 0.0
        for gap, missed in events:
            now += gap
            controller.record_task(missed, now=now)
            assert len(controller._entries) <= window_tasks

    @given(events=st.lists(outcome, min_size=1, max_size=200),
           window_ms=st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_time_bound_evicts_stale_entries(self, events, window_ms):
        controller = build_controller(window_tasks=10_000, window_ms=window_ms)
        now = 0.0
        for gap, missed in events:
            now += gap
            controller.record_task(missed, now=now)
            entries = controller._entries
            # Same arithmetic as _evict: survivors are >= the horizon
            # (re-deriving it as now - t <= window_ms is off by an ulp).
            horizon = now - window_ms
            assert all(t >= horizon for t, _ in entries)
            # Eviction keeps the window sorted by time (asserted inside
            # _evict too; re-checked here over the whole deque).
            times = [t for t, _ in entries]
            assert times == sorted(times)

    @given(misses=st.lists(st.booleans(), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_ratio_is_exact_over_small_windows(self, misses):
        """With no eviction pressure the ratio is just mean(missed)."""
        controller = build_controller(window_tasks=1_000, window_ms=None)
        for i, missed in enumerate(misses):
            controller.record_task(missed, now=float(i))
        expected = sum(misses) / len(misses)
        assert controller.miss_ratio() == expected
        assert controller.window_occupancy() == len(misses) / 1_000
