"""Unit tests for metrics: percentiles and collectors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import (
    LatencyCollector,
    P2QuantileEstimator,
    exact_percentile,
    tail_latency,
)


class TestExactPercentile:
    def test_median(self):
        assert exact_percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_default_tail(self):
        values = list(range(1, 101))
        assert tail_latency(values) == pytest.approx(99.01)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            exact_percentile([], 50.0)

    def test_invalid_percentile(self):
        with pytest.raises(ConfigurationError):
            exact_percentile([1.0], 101.0)


class TestP2Estimator:
    def test_quantile_validation(self):
        with pytest.raises(ConfigurationError):
            P2QuantileEstimator(0.0)
        with pytest.raises(ConfigurationError):
            P2QuantileEstimator(1.0)

    def test_no_observations_raises(self):
        with pytest.raises(ConfigurationError):
            P2QuantileEstimator(0.5).value()

    def test_small_sample_exact(self):
        estimator = P2QuantileEstimator(0.5)
        estimator.update_many([3.0, 1.0, 2.0])
        assert estimator.value() == 2.0

    def test_median_of_uniform(self):
        rng = np.random.default_rng(13)
        estimator = P2QuantileEstimator(0.5)
        estimator.update_many(rng.random(50_000))
        assert estimator.value() == pytest.approx(0.5, abs=0.01)

    def test_p99_of_exponential(self):
        rng = np.random.default_rng(14)
        samples = rng.exponential(1.0, 100_000)
        estimator = P2QuantileEstimator(0.99)
        estimator.update_many(samples)
        exact = np.percentile(samples, 99)
        assert estimator.value() == pytest.approx(exact, rel=0.05)

    def test_count_tracks_updates(self):
        estimator = P2QuantileEstimator(0.9)
        estimator.update_many(range(10))
        assert estimator.count == 10


class TestLatencyCollector:
    def test_record_and_percentile(self):
        collector = LatencyCollector()
        for value in (1.0, 2.0, 3.0):
            collector.record("a", 1, value)
        assert collector.percentile(50.0, "a", 1) == 2.0

    def test_grouping(self):
        collector = LatencyCollector()
        collector.record("a", 1, 1.0)
        collector.record("a", 10, 5.0)
        collector.record("b", 1, 9.0)
        assert collector.groups() == (("a", 1), ("a", 10), ("b", 1))
        assert collector.count("a") == 2
        assert collector.count(fanout=1) == 2
        assert collector.count() == 3

    def test_mean_across_groups(self):
        collector = LatencyCollector()
        collector.record("a", 1, 2.0)
        collector.record("b", 1, 4.0)
        assert collector.mean() == 3.0

    def test_missing_group_raises(self):
        collector = LatencyCollector()
        with pytest.raises(ConfigurationError):
            collector.percentile(50.0, "ghost", 1)

    def test_negative_latency_rejected(self):
        collector = LatencyCollector()
        with pytest.raises(ConfigurationError):
            collector.record("a", 1, -0.1)

    def test_per_group_percentiles(self):
        collector = LatencyCollector()
        collector.record("a", 1, 1.0)
        collector.record("a", 10, 2.0)
        tails = collector.per_group_percentile(99.0)
        assert tails == {("a", 1): 1.0, ("a", 10): 2.0}


class TestLatencyCollectorSummary:
    def test_summary_shape(self):
        collector = LatencyCollector()
        for value in (1.0, 2.0, 3.0):
            collector.record("a", 1, value)
        collector.record("b", 10, 5.0)
        summary = collector.summary()
        assert summary["total_count"] == 4
        assert [g["class_name"] for g in summary["groups"]] == ["a", "b"]
        group_a = summary["groups"][0]
        assert group_a["fanout"] == 1
        assert group_a["count"] == 3
        assert group_a["mean"] == pytest.approx(2.0)
        assert group_a["p50"] == exact_percentile(np.array([1.0, 2.0, 3.0]), 50.0)
        assert group_a["p99"] == exact_percentile(np.array([1.0, 2.0, 3.0]), 99.0)

    def test_cached_array_invalidated_on_record(self):
        """Reads are served from a cached ndarray; a later record into
        the same group must invalidate it."""
        collector = LatencyCollector()
        collector.record("a", 1, 1.0)
        assert collector.percentile(99.0) == 1.0  # populates the cache
        collector.record("a", 1, 10.0)
        expected = exact_percentile(np.array([1.0, 10.0]), 99.0)
        assert collector.percentile(99.0) == expected
        assert collector.mean("a", 1) == pytest.approx(5.5)

    def test_cached_array_reused_between_reads(self):
        collector = LatencyCollector()
        collector.record("a", 1, 1.0)
        first = collector._select("a", 1)
        second = collector._select("a", 1)
        assert first is second
