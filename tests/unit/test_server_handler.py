"""Unit tests for TaskServer and QueryHandler on the DES kernel."""

import numpy as np
import pytest

from repro.core.admission import DeadlineMissRatioAdmission
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.server import TaskServer
from repro.distributions import Deterministic
from repro.errors import ConfigurationError
from repro.sim import Environment
from repro.types import QuerySpec, ServiceClass


def make_cluster(n_servers=4, service=None, policy_name="tailguard",
                 admission=None, seed=0):
    env = Environment()
    service = service if service is not None else Deterministic(1.0)
    policy = get_policy(policy_name)
    rng = np.random.default_rng(seed)
    server_rngs = rng.spawn(n_servers)
    servers = [
        TaskServer(env, sid, policy, service, server_rngs[sid])
        for sid in range(n_servers)
    ]
    estimator = DeadlineEstimator(service, n_servers=n_servers)
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(seed + 1),
                           admission=admission)
    return env, servers, handler


@pytest.fixture
def gold():
    return ServiceClass("gold", slo_ms=10.0)


class TestTaskServer:
    def test_idle_server_starts_immediately(self, gold):
        env, servers, handler = make_cluster(n_servers=1)
        spec = QuerySpec(0, 0.0, 1, gold)
        record, done = handler.submit(spec)
        env.run()
        assert record.latency == pytest.approx(1.0)

    def test_queueing_delay_with_busy_server(self, gold):
        env, servers, handler = make_cluster(n_servers=1)
        handler.submit(QuerySpec(0, 0.0, 1, gold))
        record, _ = handler.submit(QuerySpec(1, 0.0, 1, gold))
        env.run()
        # Second query waits for the first task (1 ms) then serves 1 ms.
        assert record.latency == pytest.approx(2.0)

    def test_utilization_accounting(self, gold):
        env, servers, handler = make_cluster(n_servers=1)
        handler.submit(QuerySpec(0, 0.0, 1, gold))
        env.run()
        env._now = 2.0  # freeze horizon for a deterministic check
        assert servers[0].busy_time() == pytest.approx(1.0)
        assert servers[0].utilization() == pytest.approx(0.5)
        assert servers[0].tasks_served == 1

    def test_invalid_server_id(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            TaskServer(env, -1, get_policy("fifo"), Deterministic(1.0),
                       np.random.default_rng(0))


class TestQueryHandler:
    def test_fanout_query_waits_for_slowest(self, gold):
        env, servers, handler = make_cluster(n_servers=4)
        record, _ = handler.submit(QuerySpec(0, 0.0, 4, gold))
        env.run()
        assert record.latency == pytest.approx(1.0)
        assert handler.inflight == 0

    def test_fanout_exceeding_cluster_rejected(self, gold):
        env, servers, handler = make_cluster(n_servers=2)
        with pytest.raises(ConfigurationError):
            handler.submit(QuerySpec(0, 0.0, 3, gold))

    def test_preassigned_servers_used(self, gold):
        env, servers, handler = make_cluster(n_servers=4)
        spec = QuerySpec(0, 0.0, 2, gold, servers=(1, 3))
        handler.submit(spec)
        env.run()
        assert servers[1].tasks_served == 1
        assert servers[3].tasks_served == 1
        assert servers[0].tasks_served == 0

    def test_deadline_recorded(self, gold):
        env, servers, handler = make_cluster(n_servers=4)
        record, _ = handler.submit(QuerySpec(0, 0.0, 4, gold))
        expected = handler.estimator.deadline(0.0, gold, fanout=4)
        assert record.deadline == pytest.approx(expected)

    def test_deadline_override(self, gold):
        env, servers, handler = make_cluster(n_servers=2)
        record, _ = handler.submit(QuerySpec(0, 0.0, 1, gold), deadline=123.0)
        assert record.deadline == 123.0

    def test_completion_event_value_is_record(self, gold):
        env, servers, handler = make_cluster(n_servers=1)
        record, done = handler.submit(QuerySpec(0, 0.0, 1, gold))
        result = env.run(until=done)
        assert result is record

    def test_admission_rejects_queries(self, gold):
        controller = DeadlineMissRatioAdmission(0.01, window_tasks=10,
                                                min_samples=1)
        controller.record_task(True)  # force rejection state
        env, servers, handler = make_cluster(n_servers=1,
                                             admission=controller)
        record, done = handler.submit(QuerySpec(0, 0.0, 1, gold))
        assert record.rejected
        assert done.triggered
        assert handler.rejected == [record]

    def test_drive_respects_arrival_times(self, gold):
        env, servers, handler = make_cluster(n_servers=2)
        specs = [
            QuerySpec(0, 1.0, 1, gold),
            QuerySpec(1, 2.5, 1, gold),
        ]
        env.process(handler.drive(specs))
        env.run()
        assert len(handler.completed) == 2
        latencies = {r.spec.query_id: r.latency for r in handler.completed}
        assert latencies[0] == pytest.approx(1.0)
        assert latencies[1] == pytest.approx(1.0)

    def test_drive_rejects_unsorted_specs(self, gold):
        env, servers, handler = make_cluster(n_servers=2)
        specs = [
            QuerySpec(0, 5.0, 1, gold),
            QuerySpec(1, 1.0, 1, gold),
        ]
        proc = env.process(handler.drive(specs))
        with pytest.raises(ConfigurationError):
            env.run(until=proc)

    def test_server_with_existing_callback_rejected(self, gold):
        env = Environment()
        service = Deterministic(1.0)
        policy = get_policy("fifo")
        server = TaskServer(env, 0, policy, service,
                            np.random.default_rng(0),
                            on_complete=lambda task, srv: None)
        estimator = DeadlineEstimator(service, n_servers=1)
        with pytest.raises(ConfigurationError):
            QueryHandler(env, [server], estimator, policy,
                         np.random.default_rng(1))

    def test_estimator_server_count_mismatch(self, gold):
        env = Environment()
        service = Deterministic(1.0)
        policy = get_policy("fifo")
        servers = [TaskServer(env, 0, policy, service,
                              np.random.default_rng(0))]
        estimator = DeadlineEstimator(service, n_servers=5)
        with pytest.raises(ConfigurationError):
            QueryHandler(env, servers, estimator, policy,
                         np.random.default_rng(1))

    def test_dispatch_delay_shifts_latency(self, gold):
        """Decentralized queuing: a fixed dispatch delay adds to the
        pre-dequeuing time of every task (paper §III.B)."""
        env = Environment()
        service = Deterministic(1.0)
        policy = get_policy("tailguard")
        server = TaskServer(env, 0, policy, service,
                            np.random.default_rng(0))
        estimator = DeadlineEstimator(service, n_servers=1)
        handler = QueryHandler(env, [server], estimator, policy,
                               np.random.default_rng(1),
                               dispatch_delay=Deterministic(0.25))
        record, _ = handler.submit(QuerySpec(0, 0.0, 1, gold))
        env.run()
        assert record.latency == pytest.approx(1.25)

    def test_dispatch_delay_counts_against_deadline(self, gold):
        """The deadline stays anchored at the query arrival, so a long
        dispatch can itself cause a deadline miss."""
        env = Environment()
        service = Deterministic(1.0)
        policy = get_policy("tailguard")
        server = TaskServer(env, 0, policy, service,
                            np.random.default_rng(0))
        estimator = DeadlineEstimator(service, n_servers=1)
        handler = QueryHandler(env, [server], estimator, policy,
                               np.random.default_rng(1),
                               dispatch_delay=Deterministic(50.0))
        tight = ServiceClass("tight", slo_ms=2.0)
        record, _ = handler.submit(QuerySpec(0, 0.0, 1, tight))
        env.run()
        assert record.tasks_missed_deadline == 1

    def test_edf_order_respected_under_contention(self):
        """A tighter-SLO (earlier deadline) query overtakes a queued one."""
        env, servers, handler = make_cluster(n_servers=1)
        loose = ServiceClass("loose", slo_ms=100.0)
        tight = ServiceClass("tight", slo_ms=2.0)
        handler.submit(QuerySpec(0, 0.0, 1, loose))   # in service
        slow_record, _ = handler.submit(QuerySpec(1, 0.0, 1, loose))
        fast_record, _ = handler.submit(QuerySpec(2, 0.0, 1, tight))
        env.run()
        # The tight query entered last but ran before the queued loose one.
        assert fast_record.latency < slow_record.latency
