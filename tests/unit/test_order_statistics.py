"""Unit tests for order statistics (paper Eq. 1-2)."""

import numpy as np
import pytest

from repro.distributions import (
    Exponential,
    MaxOfIID,
    MaxOfIndependent,
    Uniform,
    iid_max_cdf,
    iid_max_quantile,
)
from repro.distributions.order_statistics import unloaded_query_tail
from repro.errors import DistributionError


class TestIidMax:
    def test_cdf_is_power(self):
        base = Uniform(0.0, 1.0)
        assert iid_max_cdf(base, 3, 0.5) == pytest.approx(0.125)

    def test_quantile_closed_form(self):
        base = Exponential(1.0)
        k, q = 10, 0.99
        assert iid_max_quantile(base, k, q) == pytest.approx(
            float(base.quantile(q ** (1 / k)))
        )

    def test_k_one_is_identity(self):
        base = Exponential(2.0)
        assert iid_max_quantile(base, 1, 0.9) == pytest.approx(
            float(base.quantile(0.9))
        )

    def test_quantile_increases_with_k(self):
        base = Exponential(1.0)
        tails = [iid_max_quantile(base, k, 0.99) for k in (1, 10, 100, 1000)]
        assert tails == sorted(tails)
        assert tails[0] < tails[-1]

    def test_invalid_k(self):
        with pytest.raises(DistributionError):
            iid_max_quantile(Exponential(1.0), 0, 0.5)

    def test_paper_example(self):
        """§I example: a task with 1% chance of exceeding 100 ms gives a
        fanout-100 query a 63.4% chance of exceeding 100 ms."""
        violation = 1.0 - iid_max_cdf_scalar(0.99, 100)
        assert violation == pytest.approx(0.634, abs=0.001)


def iid_max_cdf_scalar(per_task: float, k: int) -> float:
    return per_task**k


class TestMaxOfIID:
    def test_empirical_max_matches(self):
        rng = np.random.default_rng(5)
        base = Uniform(0.0, 1.0)
        dist = MaxOfIID(base, 5)
        direct = rng.random((20_000, 5)).max(axis=1)
        sampled = dist.sample(np.random.default_rng(6), 20_000)
        assert np.percentile(direct, 99) == pytest.approx(
            np.percentile(sampled, 99), abs=0.01
        )

    def test_mean_increases_with_k(self):
        base = Exponential(1.0)
        assert MaxOfIID(base, 10).mean() > MaxOfIID(base, 2).mean()


class TestMaxOfIndependent:
    def test_cdf_is_product(self):
        a, b = Uniform(0.0, 1.0), Uniform(0.0, 2.0)
        dist = MaxOfIndependent([a, b])
        assert float(dist.cdf(0.5)) == pytest.approx(0.5 * 0.25)

    def test_identical_components_match_iid(self):
        base = Exponential(1.0)
        het = MaxOfIndependent([base, base, base])
        iid = MaxOfIID(base, 3)
        for q in (0.5, 0.9, 0.99):
            assert float(het.quantile(q)) == pytest.approx(
                float(iid.quantile(q)), rel=1e-6
            )

    def test_needs_components(self):
        with pytest.raises(DistributionError):
            MaxOfIndependent([])

    def test_sampling_matches_quantile(self):
        rng = np.random.default_rng(8)
        dist = MaxOfIndependent([Exponential(1.0), Exponential(3.0),
                                 Uniform(0.0, 0.5)])
        samples = dist.sample(rng, 50_000)
        assert np.percentile(samples, 90) == pytest.approx(
            float(dist.quantile(0.9)), rel=0.03
        )

    def test_quantile_zero(self):
        dist = MaxOfIndependent([Uniform(1.0, 2.0), Uniform(0.5, 3.0)])
        assert float(dist.quantile(0.0)) == pytest.approx(0.5)


class TestUnloadedQueryTail:
    def test_homogeneous_fast_path(self):
        base = Exponential(1.0)
        tail = unloaded_query_tail([base] * 10, 99.0)
        assert tail == pytest.approx(iid_max_quantile(base, 10, 0.99))

    def test_heterogeneous_general_path(self):
        a, b = Exponential(1.0), Exponential(0.5)
        tail = unloaded_query_tail([a, b], 99.0)
        product = MaxOfIndependent([a, b])
        assert tail == pytest.approx(float(product.quantile(0.99)), rel=1e-9)

    def test_empty_selection_rejected(self):
        with pytest.raises(DistributionError):
            unloaded_query_tail([], 99.0)

    def test_invalid_percentile(self):
        with pytest.raises(DistributionError):
            unloaded_query_tail([Exponential(1.0)], 0.0)
