"""Unit tests for Resource / Store primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource, Store
from repro.sim.resources import FifoWaitQueue, SortedWaitQueue


class TestResource:
    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_immediate_grant_when_idle(self):
        env = Environment()
        resource = Resource(env)
        request = resource.request()
        assert request.triggered
        assert resource.count == 1

    def test_waiters_queue_up(self):
        env = Environment()
        resource = Resource(env)
        first = resource.request()
        second = resource.request()
        assert first.triggered
        assert not second.triggered
        assert resource.queue_length == 1
        resource.release(first)
        assert second.triggered

    def test_release_unheld_request_raises(self):
        env = Environment()
        resource = Resource(env)
        stranger = resource.request()
        resource.release(stranger)
        with pytest.raises(SimulationError):
            resource.release(stranger)

    def test_context_manager_releases(self):
        env = Environment()
        resource = Resource(env)
        log = []

        def user(tag, hold):
            with resource.request() as req:
                yield req
                yield env.timeout(hold)
                log.append((tag, env.now))

        env.process(user("a", 2.0))
        env.process(user("b", 1.0))
        env.run()
        assert log == [("a", 2.0), ("b", 3.0)]

    def test_capacity_two_serves_in_parallel(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        log = []

        def user(tag):
            with resource.request() as req:
                yield req
                yield env.timeout(1.0)
                log.append((tag, env.now))

        for tag in "abc":
            env.process(user(tag))
        env.run()
        assert log == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_sorted_wait_queue_gives_edf_service_order(self):
        env = Environment()
        resource = Resource(env, queue=SortedWaitQueue())
        log = []

        def user(tag, deadline):
            with resource.request(key=deadline) as req:
                yield req
                yield env.timeout(1.0)
                log.append(tag)

        # "hold" occupies the server while the others queue.
        env.process(user("hold", 0.0))
        env.process(user("late", 10.0))
        env.process(user("urgent", 1.0))
        env.process(user("middle", 5.0))
        env.run()
        assert log == ["hold", "urgent", "middle", "late"]

    def test_cancelled_request_is_skipped(self):
        env = Environment()
        resource = Resource(env)
        holder = resource.request()
        waiter = resource.request()
        waiter.cancel()
        third = resource.request()
        resource.release(holder)
        assert third.triggered
        assert not waiter.triggered


class TestWaitQueues:
    def test_fifo_order(self):
        queue = FifoWaitQueue()
        for item in "abc":
            queue.push(item, 0.0)
        assert [queue.pop() for _ in range(3)] == list("abc")

    def test_sorted_order_with_ties_fifo(self):
        queue = SortedWaitQueue()
        queue.push("b1", 2.0)
        queue.push("a", 1.0)
        queue.push("b2", 2.0)
        assert [queue.pop() for _ in range(3)] == ["a", "b1", "b2"]

    def test_sorted_remove(self):
        queue = SortedWaitQueue()
        queue.push("x", 1.0)
        queue.push("y", 2.0)
        queue.remove("x")
        assert len(queue) == 1
        assert queue.pop() == "y"

    def test_fifo_remove_missing_is_noop(self):
        queue = FifoWaitQueue()
        queue.push("a", 0.0)
        queue.remove("ghost")
        assert len(queue) == 1


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("item")
        got = store.get()
        assert got.triggered
        assert got.value == "item"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, env.now))

        def producer():
            yield env.timeout(2.0)
            yield store.put("late-item")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [("late-item", 2.0)]

    def test_bounded_put_blocks(self):
        env = Environment()
        store = Store(env, capacity=1)
        first = store.put("a")
        second = store.put("b")
        assert first.triggered
        assert not second.triggered
        store.get()
        assert second.triggered
        assert list(store.items) == ["b"]

    def test_fifo_item_order(self):
        env = Environment()
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        values = [store.get().value for _ in range(3)]
        assert values == [1, 2, 3]

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)
