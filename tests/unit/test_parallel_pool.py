"""Unit coverage for the persistent-pool machinery.

Three mechanisms from :mod:`repro.experiments.parallel` are pinned
here at the unit level (the cross-process determinism contracts live
in tests/integration/test_parallel_runner.py):

* :func:`choose_chunksize` — chunk sizing from measured per-task cost,
  including the degenerate shapes (one task, fewer tasks than workers)
  and the static fallback when no measurement exists;
* the shared-memory result protocol (``_pack_result`` /
  ``_unpack_result``) — every ``SimulationResult`` array, including
  the optional fault/overload masks and the timeline, must survive
  the no-pickle path bit for bit, and None-ness must round-trip;
* the worker-side estimator pre-warm (``_prewarm``) — cache hits
  across configs of one cluster, ineligibility rules, and
  bit-identical simulation output with and without the warmed
  estimator.
"""

import pickle

import numpy as np
import pytest

from repro.cluster.results import SimulationResult, Timeline
from repro.errors import ExperimentError
from repro.experiments.parallel import (
    _estimator_key,
    _pack_result,
    _prewarm,
    _unpack_result,
    choose_chunksize,
    get_pool,
)
from repro.experiments.setups import paper_single_class_config
from repro.types import ServiceClass


class TestChooseChunksize:
    def test_single_task(self):
        assert choose_chunksize(1, 4) == 1
        assert choose_chunksize(1, 4, per_task_s=1e-6) == 1

    def test_fewer_tasks_than_workers(self):
        assert choose_chunksize(3, 8) == 1
        assert choose_chunksize(3, 8, per_task_s=1e-6) == 1

    def test_static_fallback_without_measurement(self):
        # The historical even-split bound: n / (pool * 4).
        assert choose_chunksize(100, 4) == 6
        assert choose_chunksize(100, 4, per_task_s=None) == 6
        assert choose_chunksize(100, 4, per_task_s=0.0) == 6
        assert choose_chunksize(100, 4, per_task_s=-1.0) == 6

    def test_cheap_tasks_capped_by_balance_bound(self):
        # 0.25s / 1e-4s = 2500 tasks per chunk by cost, but the
        # even-split bound keeps every worker fed.
        assert choose_chunksize(100, 4, per_task_s=1e-4) == 6

    def test_expensive_tasks_get_singleton_chunks(self):
        assert choose_chunksize(1000, 4, per_task_s=10.0) == 1

    def test_cost_bound_engages_between_extremes(self):
        # 0.25 / 0.01 = 25 < 1000 // 16 = 62: the measured cost wins.
        assert choose_chunksize(1000, 4, per_task_s=0.01) == 25

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ExperimentError):
            choose_chunksize(0, 4)
        with pytest.raises(ExperimentError):
            choose_chunksize(10, 0)


def _synthetic_result(with_optional: bool, with_timeline: bool
                      ) -> SimulationResult:
    """A result with every array field populated (or deliberately None)."""
    m = 11
    rng = np.random.default_rng(7)
    latency = rng.exponential(2.0, size=m)
    latency[2] = np.nan
    kwargs = {}
    if with_optional:
        kwargs.update(
            failed=rng.random(m) < 0.3,
            coverage=rng.random(m),
            degraded=rng.random(m) < 0.2,
        )
    timeline = None
    if with_timeline:
        timeline = Timeline(
            time=np.linspace(0.0, 30.0, 9),
            queued_tasks=rng.integers(0, 50, size=9),
            busy_servers=rng.integers(0, 3, size=9),
        )
    return SimulationResult(
        policy_name="tailguard",
        n_servers=3,
        seed=9,
        offered_load=0.5,
        classes=(ServiceClass("single", 0.8),),
        class_index=np.zeros(m, dtype=np.int64),
        fanout=rng.integers(1, 4, size=m),
        arrival=np.cumsum(rng.exponential(1.0, size=m)),
        latency=latency,
        rejected=rng.random(m) < 0.1,
        measured=np.ones(m, dtype=bool),
        tasks_total=21,
        tasks_missed_deadline=2,
        busy_time_total=12.5,
        duration=30.0,
        mean_service_ms=1.5,
        timeline=timeline,
        tasks_failed=1,
        tasks_retried=2,
        tasks_hedged=3,
        tasks_cancelled=4,
        server_failures=5,
        degraded_queries=1,
        shed_tasks=2,
        breaker_trips=1,
        cdf_rebootstraps=0,
        **kwargs,
    )


_ARRAY_FIELDS = ("class_index", "fanout", "arrival", "latency",
                 "rejected", "measured", "failed", "coverage", "degraded")
_SCALARS = ("policy_name", "n_servers", "seed", "offered_load", "classes",
            "tasks_total", "tasks_missed_deadline", "busy_time_total",
            "duration", "mean_service_ms", "tasks_failed", "tasks_retried",
            "tasks_hedged", "tasks_cancelled", "server_failures",
            "degraded_queries", "shed_tasks", "breaker_trips",
            "cdf_rebootstraps")


class TestSharedMemoryRoundTrip:
    @pytest.mark.parametrize("with_optional", [True, False])
    @pytest.mark.parametrize("with_timeline", [True, False])
    def test_all_arrays_survive(self, with_optional, with_timeline):
        original = _synthetic_result(with_optional, with_timeline)
        packed = _pack_result(original)
        assert not isinstance(packed, SimulationResult), \
            "expected the shm path, not the pickle fallback"
        # The descriptor crosses the process boundary as a pickle; the
        # arrays stay behind in the segment.
        transported = pickle.loads(pickle.dumps(packed))
        rebuilt = _unpack_result(transported)

        for name in _ARRAY_FIELDS:
            src = getattr(original, name)
            dst = getattr(rebuilt, name)
            if src is None:
                assert dst is None
                continue
            assert dst.dtype == src.dtype
            np.testing.assert_array_equal(dst, src)
        if with_timeline:
            for name in ("time", "queued_tasks", "busy_servers"):
                np.testing.assert_array_equal(
                    getattr(rebuilt.timeline, name),
                    getattr(original.timeline, name))
        else:
            assert rebuilt.timeline is None
        for name in _SCALARS:
            assert getattr(rebuilt, name) == getattr(original, name)

    def test_segment_is_released(self):
        original = _synthetic_result(True, True)
        packed = _pack_result(original)
        _unpack_result(packed)
        # The parent unlinked the segment after copying out: a second
        # attach must fail.
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=packed.shm_name)

    def test_unpack_passes_plain_results_through(self):
        original = _synthetic_result(False, False)
        assert _unpack_result(original) is original


class TestEstimatorPrewarm:
    @pytest.fixture(scope="class")
    def config(self):
        return paper_single_class_config("masstree", 0.8, n_queries=400)

    def test_cache_hit_across_probe_configs(self, config):
        # Every probe of one max-load search shares the cluster's CDFs,
        # so the cache must hand back the same estimator object.
        a = _prewarm(config.at_load(0.3).with_seed(1))
        b = _prewarm(config.at_load(0.7).with_seed(2))
        assert a.estimator is not None
        assert a.estimator is b.estimator

    def test_key_ignores_load_and_seed(self, config):
        key_a = _estimator_key(config.at_load(0.3).with_seed(1))
        key_b = _estimator_key(config.at_load(0.7).with_seed(2))
        assert key_a == key_b

    def test_explicit_estimator_is_left_alone(self, config):
        from repro.core.deadline import DeadlineEstimator

        explicit = DeadlineEstimator(dict(config.resolve_server_cdfs()))
        pinned = config.evolve(estimator=explicit)
        assert _prewarm(pinned) is pinned

    def test_prewarmed_run_is_bit_identical(self, config):
        from repro.cluster.simulation import simulate
        from repro.faults import CrashProcess, FaultPlan, RetryPolicy

        plan = FaultPlan(
            crashes=CrashProcess(mtbf_ms=80.0, mttr_ms=5.0, seed=11),
            retry=RetryPolicy(max_retries=1, backoff_ms=0.7),
        )
        cold = config.at_load(0.5).with_seed(13).with_faults(plan)
        baseline = simulate(cold)
        warmed = simulate(_prewarm(cold))
        np.testing.assert_array_equal(warmed.latency, baseline.latency)
        np.testing.assert_array_equal(warmed.failed, baseline.failed)
        assert warmed.busy_time_total == baseline.busy_time_total
        assert warmed.tasks_total == baseline.tasks_total


class TestPersistentPools:
    def test_pool_is_reused(self):
        assert get_pool(2) is get_pool(2)

    def test_serial_worker_counts_rejected(self):
        with pytest.raises(ExperimentError):
            get_pool(1)
