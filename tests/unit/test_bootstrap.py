"""Unit tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import bootstrap_percentile_ci, tail_with_ci


class TestBootstrapCI:
    def test_interval_brackets_point(self):
        rng = np.random.default_rng(1)
        samples = rng.exponential(1.0, 5_000)
        point, lower, upper = bootstrap_percentile_ci(samples, 99.0)
        assert lower <= point <= upper

    def test_interval_covers_true_value_usually(self):
        """Coverage check: the 95% CI contains the true p90 for most of
        a batch of independent sample sets."""
        true_p90 = -np.log(1 - 0.9)
        hits = 0
        for seed in range(20):
            rng = np.random.default_rng(seed)
            samples = rng.exponential(1.0, 2_000)
            _, lower, upper = bootstrap_percentile_ci(samples, 90.0,
                                                      seed=seed)
            if lower <= true_p90 <= upper:
                hits += 1
        assert hits >= 16  # ~95% nominal; allow slack for 20 trials

    def test_wider_for_smaller_samples(self):
        rng = np.random.default_rng(3)
        big = rng.exponential(1.0, 20_000)
        small = big[:500]
        _, lo_big, hi_big = bootstrap_percentile_ci(big, 99.0)
        _, lo_small, hi_small = bootstrap_percentile_ci(small, 99.0)
        assert (hi_small - lo_small) > (hi_big - lo_big)

    def test_deterministic_given_seed(self):
        samples = list(range(100))
        a = bootstrap_percentile_ci(samples, 95.0, seed=7)
        b = bootstrap_percentile_ci(samples, 95.0, seed=7)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_percentile_ci([1.0], 99.0)
        with pytest.raises(ConfigurationError):
            bootstrap_percentile_ci([1.0, 2.0], 101.0)
        with pytest.raises(ConfigurationError):
            bootstrap_percentile_ci([1.0, 2.0], 99.0, confidence=1.0)
        with pytest.raises(ConfigurationError):
            bootstrap_percentile_ci([1.0, 2.0], 99.0, n_resamples=5)

    def test_human_readable_string(self):
        text = tail_with_ci([float(x) for x in range(1000)], 99.0)
        assert text.startswith("p99 = ")
        assert "@ 95%" in text
