"""Unit tests for the overload-protection subsystem (repro.overload).

Covers the declarative policy validation (misconfiguration raises
ConfigurationError at construction), the per-server breaker state
machine, the AIMD admit-probability controller (including the
max-latch anti-windup regression on the base class), the controller's
routing pipeline (degradation, breaker re-routing, coverage floor,
deferred commit), drift re-bootstrap, and the coverage percentile
accessors on SimulationResult.
"""

import math

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.cluster.results import SimulationResult
from repro.core.admission import DeadlineMissRatioAdmission
from repro.core.deadline import DeadlineEstimator
from repro.distributions import Deterministic
from repro.errors import ConfigurationError
from repro.overload import (
    AdaptiveAdmission,
    AdaptiveAdmissionPolicy,
    BreakerPolicy,
    DegradePolicy,
    DriftPolicy,
    OverloadPolicy,
)
from repro.overload.breaker import BreakerBank
from repro.types import ServiceClass

CLASS = ServiceClass("class-I", slo_ms=5.0, priority=0)

N_SERVERS = 8


def make_estimator(online=False):
    cdfs = {sid: Deterministic(0.5 + 0.1 * sid) for sid in range(N_SERVERS)}
    return DeadlineEstimator(cdfs, online_window=64 if online else None)


def make_controller(policy, online=False):
    return policy.build(N_SERVERS, make_estimator(online=online))


class AlwaysDeny:
    """Admission stub: force the degrade path deterministically."""

    admit_probability = 0.0
    probability_trace = [(0.0, 1.0)]

    def admit(self, now=0.0):
        return False

    def record_task(self, missed, now=0.0):
        pass

    def miss_ratio(self):
        return 1.0


# ----------------------------------------------------------------------
# Policy validation (satellite 6: misconfiguration raises)
# ----------------------------------------------------------------------
class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"target_miss_ratio": 0.0},
        {"target_miss_ratio": 1.0},
        {"hysteresis": 1.0},
        {"hysteresis": -0.1},
        {"max_latch_ms": 0.0},
        {"window_tasks": 0},
        {"min_samples": 0},
        {"decrease": 1.5},
        {"floor": 0.0},
        {"ctl_interval_ms": 0.0},
    ])
    def test_bad_admission_policy(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveAdmissionPolicy(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"miss_threshold": 0},
        {"miss_threshold": -3},
        {"open_ms": 0.0},
        {"half_open_probes": 0},
        {"close_successes": 0},
    ])
    def test_bad_breaker_policy(self, kwargs):
        with pytest.raises(ConfigurationError):
            BreakerPolicy(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"min_coverage": 1.5},
        {"min_coverage": 0.0},
        {"min_coverage": -0.5},
        {"pressure_alpha": 0.0},
        {"pressure_alpha": 1.5},
        {"safety": -1.0},
    ])
    def test_bad_degrade_policy(self, kwargs):
        with pytest.raises(ConfigurationError):
            DegradePolicy(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0.0},
        {"threshold": 1.0},
        {"window": 4},
        {"check_interval": 0},
    ])
    def test_bad_drift_policy(self, kwargs):
        with pytest.raises(ConfigurationError):
            DriftPolicy(**kwargs)

    def test_degrade_requires_admission(self):
        with pytest.raises(ConfigurationError, match="requires"):
            OverloadPolicy(degrade=DegradePolicy())

    def test_active_flag(self):
        assert not OverloadPolicy().active
        assert OverloadPolicy(admission=AdaptiveAdmissionPolicy()).active
        assert OverloadPolicy(breakers=BreakerPolicy()).active
        assert OverloadPolicy(drift=DriftPolicy()).active

    def test_build_without_mechanism_raises(self):
        with pytest.raises(ConfigurationError, match="no mechanism"):
            make_controller(OverloadPolicy())

    def test_drift_requires_offline_estimator(self):
        policy = OverloadPolicy(drift=DriftPolicy())
        with pytest.raises(ConfigurationError, match="offline"):
            make_controller(policy, online=True)

    def test_config_rejects_admission_plus_overload(self):
        from repro.types import QuerySpec

        specs = [QuerySpec(0, 0.0, 1, CLASS)]
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            ClusterConfig(
                n_servers=4,
                policy="tailguard",
                specs=specs,
                server_cdfs={i: Deterministic(1.0) for i in range(4)},
                admission=DeadlineMissRatioAdmission(threshold=0.02),
                overload=OverloadPolicy(admission=AdaptiveAdmissionPolicy()),
            )

    def test_policies_are_frozen(self):
        policy = DegradePolicy()
        with pytest.raises(Exception):
            policy.min_coverage = 0.9


# ----------------------------------------------------------------------
# Breaker state machine
# ----------------------------------------------------------------------
class TestBreakerBank:
    def make(self, **kwargs):
        defaults = dict(miss_threshold=3, open_ms=10.0,
                        half_open_probes=2, close_successes=2)
        defaults.update(kwargs)
        return BreakerBank(BreakerPolicy(**defaults), n_servers=2)

    def test_consecutive_misses_trip(self):
        bank = self.make()
        assert bank.record(0, True, 1.0) is None
        assert bank.record(0, True, 2.0) is None
        assert bank.record(0, True, 3.0) == "open"
        assert bank.state_name(0) == "open"
        assert bank.trips == 1
        # The other server is untouched.
        assert bank.state_name(1) == "closed"
        assert bank.permits(1, 3.0)

    def test_nonconsecutive_misses_do_not_trip(self):
        bank = self.make()
        bank.record(0, True, 1.0)
        bank.record(0, True, 2.0)
        bank.record(0, False, 3.0)  # resets the streak
        bank.record(0, True, 4.0)
        bank.record(0, True, 5.0)
        assert bank.state_name(0) == "closed"
        assert bank.trips == 0

    def test_open_refuses_then_half_opens(self):
        bank = self.make()
        for t in (1.0, 2.0, 3.0):
            bank.record(0, True, t)
        assert not bank.permits(0, 5.0)
        # After open_ms the breaker half-opens lazily on the next check.
        assert bank.permits(0, 13.1)
        assert bank.state_name(0) == "half-open"

    def test_half_open_probe_budget_charged_by_consume(self):
        bank = self.make(half_open_probes=2)
        for t in (1.0, 2.0, 3.0):
            bank.record(0, True, t)
        now = 14.0
        # permits() is pure: repeated checks do not burn probes.
        assert bank.permits(0, now) and bank.permits(0, now)
        bank.consume(0, now)
        assert bank.permits(0, now)
        bank.consume(0, now)
        assert not bank.permits(0, now)

    def test_half_open_closes_after_successes(self):
        bank = self.make(close_successes=2)
        for t in (1.0, 2.0, 3.0):
            bank.record(0, True, t)
        assert bank.record(0, False, 14.0) is None
        assert bank.record(0, False, 15.0) == "close"
        assert bank.state_name(0) == "closed"

    def test_half_open_retrips_on_one_miss(self):
        bank = self.make()
        for t in (1.0, 2.0, 3.0):
            bank.record(0, True, t)
        assert bank.permits(0, 14.0)  # half-open now
        assert bank.record(0, True, 14.5) == "open"
        assert bank.trips == 2
        assert not bank.permits(0, 15.0)

    def test_fail_hook_opens_without_timeout(self):
        bank = self.make(open_ms=10.0)
        assert bank.on_server_fail(0, 1.0) == "open"
        # No timed half-open: the server is known dead.
        assert not bank.permits(0, 1e9)
        bank.on_server_recover(0, 2.0)
        assert bank.state_name(0) == "half-open"
        assert bank.permits(0, 2.0)

    def test_fail_while_already_open_is_not_a_new_trip(self):
        bank = self.make()
        for t in (1.0, 2.0, 3.0):
            bank.record(0, True, t)
        assert bank.trips == 1
        assert bank.on_server_fail(0, 4.0) is None
        assert bank.trips == 1
        assert not bank.permits(0, 1e9)


# ----------------------------------------------------------------------
# Adaptive admission (AIMD) + max-latch regression (satellite 1)
# ----------------------------------------------------------------------
class TestAdaptiveAdmission:
    def make(self, **kwargs):
        defaults = dict(target_miss_ratio=0.1, window_tasks=100,
                        min_samples=10, decrease=0.5, increase=0.1,
                        floor=0.05, hysteresis=0.25, ctl_interval_ms=1.0)
        defaults.update(kwargs)
        return AdaptiveAdmission(**defaults)

    def feed(self, ctl, n, missed, start, step=0.1):
        now = start
        for _ in range(n):
            ctl.record_task(missed, now)
            now += step
        return now

    def test_decrease_under_misses_and_floor(self):
        ctl = self.make()
        now = self.feed(ctl, 50, True, 0.0)
        for _ in range(200):
            ctl.admit(now)
            now += 1.5
        assert ctl.admit_probability == pytest.approx(0.05)
        # The trace records every adjustment, starting from 1.0.
        times = [t for t, _ in ctl.probability_trace]
        probs = [p for _, p in ctl.probability_trace]
        assert ctl.probability_trace[0] == (0.0, 1.0)
        assert times == sorted(times)
        assert all(0.0 <= p <= 1.0 for p in probs)

    def test_recovers_to_one_under_successes(self):
        ctl = self.make(window_ms=50.0)
        now = self.feed(ctl, 50, True, 0.0)
        for _ in range(20):
            ctl.admit(now)
            now += 1.5
        assert ctl.admit_probability < 1.0
        now = self.feed(ctl, 200, False, now)
        for _ in range(50):
            ctl.admit(now)
            now += 1.5
        assert ctl.admit_probability == pytest.approx(1.0)

    def test_hysteresis_band_holds(self):
        ctl = self.make(target_miss_ratio=0.1, hysteresis=0.5)
        # Miss ratio 0.1 sits inside (0.05, 0.15): no adjustment.
        now = 0.0
        for i in range(100):
            ctl.record_task(i % 10 == 0, now)
            now += 0.1
        assert ctl.miss_ratio() == pytest.approx(0.1)
        for _ in range(50):
            ctl.admit(now)
            now += 1.5
        assert ctl.admit_probability == pytest.approx(1.0)
        assert len(ctl.probability_trace) == 1

    def test_duty_cycle_thinning_is_deterministic(self):
        ctl = self.make()
        now = self.feed(ctl, 50, True, 0.0)
        decisions = []
        for _ in range(100):
            decisions.append(ctl.admit(now))
            now += 1.5
        admitted = sum(decisions)
        # Thinning tracks the probability: strictly partial admission.
        assert 0 < admitted < 100

    def test_max_latch_regression_base_class(self):
        """Regression (satellite 1): without max_latch_ms an unbounded
        window latches an on-off controller shut forever once overload
        stops feeding outcomes; with it the stale window is flushed."""
        latched = DeadlineMissRatioAdmission(
            threshold=0.1, window_tasks=1_000, window_ms=None, min_samples=5,
        )
        fixed = DeadlineMissRatioAdmission(
            threshold=0.1, window_tasks=1_000, window_ms=None, min_samples=5,
            max_latch_ms=10.0,
        )
        for ctl in (latched, fixed):
            for i in range(20):
                ctl.record_task(True, now=float(i))
            assert not ctl.admit(now=19.0)
        # Long quiet period: no task outcomes arrive at all.
        assert not latched.admit(now=1e6)   # latched shut forever
        assert fixed.admit(now=1e6)         # flushed, admission resumes
        assert fixed.miss_ratio() == 0.0

    def test_max_latch_flushes_adaptive_window(self):
        ctl = self.make(max_latch_ms=10.0)
        now = self.feed(ctl, 50, True, 0.0)
        assert ctl.miss_ratio() == 1.0
        ctl.admit(now + 100.0)  # > max_latch_ms after the last outcome
        assert ctl.miss_ratio() == 0.0


# ----------------------------------------------------------------------
# Controller routing pipeline
# ----------------------------------------------------------------------
class TestOverloadController:
    def admission_policy(self):
        return AdaptiveAdmissionPolicy(target_miss_ratio=0.1,
                                       window_tasks=100, min_samples=10,
                                       ctl_interval_ms=1.0)

    def test_reject_without_degrade(self):
        ctrl = make_controller(OverloadPolicy(admission=self.admission_policy()))
        ctrl.admission = AlwaysDeny()
        decision = ctrl.route_query(0.0, 0, CLASS, (0, 1, 2, 3),
                                    [0] * N_SERVERS)
        assert decision is None
        assert ctrl.degraded_queries == 0 and ctrl.shed_tasks == 0

    def test_degrade_reduces_fanout_with_recomputed_budget(self):
        policy = OverloadPolicy(admission=self.admission_policy(),
                                degrade=DegradePolicy(min_coverage=0.25))
        ctrl = make_controller(policy)
        ctrl.admission = AlwaysDeny()
        servers = (0, 1, 2, 3)
        decision = ctrl.route_query(0.0, 7, CLASS, servers, [0] * N_SERVERS)
        # Deterministic(0.5 + 0.1*sid) CDFs: dropping the slowest server
        # strictly increases the budget, so k' = kf - 1 qualifies.
        assert decision is not None and decision.degraded
        assert decision.servers == (0, 1, 2)
        assert decision.coverage == pytest.approx(0.75)
        assert ctrl.degraded_queries == 1
        assert 7 in ctrl._degraded_ids
        # Deadline re-stamped from the budget of the servers used: with
        # 0.7 ms unloaded tail over (0,1,2), budget = 5.0 - 0.7.
        assert decision.deadline == pytest.approx(0.0 + (5.0 - 0.7))

    def test_degrade_fails_under_pressure(self):
        policy = OverloadPolicy(admission=self.admission_policy(),
                                degrade=DegradePolicy(min_coverage=0.25,
                                                      safety=1.0))
        ctrl = make_controller(policy)
        ctrl.admission = AlwaysDeny()
        # Pressure so large no reduced fanout can buy enough budget.
        ctrl.pressure = 100.0
        decision = ctrl.route_query(0.0, 0, CLASS, (0, 1, 2, 3),
                                    [0] * N_SERVERS)
        assert decision is None
        assert ctrl.degraded_queries == 0

    def test_fanout_one_cannot_degrade(self):
        policy = OverloadPolicy(admission=self.admission_policy(),
                                degrade=DegradePolicy(min_coverage=0.25))
        ctrl = make_controller(policy)
        ctrl.admission = AlwaysDeny()
        assert ctrl.route_query(0.0, 0, CLASS, (2,), [0] * N_SERVERS) is None

    def test_breaker_reroutes_to_least_loaded_replica(self):
        policy = OverloadPolicy(breakers=BreakerPolicy(miss_threshold=2,
                                                       open_ms=50.0))
        ctrl = make_controller(policy)
        ctrl.record_task(0, 0, True, -0.1, 1.0)
        ctrl.record_task(0, 0, True, -0.1, 2.0)
        assert ctrl.breaker_state(0) == "open"
        depths = [0, 5, 1, 9, 2, 9, 9, 9]
        decision = ctrl.route_query(3.0, 1, CLASS, (0, 2), depths)
        # Server 0's shard re-routes to the least-loaded permitted
        # server not already serving the query: server 4 (depth 2;
        # server 2 is already used).
        assert decision is not None and not decision.degraded
        assert set(decision.servers) == {4, 2}
        assert decision.coverage == 1.0
        assert ctrl.shed_tasks == 0

    def test_coverage_floor_rejects_and_commits_nothing(self):
        policy = OverloadPolicy(
            admission=self.admission_policy(),
            breakers=BreakerPolicy(miss_threshold=1, open_ms=50.0),
            degrade=DegradePolicy(min_coverage=0.75),
        )
        ctrl = make_controller(policy)
        # Trip every breaker: nothing can be routed anywhere.
        for sid in range(N_SERVERS):
            ctrl.record_task(sid, 0, True, -0.1, 1.0)
        shed_before = ctrl.shed_tasks
        decision = ctrl.route_query(2.0, 1, CLASS, (0, 1, 2, 3),
                                    [0] * N_SERVERS)
        assert decision is None
        # Deferred commit: the floor rejection counted no sheds.
        assert ctrl.shed_tasks == shed_before == 0
        assert ctrl.degraded_queries == 0

    def test_shed_below_full_fanout_is_degraded(self):
        policy = OverloadPolicy(
            admission=self.admission_policy(),
            breakers=BreakerPolicy(miss_threshold=1, open_ms=50.0),
            degrade=DegradePolicy(min_coverage=0.25),
        )
        ctrl = make_controller(policy)
        # Open all but servers 0 and 1: a fanout-4 query keeps 2 shards.
        for sid in range(2, N_SERVERS):
            ctrl.record_task(sid, 0, True, -0.1, 1.0)
        decision = ctrl.route_query(2.0, 1, CLASS, (0, 1, 2, 3),
                                    [0] * N_SERVERS)
        assert decision is not None and decision.degraded
        assert set(decision.servers) == {0, 1}
        assert decision.coverage == pytest.approx(0.5)
        assert ctrl.shed_tasks == 2
        assert ctrl.degraded_queries == 1

    def test_degraded_tasks_excluded_from_admission_window(self):
        policy = OverloadPolicy(admission=self.admission_policy(),
                                degrade=DegradePolicy(min_coverage=0.25))
        ctrl = make_controller(policy)
        ctrl._degraded_ids.add(42)
        for i in range(10):
            ctrl.record_task(0, 42, True, -0.5, float(i))
        # Best-effort traffic: misses feed pressure, not admission.
        assert ctrl.miss_ratio() == 0.0
        assert ctrl.pressure > 0.0
        for i in range(10):
            ctrl.record_task(0, 7, True, -0.5, 10.0 + i)
        assert ctrl.miss_ratio() == 1.0

    def test_pressure_ewma_tracks_overshoot(self):
        policy = OverloadPolicy(admission=self.admission_policy(),
                                degrade=DegradePolicy(min_coverage=0.25,
                                                      pressure_alpha=0.5))
        ctrl = make_controller(policy)
        ctrl.record_task(0, 0, True, -2.0, 1.0)
        assert ctrl.pressure == pytest.approx(1.0)
        ctrl.record_task(0, 1, False, 3.0, 2.0)  # on time: overshoot 0
        assert ctrl.pressure == pytest.approx(0.5)

    def test_drift_rebootstrap_swaps_cdf(self):
        policy = OverloadPolicy(drift=DriftPolicy(threshold=0.3, window=32,
                                                  check_interval=8))
        ctrl = make_controller(policy)
        old_budget = ctrl.estimator.budget(CLASS, servers=[0])
        # Server 0's samples drift far from Deterministic(0.5).
        for i in range(32):
            ctrl.on_task_complete(0, 2.0 + 0.01 * (i % 4), float(i))
        assert ctrl.cdf_rebootstraps == 1
        new_cdf = ctrl.estimator.server_cdf(0)
        assert not isinstance(new_cdf, Deterministic)
        # Budgets re-stamp from the drifted (slower) distribution.
        assert ctrl.estimator.budget(CLASS, servers=[0]) < old_budget
        # Other servers keep their offline CDFs.
        assert isinstance(ctrl.estimator.server_cdf(1), Deterministic)

    def test_drift_no_rebootstrap_when_matching(self):
        from repro.distributions import EmpiricalDistribution

        base = np.linspace(0.4, 0.6, 32)
        cdfs = {sid: Deterministic(0.5 + 0.1 * sid)
                for sid in range(N_SERVERS)}
        cdfs[0] = EmpiricalDistribution(base)
        estimator = DeadlineEstimator(cdfs)
        policy = OverloadPolicy(drift=DriftPolicy(threshold=0.3, window=32,
                                                  check_interval=8))
        ctrl = policy.build(N_SERVERS, estimator)
        # Samples replay the reference distribution: KS stays ~1/window.
        for i in range(64):
            ctrl.on_task_complete(0, float(base[i % 32]), float(i))
        assert ctrl.cdf_rebootstraps == 0

    def test_fail_and_recover_drive_breakers(self):
        policy = OverloadPolicy(breakers=BreakerPolicy())
        ctrl = make_controller(policy)
        ctrl.on_server_fail(3, 1.0)
        assert ctrl.breaker_state(3) == "open"
        assert ctrl.breaker_trips == 1
        ctrl.on_server_recover(3, 2.0)
        assert ctrl.breaker_state(3) == "half-open"


# ----------------------------------------------------------------------
# Coverage percentiles on SimulationResult (satellite 2)
# ----------------------------------------------------------------------
def make_result(coverage, rejected=None):
    n = len(coverage)
    rejected_arr = (np.zeros(n, dtype=bool) if rejected is None
                    else np.asarray(rejected, dtype=bool))
    latency = np.where(rejected_arr, np.nan, 1.0)
    return SimulationResult(
        policy_name="tailguard",
        n_servers=4,
        seed=0,
        offered_load=0.5,
        classes=(CLASS,),
        class_index=np.zeros(n, dtype=np.int64),
        fanout=np.full(n, 4, dtype=np.int64),
        arrival=np.arange(n, dtype=float),
        latency=latency,
        rejected=rejected_arr,
        measured=np.ones(n, dtype=bool),
        tasks_total=4 * n,
        tasks_missed_deadline=0,
        busy_time_total=1.0,
        duration=float(n),
        mean_service_ms=0.5,
        coverage=np.asarray(coverage, dtype=float),
        degraded=np.asarray(coverage, dtype=float) < 1.0,
    )


class TestCoveragePercentiles:
    def test_full_coverage_run(self):
        result = make_result([1.0] * 10)
        assert result.coverage_p50() == 1.0
        assert result.coverage_p99() == 1.0

    def test_no_overload_policy_defaults_to_ones(self):
        result = make_result([1.0] * 10)
        result.coverage = None
        assert result.coverage_values().tolist() == [1.0] * 10
        assert result.coverage_p50() == 1.0

    def test_p99_is_the_low_tail(self):
        # Two of 100 queries served at half coverage: the p99 coverage
        # (attained by >= 99% of queries) sits at the degraded level
        # while the median stays full.
        coverage = [0.5] * 2 + [1.0] * 98
        result = make_result(coverage)
        assert result.coverage_p50() == 1.0
        assert result.coverage_p99() == pytest.approx(0.5)

    def test_rejected_queries_excluded(self):
        coverage = [math.nan, 0.5, 1.0, 1.0]
        rejected = [True, False, False, False]
        result = make_result(coverage, rejected)
        values = result.coverage_values()
        assert values.size == 3
        assert not np.isnan(values).any()

    def test_summary_includes_overload_block(self):
        result = make_result([1.0, 0.5])
        result.degraded_queries = 1
        result.shed_tasks = 2
        summary = result.summary()
        assert summary["degraded_queries"] == 1.0
        assert summary["shed_tasks"] == 2.0
        assert "coverage_p50" in summary and "coverage_p99" in summary
