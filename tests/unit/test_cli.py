"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "table2" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "masstree" in out
        assert "x99(100)" in out

    def test_run_json_output(self, capsys):
        assert main(["run", "table2", "--quick", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment_id"] == "table2"
        assert data["rows"]

    def test_simulate(self, capsys):
        assert main([
            "simulate", "--queries", "2000", "--load", "0.3",
            "--slo-ms", "1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "policy=tailguard" in out
        assert "p99=" in out

    def test_run_csv_output(self, capsys, tmp_path):
        path = tmp_path / "rows.csv"
        assert main(["run", "table2", "--quick", "--csv", str(path)]) == 0
        content = path.read_text().splitlines()
        assert content[0] == "workload,quantity,model_ms,paper_ms"
        assert len(content) == 13  # header + 12 rows

    def test_trace_record_and_replay(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "trace", "record", "--out", str(trace),
            "--queries", "500", "--load", "0.3",
        ]) == 0
        assert trace.exists()
        assert main([
            "trace", "replay", "--trace", str(trace),
            "--policy", "fifo",
        ]) == 0
        out = capsys.readouterr().out
        assert "replayed 500 queries under fifo" in out

    def test_trace_replay_is_policy_paired(self, capsys, tmp_path):
        """The same trace replayed twice gives identical summaries."""
        trace = tmp_path / "trace.jsonl"
        main(["trace", "record", "--out", str(trace), "--queries", "500"])
        capsys.readouterr()
        main(["trace", "replay", "--trace", str(trace)])
        first = capsys.readouterr().out
        main(["trace", "replay", "--trace", str(trace)])
        second = capsys.readouterr().out
        assert first == second


class TestFaultsCommand:
    def test_faults_run(self, capsys):
        assert main([
            "faults", "--queries", "2000", "--load", "0.3",
            "--mtbf-ms", "500", "--hedge",
        ]) == 0
        out = capsys.readouterr().out
        assert "server_failures=" in out
        assert "tasks_hedged=" in out
        assert "p99=" in out

    def test_faults_with_retries(self, capsys):
        assert main([
            "faults", "--queries", "2000", "--load", "0.3",
            "--mtbf-ms", "300", "--retries", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "tasks_retried=" in out


class TestErrorMapping:
    def test_configuration_error_exits_2(self, capsys):
        assert main([
            "faults", "--queries", "100", "--mtbf-ms", "-5",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("tailguard: configuration error:")
        assert err.count("\n") == 1  # one line, no traceback

    def test_bad_slo_exits_2(self, capsys):
        assert main([
            "simulate", "--queries", "100", "--slo-ms", "-1",
        ]) == 2
        assert "configuration error" in capsys.readouterr().err

    def test_experiment_error_exits_1(self, capsys, monkeypatch):
        from repro.errors import ExperimentError

        def boom(name, quick=False, workers=None):
            raise ExperimentError("deliberate failure")

        monkeypatch.setattr("repro.cli.run_experiment", boom)
        assert main(["run", "table2"]) == 1
        err = capsys.readouterr().err
        assert err == "tailguard: error: deliberate failure\n"


class TestCombinedOutputs:
    def test_run_csv_and_json_together(self, capsys, tmp_path):
        """--csv and --json may be combined; each output is emitted and
        the human table is suppressed."""
        path = tmp_path / "rows.csv"
        assert main(["run", "table2", "--quick",
                     "--csv", str(path), "--json"]) == 0
        out = capsys.readouterr().out
        # stdout: the csv confirmation line, then pure JSON.
        first, rest = out.split("\n", 1)
        assert first == f"wrote 12 rows to {path}"
        data = json.loads(rest)
        assert data["experiment_id"] == "table2"
        assert len(path.read_text().splitlines()) == 13
        assert "|" not in out  # no table

    def test_run_table_only_when_no_machine_output(self, capsys):
        assert main(["run", "table2", "--quick"]) == 0
        out = capsys.readouterr().out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)


class TestOverloadCommand:
    def test_overload_run(self, capsys):
        assert main([
            "overload", "--queries", "3000", "--load", "1.2",
            "--degrade", "--breakers", "--mtbf-ms", "400",
        ]) == 0
        out = capsys.readouterr().out
        assert "degraded_queries=" in out
        assert "shed_tasks=" in out
        assert "breaker_trips=" in out
        assert "coverage_p50=" in out
        assert "admit_probability=" in out

    def test_min_coverage_above_one_exits_2(self, capsys):
        assert main([
            "overload", "--queries", "100", "--degrade",
            "--min-coverage", "1.5",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("tailguard: configuration error:")
        assert "min_coverage" in err
        assert err.count("\n") == 1  # one line, no traceback

    def test_nonpositive_breaker_threshold_exits_2(self, capsys):
        assert main([
            "overload", "--queries", "100", "--breakers",
            "--breaker-misses", "0",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("tailguard: configuration error:")
        assert err.count("\n") == 1

    def test_nonpositive_breaker_open_ms_exits_2(self, capsys):
        assert main([
            "overload", "--queries", "100", "--breakers",
            "--breaker-open-ms", "-1",
        ]) == 2
        assert "configuration error" in capsys.readouterr().err

    def test_bad_drift_threshold_exits_2(self, capsys):
        assert main([
            "overload", "--queries", "100", "--drift",
            "--drift-threshold", "2.0",
        ]) == 2
        assert "configuration error" in capsys.readouterr().err


def _tiny_overload(quick, workers=None):
    """A registry-shaped shrink of ext_overload_sweep for round-trips."""
    from repro.experiments import extensions

    return extensions.ext_overload_sweep(loads=(1.2,), n_queries=1_500,
                                         workers=workers)


class TestOverloadRoundTrip:
    """Satellite: the overload counters survive every serialization hop
    — report rows -> ``run --json`` stdout, ``--csv`` files, and the
    parallel runner's worker -> parent merge."""

    COLUMNS = ("degraded_queries", "shed_tasks", "breaker_trips",
               "coverage_p50", "coverage_p99")

    def register(self, monkeypatch):
        from repro.experiments.registry import EXPERIMENTS

        monkeypatch.setitem(EXPERIMENTS, "tiny_overload", _tiny_overload)

    def test_json_round_trip(self, capsys, monkeypatch):
        self.register(monkeypatch)
        assert main(["run", "tiny_overload", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment_id"] == "ext_overload_sweep"
        assert len(data["rows"]) == 3
        for row in data["rows"]:
            for column in self.COLUMNS:
                assert column in row, f"{column} lost in JSON round-trip"
        by_mode = {row["mode"]: row for row in data["rows"]}
        # Non-vacuity: the robust modes actually degraded and shed.
        assert by_mode["degrade+breakers"]["degraded_queries"] > 0
        assert by_mode["degrade+breakers"]["shed_tasks"] > 0
        assert by_mode["degrade+breakers"]["breaker_trips"] > 0
        assert by_mode["reject-only"]["degraded_queries"] == 0

    def test_csv_matches_json(self, capsys, tmp_path, monkeypatch):
        import csv

        self.register(monkeypatch)
        path = tmp_path / "rows.csv"
        assert main(["run", "tiny_overload", "--json",
                     "--csv", str(path)]) == 0
        _, rest = capsys.readouterr().out.split("\n", 1)
        json_rows = json.loads(rest)["rows"]
        with open(path, newline="") as fh:
            csv_rows = list(csv.DictReader(fh))
        assert len(csv_rows) == len(json_rows)
        for json_row, csv_row in zip(json_rows, csv_rows):
            assert set(csv_row) == set(json_row)
            for column, value in json_row.items():
                if isinstance(value, bool):
                    assert csv_row[column] == str(value)
                elif isinstance(value, (int, float)):
                    # str(float) round-trips exactly through the CSV.
                    assert float(csv_row[column]) == value, column
                else:
                    assert csv_row[column] == value

    def test_parallel_merge_matches_serial(self, capsys, monkeypatch):
        self.register(monkeypatch)
        assert main(["run", "tiny_overload", "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)["rows"]
        assert main(["run", "tiny_overload", "--json",
                     "--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)["rows"]
        assert serial == parallel


class TestReportCommand:
    ARGS = ["report", "--queries", "1500", "--load", "0.4",
            "--servers", "100", "--seed", "3"]

    def test_report_text(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "=== tail forensics ===" in out
        assert "latency attribution" in out
        assert "SLO budgets" in out
        assert "slowest queries" in out
        assert "queueing" in out and "service" in out

    def test_report_json_validates_against_schema(self, capsys):
        import pathlib

        from repro.obs.forensics import validate_report

        assert main(self.ARGS + ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"version", "run", "attribution", "slo",
                               "slowest_queries"}
        assert report["version"] == 1
        assert report["run"]["queries_measured"] > 0
        assert report["attribution"]["queries_attributed"] > 0
        schema_path = (pathlib.Path(__file__).resolve().parents[1]
                       / "data" / "report_schema.json")
        schema = json.loads(schema_path.read_text())
        assert validate_report(report, schema) == []

    def test_report_out_file(self, capsys, tmp_path):
        path = tmp_path / "forensics.json"
        assert main(self.ARGS + ["--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote forensics JSON to {path}" in out
        document = json.loads(path.read_text())
        assert document["version"] == 1

    def test_report_with_mitigations_attributes_them(self, capsys):
        assert main(self.ARGS + [
            "--json", "--mtbf-ms", "200", "--mttr-ms", "5",
            "--retries", "2", "--hedge",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        hedges = report["attribution"]["hedges"]
        assert hedges["hedges_launched"] > 0
        components = report["attribution"]["components"]
        mitigation_share = (components["retry_delay"]["share"]
                            + components["hedge_wait"]["share"])
        assert mitigation_share > 0.0

    def test_report_top_k_limits_waterfalls(self, capsys):
        assert main(self.ARGS + ["--json", "--top", "2"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["slowest_queries"]) == 2
        latencies = [q["latency_ms"] for q in report["slowest_queries"]]
        assert latencies == sorted(latencies, reverse=True)

    def test_report_bad_slo_exits_2(self, capsys):
        assert main(["report", "--queries", "100", "--slo-ms", "-1"]) == 2
        assert "configuration error" in capsys.readouterr().err


def _tiny_attribution(quick, workers=None):
    """A registry-shaped shrink of ext_tail_attribution for round-trips."""
    from repro.experiments import extensions

    return extensions.ext_tail_attribution(n_queries=1_500, workers=workers)


class TestAttributionRoundTrip:
    """The attribution summary columns survive every serialization hop —
    report rows -> ``run --json`` stdout, ``--csv`` files, and the
    parallel runner's worker -> parent recorder merge."""

    COLUMNS = ("attr_queueing_share", "attr_service_share",
               "attr_retry_delay_p99", "attr_hedge_wait_p99",
               "burn_rate_fast", "burn_rate_slow")

    def register(self, monkeypatch):
        from repro.experiments.registry import EXPERIMENTS

        monkeypatch.setitem(EXPERIMENTS, "tiny_attribution",
                            _tiny_attribution)

    def test_json_round_trip(self, capsys, monkeypatch):
        self.register(monkeypatch)
        assert main(["run", "tiny_attribution", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment_id"] == "ext_tail_attribution"
        assert len(data["rows"]) == 3
        for row in data["rows"]:
            for column in self.COLUMNS:
                assert column in row, f"{column} lost in JSON round-trip"
        by_mode = {row["mode"]: row for row in data["rows"]}
        # Non-vacuity: mitigations only show up in the faulted mode.
        assert by_mode["retry+hedge"]["attr_hedge_wait_p99"] >= 0.0
        assert by_mode["clean"]["attr_retry_delay_p99"] == 0.0
        assert by_mode["clean"]["attr_hedge_wait_p99"] == 0.0
        for row in data["rows"]:
            assert 0.0 < row["attr_service_share"] <= 1.0

    def test_csv_matches_json(self, capsys, tmp_path, monkeypatch):
        import csv

        self.register(monkeypatch)
        path = tmp_path / "rows.csv"
        assert main(["run", "tiny_attribution", "--json",
                     "--csv", str(path)]) == 0
        _, rest = capsys.readouterr().out.split("\n", 1)
        json_rows = json.loads(rest)["rows"]
        with open(path, newline="") as fh:
            csv_rows = list(csv.DictReader(fh))
        assert len(csv_rows) == len(json_rows)
        for json_row, csv_row in zip(json_rows, csv_rows):
            assert set(csv_row) == set(json_row)
            for column, value in json_row.items():
                if isinstance(value, (int, float)):
                    assert float(csv_row[column]) == value, column
                else:
                    assert csv_row[column] == value

    def test_parallel_merge_matches_serial(self, capsys, monkeypatch):
        self.register(monkeypatch)
        assert main(["run", "tiny_attribution", "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)["rows"]
        assert main(["run", "tiny_attribution", "--json",
                     "--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)["rows"]
        assert serial == parallel


class TestTraceRun:
    def test_chrome_export(self, capsys, tmp_path):
        out_path = tmp_path / "run.json"
        assert main([
            "trace", "run", "--trace-out", str(out_path),
            "--queries", "800", "--load", "0.4", "--servers", "100",
            "--sample-interval", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "=== trace summary ===" in out
        assert "TASK_DEQUEUE" in out
        assert "--- sampled series ---" in out
        document = json.loads(out_path.read_text())
        events = document["traceEvents"]
        assert events
        assert all("ph" in e and "pid" in e and "tid" in e for e in events)
        assert any(e["ph"] == "X" for e in events)

    def test_jsonl_export(self, capsys, tmp_path):
        out_path = tmp_path / "run.jsonl"
        assert main([
            "trace", "run", "--trace-out", str(out_path),
            "--format", "jsonl", "--queries", "500", "--load", "0.3",
        ]) == 0
        lines = out_path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert {"type", "time", "seq"} <= parsed[0].keys()
        assert any(p["type"] == "TASK_COMPLETE" for p in parsed)
        out = capsys.readouterr().out
        assert f"wrote {len(lines)} JSONL events" in out


class TestFederationCommand:
    def test_federation_text(self, capsys):
        assert main([
            "federation", "--shards", "2", "--servers-per-shard", "110",
            "--queries", "1500", "--load", "0.4",
        ]) == 0
        out = capsys.readouterr().out
        assert "federation: 2 shards x 110 servers (220 total)" in out
        assert "router=jsq" in out
        assert "p99=" in out
        assert "shard 0" in out and "shard 1" in out

    def test_federation_json(self, capsys):
        assert main([
            "federation", "--shards", "2", "--servers-per-shard", "110",
            "--queries", "1500", "--load", "0.4", "--router", "tenant",
            "--spill", "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["n_shards"] == 2
        assert document["total_servers"] == 220
        assert document["router"] == "tenant"
        summary = document["summary"]
        for key in ("utilization", "deadline_miss_ratio",
                    "spill_ratio", "shard_imbalance", "total_servers"):
            assert key in summary
        assert len(document["shards"]) == 2
        assert sum(row["queries"] for row in document["shards"]) == 1500

    def test_federation_misconfiguration_exits_2(self, capsys):
        # 10 servers per shard cannot host the paper's fanout-100 class.
        assert main([
            "federation", "--shards", "2", "--servers-per-shard", "10",
            "--queries", "500",
        ]) == 2
        assert "error:" in capsys.readouterr().err
