"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "table2" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "masstree" in out
        assert "x99(100)" in out

    def test_run_json_output(self, capsys):
        assert main(["run", "table2", "--quick", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment_id"] == "table2"
        assert data["rows"]

    def test_simulate(self, capsys):
        assert main([
            "simulate", "--queries", "2000", "--load", "0.3",
            "--slo-ms", "1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "policy=tailguard" in out
        assert "p99=" in out

    def test_run_csv_output(self, capsys, tmp_path):
        path = tmp_path / "rows.csv"
        assert main(["run", "table2", "--quick", "--csv", str(path)]) == 0
        content = path.read_text().splitlines()
        assert content[0] == "workload,quantity,model_ms,paper_ms"
        assert len(content) == 13  # header + 12 rows

    def test_trace_record_and_replay(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "trace", "record", "--out", str(trace),
            "--queries", "500", "--load", "0.3",
        ]) == 0
        assert trace.exists()
        assert main([
            "trace", "replay", "--trace", str(trace),
            "--policy", "fifo",
        ]) == 0
        out = capsys.readouterr().out
        assert "replayed 500 queries under fifo" in out

    def test_trace_replay_is_policy_paired(self, capsys, tmp_path):
        """The same trace replayed twice gives identical summaries."""
        trace = tmp_path / "trace.jsonl"
        main(["trace", "record", "--out", str(trace), "--queries", "500"])
        capsys.readouterr()
        main(["trace", "replay", "--trace", str(trace)])
        first = capsys.readouterr().out
        main(["trace", "replay", "--trace", str(trace)])
        second = capsys.readouterr().out
        assert first == second
