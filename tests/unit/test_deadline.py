"""Unit tests for the deadline estimator (paper §III.B, Eq. 1-6)."""

import pytest

from repro.core.deadline import DeadlineEstimator
from repro.distributions import Exponential, iid_max_quantile
from repro.errors import ConfigurationError
from repro.faults import HedgePolicy
from repro.types import ServiceClass


@pytest.fixture
def service():
    return Exponential(10.0)  # mean 0.1 ms


@pytest.fixture
def estimator(service):
    return DeadlineEstimator(service, n_servers=100)


@pytest.fixture
def gold():
    return ServiceClass("gold", slo_ms=1.0)


class TestConstruction:
    def test_shared_requires_n_servers(self, service):
        with pytest.raises(ConfigurationError):
            DeadlineEstimator(service)

    def test_mapping_defines_n_servers(self, service):
        estimator = DeadlineEstimator({0: service, 1: service})
        assert estimator.n_servers == 2

    def test_mapping_n_servers_mismatch(self, service):
        with pytest.raises(ConfigurationError):
            DeadlineEstimator({0: service}, n_servers=5)

    def test_empty_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            DeadlineEstimator({})

    def test_homogeneous_flag(self, service):
        assert DeadlineEstimator(service, n_servers=3).homogeneous
        hetero = DeadlineEstimator({0: service, 1: Exponential(5.0)})
        assert not hetero.homogeneous


class TestUnloadedTail:
    def test_matches_order_statistics(self, estimator, service):
        assert estimator.unloaded_tail(99.0, fanout=10) == pytest.approx(
            iid_max_quantile(service, 10, 0.99)
        )

    def test_monotone_in_fanout(self, estimator):
        tails = [estimator.unloaded_tail(99.0, fanout=k)
                 for k in (1, 10, 50, 100)]
        assert tails == sorted(tails)

    def test_caching_returns_same_value(self, estimator):
        first = estimator.unloaded_tail(99.0, fanout=10)
        second = estimator.unloaded_tail(99.0, fanout=10)
        assert first == second

    def test_fanout_bounds(self, estimator):
        with pytest.raises(ConfigurationError):
            estimator.unloaded_tail(99.0, fanout=0)
        with pytest.raises(ConfigurationError):
            estimator.unloaded_tail(99.0, fanout=101)

    def test_needs_fanout_or_servers(self, estimator):
        with pytest.raises(ConfigurationError):
            estimator.unloaded_tail(99.0)

    def test_heterogeneous_requires_servers(self, service):
        hetero = DeadlineEstimator({0: service, 1: Exponential(5.0)})
        with pytest.raises(ConfigurationError):
            hetero.unloaded_tail(99.0, fanout=2)
        tail = hetero.unloaded_tail(99.0, servers=[0, 1])
        assert tail > 0

    def test_heterogeneous_matches_product(self, service):
        slow = Exponential(2.0)
        hetero = DeadlineEstimator({0: service, 1: slow})
        from repro.distributions import MaxOfIndependent

        expected = float(MaxOfIndependent([service, slow]).quantile(0.99))
        assert hetero.unloaded_tail(99.0, servers=[0, 1]) == pytest.approx(
            expected, rel=1e-6
        )

    def test_unknown_server_rejected(self, estimator):
        with pytest.raises(ConfigurationError):
            estimator.unloaded_tail(99.0, servers=[0, 999])

    def test_invalid_percentile(self, estimator):
        with pytest.raises(ConfigurationError):
            estimator.unloaded_tail(0.0, fanout=1)


class TestBudgetAndDeadline:
    def test_eq6(self, estimator, gold):
        """t_D = t_0 + SLO − x_p^u(k_f)."""
        tail = estimator.unloaded_tail(99.0, fanout=10)
        assert estimator.deadline(5.0, gold, fanout=10) == pytest.approx(
            5.0 + 1.0 - tail
        )

    def test_budget_decreases_with_fanout(self, estimator, gold):
        budgets = [estimator.budget(gold, fanout=k) for k in (1, 10, 100)]
        assert budgets == sorted(budgets, reverse=True)

    def test_negative_budget_allowed(self, estimator):
        tight = ServiceClass("impossible", slo_ms=0.001)
        assert estimator.budget(tight, fanout=100) < 0

    def test_budget_table(self, estimator, gold):
        table = estimator.budget_table(gold, [1, 10, 100])
        assert set(table) == {1, 10, 100}
        assert table[1] > table[100]


class TestOnlineUpdating:
    def test_disabled_by_default(self, estimator):
        assert not estimator.online_enabled
        estimator.record(0, 0.5)  # silently ignored

    def test_online_updates_shift_tail(self, service, gold):
        estimator = DeadlineEstimator(service, n_servers=2,
                                      online_window=100, refresh_interval=10)
        # Per-server online estimators make the cluster formally
        # heterogeneous, so the explicit server selection is required.
        before = estimator.unloaded_tail(99.0, servers=[0, 1])
        # Feed much slower observations to both servers.
        for _ in range(120):
            estimator.record(0, 5.0)
            estimator.record(1, 5.0)
        after = estimator.unloaded_tail(99.0, servers=[0, 1])
        assert after > before

    def test_per_server_online_is_heterogeneous(self, service):
        estimator = DeadlineEstimator(service, n_servers=2, online_window=50)
        assert not estimator.homogeneous
        grouped = DeadlineEstimator(service, n_servers=2, online_window=50,
                                    server_groups={0: "g", 1: "g"})
        assert grouped.homogeneous

    def test_online_unknown_server(self, service):
        estimator = DeadlineEstimator(service, n_servers=2, online_window=50)
        with pytest.raises(ConfigurationError):
            estimator.record(9, 1.0)

    def test_grouped_online_shares_estimators(self, service):
        groups = {0: "g", 1: "g"}
        estimator = DeadlineEstimator(
            {0: service, 1: service}, online_window=50,
            refresh_interval=1, server_groups=groups,
        )
        estimator.record(0, 7.0)
        # Server 1 shares server 0's estimator through the group.
        assert estimator.server_cdf(1) is estimator.server_cdf(0)

    def test_groups_must_cover_servers(self, service):
        with pytest.raises(ConfigurationError):
            DeadlineEstimator({0: service, 1: service}, online_window=50,
                              server_groups={0: "g"})

    def test_invalidate_clears_cache(self, service, gold):
        estimator = DeadlineEstimator(service, n_servers=2,
                                      online_window=100,
                                      refresh_interval=10_000,
                                      server_groups={0: "g", 1: "g"})
        before = estimator.unloaded_tail(99.0, fanout=2)
        for _ in range(99):
            estimator.record(0, 50.0)
        # Cache not refreshed yet (interval 10k): same value.
        assert estimator.unloaded_tail(99.0, fanout=2) == before
        estimator.invalidate()
        assert estimator.unloaded_tail(99.0, fanout=2) > before


class TestTailCacheBound:
    def test_cache_never_exceeds_cap(self, service):
        estimator = DeadlineEstimator(service, n_servers=100,
                                      tail_cache_max=4)
        for fanout in range(1, 20):
            estimator.unloaded_tail(99.0, fanout=fanout)
            assert len(estimator._tail_cache) <= 4

    def test_values_correct_across_overflow_clears(self, service):
        capped = DeadlineEstimator(service, n_servers=100, tail_cache_max=3)
        uncapped = DeadlineEstimator(service, n_servers=100)
        # Fill well past the cap, then re-query everything: every value
        # must match the uncapped estimator whether it was served from
        # cache or recomputed after a clear.
        for _ in range(2):
            for fanout in range(1, 12):
                assert (capped.unloaded_tail(99.0, fanout=fanout)
                        == uncapped.unloaded_tail(99.0, fanout=fanout))

    def test_repeated_key_stays_cached(self, service):
        estimator = DeadlineEstimator(service, n_servers=100,
                                      tail_cache_max=8)
        first = estimator.unloaded_tail(99.0, fanout=10)
        assert estimator.unloaded_tail(99.0, fanout=10) == first
        assert len(estimator._tail_cache) == 1

    def test_cap_validation(self, service):
        with pytest.raises(ConfigurationError):
            DeadlineEstimator(service, n_servers=100, tail_cache_max=0)


class TestHedgeDelayMemo:
    """Quantile-mode hedge delays route through the versioned memo."""

    def test_prop_hedge_delay_matches_direct_inversion(self, service):
        # Property: for every (server, quantile) pair the memo-routed
        # delay equals the direct primary-CDF inversion, first call
        # (miss) and second call (hit) alike.
        slow = Exponential(2.0)
        estimator = DeadlineEstimator({0: service, 1: slow, 2: service})
        for q in (0.5, 0.9, 0.95, 0.99):
            policy = HedgePolicy(quantile=q)
            for sid in (0, 1, 2):
                direct = policy.delay_for(estimator.server_cdf(sid))
                assert estimator.hedge_delay(sid, q) == direct
                assert policy.delay_via(estimator, sid) == direct

    def test_shared_distribution_shares_memo_entry(self, service):
        # Servers backed by the same CDF object hit one memo entry —
        # the key is the distribution signature, not the server id.
        estimator = DeadlineEstimator(service, n_servers=8)
        estimator.hedge_delay(0, 0.95)
        size = len(estimator._tail_cache)
        for sid in range(1, 8):
            estimator.hedge_delay(sid, 0.95)
        assert len(estimator._tail_cache) == size

    def test_explicit_delay_ms_bypasses_estimator(self):
        # A fixed-delay policy never touches the estimator: delay_via
        # works even with no estimator at hand.
        policy = HedgePolicy(delay_ms=2.5)
        assert policy.delay_via(None, 0) == 2.5
        assert policy.delay_for(None) == 2.5

    def test_rebootstrap_invalidates_hedge_delay(self, service):
        estimator = DeadlineEstimator({0: service, 1: service})
        policy = HedgePolicy(quantile=0.95)
        stale = policy.delay_via(estimator, 0)
        slower = Exponential(1.0)  # mean 1 ms instead of 0.1
        estimator.rebootstrap(0, slower)
        fresh = policy.delay_via(estimator, 0)
        assert fresh == float(slower.quantile(0.95))
        assert fresh > stale
        # Server 1 keeps the original distribution and delay.
        assert policy.delay_via(estimator, 1) == pytest.approx(stale)

    def test_online_refresh_invalidates_hedge_delay(self, service):
        estimator = DeadlineEstimator(service, n_servers=2,
                                      online_window=100, refresh_interval=10)
        policy = HedgePolicy(quantile=0.9)
        before = policy.delay_via(estimator, 0)
        # Feed much slower observations past the refresh interval so
        # the memo version advances and the delay is re-derived.
        for _ in range(50):
            estimator.record(0, 5.0)
        after = policy.delay_via(estimator, 0)
        assert after > before
        assert after == float(estimator.server_cdf(0).quantile(0.9))

    def test_unknown_server_rejected(self, estimator):
        with pytest.raises(ConfigurationError):
            estimator.hedge_delay(999, 0.95)
