"""Structural tests for the paper experiment functions at tiny scale.

These pin the report *schemas* (columns, row counts, reference values)
without asserting performance shapes — the benchmark suite does that at
full scale.
"""

import pytest

from repro.experiments.paper import (
    PAPER_FIG6_MAXLOADS,
    PAPER_TABLE3,
    fig4_single_class_maxload,
    fig5_two_class_maxload,
    fig6_two_class_sweep,
    table3_per_fanout_tails,
)


class TestReportSchemas:
    def test_fig4_rows(self):
        report = fig4_single_class_maxload(
            workloads=("masstree",), policies=("fifo",),
            n_queries=2_000, tol=0.1,
        )
        # 4 SLOs x 1 policy.
        assert len(report.rows) == 4
        assert report.columns == ["workload", "slo_ms", "policy", "max_load"]
        assert all(0 <= row["max_load"] <= 0.95 for row in report.rows)

    def test_fig5_rows(self):
        report = fig5_two_class_maxload(
            slos_high_ms=(1.0,), policies=("fifo", "tailguard"),
            arrivals=("poisson",), n_queries=2_000, tol=0.1,
        )
        assert len(report.rows) == 2
        assert {row["arrival"] for row in report.rows} == {"poisson"}

    def test_fig6_rows(self):
        report = fig6_two_class_sweep(
            workloads=("masstree",), policies=("fifo",),
            loads=(0.3, 0.5), n_queries=1_000,
        )
        # 1 workload x 1 policy x 2 loads x 2 classes.
        assert len(report.rows) == 4
        for row in report.rows:
            assert row["meets_slo"] == (row["p99_ms"] <= row["slo_ms"])

    def test_table3_includes_paper_reference(self):
        report = table3_per_fanout_tails(
            slos_ms=(0.8,), policies=("fifo",),
            n_queries=4_000, search_queries=2_000, tol=0.1,
        )
        assert len(report.rows) == 3  # three fanouts
        references = {row["fanout"]: row["paper_p99_ms"]
                      for row in report.rows}
        assert references == PAPER_TABLE3[(0.8, "fifo")]


class TestPaperConstants:
    def test_table3_reference_complete(self):
        slos = {key[0] for key in PAPER_TABLE3}
        policies = {key[1] for key in PAPER_TABLE3}
        assert slos == {0.8, 1.0, 1.2, 1.4}
        assert policies == {"fifo", "tailguard"}
        for values in PAPER_TABLE3.values():
            assert set(values) == {1, 10, 100}

    def test_fig6_reference_complete(self):
        workloads = {key[0] for key in PAPER_FIG6_MAXLOADS}
        assert workloads == {"masstree", "shore", "xapian"}
        for load in PAPER_FIG6_MAXLOADS.values():
            assert 0.3 <= load <= 0.65
