"""Coverage for small helpers across packages."""

import numpy as np
import pytest

from repro.cluster import simulate
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.server import TaskServer
from repro.distributions import Deterministic, Exponential
from repro.errors import ConfigurationError
from repro.sim import Environment
from repro.types import QuerySpec, ServiceClass
from repro.workloads import PoissonArrivals, get_workload


class TestArrivalProcessMisc:
    def test_name_property(self):
        assert PoissonArrivals(1.0).name == "PoissonArrivals"

    def test_workload_mean_service(self, small_workload):
        bench = get_workload("masstree")
        assert small_workload.mean_service_ms() == pytest.approx(
            bench.service_time.mean()
        )

    def test_workload_load_roundtrip(self, small_workload):
        rated = small_workload.at_load(0.42, 100)
        assert rated.load(100) == pytest.approx(0.42)


class TestChooseServers:
    def _handler(self, n_servers=10):
        env = Environment()
        service = Deterministic(1.0)
        policy = get_policy("fifo")
        servers = [TaskServer(env, sid, policy, service,
                              np.random.default_rng(sid))
                   for sid in range(n_servers)]
        estimator = DeadlineEstimator(service, n_servers=n_servers)
        return QueryHandler(env, servers, estimator, policy,
                            np.random.default_rng(99))

    def test_servers_are_distinct(self):
        handler = self._handler()
        gold = ServiceClass("gold", 1.0)
        for qid in range(50):
            servers = handler.choose_servers(QuerySpec(qid, 0.0, 5, gold))
            assert len(set(servers)) == 5

    def test_oldi_shortcut_covers_cluster(self):
        handler = self._handler()
        gold = ServiceClass("gold", 1.0)
        servers = handler.choose_servers(QuerySpec(0, 0.0, 10, gold))
        assert servers == tuple(range(10))

    def test_preassigned_wins(self):
        handler = self._handler()
        gold = ServiceClass("gold", 1.0)
        spec = QuerySpec(0, 0.0, 2, gold, servers=(7, 3))
        assert handler.choose_servers(spec) == (7, 3)


class TestResultEdgeCases:
    def test_rejection_ratio_no_measured(self, small_config):
        result = simulate(small_config)
        # All queries measured and none rejected in this config.
        assert result.rejection_ratio() == 0.0

    def test_accepted_load_reasonable(self, small_config):
        result = simulate(small_config)
        assert result.accepted_load() == pytest.approx(
            result.offered_load, rel=0.25
        )

    def test_types_sorted(self, small_config):
        result = simulate(small_config)
        assert list(result.types()) == sorted(result.types())


class TestEstimatorMisc:
    def test_server_cdf_unknown(self):
        estimator = DeadlineEstimator(Exponential(1.0), n_servers=2)
        with pytest.raises(ConfigurationError):
            estimator.server_cdf(5)

    def test_servers_argument_fanout_mismatch(self):
        estimator = DeadlineEstimator(Exponential(1.0), n_servers=4)
        with pytest.raises(ConfigurationError):
            estimator.unloaded_tail(99.0, fanout=3, servers=[0, 1])

    def test_signature_cache_shared_across_selections(self):
        """Two different selections with the same distribution multiset
        share one cache entry (same unloaded tail)."""
        slow = Exponential(0.5)
        fast = Exponential(2.0)
        estimator = DeadlineEstimator({0: fast, 1: fast, 2: slow, 3: slow})
        first = estimator.unloaded_tail(99.0, servers=[0, 2])
        second = estimator.unloaded_tail(99.0, servers=[1, 3])
        assert first == second


class TestReportEdgeCases:
    def test_format_table_empty_rows(self):
        from repro.experiments.report import ExperimentReport

        report = ExperimentReport("x", "empty", columns=["a", "b"])
        text = report.format_table()
        assert "empty" in text
        assert "a" in text

    def test_csv_roundtrip(self, tmp_path):
        import csv

        from repro.experiments.report import ExperimentReport

        report = ExperimentReport("x", "t", columns=["k", "v"])
        report.add_row(k="one", v=1.5)
        report.add_row(k="two", v=2.5)
        path = tmp_path / "r.csv"
        report.to_csv(path)
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows == [{"k": "one", "v": "1.5"}, {"k": "two", "v": "2.5"}]
