"""Unit tests for distribution fitting."""

import numpy as np
import pytest

from repro.distributions import Exponential, LogNormal, Uniform, Weibull
from repro.distributions.fitting import (
    FITTERS,
    fit_best,
    fit_bounded_pareto,
    fit_exponential,
    fit_lognormal,
    fit_uniform,
    fit_weibull,
    ks_distance,
)
from repro.errors import DistributionError


@pytest.fixture
def rng():
    return np.random.default_rng(202)


class TestIndividualFitters:
    def test_exponential_recovers_rate(self, rng):
        samples = Exponential(3.0).sample(rng, 50_000)
        fitted = fit_exponential(samples)
        assert fitted.rate == pytest.approx(3.0, rel=0.03)

    def test_lognormal_recovers_parameters(self, rng):
        samples = LogNormal(-0.5, 0.7).sample(rng, 50_000)
        fitted = fit_lognormal(samples)
        assert fitted.mu == pytest.approx(-0.5, abs=0.02)
        assert fitted.sigma == pytest.approx(0.7, rel=0.03)

    def test_weibull_recovers_parameters(self, rng):
        truth = Weibull(1.8, 2.5)
        samples = truth.sample(rng, 50_000)
        fitted = fit_weibull(samples)
        assert fitted.shape == pytest.approx(1.8, rel=0.08)
        assert fitted.scale == pytest.approx(2.5, rel=0.05)

    def test_uniform_covers_range(self, rng):
        samples = Uniform(1.0, 4.0).sample(rng, 10_000)
        fitted = fit_uniform(samples)
        assert fitted.low == pytest.approx(1.0, abs=0.01)
        assert fitted.high == pytest.approx(4.0, abs=0.01)

    def test_bounded_pareto_bounds(self, rng):
        from repro.distributions import BoundedPareto

        samples = BoundedPareto(1.2, 1.0, 100.0).sample(rng, 10_000)
        fitted = fit_bounded_pareto(samples)
        assert fitted.low >= 0.99
        assert fitted.high <= 101.0

    def test_degenerate_samples_rejected(self):
        with pytest.raises(DistributionError):
            fit_lognormal([1.0, 1.0, 1.0])
        with pytest.raises(DistributionError):
            fit_uniform([2.0, 2.0])
        with pytest.raises(DistributionError):
            fit_exponential([1.0])

    def test_lognormal_rejects_zeros(self):
        with pytest.raises(DistributionError):
            fit_lognormal([0.0, 1.0, 2.0])


class TestKSDistance:
    def test_zero_for_own_samples_limit(self, rng):
        dist = Exponential(1.0)
        samples = dist.sample(rng, 100_000)
        assert ks_distance(dist, samples) < 0.01

    def test_large_for_wrong_model(self, rng):
        samples = Uniform(10.0, 11.0).sample(rng, 10_000)
        assert ks_distance(Exponential(1.0), samples) > 0.5


class TestFitBest:
    def test_picks_correct_family(self, rng):
        samples = LogNormal(0.0, 0.9).sample(rng, 30_000)
        name, model, distance = fit_best(samples)
        assert name == "lognormal"
        assert distance < 0.02

    def test_exponential_detected(self, rng):
        samples = Exponential(2.0).sample(rng, 30_000)
        name, model, distance = fit_best(samples)
        # Weibull with shape ~1 is an exponential, so accept either.
        assert name in ("exponential", "weibull")
        assert distance < 0.02

    def test_unknown_family_rejected(self, rng):
        with pytest.raises(DistributionError):
            fit_best(Exponential(1.0).sample(rng, 100), families=("cauchy",))

    def test_all_families_registered(self):
        assert set(FITTERS) == {
            "exponential", "lognormal", "weibull", "uniform",
            "bounded-pareto",
        }

    def test_fitted_model_useful_for_deadlines(self, rng):
        """End-to-end: profile a 'measured' workload, fit a model, use
        it in a deadline estimator — the cold-start path of §III.B.2."""
        from repro.core.deadline import DeadlineEstimator
        from repro.types import ServiceClass
        from repro.workloads import get_workload

        truth = get_workload("masstree").service_time
        samples = truth.sample(rng, 2_000)
        _, model, _ = fit_best(samples)
        estimator = DeadlineEstimator(model, n_servers=100)
        budget = estimator.budget(ServiceClass("gold", 1.0), fanout=100)
        true_budget = 1.0 - 0.473
        assert budget == pytest.approx(true_budget, abs=0.25)
