"""Unit tests for ``SimulationResult.merge`` composition semantics."""

from dataclasses import replace

import numpy as np
import pytest

from repro import (
    ClusterConfig,
    ConfigurationError,
    CrashProcess,
    FaultPlan,
    ServiceClass,
    SimulationResult,
    TraceRecorder,
    simulate,
)
from repro.distributions import Exponential
from repro.workloads import PoissonArrivals, Workload, single_class_mix
from repro.workloads.fanout import UniformFanout


def make_workload(class_name: str = "gold", slo_ms: float = 50.0) -> Workload:
    return Workload(
        "unit", PoissonArrivals(2.0), UniformFanout(1, 4),
        single_class_mix(ServiceClass(class_name, slo_ms=slo_ms)),
        Exponential(1.0),
    )


def run(seed: int = 0, policy: str = "fifo", n_queries: int = 200,
        workload: Workload = None, **kwargs) -> SimulationResult:
    config = ClusterConfig(4, policy, workload=workload or make_workload(),
                           n_queries=n_queries, seed=seed, **kwargs)
    return simulate(config)


def assert_same_merged(a: SimulationResult, b: SimulationResult):
    assert np.array_equal(a.latency, b.latency, equal_nan=True)
    assert np.array_equal(a.arrival, b.arrival)
    assert np.array_equal(a.fanout, b.fanout)
    assert np.array_equal(a.class_index, b.class_index)
    assert np.array_equal(a.rejected, b.rejected)
    assert np.array_equal(a.measured, b.measured)
    assert a.classes == b.classes
    assert a.policy_name == b.policy_name
    assert a.n_servers == b.n_servers
    assert a.tasks_total == b.tasks_total
    assert a.tasks_missed_deadline == b.tasks_missed_deadline
    assert a.busy_time_total == b.busy_time_total
    assert a.duration == b.duration
    assert a.offered_load == pytest.approx(b.offered_load)
    assert a.mean_service_ms == pytest.approx(b.mean_service_ms)


class TestMergeBasics:
    def test_empty_merge_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one result"):
            SimulationResult.merge([])

    def test_single_result_merge_is_identity_on_arrays(self):
        a = run(seed=1)
        merged = SimulationResult.merge([a])
        assert np.array_equal(merged.latency, a.latency, equal_nan=True)
        assert merged.n_servers == a.n_servers
        assert merged.offered_load == pytest.approx(a.offered_load)
        assert merged.obs is None  # untraced input stays untraced

    def test_counters_add_and_duration_is_max(self):
        a, b = run(seed=1, n_queries=150), run(seed=2, n_queries=300)
        merged = SimulationResult.merge([a, b])
        assert merged.n_servers == a.n_servers + b.n_servers
        assert merged.tasks_total == a.tasks_total + b.tasks_total
        assert merged.busy_time_total == a.busy_time_total + b.busy_time_total
        assert merged.duration == max(a.duration, b.duration)
        assert merged.latency.size == 450

    def test_timeline_and_overload_not_merged(self):
        a = run(seed=1, timeline_interval_ms=5.0)
        assert a.timeline is not None
        merged = SimulationResult.merge([a, run(seed=2)])
        assert merged.timeline is None
        assert merged.overload is None


class TestMergeAssociativity:
    def test_three_way_merge_is_associative(self):
        a, b, c = (run(seed=s, n_queries=100 + 40 * s) for s in (1, 2, 3))
        flat = SimulationResult.merge([a, b, c])
        left = SimulationResult.merge([SimulationResult.merge([a, b]), c])
        right = SimulationResult.merge([a, SimulationResult.merge([b, c])])
        assert_same_merged(flat, left)
        assert_same_merged(flat, right)


class TestMergeOrder:
    def test_order_restores_interleaved_positions(self):
        a, b = run(seed=1, n_queries=120), run(seed=2, n_queries=80)
        rng = np.random.default_rng(5)
        order = rng.permutation(200)
        merged = SimulationResult.merge([a, b], order=order)
        concat = np.concatenate([a.arrival, b.arrival])
        assert np.array_equal(merged.arrival[order], concat)

    def test_order_wrong_length_rejected(self):
        a, b = run(seed=1, n_queries=100), run(seed=2, n_queries=100)
        with pytest.raises(ConfigurationError, match="positions for"):
            SimulationResult.merge([a, b], order=np.arange(150))

    def test_order_must_be_permutation(self):
        a, b = run(seed=1, n_queries=100), run(seed=2, n_queries=100)
        bad = np.zeros(200, dtype=np.int64)
        with pytest.raises(ConfigurationError, match="permutation"):
            SimulationResult.merge([a, b], order=bad)


class TestMergeClassTable:
    def test_same_class_dedupes(self):
        a, b = run(seed=1), run(seed=2)
        merged = SimulationResult.merge([a, b])
        assert len(merged.classes) == 1
        assert merged.classes[0].name == "gold"

    def test_distinct_classes_remap_indices(self):
        a = run(seed=1, n_queries=100)
        b = run(seed=2, n_queries=100, workload=make_workload("silver"))
        merged = SimulationResult.merge([a, b])
        assert [sc.name for sc in merged.classes] == ["gold", "silver"]
        assert np.all(merged.class_index[:100] == 0)
        assert np.all(merged.class_index[100:] == 1)

    def test_conflicting_class_definitions_rejected(self):
        a = run(seed=1)
        b = run(seed=2, workload=make_workload("gold", slo_ms=9.0))
        with pytest.raises(ConfigurationError,
                           match="two different classes named"):
            SimulationResult.merge([a, b])

    def test_mixed_policies_get_composite_name(self):
        merged = SimulationResult.merge(
            [run(seed=1, policy="fifo"), run(seed=2, policy="tailguard")])
        assert merged.policy_name == "mixed(fifo+tailguard)"


class TestMergeOptionalArrays:
    def test_fault_arrays_fill_untraced_inputs(self):
        plan = FaultPlan(
            crashes=CrashProcess(mtbf_ms=50.0, mttr_ms=5.0, seed=3))
        faulty = simulate(
            ClusterConfig(4, "fifo", workload=make_workload(),
                          n_queries=200, seed=1, faults=plan))
        clean = run(seed=2, n_queries=100)
        assert faulty.failed is not None and clean.failed is None
        merged = SimulationResult.merge([faulty, clean])
        assert merged.failed is not None
        assert np.array_equal(merged.failed[:200], faulty.failed)
        assert not merged.failed[200:].any()
        assert merged.server_failures == faulty.server_failures

    def test_all_clean_inputs_keep_optionals_none(self):
        merged = SimulationResult.merge([run(seed=1), run(seed=2)])
        assert merged.failed is None
        assert merged.coverage is None
        assert merged.degraded is None


class TestMergeObservability:
    def test_auto_fold_offsets_server_ids(self):
        a = simulate(ClusterConfig(
            4, "fifo", workload=make_workload(), n_queries=150, seed=1,
            recorder=TraceRecorder()))
        b = simulate(ClusterConfig(
            4, "fifo", workload=make_workload(), n_queries=150, seed=2,
            recorder=TraceRecorder()))
        merged = SimulationResult.merge([a, b])
        assert merged.obs is not None
        assert merged.obs is not a.obs and merged.obs is not b.obs
        server_ids = {e.server_id for e in merged.obs.events
                      if e.server_id >= 0}
        assert any(sid >= 4 for sid in server_ids)  # b offset by a's pool
        assert all(0 <= sid < 8 for sid in server_ids)
        query_ids = {e.query_id for e in merged.obs.events
                     if e.query_id >= 0}
        assert max(query_ids) >= 150  # b's rows mapped to global positions

    def test_shared_recorder_object_rejected(self):
        a = simulate(ClusterConfig(
            4, "fifo", workload=make_workload(), n_queries=100, seed=1,
            recorder=TraceRecorder()))
        twin = replace(a)  # distinct result, same recorder object
        with pytest.raises(ConfigurationError, match="share one recorder"):
            SimulationResult.merge([a, twin])

    def test_explicit_obs_binding_skips_auto_fold(self):
        a = simulate(ClusterConfig(
            4, "fifo", workload=make_workload(), n_queries=100, seed=1,
            recorder=TraceRecorder()))
        b = run(seed=2, n_queries=100)
        merged = SimulationResult.merge([a, b], obs=None)
        assert merged.obs is None
        parent = TraceRecorder()
        merged = SimulationResult.merge([a, b], obs=parent)
        assert merged.obs is parent
