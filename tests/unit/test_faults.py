"""Unit tests for the fault-model layer (repro.faults.plan)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CrashProcess,
    Downtime,
    FaultPlan,
    HedgePolicy,
    RetryPolicy,
    StragglerEpisode,
    fault_horizon,
    pick_server,
)
from repro.faults.plan import FAIL, RECOVER


class TestValidation:
    def test_downtime_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            Downtime(0, 5.0, 5.0)
        with pytest.raises(ConfigurationError):
            Downtime(0, -1.0, 5.0)
        with pytest.raises(ConfigurationError):
            Downtime(-1, 0.0, 5.0)

    def test_crash_process_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            CrashProcess(mtbf_ms=0.0, mttr_ms=1.0)
        with pytest.raises(ConfigurationError):
            CrashProcess(mtbf_ms=1.0, mttr_ms=-1.0)

    def test_straggler_rejects_speedup(self):
        with pytest.raises(ConfigurationError):
            StragglerEpisode((0,), 0.0, 10.0, 0.5)
        with pytest.raises(ConfigurationError):
            StragglerEpisode((), 0.0, 10.0, 2.0)

    def test_retry_policy_bounds(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_ms=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_ms=0.0)

    def test_hedge_policy_bounds(self):
        with pytest.raises(ConfigurationError):
            HedgePolicy(quantile=1.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(delay_ms=0.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(max_hedges=0)

    def test_overlapping_windows_rejected(self):
        plan = FaultPlan(downtimes=(Downtime(0, 0.0, 10.0),
                                    Downtime(0, 5.0, 15.0)))
        with pytest.raises(ConfigurationError):
            plan.materialize(4, 100.0)

    def test_downtime_beyond_cluster_rejected(self):
        plan = FaultPlan(downtimes=(Downtime(9, 0.0, 10.0),))
        with pytest.raises(ConfigurationError):
            plan.materialize(4, 100.0)


class TestActivity:
    def test_empty_plan_is_inactive(self):
        assert not FaultPlan().active

    def test_retry_alone_is_inactive(self):
        # Mitigations without a failure source change nothing.
        assert not FaultPlan(retry=RetryPolicy()).active

    def test_hedge_alone_is_active(self):
        # Hedging cuts the tail even without crashes.
        assert FaultPlan(hedge=HedgePolicy(delay_ms=1.0)).active

    def test_kill_mode_follows_retry(self):
        assert not FaultPlan(downtimes=(Downtime(0, 1.0, 2.0),)).kill_mode
        assert FaultPlan(downtimes=(Downtime(0, 1.0, 2.0),),
                         retry=RetryPolicy()).kill_mode


class TestCrashProcess:
    def test_materialize_is_deterministic(self):
        process = CrashProcess(mtbf_ms=50.0, mttr_ms=5.0, seed=3)
        first = process.materialize(4, 1000.0)
        second = process.materialize(4, 1000.0)
        assert first == second

    def test_different_seeds_differ(self):
        a = CrashProcess(mtbf_ms=50.0, mttr_ms=5.0, seed=3)
        b = CrashProcess(mtbf_ms=50.0, mttr_ms=5.0, seed=4)
        assert a.materialize(4, 1000.0) != b.materialize(4, 1000.0)

    def test_windows_respect_horizon_and_servers(self):
        process = CrashProcess(mtbf_ms=20.0, mttr_ms=2.0,
                               server_ids=(1, 2), seed=0)
        for window in process.materialize(4, 500.0):
            assert window.server_id in (1, 2)
            assert window.start_ms < 500.0


class TestMaterialized:
    def plan(self):
        return FaultPlan(
            downtimes=(Downtime(0, 10.0, 20.0), Downtime(1, 15.0, 25.0)),
            stragglers=(StragglerEpisode((1,), 0.0, 50.0, 2.0),),
        )

    def test_transitions_sorted(self):
        transitions = self.plan().materialize(4, 100.0).transitions()
        assert transitions == [
            (10.0, 0, FAIL), (15.0, 1, FAIL),
            (20.0, 0, RECOVER), (25.0, 1, RECOVER),
        ]

    def test_is_down(self):
        mf = self.plan().materialize(4, 100.0)
        assert not mf.is_down(0, 9.9)
        assert mf.is_down(0, 10.0)
        assert mf.is_down(0, 19.9)
        assert not mf.is_down(0, 20.0)
        assert not mf.is_down(3, 12.0)

    def test_straggler_factor(self):
        mf = self.plan().materialize(4, 100.0)
        assert mf.straggler_factor(1, 25.0) == 2.0
        assert mf.straggler_factor(1, 50.0) == 1.0
        assert mf.straggler_factor(0, 25.0) == 1.0


class TestPickServer:
    def test_least_loaded_wins(self):
        assert pick_server([3, 1, 2], [True, True, True]) == 1

    def test_ties_break_low(self):
        assert pick_server([2, 1, 1], [True, True, True]) == 1

    def test_down_and_excluded_skipped(self):
        assert pick_server([0, 1, 2], [False, True, True], exclude=(1,)) == 2

    def test_no_candidate(self):
        assert pick_server([0, 0], [False, False]) == -1


class TestHedgeDelay:
    def test_explicit_delay_wins(self):
        from repro.distributions import Deterministic
        policy = HedgePolicy(quantile=0.9, delay_ms=4.0)
        assert policy.delay_for(Deterministic(100.0)) == 4.0

    def test_quantile_delay(self):
        from repro.distributions import Deterministic
        policy = HedgePolicy(quantile=0.9)
        assert policy.delay_for(Deterministic(3.0)) == 3.0


def test_fault_horizon_formula():
    assert fault_horizon(0.0) == 1000.0
    assert fault_horizon(100.0) == 1150.0
