"""Unit tests for the shard map and sharded placement."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.errors import ConfigurationError
from repro.types import QuerySpec, ServiceClass
from repro.workloads.sharding import ShardMap, ShardedPlacement


@pytest.fixture
def rng():
    return np.random.default_rng(303)


@pytest.fixture
def gold():
    return ServiceClass("gold", slo_ms=10.0)


class TestShardMap:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardMap(0, 10)
        with pytest.raises(ConfigurationError):
            ShardMap(10, 4, replication=5)

    def test_replica_count(self):
        shard_map = ShardMap(100, 10, replication=3)
        for shard in range(100):
            replicas = shard_map.replicas(shard)
            assert len(set(replicas)) == 3

    def test_replicas_within_cluster(self):
        shard_map = ShardMap(40, 8, replication=2)
        for shard in range(40):
            assert all(0 <= s < 8 for s in shard_map.replicas(shard))

    def test_unknown_shard(self):
        with pytest.raises(ConfigurationError):
            ShardMap(4, 4).replicas(10)

    def test_negative_shard_does_not_wrap(self):
        # Python list indexing would silently resolve -1; the explicit
        # bound check must reject it.
        with pytest.raises(ConfigurationError, match="outside"):
            ShardMap(4, 4).replicas(-1)
        with pytest.raises(ConfigurationError, match="outside"):
            ShardMap(4, 4).shards_on(-1)

    def test_validate_cluster(self):
        shard_map = ShardMap(40, 8)
        shard_map.validate_cluster(8)  # exact match passes
        with pytest.raises(ConfigurationError, match="covers 8 servers"):
            shard_map.validate_cluster(16)
        with pytest.raises(ConfigurationError, match="covers 8 servers"):
            shard_map.validate_cluster(4)

    def test_shards_on_inverse(self):
        shard_map = ShardMap(20, 5, replication=2)
        for server in range(5):
            for shard in shard_map.shards_on(server):
                assert server in shard_map.replicas(shard)

    def test_balanced_without_replication(self):
        shard_map = ShardMap(100, 10)
        counts = [len(shard_map.shards_on(server)) for server in range(10)]
        assert max(counts) - min(counts) <= 1


class TestShardedPlacement:
    def test_distinct_servers(self, rng, gold):
        placement = ShardedPlacement(ShardMap(200, 20, replication=2))
        spec = QuerySpec(0, 0.0, 8, gold)
        servers = placement(spec, rng)
        assert len(servers) == 8
        assert len(set(servers)) == 8

    def test_fanout_exceeding_cluster(self, rng, gold):
        placement = ShardedPlacement(ShardMap(10, 4))
        with pytest.raises(ConfigurationError):
            placement(QuerySpec(0, 0.0, 5, gold), rng)

    def test_full_fanout_covers_cluster(self, rng, gold):
        placement = ShardedPlacement(ShardMap(64, 8))
        servers = placement(QuerySpec(0, 0.0, 8, gold), rng)
        assert sorted(servers) == list(range(8))

    def test_popularity_skews_load(self, rng):
        uniform = ShardedPlacement(ShardMap(100, 10))
        skewed = ShardedPlacement(ShardMap(100, 10), popularity_alpha=1.5)
        load_uniform = uniform.server_load_profile(20_000, rng)
        load_skewed = skewed.server_load_profile(20_000, rng)
        assert max(load_skewed.values()) > 1.5 * max(load_uniform.values())

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            ShardedPlacement(ShardMap(10, 4), popularity_alpha=0.0)

    def test_end_to_end_simulation(self, gold):
        """A sharded placement drives the cluster simulator."""
        from repro.workloads import (
            PoissonArrivals,
            Workload,
            inverse_proportional_fanout,
            single_class_mix,
        )
        from repro.workloads import get_workload

        bench = get_workload("masstree")
        workload = Workload(
            "sharded", PoissonArrivals(1.0),
            inverse_proportional_fanout([1, 4, 16]),
            single_class_mix(gold), bench.service_time,
        )
        placement = ShardedPlacement(ShardMap(160, 16, replication=2),
                                     popularity_alpha=1.2)
        config = ClusterConfig(
            n_servers=16, policy="tailguard", workload=workload,
            n_queries=3_000, seed=4, placement=placement,
        ).at_load(0.3)
        result = simulate(config)
        assert result.count() > 0
        assert not np.isnan(result.latencies()).any()

    def test_least_loaded_requires_depths(self, rng, gold):
        placement = ShardedPlacement(ShardMap(40, 8, replication=2),
                                     select="least-loaded")
        with pytest.raises(ConfigurationError):
            placement(QuerySpec(0, 0.0, 2, gold), rng)

    def test_invalid_select(self):
        with pytest.raises(ConfigurationError):
            ShardedPlacement(ShardMap(10, 4), select="shortest-job")

    def test_least_loaded_picks_emptier_replica(self, rng, gold):
        shard_map = ShardMap(8, 4, replication=2)
        placement = ShardedPlacement(shard_map, select="least-loaded")
        # Server 0 is deeply queued; any shard with a free alternative
        # replica should avoid it.
        depths = (50, 0, 0, 0)
        picks = [
            placement(QuerySpec(i, 0.0, 1, gold), rng, depths)[0]
            for i in range(200)
        ]
        share_of_zero = picks.count(0) / len(picks)
        uniform_share = np.mean([
            1.0 / len(shard_map.replicas(s)) if 0 in shard_map.replicas(s)
            else 0.0
            for s in range(shard_map.n_shards)
        ])
        assert share_of_zero < uniform_share / 2

    def test_least_loaded_reduces_tail_under_skew(self, gold):
        """Power-of-choices replica selection beats random selection on
        hot shards — the §II.B replica-selection idea, composable with
        TailGuard."""
        from repro.workloads import (
            PoissonArrivals,
            Workload,
            get_workload,
            inverse_proportional_fanout,
            single_class_mix,
        )

        bench = get_workload("masstree")
        workload = Workload(
            "sharded", PoissonArrivals(1.0),
            inverse_proportional_fanout([1, 4]),
            single_class_mix(gold), bench.service_time,
        )

        def tail_for(select):
            placement = ShardedPlacement(
                ShardMap(160, 16, replication=3),
                popularity_alpha=1.5, select=select,
            )
            config = ClusterConfig(
                n_servers=16, policy="tailguard", workload=workload,
                n_queries=20_000, seed=4, placement=placement,
            ).at_load(0.45)
            return simulate(config).tail(99.0)

        assert tail_for("least-loaded") < tail_for("random")

    def test_hot_shards_concentrate_tail(self, gold):
        """Skewed shard popularity raises tails versus uniform placement
        at the same offered load — the §I outlier source."""
        from repro.workloads import (
            PoissonArrivals,
            Workload,
            get_workload,
            inverse_proportional_fanout,
            single_class_mix,
        )

        bench = get_workload("masstree")
        workload = Workload(
            "sharded", PoissonArrivals(1.0),
            inverse_proportional_fanout([1, 4]),
            single_class_mix(gold), bench.service_time,
        )

        def tail_for(placement):
            config = ClusterConfig(
                n_servers=16, policy="tailguard", workload=workload,
                n_queries=15_000, seed=4, placement=placement,
            ).at_load(0.5)
            return simulate(config).tail(99.0)

        uniform_tail = tail_for(ShardedPlacement(ShardMap(160, 16)))
        skewed_tail = tail_for(
            ShardedPlacement(ShardMap(160, 16), popularity_alpha=1.5)
        )
        assert skewed_tail > uniform_tail


class TestPlacementBoundsInKernel:
    """The simulators reject placements that escape the flat server
    index instead of crashing (or silently wrapping) deep in the
    engine — e.g. a ShardMap built for a different cluster size."""

    def _config(self, gold, placement, faults=None):
        from repro.workloads import (
            PoissonArrivals,
            Workload,
            get_workload,
            inverse_proportional_fanout,
            single_class_mix,
        )

        bench = get_workload("masstree")
        workload = Workload(
            "sharded", PoissonArrivals(1.0),
            inverse_proportional_fanout([1, 4]),
            single_class_mix(gold), bench.service_time,
        )
        return ClusterConfig(
            n_servers=8, policy="fifo", workload=workload,
            n_queries=200, seed=4, placement=placement, faults=faults,
        ).at_load(0.3)

    def test_oversized_shard_map_rejected_by_simulator(self, gold):
        # Map for 16 servers driving an 8-server cluster: emits ids >= 8.
        placement = ShardedPlacement(ShardMap(64, 16))
        with pytest.raises(ConfigurationError, match="outside"):
            simulate(self._config(gold, placement))

    def test_oversized_shard_map_rejected_under_faults(self, gold):
        from repro.faults import CrashProcess, FaultPlan

        placement = ShardedPlacement(ShardMap(64, 16))
        plan = FaultPlan(crashes=CrashProcess(mtbf_ms=1e9, mttr_ms=1.0))
        with pytest.raises(ConfigurationError, match="outside"):
            simulate(self._config(gold, placement, faults=plan))

    def test_wrong_arity_rejected(self, gold):
        def two_servers(spec, rng):
            return (0, 1)

        with pytest.raises(ConfigurationError, match="for fanout"):
            simulate(self._config(gold, two_servers))
