"""Unit tests for empirical and online-updating CDFs."""

import numpy as np
import pytest

from repro.distributions import EmpiricalDistribution, Exponential, OnlineEmpiricalCDF
from repro.distributions.empirical import from_quantile_table
from repro.errors import DistributionError


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestEmpiricalDistribution:
    def test_requires_samples(self):
        with pytest.raises(DistributionError):
            EmpiricalDistribution([])

    def test_rejects_negative(self):
        with pytest.raises(DistributionError):
            EmpiricalDistribution([1.0, -0.5])

    def test_rejects_nan(self):
        with pytest.raises(DistributionError):
            EmpiricalDistribution([1.0, float("nan")])

    def test_cdf_step_values(self):
        d = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        assert d.cdf(0.5) == 0.0
        assert d.cdf(1.0) == 0.25
        assert d.cdf(2.5) == 0.5
        assert d.cdf(4.0) == 1.0

    def test_quantile_bounds(self):
        d = EmpiricalDistribution([5.0, 1.0, 3.0])
        assert d.quantile(0.0) == 1.0
        assert d.quantile(1.0) == 5.0

    def test_mean(self):
        d = EmpiricalDistribution([1.0, 2.0, 3.0])
        assert d.mean() == 2.0

    def test_samples_are_readonly(self):
        d = EmpiricalDistribution([2.0, 1.0])
        with pytest.raises(ValueError):
            d.samples[0] = 0.0

    def test_bootstrap_sampling_draws_from_data(self, rng):
        d = EmpiricalDistribution([1.0, 7.0])
        draws = d.sample(rng, 1000)
        assert set(np.unique(draws)) <= {1.0, 7.0}

    def test_matches_source_distribution(self, rng):
        source = Exponential(2.0)
        d = EmpiricalDistribution(source.sample(rng, 100_000))
        assert d.quantile(0.9) == pytest.approx(source.quantile(0.9), rel=0.03)
        assert d.mean() == pytest.approx(0.5, rel=0.03)


class TestOnlineEmpiricalCDF:
    def test_empty_without_seed_raises_on_query(self):
        online = OnlineEmpiricalCDF()
        with pytest.raises(DistributionError):
            online.quantile(0.5)

    def test_seeded_from_initial_distribution(self, rng):
        online = OnlineEmpiricalCDF(initial=Exponential(1.0),
                                    seed_samples=500, rng=rng)
        assert online.n == 500
        assert online.quantile(0.5) > 0

    def test_update_changes_estimate(self):
        online = OnlineEmpiricalCDF(window=100)
        for _ in range(50):
            online.update(1.0)
        assert online.quantile(0.99) == 1.0
        for _ in range(100):
            online.update(9.0)
        # Window fully displaced by the new regime.
        assert online.quantile(0.01) == 9.0

    def test_window_evicts_oldest(self):
        online = OnlineEmpiricalCDF(window=10)
        for value in range(10):
            online.update(float(value))
        online.update(100.0)
        assert online.n == 10
        # 0.0 has been evicted.
        assert online.quantile(0.0) == 1.0

    def test_rejects_bad_observation(self):
        online = OnlineEmpiricalCDF(window=10)
        with pytest.raises(DistributionError):
            online.update(-1.0)
        with pytest.raises(DistributionError):
            online.update(float("inf"))

    def test_total_updates_counter(self):
        online = OnlineEmpiricalCDF(window=5)
        for value in range(7):
            online.update(float(value))
        assert online.total_updates == 7
        assert online.n == 5

    def test_snapshot_is_frozen(self):
        online = OnlineEmpiricalCDF(window=10)
        online.update_many([1.0, 2.0, 3.0])
        snap = online.snapshot()
        online.update(100.0)
        assert snap.quantile(1.0) == 3.0

    def test_window_too_small(self):
        with pytest.raises(DistributionError):
            OnlineEmpiricalCDF(window=1)


class TestFromQuantileTable:
    def test_interpolates_quantiles(self):
        d = from_quantile_table([0.0, 0.5, 1.0], [0.0, 1.0, 2.0])
        assert d.quantile(0.5) == pytest.approx(1.0, abs=1e-3)
        assert d.quantile(0.25) == pytest.approx(0.5, abs=1e-3)

    def test_mismatched_inputs(self):
        with pytest.raises(DistributionError):
            from_quantile_table([0.0, 1.0], [1.0])
