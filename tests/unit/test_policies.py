"""Unit tests for queuing policies and task queues (paper §III.A)."""

import pytest

from repro.core.policies import (
    EDFTaskQueue,
    FIFOTaskQueue,
    LazyEDFTaskQueue,
    POLICIES,
    PriorityTaskQueue,
    get_policy,
)
from repro.errors import ConfigurationError
from repro.types import ServiceClass


@pytest.fixture
def gold():
    return ServiceClass("gold", 1.0, priority=0)


@pytest.fixture
def silver():
    return ServiceClass("silver", 1.5, priority=1)


class TestRegistry:
    def test_all_four_policies_registered(self):
        assert set(POLICIES) == {"fifo", "priq", "t-edf", "tailguard",
                                 "wrr"}

    def test_aliases(self):
        assert get_policy("TF-EDFQ").name == "tailguard"
        assert get_policy("t-edfq").name == "t-edf"
        assert get_policy("edf").name == "t-edf"

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            get_policy("lifo")

    def test_only_tailguard_uses_fanout(self):
        assert get_policy("tailguard").uses_fanout
        assert not get_policy("fifo").uses_fanout
        assert not get_policy("priq").uses_fanout
        assert not get_policy("t-edf").uses_fanout


class TestQueueKeys:
    def test_fifo_key_is_arrival(self, gold):
        key = get_policy("fifo").queue_key(5.0, gold, 99.0)
        assert key == (5.0,)

    def test_priq_key_leads_with_priority(self, gold, silver):
        policy = get_policy("priq")
        assert policy.queue_key(5.0, gold, 99.0) == (0, 5.0)
        assert policy.queue_key(5.0, silver, 99.0) == (1, 5.0)

    def test_tedf_key_ignores_fanout_deadline(self, gold):
        key = get_policy("t-edf").queue_key(5.0, gold, 1.0)
        assert key == (6.0,)  # arrival + SLO, not the TF deadline

    def test_tailguard_key_is_tf_deadline(self, gold):
        key = get_policy("tailguard").queue_key(5.0, gold, 5.4)
        assert key == (5.4,)


class TestFIFOTaskQueue:
    def test_order_preserved(self):
        queue = FIFOTaskQueue()
        for item in "abc":
            queue.push(item, (0.0,))
        assert [queue.pop() for _ in range(3)] == list("abc")

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            FIFOTaskQueue().pop()

    def test_bool_and_len(self):
        queue = FIFOTaskQueue()
        assert not queue
        queue.push("x", (0.0,))
        assert queue
        assert len(queue) == 1


class TestEDFTaskQueue:
    def test_pops_smallest_key_first(self):
        queue = EDFTaskQueue()
        queue.push("late", (10.0,))
        queue.push("early", (1.0,))
        queue.push("middle", (5.0,))
        assert [queue.pop() for _ in range(3)] == ["early", "middle", "late"]

    def test_ties_broken_fifo(self):
        queue = EDFTaskQueue()
        queue.push("first", (1.0,))
        queue.push("second", (1.0,))
        assert queue.pop() == "first"
        assert queue.pop() == "second"

    def test_interleaved_push_pop(self):
        queue = EDFTaskQueue()
        queue.push("a", (3.0,))
        queue.push("b", (1.0,))
        assert queue.pop() == "b"
        queue.push("c", (2.0,))
        assert queue.pop() == "c"
        assert queue.pop() == "a"


class TestLazyEDFTaskQueue:
    """The slotted/lazy-deletion EDF line: cancelled entries must never
    surface as live work, while phantom slots keep counting toward
    depth until physically popped (both simulators' convention)."""

    def test_policies_create_lazy_queues(self):
        assert isinstance(get_policy("t-edf").create_queue(),
                          LazyEDFTaskQueue)
        assert isinstance(get_policy("tailguard").create_queue(),
                          LazyEDFTaskQueue)
        assert LazyEDFTaskQueue.supports_cancel is True
        assert not getattr(EDFTaskQueue(), "supports_cancel", False)

    def test_cancelled_task_never_dequeued_live(self):
        queue = LazyEDFTaskQueue()
        winner, loser, straggler = object(), object(), object()
        queue.push(loser, (1.0,))
        queue.push(winner, (2.0,))
        queue.push(straggler, (3.0,))
        assert queue.cancel(loser) is True
        assert queue.pop() is winner
        assert queue.pop() is straggler
        with pytest.raises(IndexError):
            queue.pop()

    def test_every_live_entry_cancelled(self):
        queue = LazyEDFTaskQueue()
        tasks = [object() for _ in range(5)]
        for i, task in enumerate(tasks):
            queue.push(task, (float(i),))
        for task in tasks:
            assert queue.cancel(task) is True
        task, popped = queue.pop_live()
        assert task is None
        assert popped == 5
        assert len(queue) == 0

    def test_cancel_is_by_identity(self):
        queue = LazyEDFTaskQueue()
        first, second = [7, 1], [7, 1]  # equal values, distinct objects
        assert first is not second
        queue.push(first, (1.0,))
        queue.push(second, (2.0,))
        assert queue.cancel(first) is True
        assert queue.pop() is second

    def test_cancel_misses_return_false(self):
        queue = LazyEDFTaskQueue()
        task = object()
        assert queue.cancel(task) is False          # never pushed
        queue.push(task, (1.0,))
        assert queue.cancel(task) is True
        assert queue.cancel(task) is False          # already cancelled
        other = object()
        queue.push(other, (1.0,))
        assert queue.pop() is other
        assert queue.cancel(other) is False         # already popped

    def test_pop_live_reports_physical_pops(self):
        queue = LazyEDFTaskQueue()
        dead_a, dead_b, live = object(), object(), object()
        queue.push(dead_a, (1.0,))
        queue.push(dead_b, (2.0,))
        queue.push(live, (3.0,))
        queue.cancel(dead_a)
        queue.cancel(dead_b)
        task, popped = queue.pop_live()
        assert task is live
        assert popped == 3  # two phantoms + the live entry

    def test_phantoms_count_until_popped(self):
        queue = LazyEDFTaskQueue()
        cancelled_task, live = object(), object()
        queue.push(cancelled_task, (1.0,))
        queue.push(live, (5.0,))
        queue.cancel(cancelled_task)
        # Dead slot still occupies the line for depth accounting.
        assert len(queue) == 2
        assert queue.reorder_depth((3.0,)) == 1
        assert queue.pop() is live
        assert len(queue) == 0

    def test_pop_order_matches_edf_without_cancels(self):
        lazy, plain = LazyEDFTaskQueue(), EDFTaskQueue()
        keys = [(4.0,), (1.0,), (3.0,), (1.0,), (2.0,)]
        for i, key in enumerate(keys):
            lazy.push(i, key)
            plain.push(i, key)
        assert ([lazy.pop() for _ in keys]
                == [plain.pop() for _ in keys])

    def test_reuse_after_pop_and_cancel(self):
        queue = LazyEDFTaskQueue()
        task = object()
        queue.push(task, (1.0,))
        assert queue.pop() is task
        queue.push(task, (2.0,))        # re-queue the same object
        assert queue.cancel(task) is True
        task2, popped = queue.pop_live()
        assert task2 is None and popped == 1


class TestPriorityTaskQueue:
    def test_strict_priority(self):
        queue = PriorityTaskQueue()
        queue.push("low1", (1, 0.0))
        queue.push("high1", (0, 1.0))
        queue.push("low2", (1, 2.0))
        queue.push("high2", (0, 3.0))
        assert [queue.pop() for _ in range(4)] == [
            "high1", "high2", "low1", "low2"
        ]

    def test_fifo_within_priority(self):
        queue = PriorityTaskQueue()
        for tag in ("a", "b", "c"):
            queue.push(tag, (0, 0.0))
        assert [queue.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            PriorityTaskQueue().pop()

    def test_len_across_lanes(self):
        queue = PriorityTaskQueue()
        queue.push("x", (0, 0.0))
        queue.push("y", (3, 0.0))
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1
