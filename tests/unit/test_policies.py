"""Unit tests for queuing policies and task queues (paper §III.A)."""

import pytest

from repro.core.policies import (
    EDFTaskQueue,
    FIFOTaskQueue,
    POLICIES,
    PriorityTaskQueue,
    get_policy,
)
from repro.errors import ConfigurationError
from repro.types import ServiceClass


@pytest.fixture
def gold():
    return ServiceClass("gold", 1.0, priority=0)


@pytest.fixture
def silver():
    return ServiceClass("silver", 1.5, priority=1)


class TestRegistry:
    def test_all_four_policies_registered(self):
        assert set(POLICIES) == {"fifo", "priq", "t-edf", "tailguard",
                                 "wrr"}

    def test_aliases(self):
        assert get_policy("TF-EDFQ").name == "tailguard"
        assert get_policy("t-edfq").name == "t-edf"
        assert get_policy("edf").name == "t-edf"

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            get_policy("lifo")

    def test_only_tailguard_uses_fanout(self):
        assert get_policy("tailguard").uses_fanout
        assert not get_policy("fifo").uses_fanout
        assert not get_policy("priq").uses_fanout
        assert not get_policy("t-edf").uses_fanout


class TestQueueKeys:
    def test_fifo_key_is_arrival(self, gold):
        key = get_policy("fifo").queue_key(5.0, gold, 99.0)
        assert key == (5.0,)

    def test_priq_key_leads_with_priority(self, gold, silver):
        policy = get_policy("priq")
        assert policy.queue_key(5.0, gold, 99.0) == (0, 5.0)
        assert policy.queue_key(5.0, silver, 99.0) == (1, 5.0)

    def test_tedf_key_ignores_fanout_deadline(self, gold):
        key = get_policy("t-edf").queue_key(5.0, gold, 1.0)
        assert key == (6.0,)  # arrival + SLO, not the TF deadline

    def test_tailguard_key_is_tf_deadline(self, gold):
        key = get_policy("tailguard").queue_key(5.0, gold, 5.4)
        assert key == (5.4,)


class TestFIFOTaskQueue:
    def test_order_preserved(self):
        queue = FIFOTaskQueue()
        for item in "abc":
            queue.push(item, (0.0,))
        assert [queue.pop() for _ in range(3)] == list("abc")

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            FIFOTaskQueue().pop()

    def test_bool_and_len(self):
        queue = FIFOTaskQueue()
        assert not queue
        queue.push("x", (0.0,))
        assert queue
        assert len(queue) == 1


class TestEDFTaskQueue:
    def test_pops_smallest_key_first(self):
        queue = EDFTaskQueue()
        queue.push("late", (10.0,))
        queue.push("early", (1.0,))
        queue.push("middle", (5.0,))
        assert [queue.pop() for _ in range(3)] == ["early", "middle", "late"]

    def test_ties_broken_fifo(self):
        queue = EDFTaskQueue()
        queue.push("first", (1.0,))
        queue.push("second", (1.0,))
        assert queue.pop() == "first"
        assert queue.pop() == "second"

    def test_interleaved_push_pop(self):
        queue = EDFTaskQueue()
        queue.push("a", (3.0,))
        queue.push("b", (1.0,))
        assert queue.pop() == "b"
        queue.push("c", (2.0,))
        assert queue.pop() == "c"
        assert queue.pop() == "a"


class TestPriorityTaskQueue:
    def test_strict_priority(self):
        queue = PriorityTaskQueue()
        queue.push("low1", (1, 0.0))
        queue.push("high1", (0, 1.0))
        queue.push("low2", (1, 2.0))
        queue.push("high2", (0, 3.0))
        assert [queue.pop() for _ in range(4)] == [
            "high1", "high2", "low1", "low2"
        ]

    def test_fifo_within_priority(self):
        queue = PriorityTaskQueue()
        for tag in ("a", "b", "c"):
            queue.push(tag, (0, 0.0))
        assert [queue.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            PriorityTaskQueue().pop()

    def test_len_across_lanes(self):
        queue = PriorityTaskQueue()
        queue.push("x", (0, 0.0))
        queue.push("y", (3, 0.0))
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1
