"""Snapshot test for the stable public surface (``repro.__all__``).

``docs/api.md`` promises that names exported from the top-level
``repro`` package only ever change deliberately.  This test pins the
exact surface: adding a name means extending ``EXPECTED`` (and the
docs); removing or renaming one fails loudly here first.
"""

import repro

#: The frozen public surface, alphabetical (dunders last).  Keep in
#: sync with docs/api.md.
EXPECTED = [
    "AdaptiveAdmission",
    "AdaptiveAdmissionPolicy",
    "AdaptiveHedgePolicy",
    "AdmissionController",
    "AdmissionRejected",
    "BreakerPolicy",
    "ClusterAttribution",
    "ClusterConfig",
    "ConfigurationError",
    "CrashProcess",
    "DeadlineEstimator",
    "DeadlineMissRatioAdmission",
    "DegradePolicy",
    "DistributionError",
    "Downtime",
    "DriftPolicy",
    "EXPERIMENTS",
    "ErrorBudget",
    "ExperimentError",
    "FaultPlan",
    "FederationConfig",
    "FederationResult",
    "HedgePolicy",
    "HedgeSuppressionPolicy",
    "NoAdmission",
    "NullRecorder",
    "OverloadPolicy",
    "ParetoArrivals",
    "PoissonArrivals",
    "Policy",
    "QueryAttribution",
    "QueryHandler",
    "QueryRecord",
    "QuerySpec",
    "ReplicaPolicy",
    "ReplicaScorer",
    "ReproError",
    "RequestPlanner",
    "RequestSpec",
    "RetryPolicy",
    "SLOAccountant",
    "SaSTestbed",
    "ServiceClass",
    "ServicePerturbation",
    "SimulationError",
    "SimulationResult",
    "SpillPolicy",
    "StragglerEpisode",
    "Task",
    "TaskServer",
    "TraceRecorder",
    "Workload",
    "attribute_queries",
    "find_max_load",
    "get_policy",
    "get_workload",
    "install_faults",
    "install_overload",
    "install_replicas",
    "inverse_proportional_fanout",
    "load_sweep",
    "run_experiment",
    "run_simulations",
    "simulate",
    "simulate_federation",
    "single_class_mix",
    "tail_forensics_report",
    "uniform_class_mix",
    "__version__",
]


def test_all_matches_snapshot():
    assert list(repro.__all__) == EXPECTED


def test_every_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_star_import_exports_exactly_the_surface(tmp_path):
    namespace = {}
    exec("from repro import *", namespace)
    exported = {k for k in namespace if not k.startswith("__")}
    assert exported == {n for n in EXPECTED if not n.startswith("__")}


def test_version_is_pep440ish():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)
