"""Additional edge-case coverage across packages."""

import numpy as np
import pytest

from repro.distributions import (
    HyperExponential,
    Mixture,
    Pareto,
    Shifted,
    Uniform,
)
from repro.errors import ConfigurationError, SimulationError
from repro.sas import SaSTestbed
from repro.sim import Environment


class TestDistributionEdges:
    def test_mixture_vectorized_quantiles(self):
        mix = Mixture([0.5, 0.5], [Uniform(0, 1), Uniform(2, 3)])
        values = mix.quantile(np.asarray([0.25, 0.75]))
        assert values[0] < 1.0 < 2.0 < values[1]

    def test_hyperexponential_scalar_sample(self):
        dist = HyperExponential([0.5, 0.5], [1.0, 2.0])
        value = dist.sample(np.random.default_rng(0))
        assert isinstance(value, float)
        assert value >= 0

    def test_pareto_quantile_roundtrip(self):
        dist = Pareto(2.5, 1.0)
        for q in (0.1, 0.5, 0.99):
            assert float(dist.cdf(dist.quantile(q))) == pytest.approx(
                q, abs=1e-9
            )

    def test_shifted_cdf_below_offset(self):
        dist = Shifted(Uniform(0, 1), 5.0)
        assert float(dist.cdf(4.9)) == 0.0
        assert float(dist.cdf(6.0)) == 1.0


class TestKernelEdges:
    def test_run_until_failed_event_raises(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            raise ValueError("expected failure")

        with pytest.raises(ValueError):
            env.run(until=env.process(proc()))

    def test_run_until_untriggered_event_raises(self):
        env = Environment()
        gate = env.event()
        env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.run(until=gate)

    def test_any_of_failure_propagates(self):
        env = Environment()
        good = env.timeout(5.0)
        bad = env.event()

        def proc():
            yield env.any_of([good, bad])

        p = env.process(proc())
        bad.fail(RuntimeError("component died"))
        with pytest.raises(RuntimeError):
            env.run(until=p)


class TestSaSEdges:
    def test_unknown_cluster_load(self):
        testbed = SaSTestbed()
        with pytest.raises(ConfigurationError):
            testbed.cluster_load(0.4, "basement")

    def test_config_with_online_window_runs(self):
        testbed = SaSTestbed()
        result = testbed.run("tailguard", 0.25, n_queries=1_500, seed=2,
                             online_window=2_000)
        assert result.count() > 0

    def test_generate_specs_validation(self):
        testbed = SaSTestbed()
        with pytest.raises(ConfigurationError):
            testbed.generate_specs(0, 0.3, np.random.default_rng(0))
