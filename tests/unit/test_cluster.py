"""Unit tests for cluster config, simulation and results."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.core.deadline import DeadlineEstimator
from repro.distributions import Deterministic
from repro.errors import ConfigurationError
from repro.types import QuerySpec, ServiceClass
from repro.workloads import (
    PoissonArrivals,
    Workload,
    get_workload,
    inverse_proportional_fanout,
    single_class_mix,
)


@pytest.fixture
def gold():
    return ServiceClass("gold", slo_ms=10.0)


class TestClusterConfig:
    def test_needs_workload_or_specs(self, gold):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_servers=10, policy="fifo")

    def test_workload_and_specs_mutually_exclusive(self, small_workload, gold):
        specs = [QuerySpec(0, 0.0, 1, gold)]
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_servers=10, policy="fifo",
                          workload=small_workload, specs=specs)

    def test_warmup_fraction_bounds(self, small_workload):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_servers=10, policy="fifo",
                          workload=small_workload, warmup_fraction=1.0)

    def test_at_load_sets_offered_load(self, small_workload):
        config = ClusterConfig(n_servers=100, policy="fifo",
                               workload=small_workload).at_load(0.37)
        assert config.workload.load(100) == pytest.approx(0.37)

    def test_at_load_requires_workload(self, gold):
        specs = [QuerySpec(0, 0.0, 1, gold)]
        config = ClusterConfig(n_servers=10, policy="fifo", specs=specs,
                               server_cdfs={i: Deterministic(1.0)
                                            for i in range(10)})
        with pytest.raises(ConfigurationError):
            config.at_load(0.4)

    def test_server_cdfs_must_cover_cluster(self, small_workload):
        config = ClusterConfig(n_servers=10, policy="fifo",
                               workload=small_workload,
                               server_cdfs={0: Deterministic(1.0)})
        with pytest.raises(ConfigurationError):
            config.resolve_server_cdfs()

    def test_spec_driven_requires_server_cdfs(self, gold):
        specs = [QuerySpec(0, 0.0, 1, gold)]
        config = ClusterConfig(n_servers=10, policy="fifo", specs=specs)
        with pytest.raises(ConfigurationError):
            config.resolve_server_cdfs()


class TestSimulateBasics:
    def test_deterministic_single_server(self, gold):
        """Three queries, one server, deterministic 1 ms service."""
        specs = [QuerySpec(i, float(i) * 0.1, 1, gold, servers=(0,))
                 for i in range(3)]
        config = ClusterConfig(
            n_servers=1, policy="fifo", specs=specs,
            server_cdfs={0: Deterministic(1.0)}, warmup_fraction=0.0,
        )
        result = simulate(config)
        # Arrivals at 0.0/0.1/0.2; completions at 1.0/2.0/3.0.
        assert np.allclose(sorted(result.latency), [1.0, 1.9, 2.8])
        assert result.tasks_total == 3
        assert result.busy_time_total == pytest.approx(3.0)

    def test_fanout_latency_is_max_of_tasks(self, gold):
        specs = [QuerySpec(0, 0.0, 2, gold, servers=(0, 1))]
        config = ClusterConfig(
            n_servers=2, policy="fifo", specs=specs,
            server_cdfs={0: Deterministic(1.0), 1: Deterministic(3.0)},
            warmup_fraction=0.0,
        )
        result = simulate(config)
        assert result.latency[0] == pytest.approx(3.0)

    def test_seed_reproducibility(self, small_config):
        a = simulate(small_config)
        b = simulate(small_config)
        assert np.array_equal(a.latency, b.latency)
        assert a.tasks_missed_deadline == b.tasks_missed_deadline

    def test_different_seeds_differ(self, small_config):
        from dataclasses import replace

        a = simulate(small_config)
        b = simulate(replace(small_config, seed=small_config.seed + 1))
        assert not np.array_equal(a.latency, b.latency)

    def test_fanout_larger_than_cluster_rejected(self, gold):
        specs = [QuerySpec(0, 0.0, 5, gold)]
        config = ClusterConfig(
            n_servers=2, policy="fifo", specs=specs,
            server_cdfs={0: Deterministic(1.0), 1: Deterministic(1.0)},
        )
        with pytest.raises(ConfigurationError):
            simulate(config)

    def test_utilization_tracks_offered_load(self, small_config):
        result = simulate(small_config)
        assert result.utilization() == pytest.approx(0.30, abs=0.05)

    def test_custom_placement_hook(self, gold):
        placed = []

        def placement(spec, rng):
            placed.append(spec.query_id)
            return (0,)

        specs = None
        workload = Workload(
            "w", PoissonArrivals(0.1), inverse_proportional_fanout([1]),
            single_class_mix(gold), Deterministic(1.0),
        )
        config = ClusterConfig(n_servers=2, policy="fifo", workload=workload,
                               n_queries=5, placement=placement)
        result = simulate(config)
        assert placed == [0, 1, 2, 3, 4]
        assert result.tasks_total == 5

    def test_placement_wrong_size_rejected(self, gold):
        workload = Workload(
            "w", PoissonArrivals(0.1), inverse_proportional_fanout([1]),
            single_class_mix(gold), Deterministic(1.0),
        )
        config = ClusterConfig(
            n_servers=2, policy="fifo", workload=workload, n_queries=2,
            placement=lambda spec, rng: (0, 1),
        )
        with pytest.raises(ConfigurationError):
            simulate(config)

    def test_duplicate_class_names_rejected(self):
        a = ServiceClass("same", 1.0)
        b = ServiceClass("same", 2.0)
        specs = [QuerySpec(0, 0.0, 1, a), QuerySpec(1, 0.5, 1, b)]
        config = ClusterConfig(n_servers=1, policy="fifo", specs=specs,
                               server_cdfs={0: Deterministic(0.1)})
        with pytest.raises(ConfigurationError):
            simulate(config)


class TestSimulationResult:
    def test_per_type_tails_keys(self, small_config):
        result = simulate(small_config)
        assert set(result.types()) <= {("single", 1), ("single", 10),
                                       ("single", 100)}

    def test_tail_unknown_class(self, small_config):
        result = simulate(small_config)
        with pytest.raises(ConfigurationError):
            result.tail(99.0, "ghost")

    def test_warmup_excluded_from_measurement(self, small_config):
        result = simulate(small_config)
        warmup_count = int(len(result.latency) * 0.1)
        assert result.measured[:warmup_count].sum() == 0

    def test_meets_all_slos_generous(self, small_config):
        result = simulate(small_config)  # SLO 1.0 at load 0.3 is feasible
        assert result.meets_all_slos(min_samples=30)

    def test_meets_all_slos_impossible(self, small_workload):
        from dataclasses import replace

        tight = ServiceClass("single", slo_ms=0.05)
        workload = replace(small_workload,
                           class_mix=single_class_mix(tight))
        config = ClusterConfig(n_servers=100, policy="tailguard",
                               workload=workload, n_queries=2_000,
                               seed=3).at_load(0.3)
        result = simulate(config)
        assert not result.meets_all_slos(min_samples=30)

    def test_summary_fields(self, small_config):
        summary = simulate(small_config).summary()
        assert {"offered_load", "utilization", "deadline_miss_ratio",
                "rejection_ratio", "queries_measured"} <= set(summary)

    def test_deadline_miss_ratio_bounds(self, small_config):
        result = simulate(small_config)
        assert 0.0 <= result.deadline_miss_ratio() <= 1.0


class TestEstimatorOverride:
    def test_custom_estimator_used(self, small_workload):
        """A grossly pessimistic estimator forces negative budgets, so
        all tasks miss their (absurd) deadlines under TailGuard."""
        bench = get_workload("masstree")
        pessimistic = DeadlineEstimator(
            bench.service_time.scaled(1000.0), n_servers=100
        )
        config = ClusterConfig(
            n_servers=100, policy="tailguard", workload=small_workload,
            n_queries=1_000, seed=2, estimator=pessimistic,
        ).at_load(0.2)
        result = simulate(config)
        assert result.deadline_miss_ratio() == 1.0
