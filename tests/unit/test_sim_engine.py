"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt, Timeout


class TestEnvironmentBasics:
    def test_clock_starts_at_zero(self):
        env = Environment()
        assert env.now == 0.0

    def test_clock_starts_at_initial_time(self):
        env = Environment(initial_time=5.0)
        assert env.now == 5.0

    def test_run_until_time_advances_clock(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_time_raises(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_step_with_no_events_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_empty_is_infinite(self):
        env = Environment()
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self):
        env = Environment()
        env.timeout(3.0)
        env.timeout(1.5)
        assert env.peek() == 1.5


class TestTimeout:
    def test_timeout_fires_at_delay(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(2.5)
            fired.append(env.now)

        env.process(proc())
        env.run()
        assert fired == [2.5]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_timeout_carries_value(self):
        env = Environment()
        seen = []

        def proc():
            value = yield env.timeout(1.0, value="payload")
            seen.append(value)

        env.process(proc())
        env.run()
        assert seen == ["payload"]

    def test_timeouts_fire_in_time_order(self):
        env = Environment()
        order = []

        def proc(delay):
            yield env.timeout(delay)
            order.append(delay)

        for delay in (5.0, 1.0, 3.0, 2.0, 4.0):
            env.process(proc(delay))
        env.run()
        assert order == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_equal_time_fifo_by_creation(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestEvents:
    def test_event_succeed_delivers_value(self):
        env = Environment()
        gate = env.event()
        got = []

        def waiter():
            got.append((yield gate))

        def firer():
            yield env.timeout(1.0)
            gate.succeed(42)

        env.process(waiter())
        env.process(firer())
        env.run()
        assert got == [42]

    def test_double_trigger_raises(self):
        env = Environment()
        gate = env.event()
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()

    def test_value_before_trigger_raises(self):
        env = Environment()
        gate = env.event()
        with pytest.raises(SimulationError):
            _ = gate.value

    def test_failed_event_raises_in_waiter(self):
        env = Environment()
        gate = env.event()
        caught = []

        def waiter():
            try:
                yield gate
            except ValueError as exc:
                caught.append(str(exc))

        def firer():
            yield env.timeout(1.0)
            gate.fail(ValueError("boom"))

        env.process(waiter())
        env.process(firer())
        env.run()
        assert caught == ["boom"]

    def test_unhandled_failure_propagates(self):
        env = Environment()
        gate = env.event()
        gate.fail(RuntimeError("nobody listening"))
        with pytest.raises(RuntimeError):
            env.run()

    def test_defused_failure_is_silent(self):
        env = Environment()
        gate = env.event()
        gate.fail(RuntimeError("handled elsewhere"))
        gate.defuse()
        env.run()  # does not raise

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return "done"

        result = env.run(until=env.process(proc()))
        assert result == "done"

    def test_process_is_alive_until_finished(self):
        env = Environment()

        def proc():
            yield env.timeout(5.0)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def proc():
            yield 42

        p = env.process(proc())
        with pytest.raises(SimulationError):
            env.run(until=p)

    def test_waiting_on_a_process(self):
        env = Environment()
        log = []

        def child():
            yield env.timeout(2.0)
            log.append("child")
            return 7

        def parent():
            value = yield env.process(child())
            log.append(("parent", value, env.now))

        env.process(parent())
        env.run()
        assert log == ["child", ("parent", 7, 2.0)]

    def test_exception_in_process_propagates_to_waiter(self):
        env = Environment()

        def child():
            yield env.timeout(1.0)
            raise KeyError("inner")

        def parent():
            yield env.process(child())

        p = env.process(parent())
        with pytest.raises(KeyError):
            env.run(until=p)

    def test_chained_already_processed_event(self):
        # Yielding an already-processed event continues immediately.
        env = Environment()
        gate = env.event()
        gate.succeed("early")
        log = []

        def proc():
            yield env.timeout(1.0)
            value = yield gate
            log.append((value, env.now))

        env.process(proc())
        env.run()
        assert log == [("early", 1.0)]


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()
        log = []

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                log.append((interrupt.cause, env.now))

        def attacker(target):
            yield env.timeout(3.0)
            target.interrupt("failure-injection")

        target = env.process(victim())
        env.process(attacker(target))
        env.run()
        assert log == [("failure-injection", 3.0)]

    def test_interrupting_dead_process_raises(self):
        env = Environment()

        def quick():
            yield env.timeout(1.0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self):
        env = Environment()
        errors = []

        def proc():
            try:
                env.active_process.interrupt()
            except SimulationError as exc:
                errors.append(str(exc))
            yield env.timeout(1.0)

        env.process(proc())
        env.run()
        assert len(errors) == 1


class TestConditions:
    def test_all_of_waits_for_everything(self):
        env = Environment()
        log = []

        def proc():
            yield AllOf(env, [env.timeout(1.0), env.timeout(4.0),
                              env.timeout(2.0)])
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [4.0]

    def test_any_of_fires_on_first(self):
        env = Environment()
        log = []

        def proc():
            yield AnyOf(env, [env.timeout(5.0), env.timeout(1.5)])
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [1.5]

    def test_all_of_empty_triggers_immediately(self):
        env = Environment()
        condition = env.all_of([])
        assert condition.triggered

    def test_all_of_collects_values(self):
        env = Environment()
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        results = env.run(until=env.all_of([t1, t2]))
        assert set(results.values()) == {"a", "b"}

    def test_cross_environment_event_rejected(self):
        env1, env2 = Environment(), Environment()
        t2 = env2.timeout(1.0)

        def proc():
            yield t2

        p = env1.process(proc())
        with pytest.raises(SimulationError):
            env1.run(until=p)
