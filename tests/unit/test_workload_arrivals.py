"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import DeterministicArrivals, ParetoArrivals, PoissonArrivals


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestPoissonArrivals:
    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)

    def test_mean_interarrival(self, rng):
        process = PoissonArrivals(4.0)
        times = process.arrival_times(rng, 100_000)
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert np.mean(gaps) == pytest.approx(0.25, rel=0.02)

    def test_times_are_increasing(self, rng):
        times = PoissonArrivals(1.0).arrival_times(rng, 1000)
        assert np.all(np.diff(times) > 0)

    def test_start_offset(self, rng):
        times = PoissonArrivals(1.0).arrival_times(rng, 10, start=100.0)
        assert times[0] > 100.0

    def test_with_rate(self):
        process = PoissonArrivals(1.0).with_rate(5.0)
        assert process.rate == 5.0
        assert isinstance(process, PoissonArrivals)

    def test_zero_count(self, rng):
        assert PoissonArrivals(1.0).arrival_times(rng, 0).size == 0


class TestParetoArrivals:
    def test_mean_rate_preserved(self, rng):
        process = ParetoArrivals(2.0)
        times = process.arrival_times(rng, 200_000)
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert np.mean(gaps) == pytest.approx(0.5, rel=0.05)

    def test_burstier_than_poisson(self, rng):
        """Pareto interarrivals have a higher coefficient of variation."""
        poisson_gaps = np.diff(PoissonArrivals(1.0).arrival_times(rng, 100_000))
        pareto_gaps = np.diff(ParetoArrivals(1.0).arrival_times(rng, 100_000))
        cv_poisson = np.std(poisson_gaps) / np.mean(poisson_gaps)
        cv_pareto = np.std(pareto_gaps) / np.mean(pareto_gaps)
        assert cv_pareto > cv_poisson * 1.5

    def test_with_rate_preserves_shape(self):
        process = ParetoArrivals(1.0, shape=1.3, spread=500.0).with_rate(2.0)
        assert process.shape == 1.3
        assert process.spread == 500.0
        assert process.rate == 2.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ParetoArrivals(1.0, shape=0.0)
        with pytest.raises(ConfigurationError):
            ParetoArrivals(1.0, spread=0.5)


class TestDeterministicArrivals:
    def test_evenly_spaced(self):
        times = DeterministicArrivals(2.0).arrival_times(None, 4)
        assert np.allclose(times, [0.5, 1.0, 1.5, 2.0])

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterministicArrivals(1.0).arrival_times(None, -1)
