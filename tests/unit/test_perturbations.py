"""Unit tests for failure injection (service perturbations)."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.cluster.config import ServicePerturbation
from repro.distributions import Deterministic
from repro.errors import ConfigurationError
from repro.types import QuerySpec, ServiceClass


@pytest.fixture
def gold():
    return ServiceClass("gold", slo_ms=100.0)


class TestServicePerturbation:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServicePerturbation((), 0.0, 1.0, 2.0)
        with pytest.raises(ConfigurationError):
            ServicePerturbation((0,), 5.0, 1.0, 2.0)
        with pytest.raises(ConfigurationError):
            ServicePerturbation((0,), 0.0, 1.0, 0.0)

    def test_applies_window_and_servers(self):
        perturbation = ServicePerturbation((1, 2), 10.0, 20.0, 3.0)
        assert perturbation.applies(1, 15.0)
        assert not perturbation.applies(0, 15.0)
        assert not perturbation.applies(1, 9.9)
        assert not perturbation.applies(1, 20.0)  # half-open interval


class TestPerturbedSimulation:
    def _specs(self, gold, times):
        return [QuerySpec(i, t, 1, gold, servers=(0,))
                for i, t in enumerate(times)]

    def test_slowdown_scales_service_times(self, gold):
        """Queries served inside the window take factor x longer."""
        specs = self._specs(gold, [0.0, 10.0, 30.0])
        perturbation = ServicePerturbation((0,), 9.0, 20.0, 5.0)
        config = ClusterConfig(
            n_servers=1, policy="fifo", specs=specs,
            server_cdfs={0: Deterministic(1.0)},
            warmup_fraction=0.0,
            perturbations=(perturbation,),
        )
        result = simulate(config)
        assert result.latency[0] == pytest.approx(1.0)   # before window
        assert result.latency[1] == pytest.approx(5.0)   # inside window
        assert result.latency[2] == pytest.approx(1.0)   # after window

    def test_unaffected_server_untouched(self, gold):
        specs = [QuerySpec(0, 10.0, 1, gold, servers=(1,))]
        perturbation = ServicePerturbation((0,), 0.0, 100.0, 5.0)
        config = ClusterConfig(
            n_servers=2, policy="fifo", specs=specs,
            server_cdfs={0: Deterministic(1.0), 1: Deterministic(1.0)},
            warmup_fraction=0.0,
            perturbations=(perturbation,),
        )
        result = simulate(config)
        assert result.latency[0] == pytest.approx(1.0)

    def test_speedup_factor(self, gold):
        specs = [QuerySpec(0, 10.0, 1, gold, servers=(0,))]
        perturbation = ServicePerturbation((0,), 0.0, 100.0, 0.5)
        config = ClusterConfig(
            n_servers=1, policy="fifo", specs=specs,
            server_cdfs={0: Deterministic(2.0)},
            warmup_fraction=0.0,
            perturbations=(perturbation,),
        )
        result = simulate(config)
        assert result.latency[0] == pytest.approx(1.0)

    def test_tail_between_windows(self, gold):
        """Windowed tail analysis separates the transient."""
        times = np.linspace(0.0, 100.0, 200)
        specs = self._specs(gold, list(times))
        perturbation = ServicePerturbation((0,), 40.0, 60.0, 10.0)
        config = ClusterConfig(
            n_servers=1, policy="fifo", specs=specs,
            server_cdfs={0: Deterministic(0.2)},
            warmup_fraction=0.0,
            perturbations=(perturbation,),
        )
        result = simulate(config)
        calm = result.tail_between(0.0, 35.0, 95.0)
        stormy = result.tail_between(40.0, 60.0, 95.0)
        assert stormy > calm

    def test_tail_between_validation(self, gold):
        specs = self._specs(gold, [0.0])
        config = ClusterConfig(
            n_servers=1, policy="fifo", specs=specs,
            server_cdfs={0: Deterministic(1.0)}, warmup_fraction=0.0,
        )
        result = simulate(config)
        with pytest.raises(ConfigurationError):
            result.tail_between(5.0, 1.0)
        with pytest.raises(ConfigurationError):
            result.tail_between(500.0, 600.0)
