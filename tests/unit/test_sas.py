"""Unit tests for the SaS testbed model, sensing datastore and network."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sas import NetworkModel, SaSTestbed, SensingDataStore, SensingTaskModel
from repro.sas.testbed import CLUSTER_NAMES, _CLUSTER_STATS


@pytest.fixture(scope="module")
def testbed():
    return SaSTestbed()


@pytest.fixture
def rng():
    return np.random.default_rng(55)


class TestTopology:
    def test_four_clusters_of_eight(self, testbed):
        assert len(testbed.cluster_nodes) == 4
        assert testbed.n_nodes == 32
        for nodes in testbed.cluster_nodes.values():
            assert len(nodes) == 8

    def test_node_cluster_mapping_consistent(self, testbed):
        for cluster, nodes in testbed.cluster_nodes.items():
            for node in nodes:
                assert testbed.node_cluster[node] == cluster

    def test_use_case_mix(self, testbed):
        probs = [case.probability for case in testbed.use_cases]
        assert probs == [0.5, 0.4, 0.1]
        fanouts = [case.fanout for case in testbed.use_cases]
        assert fanouts == [1, 4, 32]

    def test_slos(self, testbed):
        slos = [case.service_class.slo_ms for case in testbed.use_cases]
        assert slos == [800.0, 1300.0, 1800.0]

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SaSTestbed(nodes_per_cluster=0)
        with pytest.raises(ConfigurationError):
            SaSTestbed(server_room_bias=1.5)
        with pytest.raises(ConfigurationError):
            SaSTestbed(class_probabilities=(0.5, 0.4, 0.3))


class TestClusterCDFs:
    @pytest.mark.parametrize("cluster", CLUSTER_NAMES)
    def test_statistics_match_paper(self, testbed, cluster):
        cdf = testbed.cluster_cdfs[cluster]
        mean, p95, p99 = _CLUSTER_STATS[cluster]
        assert cdf.mean() == pytest.approx(mean, rel=1e-4)
        assert cdf.percentile(95.0) == pytest.approx(p95, rel=1e-6)
        assert cdf.percentile(99.0) == pytest.approx(p99, rel=1e-6)

    def test_wet_lab_is_fastest(self, testbed):
        means = {c: testbed.cluster_cdfs[c].mean() for c in CLUSTER_NAMES}
        assert means["wet-lab"] == min(means.values())


class TestLoadAccounting:
    def test_expected_server_room_tasks(self, testbed):
        # 0.5*0.8 + 0.4*1 + 0.1*8 = 1.6
        assert testbed.expected_server_room_tasks_per_query() == pytest.approx(1.6)

    def test_rate_inverts_load(self, testbed):
        rate = testbed.arrival_rate_for_load(0.4)
        expected = 0.4 * 8 / (1.6 * testbed.cluster_cdfs["server-room"].mean())
        assert rate == pytest.approx(expected)

    def test_server_room_is_bottleneck(self, testbed):
        """At any rate, the Server-room cluster carries the highest load."""
        loads = {c: testbed.cluster_load(0.4, c) for c in CLUSTER_NAMES}
        assert loads["server-room"] == max(loads.values())
        assert loads["server-room"] == pytest.approx(0.4)

    def test_invalid_load(self, testbed):
        with pytest.raises(ConfigurationError):
            testbed.arrival_rate_for_load(0.0)


class TestSpecGeneration:
    def test_spec_count_and_sorting(self, testbed, rng):
        specs = testbed.generate_specs(500, 0.3, rng)
        assert len(specs) == 500
        times = [s.arrival_time for s in specs]
        assert times == sorted(times)

    def test_class_a_placement_bias(self, testbed, rng):
        specs = testbed.generate_specs(8_000, 0.3, rng)
        class_a = [s for s in specs if s.service_class.name == "class-A"]
        server_room_nodes = set(testbed.cluster_nodes["server-room"])
        in_server_room = sum(
            1 for s in class_a if s.servers[0] in server_room_nodes
        )
        assert in_server_room / len(class_a) == pytest.approx(0.8, abs=0.03)

    def test_class_b_one_node_per_cluster(self, testbed, rng):
        specs = testbed.generate_specs(2_000, 0.3, rng)
        for spec in specs:
            if spec.service_class.name == "class-B":
                clusters = {testbed.node_cluster[s] for s in spec.servers}
                assert clusters == set(CLUSTER_NAMES)

    def test_class_c_covers_all_nodes(self, testbed, rng):
        specs = testbed.generate_specs(2_000, 0.3, rng)
        for spec in specs:
            if spec.service_class.name == "class-C":
                assert spec.servers == tuple(range(32))

    def test_empirical_server_room_load(self, testbed, rng):
        """Generated tasks actually produce the requested Server-room load."""
        target = 0.35
        specs = testbed.generate_specs(20_000, target, rng)
        server_room = set(testbed.cluster_nodes["server-room"])
        tasks = sum(
            sum(1 for node in spec.servers if node in server_room)
            for spec in specs
        )
        span = specs[-1].arrival_time - specs[0].arrival_time
        mean_service = testbed.cluster_cdfs["server-room"].mean()
        load = tasks * mean_service / (8 * span)
        assert load == pytest.approx(target, rel=0.05)


class TestEstimator:
    def test_shares_cdf_per_cluster(self, testbed):
        estimator = testbed.estimator()
        nodes = testbed.cluster_nodes["faculty"]
        assert estimator.server_cdf(nodes[0]) is estimator.server_cdf(nodes[-1])

    def test_not_homogeneous(self, testbed):
        assert not testbed.estimator().homogeneous


class TestSimulation:
    def test_low_load_meets_all_slos(self, testbed):
        result = testbed.run("tailguard", 0.20, n_queries=4_000, seed=2)
        for case in testbed.use_cases:
            cls = case.service_class
            assert result.tail(cls.percentile, cls.name) <= cls.slo_ms

    def test_sweep_rows_shape(self, testbed):
        rows = testbed.sweep("fifo", [0.2, 0.3], n_queries=2_000, seed=2)
        assert len(rows) == 2
        assert {"server_room_load", "class-A", "class-B", "class-C"} <= set(rows[0])


class TestSensing:
    def test_datastore_record_math(self):
        store = SensingDataStore()
        assert store.total_records == 540 * 288 * 2
        assert store.records_for_days(1) == 576

    def test_request_days_range(self, rng):
        store = SensingDataStore()
        days = {store.sample_request_days(rng) for _ in range(500)}
        assert min(days) >= 1
        assert max(days) <= 30

    def test_invalid_days(self):
        with pytest.raises(ConfigurationError):
            SensingDataStore().records_for_days(0)

    def test_calibrated_mean(self):
        model = SensingTaskModel.calibrated_to_mean(82.0)
        assert model.mean() == pytest.approx(82.0, rel=1e-6)

    def test_sampled_mean_matches(self, rng):
        model = SensingTaskModel.calibrated_to_mean(82.0)
        samples = model.sample(rng, 100_000)
        assert np.mean(samples) == pytest.approx(82.0, rel=0.03)

    def test_cdf_quantile_roundtrip(self):
        model = SensingTaskModel.calibrated_to_mean(50.0)
        for q in (0.1, 0.5, 0.95, 0.99):
            assert model.cdf(model.quantile(q)) == pytest.approx(q, abs=1e-4)

    def test_tail_exceeds_mean_substantially(self):
        """The jitter gives the model a real tail, like the Pi nodes."""
        model = SensingTaskModel.calibrated_to_mean(82.0)
        assert float(model.quantile(0.99)) > 2.0 * model.mean()

    def test_invalid_parameters(self):
        store = SensingDataStore()
        with pytest.raises(ConfigurationError):
            SensingTaskModel(store, base_overhead_ms=-1.0, per_record_us=1.0)
        with pytest.raises(ConfigurationError):
            SensingTaskModel.calibrated_to_mean(0.0)


class TestNetwork:
    def test_default_clusters(self):
        model = NetworkModel()
        assert set(model.clusters()) == set(CLUSTER_NAMES)

    def test_wet_lab_fastest_rtt(self):
        model = NetworkModel()
        wet_lab = model.rtt("wet-lab").mean()
        faculty = model.rtt("faculty").mean()
        assert wet_lab < faculty

    def test_unknown_cluster(self):
        with pytest.raises(ConfigurationError):
            NetworkModel().rtt("moon-base")

    def test_sample_rtt_positive(self, rng):
        model = NetworkModel()
        assert model.sample_rtt("gta", rng) > 0

    def test_end_to_end_shifts_service(self):
        from repro.distributions import Deterministic

        model = NetworkModel()
        composite = model.end_to_end("server-room", Deterministic(10.0))
        assert composite.mean() == pytest.approx(11.0)

    def test_invalid_profile(self):
        with pytest.raises(ConfigurationError):
            NetworkModel({})
        with pytest.raises(ConfigurationError):
            NetworkModel({"x": (-1.0, 1.0)})
