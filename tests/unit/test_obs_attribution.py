"""Unit tests for latency attribution, SLO accounting, and forensics.

The attribution tests drive :func:`repro.obs.attribution.attribute_queries`
over hand-built synthetic event streams where the correct decomposition
is known exactly; the integration test in
``tests/integration/test_attribution_equivalence.py`` covers real
simulator streams on both paths.
"""

import json
import pathlib
import types

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    QUERY_ARRIVE,
    QUERY_COMPLETE,
    QUERY_REJECTED,
    QUERY_TIMEOUT,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_ENQUEUE,
    TraceRecorder,
)
from repro.obs.events import (
    QUERY_DEGRADED,
    TASK_CANCEL,
    TASK_HEDGE,
    TASK_RETRY,
    TASK_SHED,
)
from repro.obs.attribution import (
    COMPONENTS,
    HEDGE,
    PRIMARY,
    RETRY,
    ClusterAttribution,
    QueryAttribution,
    attribute_queries,
)
from repro.obs.forensics import validate_report
from repro.obs.slo import ALERT_BURN_RATE, ErrorBudget, SLOAccountant
from repro.types import ServiceClass

SCHEMA_PATH = (pathlib.Path(__file__).resolve().parents[1]
               / "data" / "report_schema.json")


def emit_primary_query(rec, qid, t0, t_deq, t_done, server=0,
                       class_name="gold", fanout=1):
    """A plain query: arrive, queue, serve, complete."""
    rec.emit(QUERY_ARRIVE, t0, query_id=qid, class_name=class_name,
             fanout=fanout)
    rec.emit(TASK_ENQUEUE, t0, server_id=server, query_id=qid)
    rec.emit(TASK_DEQUEUE, t_deq, server_id=server, query_id=qid)
    rec.emit(TASK_COMPLETE, t_done, server_id=server, query_id=qid,
             extra={"duration": t_done - t_deq})
    rec.emit(QUERY_COMPLETE, t_done, query_id=qid, class_name=class_name,
             fanout=fanout, extra={"latency": t_done - t0})


class TestAttributeQueries:
    def test_primary_decomposition(self):
        rec = TraceRecorder()
        emit_primary_query(rec, 0, t0=1.0, t_deq=1.4, t_done=2.5)
        (q,) = attribute_queries(rec)
        assert q.query_id == 0
        assert q.class_name == "gold"
        assert q.critical_kind == PRIMARY
        assert q.critical_server == 0
        assert q.latency_ms == pytest.approx(1.5)
        assert q.retry_delay_ms == 0.0
        assert q.hedge_wait_ms == 0.0
        assert q.queueing_ms == pytest.approx(0.4)
        assert q.service_ms == pytest.approx(1.1)
        assert q.check_additivity()
        assert set(q.components()) == set(COMPONENTS)

    def test_retry_critical_path(self):
        rec = TraceRecorder()
        rec.emit(QUERY_ARRIVE, 0.0, query_id=7, class_name="gold", fanout=1)
        rec.emit(TASK_ENQUEUE, 0.0, server_id=2, query_id=7)
        # The first copy dies with its server; the retry on server 3 wins.
        rec.emit(TASK_RETRY, 0.6, server_id=3, query_id=7,
                 extra={"attempt": 1, "reason": "server_fail", "slot": 0})
        rec.emit(TASK_DEQUEUE, 0.9, server_id=3, query_id=7)
        rec.emit(TASK_COMPLETE, 1.5, server_id=3, query_id=7,
                 extra={"duration": 0.6, "slot": 0})
        rec.emit(QUERY_COMPLETE, 1.5, query_id=7, class_name="gold",
                 fanout=1, extra={"latency": 1.5})
        (q,) = attribute_queries(rec)
        assert q.critical_kind == RETRY
        assert q.critical_server == 3
        assert q.retry_delay_ms == pytest.approx(0.6)
        assert q.hedge_wait_ms == 0.0
        assert q.queueing_ms == pytest.approx(0.3)
        assert q.service_ms == pytest.approx(0.6)
        assert q.n_retries == 1
        assert q.check_additivity()

    def test_hedge_wins_critical_path(self):
        rec = TraceRecorder()
        rec.emit(QUERY_ARRIVE, 0.0, query_id=1, class_name="gold", fanout=1)
        rec.emit(TASK_ENQUEUE, 0.0, server_id=0, query_id=1)
        rec.emit(TASK_HEDGE, 0.5, server_id=4, query_id=1,
                 extra={"hedge": 1, "slot": 0})
        rec.emit(TASK_DEQUEUE, 0.5, server_id=4, query_id=1)
        rec.emit(TASK_CANCEL, 0.8, server_id=0, query_id=1,
                 extra={"reason": "hedge_lost"})
        rec.emit(TASK_COMPLETE, 0.8, server_id=4, query_id=1,
                 extra={"duration": 0.3, "slot": 0})
        rec.emit(QUERY_COMPLETE, 0.8, query_id=1, class_name="gold",
                 fanout=1, extra={"latency": 0.8})
        (q,) = attribute_queries(rec)
        assert q.critical_kind == HEDGE
        assert q.critical_server == 4
        assert q.hedge_wait_ms == pytest.approx(0.5)
        assert q.retry_delay_ms == 0.0
        assert q.queueing_ms == 0.0
        assert q.service_ms == pytest.approx(0.3)
        assert q.n_hedges == 1
        assert q.n_cancels == 1
        assert q.check_additivity()

    def test_hedge_loses_primary_still_critical(self):
        rec = TraceRecorder()
        rec.emit(QUERY_ARRIVE, 0.0, query_id=2, class_name="gold", fanout=1)
        rec.emit(TASK_DEQUEUE, 0.1, server_id=0, query_id=2)
        rec.emit(TASK_HEDGE, 0.5, server_id=4, query_id=2,
                 extra={"hedge": 1, "slot": 0})
        rec.emit(TASK_CANCEL, 0.9, server_id=4, query_id=2,
                 extra={"reason": "hedge_lost"})
        rec.emit(TASK_COMPLETE, 0.9, server_id=0, query_id=2,
                 extra={"duration": 0.8, "slot": 0})
        rec.emit(QUERY_COMPLETE, 0.9, query_id=2, class_name="gold",
                 fanout=1, extra={"latency": 0.9})
        (q,) = attribute_queries(rec)
        # The hedge targeted a different server, so the primary dispatch
        # remains the critical copy.
        assert q.critical_kind == PRIMARY
        assert q.hedge_wait_ms == 0.0
        assert q.n_hedges == 1
        assert q.check_additivity()

    def test_dispatch_redirect_has_zero_retry_delay(self):
        rec = TraceRecorder()
        rec.emit(QUERY_ARRIVE, 2.0, query_id=3, class_name="gold", fanout=1)
        # Attempt-0 redirect away from a down server happens at arrival.
        rec.emit(TASK_RETRY, 2.0, server_id=1, query_id=3,
                 extra={"attempt": 0, "reason": "redirect", "slot": 0})
        rec.emit(TASK_DEQUEUE, 2.2, server_id=1, query_id=3)
        rec.emit(TASK_COMPLETE, 2.9, server_id=1, query_id=3,
                 extra={"duration": 0.7, "slot": 0})
        rec.emit(QUERY_COMPLETE, 2.9, query_id=3, class_name="gold",
                 fanout=1, extra={"latency": 0.9})
        (q,) = attribute_queries(rec)
        assert q.critical_kind == RETRY
        assert q.retry_delay_ms == 0.0
        assert q.queueing_ms == pytest.approx(0.2)
        assert q.check_additivity()

    def test_degraded_annotation(self):
        rec = TraceRecorder()
        rec.emit(QUERY_ARRIVE, 0.0, query_id=5, class_name="gold", fanout=10)
        rec.emit(QUERY_DEGRADED, 0.0, query_id=5,
                 extra={"dispatched": 4, "coverage": 0.4})
        rec.emit(TASK_DEQUEUE, 0.1, server_id=0, query_id=5)
        rec.emit(TASK_COMPLETE, 0.6, server_id=0, query_id=5,
                 extra={"duration": 0.5})
        rec.emit(QUERY_COMPLETE, 0.6, query_id=5, class_name="gold",
                 fanout=10, extra={"latency": 0.6})
        (q,) = attribute_queries(rec)
        assert q.degraded is True
        assert q.coverage == pytest.approx(0.4)
        assert q.check_additivity()

    def test_missing_dequeue_falls_back_to_duration(self):
        rec = TraceRecorder()
        rec.emit(QUERY_ARRIVE, 0.0, query_id=0, class_name="gold", fanout=1)
        rec.emit(TASK_COMPLETE, 1.0, server_id=0, query_id=0,
                 extra={"duration": 0.4})
        rec.emit(QUERY_COMPLETE, 1.0, query_id=0, class_name="gold",
                 fanout=1, extra={"latency": 1.0})
        (q,) = attribute_queries(rec)
        assert q.queueing_ms == pytest.approx(0.6)
        assert q.service_ms == pytest.approx(0.4)
        assert q.check_additivity()

    def test_missing_dequeue_and_duration_charges_service(self):
        rec = TraceRecorder()
        rec.emit(QUERY_ARRIVE, 0.0, query_id=0, class_name="gold", fanout=1)
        rec.emit(TASK_COMPLETE, 1.0, server_id=0, query_id=0)
        (q,) = attribute_queries(rec)
        assert q.queueing_ms == 0.0
        assert q.service_ms == pytest.approx(1.0)
        assert q.check_additivity()

    def test_latency_prefers_terminal_event(self):
        rec = TraceRecorder()
        rec.emit(QUERY_ARRIVE, 1.0, query_id=0, class_name="gold", fanout=1)
        rec.emit(TASK_DEQUEUE, 1.0, server_id=0, query_id=0)
        rec.emit(TASK_COMPLETE, 3.0, server_id=0, query_id=0,
                 extra={"duration": 2.0})
        # The handler's recorded latency is authoritative, even when it
        # differs from Tc - t0 by a rounding.
        rec.emit(QUERY_COMPLETE, 3.0, query_id=0, class_name="gold",
                 fanout=1, extra={"latency": 2.0000000001})
        (q,) = attribute_queries(rec)
        assert q.latency_ms == 2.0000000001
        assert q.check_additivity()

    def test_completion_without_arrival_skipped(self):
        rec = TraceRecorder()
        rec.emit(TASK_COMPLETE, 1.0, server_id=0, query_id=9,
                 extra={"duration": 0.5})
        assert attribute_queries(rec) == []

    def test_stale_dequeue_from_other_query_ignored(self):
        rec = TraceRecorder()
        # Server 0's last open dequeue belongs to query 8, not query 0:
        # the matcher must not borrow it.
        rec.emit(QUERY_ARRIVE, 0.0, query_id=0, class_name="gold", fanout=1)
        rec.emit(TASK_DEQUEUE, 0.2, server_id=0, query_id=8)
        rec.emit(TASK_COMPLETE, 1.0, server_id=0, query_id=0,
                 extra={"duration": 0.3})
        rec.emit(QUERY_COMPLETE, 1.0, query_id=0, class_name="gold",
                 fanout=1, extra={"latency": 1.0})
        (q,) = attribute_queries(rec)
        assert q.queueing_ms == pytest.approx(0.7)
        assert q.service_ms == pytest.approx(0.3)


class TestClusterAttribution:
    def build(self):
        rec = TraceRecorder()
        emit_primary_query(rec, 0, t0=0.0, t_deq=0.1, t_done=1.0, server=0)
        emit_primary_query(rec, 1, t0=0.0, t_deq=0.8, t_done=2.0, server=1)
        emit_primary_query(rec, 2, t0=0.0, t_deq=0.2, t_done=4.0, server=1)
        rec.emit(QUERY_TIMEOUT, 5.0, query_id=3, class_name="gold", fanout=1)
        rec.emit(TASK_SHED, 5.0, server_id=0, query_id=4)
        rec.emit(TASK_CANCEL, 5.0, server_id=0, query_id=1,
                 extra={"reason": "hedge_lost"})
        rec.emit(TASK_CANCEL, 5.0, server_id=0, query_id=2,
                 extra={"reason": "timeout"})
        return ClusterAttribution.from_recorder(rec)

    def test_from_recorder_counts(self):
        attr = self.build()
        assert len(attr) == 3
        assert attr.timed_out == 1
        assert attr.shed_tasks == 1
        assert attr.hedge_losses == 1

    def test_component_values_unknown_raises(self):
        attr = self.build()
        with pytest.raises(KeyError):
            attr.component_values("downtime")

    def test_mechanism_table_shares_sum_to_one(self):
        attr = self.build()
        table = attr.mechanism_table()
        assert set(table) == set(COMPONENTS)
        total_share = sum(row["share"] for row in table.values())
        assert total_share == pytest.approx(1.0)
        assert table["service"]["p99"] > 0

    def test_tail_attribution_shares_sum_to_one(self):
        attr = self.build()
        tail = attr.tail_attribution(percentile=50.0, top_servers=2)
        assert tail["n_tail"] >= 1
        assert sum(tail["shares"].values()) == pytest.approx(1.0)
        assert len(tail["servers"]) <= 2
        assert tail["servers"] == sorted(
            tail["servers"], key=lambda row: -row["share"])

    def test_top_k_slowest_first(self):
        attr = self.build()
        top = attr.top_k(2)
        assert [q.query_id for q in top] == [2, 1]

    def test_empty_cluster(self):
        attr = ClusterAttribution([])
        assert len(attr) == 0
        table = attr.mechanism_table()
        assert all(row["share"] == 0.0 for row in table.values())
        tail = attr.tail_attribution()
        assert tail["n_tail"] == 0
        assert tail["servers"] == []
        summary = attr.summary()
        assert "tail" not in summary

    def test_summary_keys(self):
        summary = self.build().summary()
        assert summary["queries_attributed"] == 3
        assert summary["queries_timed_out"] == 1
        assert summary["shed_tasks"] == 1
        assert set(summary["components"]) == set(COMPONENTS)
        assert summary["hedges"]["hedge_losses_cancelled"] == 1
        assert "tail" in summary


class TestErrorBudget:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ErrorBudget("g", slo_ms=1.0, percentile=0.0)
        with pytest.raises(ConfigurationError):
            ErrorBudget("g", slo_ms=1.0, percentile=100.0)
        with pytest.raises(ConfigurationError):
            ErrorBudget("g", slo_ms=0.0)
        with pytest.raises(ConfigurationError):
            ErrorBudget("g", slo_ms=1.0).burn_rate(0.0, now=1.0)

    def test_budget_arithmetic(self):
        budget = ErrorBudget("g", slo_ms=1.0, percentile=90.0)
        assert budget.budget_fraction == pytest.approx(0.1)
        for t in range(10):
            budget.record(float(t), bad=(t == 9))
        assert budget.total == 10
        assert budget.bad == 1
        assert budget.bad_fraction() == pytest.approx(0.1)
        assert budget.budget_consumed() == pytest.approx(1.0)
        assert budget.budget_remaining() == pytest.approx(0.0)

    def test_burn_rate_windows(self):
        budget = ErrorBudget("g", slo_ms=1.0, percentile=90.0)
        # 10 outcomes at t=0..9; both bad ones land late.
        for t in range(10):
            budget.record(float(t), bad=(t >= 8))
        # Trailing window [5, 9] holds 5 outcomes, 2 bad.
        assert budget.burn_rate(4.0, now=9.0) == pytest.approx(
            (2 / 5) / 0.1)
        # The full run: 2/10 bad at a 10% budget burns at 2x.
        assert budget.burn_rate(100.0, now=9.0) == pytest.approx(2.0)
        # A window before any outcome is empty and burns at zero.
        assert budget.burn_rate(1.0, now=-5.0) == 0.0

    def test_empty_budget(self):
        budget = ErrorBudget("g", slo_ms=1.0)
        assert budget.bad_fraction() == 0.0
        assert budget.budget_remaining() == 1.0
        assert budget.burn_rate(1.0, now=0.0) == 0.0


class TestSLOAccountant:
    def feed(self, accountant):
        rec = TraceRecorder()
        rec.emit(QUERY_COMPLETE, 1.0, query_id=0, class_name="gold",
                 fanout=1, extra={"latency": 0.5})
        rec.emit(QUERY_COMPLETE, 2.0, query_id=1, class_name="gold",
                 fanout=1, extra={"latency": 3.0})
        rec.emit(QUERY_TIMEOUT, 3.0, query_id=2, class_name="gold", fanout=1)
        rec.emit(QUERY_REJECTED, 4.0, query_id=3, class_name="gold",
                 fanout=1, extra={"miss_ratio": 0.5})
        rec.emit(QUERY_COMPLETE, 5.0, query_id=4, class_name="unknown",
                 fanout=1, extra={"latency": 0.1})
        return accountant.ingest(rec)

    def test_constructor_forms(self):
        from_mapping = SLOAccountant({"gold": (1.0, 99.0)})
        assert from_mapping.budgets["gold"].slo_ms == 1.0
        from_classes = SLOAccountant([ServiceClass("gold", slo_ms=1.0)])
        assert from_classes.budgets["gold"].percentile == 99.0
        with pytest.raises(ConfigurationError):
            SLOAccountant({})

    def test_ingest_classifies_outcomes(self):
        accountant = SLOAccountant({"gold": (1.0, 90.0)})
        n = self.feed(accountant)
        assert n == 4  # the unknown-class completion is skipped
        budget = accountant.budgets["gold"]
        assert budget.total == 4
        assert budget.bad == 3  # over-SLO completion, timeout, rejection
        assert accountant.span_ms == pytest.approx(3.0)

    def test_windows_and_alerts(self):
        accountant = SLOAccountant({"gold": (1.0, 90.0)})
        self.feed(accountant)
        windows = accountant.windows()
        assert windows["fast"] == pytest.approx(3.0 / 20.0)
        assert windows["slow"] == pytest.approx(3.0 / 5.0)
        with pytest.raises(ConfigurationError):
            accountant.windows(fast_ms=2.0, slow_ms=1.0)
        rates = accountant.burn_rates(fast_ms=10.0, slow_ms=10.0)
        assert rates["gold"]["fast"] == pytest.approx((3 / 4) / 0.1)
        alerts = accountant.alerts(fast_ms=10.0, slow_ms=10.0)
        assert alerts["gold"] is True
        lenient = accountant.alerts(threshold=1e9, fast_ms=10.0,
                                    slow_ms=10.0)
        assert lenient["gold"] is False

    def test_to_json_shape(self):
        accountant = SLOAccountant({"gold": (1.0, 90.0)})
        self.feed(accountant)
        doc = accountant.to_json(fast_ms=10.0, slow_ms=10.0)
        assert set(doc) == {"span_ms", "windows_ms", "classes"}
        row = doc["classes"]["gold"]
        assert row["total"] == 4
        assert row["bad"] == 3
        assert row["burn_rate"]["fast"] > ALERT_BURN_RATE
        assert row["alert"] is True
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_to_prometheus_format(self):
        accountant = SLOAccountant({"gold": (1.0, 90.0)})
        self.feed(accountant)
        text = accountant.to_prometheus(fast_ms=10.0, slow_ms=10.0)
        assert 'tailguard_slo_queries_total{class="gold"} 4' in text
        assert 'tailguard_slo_bad_total{class="gold"} 3' in text
        assert 'tailguard_slo_burn_rate{class="gold",window="fast"}' in text
        assert text.endswith("\n")
        for line in text.splitlines():
            assert line.startswith("#") or " " in line

    def test_from_result_requires_recorder(self):
        untraced = types.SimpleNamespace(obs=None, classes=[])
        with pytest.raises(ConfigurationError):
            SLOAccountant.from_result(untraced)


class TestValidateReport:
    def test_valid_instance(self):
        schema = {
            "type": "object",
            "required": ["version", "items"],
            "properties": {
                "version": {"type": "integer", "enum": [1]},
                "items": {
                    "type": "array",
                    "items": {"type": "number", "minimum": 0},
                },
                "kind": {"type": ["string", "null"]},
            },
        }
        assert validate_report({"version": 1, "items": [0, 1.5],
                                "kind": None}, schema) == []

    def test_each_violation_kind(self):
        schema = {
            "type": "object",
            "required": ["version"],
            "properties": {
                "version": {"type": "integer", "enum": [1]},
                "count": {"type": "integer", "minimum": 0},
                "rows": {"type": "array",
                         "items": {"type": "string"}},
            },
        }
        assert validate_report([], schema)  # type mismatch at the root
        assert validate_report({}, schema)  # missing required key
        assert any("enum" in e for e in
                   validate_report({"version": 2}, schema))
        assert any("minimum" in e for e in
                   validate_report({"version": 1, "count": -1}, schema))
        errors = validate_report({"version": 1, "rows": ["ok", 3]}, schema)
        assert any("rows[1]" in e for e in errors)
        # Booleans are not integers/numbers.
        assert validate_report({"version": True}, schema)

    def test_checked_in_schema_accepts_real_report(self):
        from repro.cluster import ClusterConfig
        from repro.cluster.simulation import simulate
        from repro.experiments.setups import paper_single_class_config
        from repro.obs.forensics import tail_forensics_report

        schema = json.loads(SCHEMA_PATH.read_text())
        config = paper_single_class_config(
            "masstree", slo_ms=1.0, n_servers=100, n_queries=400, seed=3,
        ).at_load(0.4).with_recorder(TraceRecorder())
        report = tail_forensics_report(simulate(config), top_k=3)
        assert validate_report(report, schema) == []
        json.dumps(report)
