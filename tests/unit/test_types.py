"""Unit tests for the core value types."""

import pytest

from repro.errors import ConfigurationError
from repro.types import (
    QueryRecord,
    QuerySpec,
    RequestSpec,
    ServiceClass,
    Task,
    TaskObservation,
)


@pytest.fixture
def gold():
    return ServiceClass("gold", slo_ms=1.0)


class TestQuerySpec:
    def test_fanout_validation(self, gold):
        with pytest.raises(ConfigurationError):
            QuerySpec(0, 0.0, 0, gold)

    def test_servers_length_must_match_fanout(self, gold):
        with pytest.raises(ConfigurationError):
            QuerySpec(0, 0.0, 2, gold, servers=(1,))

    def test_frozen(self, gold):
        spec = QuerySpec(0, 0.0, 1, gold)
        with pytest.raises(AttributeError):
            spec.fanout = 5


class TestTask:
    def test_lifecycle_timings(self):
        task = Task(query_id=0, server_id=1, deadline=5.0,
                    class_priority=0, enqueue_time=1.0)
        task.dequeue_time = 3.0
        task.finish_time = 4.5
        assert task.pre_dequeuing_time == pytest.approx(2.0)
        assert task.post_queuing_time == pytest.approx(1.5)
        assert task.response_time == pytest.approx(3.5)
        assert not task.missed_deadline

    def test_missed_deadline(self):
        task = Task(query_id=0, server_id=1, deadline=2.0,
                    class_priority=0, enqueue_time=1.0)
        task.dequeue_time = 2.5
        assert task.missed_deadline

    def test_unfinished_task_raises(self):
        task = Task(query_id=0, server_id=1, deadline=2.0,
                    class_priority=0, enqueue_time=1.0)
        with pytest.raises(ValueError):
            _ = task.response_time
        with pytest.raises(ValueError):
            _ = task.pre_dequeuing_time


class TestQueryRecord:
    def test_latency(self, gold):
        record = QueryRecord(spec=QuerySpec(0, 2.0, 1, gold))
        record.finish_time = 2.8
        assert record.latency == pytest.approx(0.8)
        assert record.met_slo

    def test_slo_violation(self, gold):
        record = QueryRecord(spec=QuerySpec(0, 0.0, 1, gold))
        record.finish_time = 1.5
        assert not record.met_slo

    def test_unfinished_raises(self, gold):
        record = QueryRecord(spec=QuerySpec(0, 0.0, 1, gold))
        with pytest.raises(ValueError):
            _ = record.latency


class TestRequestSpec:
    def test_invalid_slo(self):
        with pytest.raises(ConfigurationError):
            RequestSpec(0, 0.0, (1, 2), slo_ms=0.0)


class TestTaskObservation:
    def test_valid(self):
        obs = TaskObservation(server_id=3, post_queuing_time=0.4,
                              missed_deadline=False)
        assert obs.server_id == 3

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskObservation(server_id=0, post_queuing_time=-0.1,
                            missed_deadline=True)
