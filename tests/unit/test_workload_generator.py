"""Unit tests for workload assembly, load math and trace I/O."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.types import ServiceClass
from repro.workloads import (
    PoissonArrivals,
    Workload,
    arrival_rate_for_load,
    generate_queries,
    get_workload,
    inverse_proportional_fanout,
    load_trace,
    offered_load,
    save_trace,
    single_class_mix,
    uniform_class_mix,
)
from repro.workloads.generator import QueryStream


@pytest.fixture
def workload():
    bench = get_workload("masstree")
    return Workload(
        name="test",
        arrivals=PoissonArrivals(2.0),
        fanout=inverse_proportional_fanout([1, 10, 100]),
        class_mix=single_class_mix(ServiceClass("single", 1.0)),
        service_time=bench.service_time,
    )


class TestLoadMath:
    def test_rate_load_roundtrip(self):
        rate = arrival_rate_for_load(0.4, 100, 0.176, 2.7)
        assert offered_load(rate, 100, 0.176, 2.7) == pytest.approx(0.4)

    def test_rate_scales_with_servers(self):
        small = arrival_rate_for_load(0.4, 10, 0.2, 2.0)
        large = arrival_rate_for_load(0.4, 100, 0.2, 2.0)
        assert large == pytest.approx(10 * small)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            arrival_rate_for_load(0.0, 100, 0.2, 2.0)
        with pytest.raises(ConfigurationError):
            arrival_rate_for_load(0.4, 0, 0.2, 2.0)

    def test_workload_at_load(self, workload):
        rated = workload.at_load(0.5, 100)
        assert rated.load(100) == pytest.approx(0.5)
        # Original untouched (frozen dataclass semantics).
        assert workload.arrivals.rate == 2.0


class TestGenerateQueries:
    def test_count_and_ordering(self, workload, rng):
        specs = generate_queries(workload, 500, rng)
        assert len(specs) == 500
        times = [s.arrival_time for s in specs]
        assert times == sorted(times)

    def test_ids_sequential(self, workload, rng):
        specs = generate_queries(workload, 10, rng)
        assert [s.query_id for s in specs] == list(range(10))

    def test_reproducible_with_seed(self, workload):
        a = generate_queries(workload, 100, np.random.default_rng(5))
        b = generate_queries(workload, 100, np.random.default_rng(5))
        assert a == b

    def test_fanouts_from_support(self, workload, rng):
        specs = generate_queries(workload, 1000, rng)
        assert {s.fanout for s in specs} <= {1, 10, 100}

    def test_zero_queries(self, workload, rng):
        assert generate_queries(workload, 0, rng) == []


class TestQueryStream:
    def test_stream_monotone_ids_and_times(self, workload, rng):
        stream = QueryStream(workload, rng, block=16)
        specs = [next(stream) for _ in range(50)]
        assert [s.query_id for s in specs] == list(range(50))
        times = [s.arrival_time for s in specs]
        assert times == sorted(times)


class TestTraces:
    def test_save_load_roundtrip(self, workload, rng, tmp_path):
        specs = generate_queries(workload, 50, rng)
        path = tmp_path / "trace.jsonl"
        save_trace(specs, path)
        loaded = load_trace(path)
        assert loaded == specs

    def test_multiclass_roundtrip(self, rng, tmp_path):
        bench = get_workload("shore")
        classes = [ServiceClass("a", 4.0, priority=0),
                   ServiceClass("b", 6.0, priority=1)]
        workload = Workload("multi", PoissonArrivals(1.0),
                            inverse_proportional_fanout([1, 10]),
                            uniform_class_mix(classes), bench.service_time)
        specs = generate_queries(workload, 40, rng)
        path = tmp_path / "trace.jsonl"
        save_trace(specs, path)
        loaded = load_trace(path)
        assert loaded == specs

    def test_servers_preserved(self, tmp_path):
        cls = ServiceClass("a", 1.0)
        specs = [
            QuerySpecWith(servers=(3, 1), cls=cls, qid=0),
        ]
        path = tmp_path / "trace.jsonl"
        save_trace(specs, path)
        assert load_trace(path)[0].servers == (3, 1)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_conflicting_class_definitions_rejected(self, tmp_path):
        from repro.types import QuerySpec

        specs = [
            QuerySpec(0, 1.0, 1, ServiceClass("x", 1.0)),
            QuerySpec(1, 2.0, 1, ServiceClass("x", 2.0)),
        ]
        with pytest.raises(ConfigurationError):
            save_trace(specs, tmp_path / "bad.jsonl")


def QuerySpecWith(servers, cls, qid):
    from repro.types import QuerySpec

    return QuerySpec(query_id=qid, arrival_time=1.0, fanout=len(servers),
                     service_class=cls, servers=servers)
