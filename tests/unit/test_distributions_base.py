"""Unit tests for the distribution base utilities."""

import numpy as np
import pytest

from repro.distributions import Distribution, Exponential, SampleStream, Uniform
from repro.distributions.base import bisect_quantile, validate_probability
from repro.errors import DistributionError


class TestValidateProbability:
    def test_accepts_valid(self):
        arr = validate_probability([0.0, 0.5, 1.0])
        assert arr.tolist() == [0.0, 0.5, 1.0]

    def test_rejects_out_of_range(self):
        with pytest.raises(DistributionError):
            validate_probability(1.5)
        with pytest.raises(DistributionError):
            validate_probability([-0.1, 0.5])


class TestBisectQuantile:
    def test_inverts_monotone_cdf(self):
        dist = Exponential(2.0)
        for q in (0.1, 0.5, 0.9, 0.999):
            x = bisect_quantile(dist.cdf, q, 0.0, 100.0)
            assert dist.cdf(x) == pytest.approx(q, abs=1e-9)

    def test_clamps_at_bracket_edges(self):
        dist = Uniform(1.0, 2.0)
        assert bisect_quantile(dist.cdf, 0.0, 1.0, 2.0) == 1.0
        assert bisect_quantile(dist.cdf, 1.0, 1.0, 2.0) == 2.0

    def test_rejects_bad_probability(self):
        with pytest.raises(DistributionError):
            bisect_quantile(lambda t: t, 1.5, 0.0, 1.0)


class TestDistributionDefaults:
    def test_percentile_wrapper(self):
        dist = Uniform(0.0, 10.0)
        assert dist.percentile(50.0) == pytest.approx(5.0)
        with pytest.raises(DistributionError):
            dist.percentile(150.0)

    def test_support(self):
        assert Uniform(1.0, 3.0).support() == (1.0, 3.0)

    def test_generic_mean_matches_closed_form(self):
        dist = Uniform(2.0, 6.0)
        assert Distribution.mean(dist) == pytest.approx(4.0, rel=1e-3)

    def test_default_sampling_is_inverse_transform(self):
        """A distribution without a custom sampler still samples
        correctly via quantile(U)."""

        class Tri(Distribution):
            def cdf(self, t):
                t = np.clip(np.asarray(t, dtype=float), 0.0, 1.0)
                return t**2

            def quantile(self, q):
                return np.sqrt(np.asarray(q, dtype=float))

        rng = np.random.default_rng(5)
        samples = Tri().sample(rng, 100_000)
        # E[X] for density 2t on [0,1] is 2/3.
        assert np.mean(samples) == pytest.approx(2.0 / 3.0, rel=0.01)


class TestSampleStream:
    def test_iterator_protocol(self):
        rng = np.random.default_rng(0)
        stream = SampleStream(Uniform(0.0, 1.0), rng, block=16)
        first_five = [value for value, _ in zip(stream, range(5))]
        assert len(first_five) == 5
        assert all(0.0 <= v <= 1.0 for v in first_five)

    def test_block_refill_transparent(self):
        rng = np.random.default_rng(0)
        stream = SampleStream(Uniform(0.0, 1.0), rng, block=3)
        values = [stream.next() for _ in range(10)]
        assert len(set(values)) == 10  # no repeats across refills
