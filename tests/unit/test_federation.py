"""Unit tests for the federation config, router and result layers."""

import numpy as np
import pytest

from repro import ClusterConfig, ConfigurationError, ServiceClass
from repro.distributions import Exponential
from repro.federation import (
    ROUTERS,
    FederationConfig,
    FrontTier,
    RouteOutcome,
    SpillPolicy,
    route_queries,
    simulate_federation,
)
from repro.obs import TraceRecorder
from repro.replicas import ReplicaScorer
from repro.workloads import (
    PoissonArrivals,
    Workload,
    single_class_mix,
)
from repro.workloads.fanout import UniformFanout


def make_workload(slo_ms: float = 50.0, mean_ms: float = 1.0,
                  max_fanout: int = 4) -> Workload:
    return Workload(
        "unit", PoissonArrivals(2.0), UniformFanout(1, max_fanout),
        single_class_mix(ServiceClass("gold", slo_ms=slo_ms)),
        Exponential(mean_ms),
    )


def make_shard(n_servers: int = 4, policy: str = "fifo",
               workload: Workload = None, seed: int = 0) -> ClusterConfig:
    return ClusterConfig(n_servers, policy,
                         workload=workload or make_workload(), seed=seed)


def make_fed(n_shards: int = 2, n_servers: int = 4, **kwargs):
    workload = kwargs.pop("workload", make_workload())
    shards = tuple(
        make_shard(n_servers, workload=workload, seed=s)
        for s in range(n_shards)
    )
    kwargs.setdefault("workload", workload)
    kwargs.setdefault("n_queries", 500)
    return FederationConfig(shards, **kwargs)


class TestSpillPolicy:
    def test_negative_margin_rejected(self):
        with pytest.raises(ConfigurationError):
            SpillPolicy(margin_ms=-0.1)

    def test_defaults(self):
        assert SpillPolicy().margin_ms == 0.0


class TestFederationConfig:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ConfigurationError, match="at least one shard"):
            FederationConfig((), workload=make_workload())

    def test_shards_must_be_cluster_configs(self):
        with pytest.raises(ConfigurationError, match="not a ClusterConfig"):
            FederationConfig(("nope",), workload=make_workload())

    def test_spec_driven_shard_rejected(self):
        from repro.types import QuerySpec
        gold = ServiceClass("gold", slo_ms=1.0)
        shard = ClusterConfig(
            2, "fifo",
            specs=[QuerySpec(0, 0.0, 1, gold)],
            server_cdfs={0: Exponential(1.0), 1: Exponential(1.0)},
        )
        with pytest.raises(ConfigurationError, match="spec-driven"):
            FederationConfig((shard,), workload=make_workload())

    def test_workload_required(self):
        with pytest.raises(ConfigurationError, match="workload"):
            FederationConfig((make_shard(),))

    def test_unknown_router_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown router"):
            make_fed(router="round-robin")

    def test_bad_scalars_rejected(self):
        with pytest.raises(ConfigurationError):
            make_fed(n_queries=0)
        with pytest.raises(ConfigurationError):
            make_fed(n_tenants=0)
        with pytest.raises(ConfigurationError):
            make_fed(tenant_alpha=0.0)

    def test_recorder_clash_rejected(self):
        workload = make_workload()
        shard = make_shard(workload=workload).with_recorder(TraceRecorder())
        with pytest.raises(ConfigurationError, match="recorder"):
            FederationConfig((shard,), workload=workload,
                             recorder=TraceRecorder())

    def test_scorer_requires_least_slack_router(self):
        with pytest.raises(ConfigurationError, match="least-slack"):
            make_fed(scorer=ReplicaScorer())

    def test_scorer_type_checked(self):
        with pytest.raises(ConfigurationError, match="ReplicaScorer"):
            make_fed(router="least-slack", scorer=object())

    def test_shards_coerced_to_tuple(self):
        workload = make_workload()
        fed = FederationConfig([make_shard(workload=workload)],
                               workload=workload)
        assert isinstance(fed.shards, tuple)

    def test_shape_properties(self):
        workload = make_workload()
        fed = FederationConfig(
            (make_shard(2, workload=workload),
             make_shard(3, workload=workload),
             make_shard(5, workload=workload)),
            workload=workload,
        )
        assert fed.n_shards == 3
        assert fed.total_servers == 10
        assert fed.server_offsets() == (0, 2, 5)

    def test_builders_are_evolve_wrappers(self):
        fed = make_fed()
        assert fed.with_seed(9).seed == 9
        assert fed.with_router("p2c").router == "p2c"
        spill = SpillPolicy(margin_ms=1.0)
        assert fed.with_spill(spill).spill is spill
        assert fed.with_spill(spill).with_spill(None).spill is None
        recorder = TraceRecorder()
        assert fed.with_recorder(recorder).recorder is recorder
        assert fed.evolve(n_queries=7).n_queries == 7

    def test_evolve_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown config field"):
            make_fed().evolve(n_serverz=4)

    def test_evolve_revalidates(self):
        with pytest.raises(ConfigurationError):
            make_fed().evolve(router="nope")

    def test_at_load_rates_total_capacity(self):
        fed = make_fed(n_shards=3, n_servers=4).at_load(0.5)
        assert fed.workload.load(fed.total_servers) == pytest.approx(0.5)


class TestFrontTier:
    def test_backlog_drains_at_capacity(self):
        tier = FrontTier((make_shard(2), make_shard(4)))
        tier.assign(0, 4)  # 4 tasks x 1ms mean = 4 server-ms
        assert tier.delays()[0] == pytest.approx(2.0)  # 4 / 2 servers
        tier.advance(1.0)  # drains 2 server-ms on shard 0
        assert tier.delays()[0] == pytest.approx(1.0)
        tier.advance(100.0)
        assert tier.work[0] == 0.0  # clamped, never negative


def run_router(fed, m=400, fanout_value=1, spacing=0.05, seed=0):
    classes = [fed.workload.class_mix.classes[0]]
    return route_queries(
        fed, classes,
        np.zeros(m, dtype=np.int64),
        np.full(m, fanout_value, dtype=np.int64),
        np.arange(m) * spacing,
        np.random.default_rng(seed),
    )


class TestRouters:
    def test_router_names_pinned(self):
        assert ROUTERS == ("jsq", "p2c", "least-slack", "tenant")

    @pytest.mark.parametrize("router", ["jsq", "p2c"])
    def test_load_aware_routers_balance_identical_shards(self, router):
        fed = make_fed(n_shards=4, router=router)
        outcome = run_router(fed)
        counts = np.bincount(outcome.shard_of, minlength=4)
        assert counts.min() > 0
        assert counts.max() / counts.min() < 3.0

    def test_fanout_respects_shard_capacity(self):
        # Shards of 2 and 8 servers: fanout-8 queries only fit shard 1.
        workload = make_workload()
        fed = FederationConfig(
            (make_shard(2, workload=workload),
             make_shard(8, workload=workload)),
            workload=workload, router="jsq",
        )
        outcome = run_router(fed, fanout_value=8)
        assert np.all(outcome.shard_of == 1)

    def test_fanout_too_large_for_every_shard_raises(self):
        fed = make_fed(n_shards=2, n_servers=4)
        with pytest.raises(ConfigurationError, match="exceeds every shard"):
            run_router(fed, fanout_value=5)

    def test_tenant_router_pins_tenants_to_home_shards(self):
        fed = make_fed(n_shards=4, router="tenant", n_tenants=16)
        outcome = run_router(fed)
        assert outcome.tenant_of is not None
        assert np.array_equal(outcome.shard_of,
                              outcome.tenant_of % fed.n_shards)

    def test_tenant_skew_concentrates_load(self):
        fed = make_fed(n_shards=4, router="tenant", n_tenants=4,
                       tenant_alpha=3.0)
        counts = np.bincount(run_router(fed).shard_of, minlength=4)
        # Zipf alpha=3 over 4 tenants: the hot tenant's home shard
        # dominates.
        assert counts.max() > counts.sum() / 2

    def test_least_slack_prefers_tightest_feasible_fit(self):
        # Identical budgets, zero backlog: best-fit keeps packing the
        # first shard until its slack drops below the others'.
        fed = make_fed(n_shards=3, router="least-slack")
        outcome = run_router(fed, m=50, spacing=0.0)
        assert np.all(outcome.shard_of == 0)

    def test_scored_least_slack_prefers_fast_tail_shard(self):
        # One fast shard (mean 1 ms) and one slow (mean 4 ms).  Plain
        # least-slack is a tightest-fit packer: the slow shard's smaller
        # budget means smaller slack, so it fills first.  With a
        # tail-weighted ReplicaScorer the ranking flips — zero backlog
        # makes the score the tail term alone, and the fast shard wins.
        workload = make_workload()
        # NB make_workload's mean_ms is Exponential's *rate*: 0.25 -> a
        # 4 ms mean, four times slower than the default shard.
        shards = (make_shard(4, workload=workload),
                  make_shard(4, workload=make_workload(mean_ms=0.25)))
        plain = FederationConfig(shards, workload=workload,
                                 router="least-slack")
        scored = plain.with_scorer(ReplicaScorer(tail_weight=1.0))
        assert run_router(plain, m=50).shard_of[0] == 1
        outcome = run_router(scored, m=200)
        assert outcome.shard_of[0] == 0
        counts = np.bincount(outcome.shard_of, minlength=2)
        assert counts[0] > counts[1]

    def test_outcome_shapes(self):
        fed = make_fed(n_shards=2)
        outcome = run_router(fed, m=123)
        assert isinstance(outcome, RouteOutcome)
        assert outcome.shard_of.shape == (123,)
        assert outcome.spilled.shape == (123,)
        assert not outcome.spilled.any()


class TestSpill:
    def test_hot_home_shard_spills_to_slack(self):
        # One tenant, every query to shard 0, arrivals far faster than
        # the shard drains: backlog exceeds the budget and spill kicks
        # in — strictly after the backlog has had time to build.
        fed = make_fed(n_shards=2, n_servers=2, router="tenant",
                       n_tenants=1, spill=SpillPolicy())
        outcome = run_router(fed, m=600, spacing=0.0)
        assert outcome.spilled.sum() > 0
        assert not outcome.spilled[:50].any()
        # Spilled queries went off-home (home is shard 0 for tenant 0).
        assert np.all(outcome.shard_of[outcome.spilled] == 1)

    def test_margin_delays_spill_onset(self):
        # A larger margin tolerates more backlog before the first
        # overflow hop (the eventual steady-state split is symmetric,
        # so the onset index is the observable).
        fed_tight = make_fed(n_shards=2, n_servers=2, router="tenant",
                             n_tenants=1, spill=SpillPolicy(margin_ms=0.0))
        fed_loose = fed_tight.with_spill(SpillPolicy(margin_ms=100.0))
        tight = run_router(fed_tight, m=600, spacing=0.0)
        loose = run_router(fed_loose, m=600, spacing=0.0)
        assert tight.spilled.any() and loose.spilled.any()
        assert (np.flatnonzero(loose.spilled)[0]
                > np.flatnonzero(tight.spilled)[0])

    def test_spill_never_picks_ineligible_shard(self):
        workload = make_workload(slo_ms=0.5)  # infeasible budgets
        fed = FederationConfig(
            (make_shard(2, workload=workload),
             make_shard(8, workload=workload)),
            workload=workload, router="jsq", spill=SpillPolicy(),
        )
        outcome = run_router(fed, m=200, fanout_value=4, spacing=0.0)
        assert np.all(outcome.shard_of == 1)


class TestFederationResult:
    def test_summary_and_shard_rows(self):
        fed = make_fed(n_shards=3, router="jsq", n_queries=900)
        result = simulate_federation(fed)
        summary = result.summary()
        for key in ("offered_load", "utilization", "n_shards",
                    "total_servers", "spilled", "spill_ratio",
                    "shard_imbalance"):
            assert key in summary
        assert summary["n_shards"] == 3.0
        rows = result.shard_rows()
        assert len(rows) == 3
        assert sum(row["queries"] for row in rows) == 900
        assert result.spill_ratio() == 0.0
        assert result.shard_imbalance() >= 1.0

    def test_empty_shard_yields_none_result(self):
        workload = make_workload()
        # Fanout-4 queries cannot fit a 2-server shard under jsq.
        fed = FederationConfig(
            (make_shard(2, workload=workload),
             make_shard(8, workload=workload)),
            workload=Workload(
                "fixed", PoissonArrivals(2.0), UniformFanout(4, 4),
                workload.class_mix, workload.service_time,
            ),
            n_queries=300,
        )
        result = simulate_federation(fed)
        assert result.shards[0] is None
        assert result.shards[1] is not None
        assert result.merged.latency.size == 300
        assert result.merged.n_servers == 10  # includes the idle shard

    def test_federation_recorder_carries_shard_dimension(self):
        recorder = TraceRecorder()
        fed = make_fed(n_shards=2, n_servers=4, n_queries=600,
                       recorder=recorder)
        result = simulate_federation(fed)
        assert result.merged.obs is recorder
        server_ids = {
            event.server_id for event in recorder.events
            if event.server_id >= 0
        }
        # Servers from both shards appear under the merged flat index.
        assert any(sid >= 4 for sid in server_ids)
        assert all(0 <= sid < 8 for sid in server_ids)
        query_ids = {
            event.query_id for event in recorder.events
            if event.query_id >= 0
        }
        assert max(query_ids) < 600
        # Attribution and SLO accounting work at federation scope.
        table = result.attribution().mechanism_table()
        assert "queueing" in table
        from repro.obs import SLOAccountant
        accountant = SLOAccountant.from_result(result.merged)
        assert accountant.burn_rates()
