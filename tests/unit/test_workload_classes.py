"""Unit tests for service classes and class mixes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.types import ServiceClass, two_classes
from repro.workloads import single_class_mix, uniform_class_mix
from repro.workloads.classes import ClassMix


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestServiceClass:
    def test_valid_construction(self):
        cls = ServiceClass("gold", 1.5, percentile=99.0, priority=0)
        assert cls.quantile == pytest.approx(0.99)

    def test_invalid_slo(self):
        with pytest.raises(ConfigurationError):
            ServiceClass("bad", 0.0)

    def test_invalid_percentile(self):
        with pytest.raises(ConfigurationError):
            ServiceClass("bad", 1.0, percentile=100.0)

    def test_frozen(self):
        cls = ServiceClass("gold", 1.0)
        with pytest.raises(AttributeError):
            cls.slo_ms = 2.0

    def test_two_classes_helper(self):
        high, low = two_classes(1.0, ratio=1.5)
        assert high.slo_ms == 1.0
        assert low.slo_ms == 1.5
        assert high.priority < low.priority


class TestClassMix:
    def test_single_class_mix(self, rng):
        mix = single_class_mix(ServiceClass("only", 1.0))
        assert len(mix) == 1
        assert all(idx == 0 for idx in mix.sample_indices(rng, 100))

    def test_uniform_mix_probabilities(self):
        classes = [ServiceClass("a", 1.0), ServiceClass("b", 2.0)]
        mix = uniform_class_mix(classes)
        assert mix.probabilities() == {"a": 0.5, "b": 0.5}

    def test_uniform_mix_sampling(self, rng):
        classes = [ServiceClass("a", 1.0), ServiceClass("b", 2.0)]
        mix = uniform_class_mix(classes)
        indices = mix.sample_indices(rng, 100_000)
        assert np.mean(indices) == pytest.approx(0.5, abs=0.01)

    def test_probabilities_validation(self):
        with pytest.raises(ConfigurationError):
            ClassMix([(ServiceClass("a", 1.0), 0.6),
                      (ServiceClass("b", 2.0), 0.6)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassMix([(ServiceClass("a", 1.0), 0.5),
                      (ServiceClass("a", 2.0), 0.5)])

    def test_strictest_slo(self):
        classes = [ServiceClass("a", 1.0), ServiceClass("b", 2.0)]
        assert uniform_class_mix(classes).strictest_slo() == 1.0

    def test_sample_returns_class_objects(self, rng):
        cls = ServiceClass("only", 1.0)
        mix = single_class_mix(cls)
        assert mix.sample(rng, 3) == [cls, cls, cls]

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassMix([])
        with pytest.raises(ConfigurationError):
            uniform_class_mix([])
