"""Unit tests for the closed-form queueing module."""

import numpy as np
import pytest

from repro.distributions import Deterministic, Exponential
from repro.errors import ConfigurationError
from repro.metrics.queueing import (
    approximate_max_load,
    md1_mean_wait,
    mg1_mean_response,
    mg1_mean_wait,
    mm1_mean_response,
    mm1_response_quantile,
)
from repro.workloads import get_workload


class TestMM1:
    def test_mean_response(self):
        assert mm1_mean_response(0.5, mu=1.0) == pytest.approx(2.0)
        assert mm1_mean_response(0.9, mu=2.0) == pytest.approx(5.0)

    def test_quantile(self):
        # Median of Exp(0.5) is ln(2)/0.5.
        assert mm1_response_quantile(0.5, 0.5, mu=1.0) == pytest.approx(
            np.log(2.0) / 0.5
        )

    def test_unstable_rejected(self):
        with pytest.raises(ConfigurationError):
            mm1_mean_response(1.0)
        with pytest.raises(ConfigurationError):
            mm1_mean_response(-0.1)


class TestMD1:
    def test_known_value(self):
        # rho=0.5, S=1: E[W] = 0.5 / (2*0.5) = 0.5.
        assert md1_mean_wait(0.5, 1.0) == pytest.approx(0.5)

    def test_divergence_near_one(self):
        assert md1_mean_wait(0.99) > md1_mean_wait(0.5) * 50


class TestMG1:
    def test_reduces_to_mm1(self):
        """For exponential service E[S²] = 2/μ², so P-K gives the M/M/1
        waiting time ρ/(μ(1−ρ))."""
        rho, mu = 0.6, 2.0
        expected_wait = rho / (mu * (1.0 - rho))
        assert mg1_mean_wait(rho, Exponential(mu)) == pytest.approx(
            expected_wait, rel=1e-3
        )

    def test_reduces_to_md1(self):
        rho = 0.7
        assert mg1_mean_wait(rho, Deterministic(1.0)) == pytest.approx(
            md1_mean_wait(rho, 1.0), rel=1e-6
        )

    def test_response_adds_service(self):
        dist = Exponential(1.0)
        assert mg1_mean_response(0.5, dist) == pytest.approx(
            mg1_mean_wait(0.5, dist) + 1.0, rel=1e-9
        )

    def test_deterministic_waits_less_than_exponential(self):
        """Lower service variance means less queueing (P-K)."""
        rho = 0.7
        assert (mg1_mean_wait(rho, Deterministic(1.0))
                < mg1_mean_wait(rho, Exponential(1.0)))


class TestApproximateMaxLoad:
    def test_zero_budget_is_zero_load(self):
        assert approximate_max_load(Exponential(1.0), 0.0) == 0.0

    def test_monotone_in_budget(self):
        dist = get_workload("masstree").service_time
        loads = [approximate_max_load(dist, b) for b in (0.2, 0.5, 1.0, 5.0)]
        assert loads == sorted(loads)

    def test_generous_budget_allows_high_load(self):
        dist = get_workload("masstree").service_time
        assert approximate_max_load(dist, 100.0) > 0.9

    def test_bracket_contains_simulated_boundary(self):
        """The analytic estimate upper-bounds (roughly) the simulated
        single-type max load: it ignores fanout amplification, so it
        should not be far *below* the simulated value."""
        from repro.experiments import find_max_load
        from repro.experiments.setups import paper_single_class_config

        dist = get_workload("masstree").service_time
        budget = 0.8 - 0.473  # SLO 0.8 minus x_u(100)
        analytic = approximate_max_load(dist, budget)
        simulated = find_max_load(
            paper_single_class_config("masstree", 0.8, n_queries=8_000),
            tol=0.05,
        ).max_load
        assert analytic > simulated * 0.5
