"""Unit tests for the experiment harness: reports, max-load search,
sweeps and the registry."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.errors import ExperimentError
from repro.experiments import find_max_load, load_sweep
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.report import ExperimentReport
from repro.experiments.setups import (
    multi_class_config,
    paper_oldi_config,
    paper_single_class_config,
    paper_two_class_config,
)


class TestExperimentReport:
    def test_add_row_validates_columns(self):
        report = ExperimentReport("x", "t", columns=["a", "b"])
        with pytest.raises(ExperimentError):
            report.add_row(a=1)
        report.add_row(a=1, b=2)
        assert report.rows == [{"a": 1, "b": 2}]

    def test_column_extraction(self):
        report = ExperimentReport("x", "t", columns=["a"])
        report.add_row(a=1)
        report.add_row(a=2)
        assert report.column("a") == [1, 2]
        with pytest.raises(ExperimentError):
            report.column("ghost")

    def test_select_filters(self):
        report = ExperimentReport("x", "t", columns=["policy", "v"])
        report.add_row(policy="fifo", v=1)
        report.add_row(policy="tailguard", v=2)
        assert report.select(policy="tailguard") == [
            {"policy": "tailguard", "v": 2}
        ]

    def test_format_table_contains_data(self):
        report = ExperimentReport("x", "demo", columns=["a"], notes="hello")
        report.add_row(a=0.123456)
        text = report.format_table()
        assert "demo" in text
        assert "0.1235" in text
        assert "hello" in text

    def test_to_dict_roundtrip_fields(self):
        report = ExperimentReport("x", "t", parameters={"n": 1},
                                  columns=["a"])
        report.add_row(a=1)
        data = report.to_dict()
        assert data["experiment_id"] == "x"
        assert data["rows"] == [{"a": 1}]


class TestSetups:
    def test_single_class_setup(self):
        config = paper_single_class_config("masstree", 1.0, n_queries=100)
        assert config.n_servers == 100
        assert len(config.workload.class_mix) == 1
        assert config.workload.fanout.support() == (1, 10, 100)

    def test_two_class_setup_ratio(self):
        config = paper_two_class_config("masstree", 1.0, ratio=1.5)
        slos = sorted(c.slo_ms for c in config.workload.class_mix.classes)
        assert slos == [1.0, 1.5]

    def test_oldi_setup_fixed_fanout(self):
        config = paper_oldi_config("xapian", 10.0, 15.0, n_servers=50)
        assert config.workload.fanout.support() == (50,)

    def test_multi_class_setup(self):
        config = multi_class_config("masstree", [1.0, 2.0, 3.0])
        assert len(config.workload.class_mix) == 3

    def test_pareto_arrivals_option(self):
        from repro.workloads import ParetoArrivals

        config = paper_two_class_config("masstree", 1.0, arrival="pareto")
        assert isinstance(config.workload.arrivals, ParetoArrivals)

    def test_mmpp_arrivals_option(self):
        from repro.workloads import MMPPArrivals

        config = paper_two_class_config("masstree", 1.0, arrival="mmpp")
        assert isinstance(config.workload.arrivals, MMPPArrivals)

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ExperimentError):
            paper_single_class_config("masstree", 1.0, arrival="weibull")


class TestMaxLoad:
    def test_finds_boundary_between_feasible_and_not(self):
        config = paper_single_class_config("masstree", 1.0,
                                           n_queries=4_000, seed=3)
        outcome = find_max_load(config, lo=0.05, hi=0.9, tol=0.05)
        assert 0.05 < outcome.max_load < 0.9
        assert outcome.policy_name == "tailguard"
        assert outcome.probes >= 3

    def test_infeasible_slo_gives_zero(self):
        config = paper_single_class_config("masstree", 0.05,
                                           n_queries=1_000, seed=3)
        outcome = find_max_load(config, lo=0.05, hi=0.5, tol=0.05)
        assert outcome.max_load == 0.0

    def test_trivial_slo_returns_hi(self):
        config = paper_single_class_config("masstree", 1000.0,
                                           n_queries=1_000, seed=3)
        outcome = find_max_load(config, lo=0.05, hi=0.5, tol=0.05)
        assert outcome.max_load == 0.5

    def test_parameter_validation(self):
        config = paper_single_class_config("masstree", 1.0, n_queries=100)
        with pytest.raises(ExperimentError):
            find_max_load(config, lo=0.5, hi=0.2)
        with pytest.raises(ExperimentError):
            find_max_load(config, tol=0.0)


class TestLoadSweep:
    def test_sweep_points_per_load(self):
        config = paper_two_class_config("masstree", 1.0, n_queries=2_000,
                                        seed=3)
        points = load_sweep(config, [0.2, 0.4], seed=3)
        assert [p.offered_load for p in points] == [0.2, 0.4]
        assert set(points[0].class_tails_ms) == {"class-I", "class-II"}

    def test_tails_increase_with_load(self):
        config = paper_two_class_config("masstree", 1.0, n_queries=6_000,
                                        seed=3)
        points = load_sweep(config, [0.2, 0.6], seed=3)
        assert points[1].tail("class-I") > points[0].tail("class-I")

    def test_empty_loads_rejected(self):
        config = paper_two_class_config("masstree", 1.0, n_queries=100)
        with pytest.raises(ExperimentError):
            load_sweep(config, [])

    def test_unknown_class_tail_raises(self):
        config = paper_two_class_config("masstree", 1.0, n_queries=1_000)
        points = load_sweep(config, [0.2], seed=1)
        with pytest.raises(ExperimentError):
            points[0].tail("ghost")


class TestRegistry:
    def test_registry_complete(self):
        expected = {
            "fig3", "table2", "fig4", "table3", "fig5", "fig6",
            "fig6_summary", "fig7", "fig9a", "fig9", "fig9_summary",
            "ext_scale", "ext_fault_sweep", "ext_four_classes",
            "ext_overload_sweep", "ext_request_decomposition",
            "ext_arrival_burstiness", "ext_replica_selection",
            "ext_tail_attribution", "ext_federation",
            "ablation_inaccurate_cdf", "ablation_online_updating",
            "ablation_admission_threshold", "ablation_server_slowdown",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_fig3_runs_instantly(self):
        report = run_experiment("fig3", quick=True)
        assert report.experiment_id == "fig3"
        workloads = set(report.column("workload"))
        assert workloads == {"masstree", "shore", "xapian"}

    def test_table2_matches_paper_within_tolerance(self):
        report = run_experiment("table2", quick=True)
        for row in report.rows:
            assert row["model_ms"] == pytest.approx(row["paper_ms"], rel=0.01)

    def test_fig9a_matches_paper(self):
        report = run_experiment("fig9a", quick=True)
        for row in report.rows:
            assert row["model_ms"] == pytest.approx(row["paper_ms"], rel=0.01)


class TestSweepSeedPrecedence:
    """seed=None must fall back to config.seed, pinned per point
    *before* any simulation runs — so sweeps with per-point admission
    controllers are reproducible without an explicit seed argument."""

    def test_seed_none_reproducible_from_config_seed(self):
        from repro.core import AdmissionFactory, DeadlineMissRatioAdmission

        config = paper_single_class_config("masstree", 1.0,
                                           n_queries=1_500, seed=11)
        factory = AdmissionFactory(DeadlineMissRatioAdmission,
                                   {"threshold": 0.05, "min_samples": 100})
        first = load_sweep(config, [0.3, 0.5], seed=None,
                           admission_factory=factory)
        second = load_sweep(config, [0.3, 0.5], seed=None,
                            admission_factory=factory)
        assert first == second

    def test_explicit_seed_overrides_config_seed(self):
        a = paper_single_class_config("masstree", 1.0,
                                      n_queries=1_500, seed=3)
        b = paper_single_class_config("masstree", 1.0,
                                      n_queries=1_500, seed=9)
        # Same explicit seed -> identical points despite different
        # config seeds; different config seeds alone -> different.
        assert load_sweep(a, [0.4], seed=7) == load_sweep(b, [0.4], seed=7)
        assert load_sweep(a, [0.4], seed=None) != load_sweep(b, [0.4],
                                                             seed=None)
