"""Unit tests for SimulationResult analysis helpers (bucketing, windows)."""

import numpy as np
import pytest

from repro.cluster.results import SimulationResult
from repro.errors import ConfigurationError
from repro.types import ServiceClass


def make_result(fanouts, latencies, arrivals=None, classes=None,
                class_index=None):
    n = len(fanouts)
    cls = classes if classes is not None else (ServiceClass("only", 10.0),)
    return SimulationResult(
        policy_name="fifo",
        n_servers=4,
        seed=0,
        offered_load=0.5,
        classes=cls,
        class_index=np.asarray(class_index if class_index is not None
                               else [0] * n, dtype=np.int32),
        fanout=np.asarray(fanouts, dtype=np.int32),
        arrival=np.asarray(arrivals if arrivals is not None
                           else np.arange(n, dtype=float)),
        latency=np.asarray(latencies, dtype=float),
        rejected=np.zeros(n, dtype=bool),
        measured=np.ones(n, dtype=bool),
        tasks_total=int(sum(fanouts)),
        tasks_missed_deadline=0,
        busy_time_total=1.0,
        duration=float(n),
        mean_service_ms=0.2,
    )


class TestBucketLatencies:
    def test_grouping_by_edges(self):
        result = make_result([1, 2, 5, 20, 150], [1.0, 2.0, 3.0, 4.0, 5.0])
        buckets = result.bucket_latencies("only", (1, 10, 100))
        assert set(buckets) == {(1, 10), (10, 100),
                                (100, np.iinfo(np.int32).max)}
        assert list(buckets[(1, 10)]) == [1.0, 2.0, 3.0]
        assert list(buckets[(10, 100)]) == [4.0]
        assert list(buckets[(100, np.iinfo(np.int32).max)]) == [5.0]

    def test_empty_buckets_omitted(self):
        result = make_result([1, 1], [1.0, 2.0])
        buckets = result.bucket_latencies("only", (1, 50))
        assert set(buckets) == {(1, 50)}

    def test_invalid_edges(self):
        result = make_result([1], [1.0])
        with pytest.raises(ConfigurationError):
            result.bucket_latencies("only", ())
        with pytest.raises(ConfigurationError):
            result.bucket_latencies("only", (10, 5))

    def test_meets_all_slos_with_buckets(self):
        good = make_result([1, 2, 150], [1.0, 1.0, 1.0])
        assert good.meets_all_slos(min_samples=1, fanout_buckets=(1, 100))
        bad = make_result([1, 2, 150], [1.0, 1.0, 99.0])
        assert not bad.meets_all_slos(min_samples=1, fanout_buckets=(1, 100))


class TestTimeWindows:
    def test_latencies_between_selects_by_arrival(self):
        result = make_result([1] * 5, [1.0, 2.0, 3.0, 4.0, 5.0],
                             arrivals=[0.0, 10.0, 20.0, 30.0, 40.0])
        window = result.latencies_between(10.0, 35.0)
        assert list(window) == [2.0, 3.0, 4.0]

    def test_tail_between(self):
        result = make_result([1] * 4, [1.0, 9.0, 2.0, 3.0],
                             arrivals=[0.0, 5.0, 10.0, 15.0])
        assert result.tail_between(4.0, 11.0, 100.0) == 9.0

    def test_multiclass_window(self):
        classes = (ServiceClass("a", 10.0), ServiceClass("b", 10.0))
        result = make_result([1, 1, 1, 1], [1.0, 2.0, 3.0, 4.0],
                             arrivals=[0.0, 1.0, 2.0, 3.0],
                             classes=classes, class_index=[0, 1, 0, 1])
        values = result.latencies_between(0.0, 10.0, class_name="b")
        assert list(values) == [2.0, 4.0]
