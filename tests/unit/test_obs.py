"""Unit tests for the observability layer (repro.obs)."""

import io
import json
import math
import os

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import (
    DEADLINE_MISS,
    QUERY_ARRIVE,
    QUERY_COMPLETE,
    QUERY_TIMEOUT,
    SERVER_IDLE,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_ENQUEUE,
    LogHistogram,
    NullRecorder,
    TraceRecorder,
    chrome_trace_events,
    recorder_from_jsonl,
    text_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.export import HANDLER_TID, TRACE_PID, read_jsonl
from repro.sim.engine import Environment

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "data",
                           "golden_chrome_trace.json")


def golden_recorder() -> TraceRecorder:
    """The fixed event stream behind the golden Chrome-trace file."""
    rec = TraceRecorder(sample_interval_ms=1.0)
    rec.emit(QUERY_ARRIVE, 0.0, query_id=0, class_name="gold", fanout=2)
    rec.emit(TASK_DEQUEUE, 0.0, server_id=0, query_id=0, class_name="gold",
             fanout=2, deadline=0.9, slack=0.9)
    rec.emit(TASK_ENQUEUE, 0.0, server_id=1, query_id=0, class_name="gold",
             fanout=2, deadline=0.9, slack=0.9,
             extra={"queue_len": 1, "reorder_depth": 0})
    rec.emit(TASK_COMPLETE, 0.5, server_id=0, query_id=0,
             extra={"duration": 0.5})
    rec.emit(SERVER_IDLE, 0.5, server_id=0)
    rec.emit(TASK_DEQUEUE, 1.0, server_id=1, query_id=0, class_name="gold",
             fanout=2, deadline=0.9, slack=-0.1, extra={"queue_len": 0})
    rec.emit(DEADLINE_MISS, 1.0, server_id=1, query_id=0, deadline=0.9,
             slack=-0.1)
    rec.emit(QUERY_TIMEOUT, 1.2, query_id=1, class_name="gold", fanout=1)
    rec.emit(TASK_COMPLETE, 1.5, server_id=1, query_id=0,
             extra={"duration": 0.5})
    rec.emit(QUERY_COMPLETE, 1.5, query_id=0, class_name="gold", fanout=2,
             extra={"latency": 1.5})
    rec.sample_servers(1.0, [0, 0], [0, 1], [0.5, 1.0], [0.0, 1.0])
    return rec


class TestLogHistogram:
    def test_bucket_boundaries(self):
        hist = LogHistogram(1.0, 1000.0, buckets_per_decade=1)
        assert hist.num_buckets == 3
        assert [hist.bucket_lower(i) for i in range(3)] == [1.0, 10.0, 100.0]
        assert hist.bucket_upper(0) == pytest.approx(10.0)
        assert hist.bucket_upper(2) == pytest.approx(1000.0)

    def test_fractional_decades_round_up(self):
        hist = LogHistogram(1.0, 50.0, buckets_per_decade=1)
        assert hist.num_buckets == 2  # [1, 10) and [10, 50)

    def test_record_routing(self):
        hist = LogHistogram(1.0, 1000.0, buckets_per_decade=1)
        hist.record(0.5)     # underflow
        hist.record(1.0)     # first bucket, inclusive lower edge
        hist.record(9.99)    # still first bucket
        hist.record(10.0)    # second bucket edge
        hist.record(999.0)   # last bucket
        hist.record(1000.0)  # overflow, exclusive upper edge
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.snapshot()["counts"] == [2, 1, 1]
        assert hist.total_count() == 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogHistogram(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            LogHistogram(10.0, 10.0)
        with pytest.raises(ConfigurationError):
            LogHistogram(1.0, 10.0, buckets_per_decade=0)
        hist = LogHistogram()
        with pytest.raises(ConfigurationError):
            hist.record(-1.0)
        with pytest.raises(ConfigurationError):
            hist.percentile(50.0)  # empty

    def test_merge_adds_counts(self):
        a = LogHistogram(1.0, 1000.0, buckets_per_decade=2)
        b = LogHistogram(1.0, 1000.0, buckets_per_decade=2)
        for v in (2.0, 30.0, 500.0):
            a.record(v)
        for v in (2.5, 0.1, 5000.0):
            b.record(v)
        a.merge(b)
        assert a.total_count() == 6
        assert a.underflow == 1 and a.overflow == 1
        assert a.sum() == pytest.approx(2.0 + 30.0 + 500.0 + 2.5 + 0.1 + 5000.0)

    def test_merge_rejects_different_layouts(self):
        a = LogHistogram(1.0, 1000.0, buckets_per_decade=2)
        b = LogHistogram(1.0, 1000.0, buckets_per_decade=4)
        b.record(3.0)  # empty sources merge as no-ops; non-empty must raise
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_equals_union_snapshot(self):
        """Merging two histograms == recording everything into one."""
        # Dyadic values: sums are exact regardless of addition order,
        # so the merged snapshot can be compared with ==.
        values_a = [2.0 ** -11, 0.5, 4.0, 64.0, 512.0]
        values_b = [0.25, 0.25, 32.0, 99999.0]
        a = LogHistogram()
        union = LogHistogram()
        b = LogHistogram()
        for v in values_a:
            a.record(v)
            union.record(v)
        for v in values_b:
            b.record(v)
            union.record(v)
        a.merge(b)
        assert a.snapshot() == union.snapshot()

    def test_snapshot_roundtrip(self):
        hist = LogHistogram(0.1, 100.0, buckets_per_decade=3)
        for v in (0.05, 0.3, 7.0, 250.0):
            hist.record(v)
        clone = LogHistogram.from_snapshot(hist.snapshot())
        assert clone.snapshot() == hist.snapshot()
        assert clone.percentile(50.0) == hist.percentile(50.0)

    def test_percentile_monotone_and_bounded(self):
        hist = LogHistogram()
        for v in (0.1, 0.2, 0.5, 1.0, 2.0, 8.0):
            hist.record(v)
        values = [hist.percentile(p) for p in (0, 25, 50, 75, 100)]
        assert values == sorted(values)
        assert values[-1] <= 8.0 * 10 ** (1 / hist.buckets_per_decade)


class TestTraceRecorder:
    def test_seq_is_emission_order(self):
        rec = TraceRecorder()
        for _ in range(5):
            rec.emit(QUERY_ARRIVE, 1.0, query_id=0)
        assert [e.seq for e in rec.events] == [0, 1, 2, 3, 4]

    def test_rejects_unknown_event_type(self):
        rec = TraceRecorder()
        with pytest.raises(ConfigurationError):
            rec.emit("NOT_A_THING", 0.0)

    def test_counters_and_gauges(self):
        rec = TraceRecorder()
        rec.inc("a")
        rec.inc("a", 2)
        rec.set_gauge("g", 0.5)
        assert rec.counters == {"a": 3}
        assert rec.gauges == {"g": 0.5}

    def test_sample_interval_validation(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(sample_interval_ms=0.0)

    def test_event_ordering_follows_engine_tie_break(self):
        """Events at equal sim-times keep the engine's deterministic
        (priority, insertion order) processing order."""
        env = Environment()
        rec = TraceRecorder()

        def proc(name):
            yield env.timeout(1.0)
            rec.emit(QUERY_ARRIVE, env.now, class_name=name)

        for name in ("a", "b", "c"):
            env.process(proc(name))
        env.run()
        assert [e.class_name for e in rec.events] == ["a", "b", "c"]
        assert [e.time for e in rec.events] == [1.0, 1.0, 1.0]
        assert [e.seq for e in rec.events] == [0, 1, 2]

    def test_engine_step_hook_sees_every_event_in_order(self):
        env = Environment()
        seen = []
        env.step_hook = lambda now, event: seen.append(now)

        def proc():
            yield env.timeout(1.0)
            yield env.timeout(2.0)

        env.process(proc())
        env.run()
        assert seen == sorted(seen)
        assert len(seen) >= 3  # Initialize + two timeouts + terminations

    def test_summary_shape(self):
        rec = golden_recorder()
        rec.observe_latency(1.5)
        rec.inc("tasks_dequeued", 2)
        summary = rec.summary()
        assert summary["n_events"] == len(rec.events)
        assert summary["events_by_type"][TASK_DEQUEUE] == 2
        assert summary["counters"]["tasks_dequeued"] == 2
        assert summary["latency_ms"]["count"] == 1
        assert summary["series_samples"] == 1
        assert summary["series_servers"] == 2
        json.dumps(summary)  # must be JSON-clean


class TestNullRecorder:
    def test_everything_is_a_noop(self):
        rec = NullRecorder()
        assert rec.enabled is False
        rec.emit(QUERY_ARRIVE, 0.0, query_id=1)
        rec.emit("even unknown types are fine", 0.0)
        rec.inc("x")
        rec.set_gauge("y", 1.0)
        rec.observe_latency(5.0)
        rec.sample_servers(1.0, [0], [0], [0.0], [0.0])
        assert rec.events == ()
        assert rec.counts_by_type() == {}
        assert rec.server_series() is None
        assert rec.summary() == {}


class TestExporters:
    def test_jsonl_roundtrip(self):
        rec = golden_recorder()
        buffer = io.StringIO()
        n = write_jsonl(rec, buffer)
        assert n == len(rec.events)
        parsed = read_jsonl(io.StringIO(buffer.getvalue()))
        assert [p["type"] for p in parsed] == [e.type for e in rec.events]
        assert parsed[1]["slack"] == pytest.approx(0.9)
        assert parsed[2]["reorder_depth"] == 0

    def test_chrome_events_are_schema_valid(self):
        events = chrome_trace_events(golden_recorder())
        assert events, "no trace events produced"
        for event in events:
            assert "ph" in event and "pid" in event and "tid" in event
            if event["ph"] != "M":
                assert "ts" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_chrome_pairs_dequeue_with_complete(self):
        events = chrome_trace_events(golden_recorder())
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 2
        by_tid = {e["tid"]: e for e in slices}
        # server 0 is tid 1: dequeued at 0.0ms, completed at 0.5ms.
        assert by_tid[1]["ts"] == pytest.approx(0.0)
        assert by_tid[1]["dur"] == pytest.approx(500.0)
        # server 1 is tid 2: dequeued at 1.0ms, completed at 1.5ms.
        assert by_tid[2]["ts"] == pytest.approx(1000.0)
        assert by_tid[2]["dur"] == pytest.approx(500.0)

    def test_chrome_golden_file(self):
        """The exporter's byte-for-byte output is pinned by a golden
        file — regenerate with tests/data/make_golden.py when the
        format intentionally changes."""
        buffer = io.StringIO()
        write_chrome_trace(golden_recorder(), buffer)
        with open(GOLDEN_PATH, "r", encoding="utf-8") as stream:
            golden = stream.read()
        assert buffer.getvalue() == golden

    def test_chrome_terminal_instants(self):
        """QUERY_COMPLETE / QUERY_TIMEOUT become handler-thread instant
        events carrying their extras (latency for completions)."""
        events = chrome_trace_events(golden_recorder())
        instants = {e["name"]: e for e in events if e["ph"] == "i"}
        complete = instants[QUERY_COMPLETE]
        assert complete["tid"] == HANDLER_TID
        assert complete["ts"] == pytest.approx(1500.0)
        assert complete["args"]["latency"] == pytest.approx(1.5)
        timeout = instants[QUERY_TIMEOUT]
        assert timeout["tid"] == HANDLER_TID
        assert timeout["args"]["query_id"] == 1

    def test_text_summary_mentions_each_event_type(self):
        rec = golden_recorder()
        text = text_summary(rec)
        for name in (QUERY_ARRIVE, TASK_DEQUEUE, DEADLINE_MISS):
            assert name in text

    def test_text_summary_includes_collector_groups(self):
        from repro.metrics import LatencyCollector

        collector = LatencyCollector()
        collector.record("gold", 2, 1.5)
        text = text_summary(golden_recorder(), collector)
        assert "gold" in text and "kf=2" in text


class TestQueueReorderDepth:
    def test_edf_counts_overtaken_tasks(self):
        from repro.core.policies import EDFTaskQueue

        queue = EDFTaskQueue()
        queue.push("a", (5.0,))
        queue.push("b", (3.0,))
        queue.push("c", (9.0,))
        assert queue.reorder_depth((1.0,)) == 3
        assert queue.reorder_depth((4.0,)) == 2
        assert queue.reorder_depth((10.0,)) == 0

    def test_fifo_never_reorders(self):
        from repro.core.policies import FIFOTaskQueue

        queue = FIFOTaskQueue()
        queue.push("a", (5.0,))
        assert queue.reorder_depth((0.0,)) == 0

    def test_priq_counts_lower_priority_lanes(self):
        from repro.core.policies import PriorityTaskQueue

        queue = PriorityTaskQueue()
        queue.push("a", (0, 1.0))
        queue.push("b", (2, 1.0))
        queue.push("c", (2, 2.0))
        assert queue.reorder_depth((1, 0.0)) == 2
        assert queue.reorder_depth((0, 9.0)) == 2
        assert queue.reorder_depth((2, 0.0)) == 0


class TestEmptyMerge:
    """Merging *empty* sources is a no-op — even across layouts.

    Regression: an empty worker histogram (different bucket layout, or
    just never recorded into) used to fail the layout check and reset
    nothing gracefully; now empty sources fold in as no-ops.
    """

    def test_merge_empty_histogram_any_layout(self):
        a = LogHistogram(1.0, 1000.0, buckets_per_decade=2)
        a.record(5.0)
        before = a.snapshot()
        a.merge(LogHistogram(0.5, 77.0, buckets_per_decade=9))
        assert a.snapshot() == before

    def test_merge_snapshot_empty_any_layout(self):
        a = LogHistogram(1.0, 1000.0, buckets_per_decade=2)
        a.record(5.0)
        before = a.snapshot()
        empty = LogHistogram(0.5, 77.0, buckets_per_decade=9).snapshot()
        a.merge_snapshot(empty)
        assert a.snapshot() == before

    def test_nonempty_layout_mismatch_still_raises(self):
        a = LogHistogram(1.0, 1000.0, buckets_per_decade=2)
        b = LogHistogram(1.0, 1000.0, buckets_per_decade=4)
        b.record(3.0)
        with pytest.raises(ConfigurationError):
            a.merge(b)
        with pytest.raises(ConfigurationError):
            a.merge_snapshot(b.snapshot())

    def test_recorder_merge_from_empty_is_noop(self):
        rec = golden_recorder()
        rec.observe_latency(1.5)
        n_events = len(rec.events)
        counters = dict(rec.counters)
        hist_before = rec.latency_hist.snapshot()
        series_before = len(rec.server_series())
        rec.merge_from(TraceRecorder(histogram=LogHistogram(0.5, 9.0)))
        assert len(rec.events) == n_events
        assert rec.counters == counters
        assert rec.latency_hist.snapshot() == hist_before
        assert len(rec.server_series()) == series_before


class TestExportEdgeCases:
    def test_zero_event_trace(self):
        rec = TraceRecorder()
        buffer = io.StringIO()
        assert write_jsonl(rec, buffer) == 0
        assert buffer.getvalue() == ""
        events = chrome_trace_events(rec)
        # Metadata only: process name + handler thread name.
        assert [e["ph"] for e in events] == ["M", "M"]
        text = text_summary(rec)
        assert "trace summary" in text

    def test_unknown_types_pass_through_jsonl(self):
        rec = TraceRecorder(strict=False)
        rec.emit("CUSTOM_PROBE", 0.25, server_id=3,
                 extra={"payload": "x", "n": 7})
        rec.emit(QUERY_ARRIVE, 0.5, query_id=0, class_name="gold")
        buffer = io.StringIO()
        write_jsonl(rec, buffer)
        back = recorder_from_jsonl(io.StringIO(buffer.getvalue()))
        assert [e.type for e in back.events] == ["CUSTOM_PROBE",
                                                 QUERY_ARRIVE]
        probe = back.events[0]
        assert probe.server_id == 3
        assert probe.extra == {"payload": "x", "n": 7}
        assert back.events[1].class_name == "gold"
        assert [e.seq for e in back.events] == [0, 1]

    def test_recorder_from_jsonl_roundtrips_golden(self):
        rec = golden_recorder()
        buffer = io.StringIO()
        write_jsonl(rec, buffer)
        back = recorder_from_jsonl(io.StringIO(buffer.getvalue()))
        assert [e.to_dict() for e in back.events] == \
            [e.to_dict() for e in rec.events]

    def test_chrome_pid_tid_stable_across_merge(self):
        """A merged recorder exports the same pid/tid mapping as its
        sources: everything in pid 0, server sid on tid sid + 1, one
        thread_name metadata record per server."""
        a = TraceRecorder()
        a.emit(TASK_DEQUEUE, 0.0, server_id=0, query_id=0)
        a.emit(TASK_COMPLETE, 0.5, server_id=0, query_id=0,
               extra={"duration": 0.5})
        b = TraceRecorder()
        b.emit(TASK_DEQUEUE, 0.2, server_id=4, query_id=1)
        b.emit(TASK_COMPLETE, 0.9, server_id=4, query_id=1,
               extra={"duration": 0.7})
        b.emit(TASK_DEQUEUE, 1.0, server_id=0, query_id=2)
        b.emit(TASK_COMPLETE, 1.4, server_id=0, query_id=2,
               extra={"duration": 0.4})
        a.merge_from(b)
        events = chrome_trace_events(a)
        assert {e["pid"] for e in events} == {TRACE_PID}
        slices = [e for e in events if e["ph"] == "X"]
        assert sorted(e["tid"] for e in slices) == [1, 1, 5]
        names = [e for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        # handler + exactly one per distinct server, despite server 0
        # appearing in both source recorders.
        assert len(names) == 3
