"""Unit tests for piecewise-linear CDFs and calibration."""

import numpy as np
import pytest

from repro.distributions import PiecewiseLinearCDF
from repro.distributions.piecewise import calibrated_piecewise_cdf, from_anchors
from repro.errors import DistributionError


@pytest.fixture
def triangle():
    """Uniform on [0, 2] expressed as a piecewise CDF."""
    return PiecewiseLinearCDF([(0.0, 0.0), (2.0, 1.0)])


class TestPiecewiseLinearCDF:
    def test_needs_two_knots(self):
        with pytest.raises(DistributionError):
            PiecewiseLinearCDF([(0.0, 0.0)])

    def test_times_strictly_increasing(self):
        with pytest.raises(DistributionError):
            PiecewiseLinearCDF([(0.0, 0.0), (0.0, 1.0)])

    def test_probs_non_decreasing(self):
        with pytest.raises(DistributionError):
            PiecewiseLinearCDF([(0.0, 0.0), (1.0, 0.7), (2.0, 0.5), (3.0, 1.0)])

    def test_must_span_zero_to_one(self):
        with pytest.raises(DistributionError):
            PiecewiseLinearCDF([(0.0, 0.1), (1.0, 1.0)])

    def test_uniform_mean(self, triangle):
        assert triangle.mean() == pytest.approx(1.0)

    def test_uniform_variance(self, triangle):
        assert triangle.variance() == pytest.approx(4.0 / 12.0)

    def test_cdf_linear_interpolation(self, triangle):
        assert triangle.cdf(0.5) == pytest.approx(0.25)
        assert float(triangle.cdf(np.array([1.5]))[0]) == pytest.approx(0.75)

    def test_quantile_inverse(self, triangle):
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert triangle.cdf(triangle.quantile(q)) == pytest.approx(q)

    def test_flat_region_quantile_takes_right_edge(self):
        d = PiecewiseLinearCDF([(0.0, 0.0), (1.0, 0.5), (2.0, 0.5), (3.0, 1.0)])
        assert d.quantile(0.5) == pytest.approx(2.0)

    def test_sample_statistics(self, triangle):
        rng = np.random.default_rng(3)
        samples = triangle.sample(rng, 100_000)
        assert np.mean(samples) == pytest.approx(1.0, abs=0.01)
        assert samples.min() >= 0.0
        assert samples.max() <= 2.0

    def test_scaled(self, triangle):
        doubled = triangle.scaled(2.0)
        assert doubled.mean() == pytest.approx(2.0)
        assert doubled.support() == (0.0, 4.0)

    def test_scaled_invalid_factor(self, triangle):
        with pytest.raises(DistributionError):
            triangle.scaled(0.0)

    def test_support(self, triangle):
        assert triangle.support() == (0.0, 2.0)


class TestFromAnchors:
    def test_builds_through_anchors(self):
        d = from_anchors([(0.5, 1.0), (0.99, 3.0)], minimum=0.0, maximum=5.0)
        assert d.quantile(0.5) == pytest.approx(1.0)
        assert d.quantile(0.99) == pytest.approx(3.0)

    def test_rejects_unsorted_anchors(self):
        with pytest.raises(DistributionError):
            from_anchors([(0.9, 1.0), (0.5, 2.0)], minimum=0.0, maximum=5.0)


class TestCalibration:
    def test_hits_target_mean_exactly(self):
        d = calibrated_piecewise_cdf(
            body_anchors=[(0.5, 1.0), (0.9, 2.0)],
            fixed_anchors=[(0.99, 5.0)],
            minimum=0.1,
            maximum=8.0,
            target_mean=1.4,
        )
        assert d.mean() == pytest.approx(1.4, abs=1e-6)
        # Fixed anchor untouched.
        assert d.quantile(0.99) == pytest.approx(5.0)

    def test_unreachable_mean_raises(self):
        with pytest.raises(DistributionError):
            calibrated_piecewise_cdf(
                body_anchors=[(0.5, 1.0)],
                fixed_anchors=[(0.99, 2.0)],
                minimum=0.1,
                maximum=3.0,
                target_mean=100.0,
            )

    def test_needs_anchors(self):
        with pytest.raises(DistributionError):
            calibrated_piecewise_cdf([], [(0.99, 1.0)], 0.0, 2.0, 0.5)
