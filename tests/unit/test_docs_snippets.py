"""The README quickstart must keep working verbatim."""


def test_readme_quickstart_snippet():
    from repro import (
        ClusterConfig,
        PoissonArrivals,
        ServiceClass,
        Workload,
        get_workload,
        inverse_proportional_fanout,
        simulate,
        single_class_mix,
    )

    bench = get_workload("masstree")
    workload = Workload(
        name="demo",
        arrivals=PoissonArrivals(1.0),
        fanout=inverse_proportional_fanout([1, 10, 100]),
        class_mix=single_class_mix(ServiceClass("gold", slo_ms=1.0)),
        service_time=bench.service_time,
    )
    config = ClusterConfig(n_servers=100, policy="tailguard",
                           workload=workload, n_queries=5_000)
    result = simulate(config.at_load(0.40))
    tails = result.per_type_tails()
    assert set(tails) == {("gold", 1), ("gold", 10), ("gold", 100)}
    assert all(tail > 0 for tail in tails.values())


def test_extending_doc_policy_snippet():
    """The docs/extending.md custom-policy example works as written."""
    from repro.core.policies import EDFTaskQueue, POLICIES, Policy

    class SlackPolicy(Policy):
        name = "slack-doc-test"
        uses_fanout = True

        def queue_key(self, arrival_time, service_class, tf_deadline):
            return (tf_deadline - arrival_time,)

        def create_queue(self):
            return EDFTaskQueue()

    POLICIES[SlackPolicy.name] = SlackPolicy()
    try:
        from repro.cluster import ClusterConfig, simulate
        from repro.experiments.setups import paper_single_class_config

        config = paper_single_class_config(
            "masstree", 1.0, policy="slack-doc-test", n_queries=1_000,
        ).at_load(0.3)
        result = simulate(config)
        assert result.policy_name == "slack-doc-test"
        assert result.count() > 0
    finally:
        del POLICIES[SlackPolicy.name]


def test_overload_doc_snippet():
    """The docs/overload.md quickstart works as written."""
    from repro import (
        AdaptiveAdmissionPolicy,
        BreakerPolicy,
        DegradePolicy,
        DriftPolicy,
        OverloadPolicy,
        simulate,
    )
    from repro.experiments.setups import paper_single_class_config

    policy = OverloadPolicy(
        admission=AdaptiveAdmissionPolicy(target_miss_ratio=0.005,
                                          window_ms=10.0, max_latch_ms=50.0),
        degrade=DegradePolicy(min_coverage=0.3, safety=2.0),
        breakers=BreakerPolicy(miss_threshold=2, open_ms=3.0),
        drift=DriftPolicy(threshold=0.15, window=500, check_interval=200),
    )
    config = paper_single_class_config(
        "masstree", 1.0, n_queries=2_000,
    ).at_load(0.9)
    result = simulate(config.with_overload(policy))
    assert result.overload is not None
    assert result.coverage is not None
    assert 0.0 <= result.coverage_p99() <= 1.0
    assert result.overload.admit_probability <= 1.0


def test_observability_doc_snippet():
    """The docs/observability.md quickstart works as written."""
    from dataclasses import replace

    from repro.cluster import simulate
    from repro.experiments.setups import paper_single_class_config
    from repro.obs import TraceRecorder, text_summary, write_chrome_trace

    import io

    config = paper_single_class_config(
        "masstree", 1.0, n_queries=1_000,
    ).at_load(0.3)
    recorder = TraceRecorder(sample_interval_ms=5.0)
    result = simulate(replace(config, recorder=recorder))

    assert "=== trace summary ===" in text_summary(recorder)
    buffer = io.StringIO()
    assert write_chrome_trace(recorder, buffer) > 0
    assert result.obs is recorder


def test_faults_doc_replica_snippet():
    """The docs/faults.md adaptive-redundancy snippet works as written."""
    from repro import (
        AdaptiveHedgePolicy,
        FaultPlan,
        HedgePolicy,
        HedgeSuppressionPolicy,
        ReplicaPolicy,
        ReplicaScorer,
        StragglerEpisode,
        simulate,
    )
    from repro.experiments.setups import paper_single_class_config

    plan = FaultPlan(
        stragglers=(StragglerEpisode((0, 1), 10.0, 60.0, 3.0),),
        hedge=HedgePolicy(delay_ms=1.0),
    )
    rpolicy = ReplicaPolicy(
        scorer=ReplicaScorer(tail_weight=0.5),
        suppression=HedgeSuppressionPolicy(pressure_threshold_ms=1.0),
        adaptive=AdaptiveHedgePolicy(max_duplicate_fraction=0.15),
    )
    config = paper_single_class_config(
        "masstree", 1.0, n_queries=2_000,
    ).at_load(0.5)
    result = simulate(config.with_faults(plan).with_replicas(rpolicy))
    assert result.replicas is not None
    assert 0.0 <= result.replicas.duplicate_fraction() <= 0.15
    assert result.replicas.delay_scale() > 0.0
