"""Unit tests for the reconstructed Tailbench workload models.

These assert the headline fidelity claim: the models reproduce every
number the paper publishes about its simulation inputs (Table II).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import TAILBENCH_WORKLOADS, get_workload
from repro.workloads.tailbench import FIG4_SLOS_MS, FIG6_CLASS_SLOS_MS


class TestRegistry:
    def test_three_workloads(self):
        assert set(TAILBENCH_WORKLOADS) == {"masstree", "shore", "xapian"}

    def test_lookup_case_insensitive(self):
        assert get_workload("MASSTREE").name == "masstree"

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_workload("redis")


@pytest.mark.parametrize("name", ["masstree", "shore", "xapian"])
class TestTable2Fidelity:
    def test_mean_matches_paper(self, name):
        workload = get_workload(name)
        assert workload.service_time.mean() == pytest.approx(
            workload.paper_mean_ms, rel=1e-4
        )

    @pytest.mark.parametrize("fanout", [1, 10, 100])
    def test_x99_matches_paper(self, name, fanout):
        workload = get_workload(name)
        assert workload.unloaded_query_tail(fanout) == pytest.approx(
            workload.paper_x99_ms[fanout], rel=1e-4
        )

    def test_table2_row_consistency(self, name):
        workload = get_workload(name)
        row = workload.table2_row()
        assert row["x99(1)"] < row["x99(10)"] < row["x99(100)"]

    def test_support_is_positive_and_bounded(self, name):
        lo, hi = get_workload(name).service_time.support()
        assert 0 < lo < hi < 10.0

    def test_sampled_statistics_match_model(self, name):
        workload = get_workload(name)
        rng = np.random.default_rng(77)
        samples = workload.service_time.sample(rng, 300_000)
        assert np.mean(samples) == pytest.approx(workload.paper_mean_ms,
                                                 rel=0.01)
        assert np.percentile(samples, 99) == pytest.approx(
            workload.paper_x99_ms[1], rel=0.03
        )


class TestExperimentConstants:
    def test_fig4_slos_cover_all_workloads(self):
        assert set(FIG4_SLOS_MS) == set(TAILBENCH_WORKLOADS)
        for slos in FIG4_SLOS_MS.values():
            assert len(slos) == 4
            assert slos == sorted(slos)

    def test_fig6_slo_pairs(self):
        for name, (slo1, slo2) in FIG6_CLASS_SLOS_MS.items():
            assert slo1 < slo2
            # SLOs must exceed the unloaded fanout-100 tail, or the
            # budget is negative even on an idle cluster.
            workload = get_workload(name)
            assert slo1 > workload.paper_x99_ms[100]
