"""Unit tests for the MMPP arrival process."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import MMPPArrivals, PoissonArrivals


@pytest.fixture
def rng():
    return np.random.default_rng(101)


class TestMMPPArrivals:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(1.0, burst_factor=1.0)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(1.0, burst_fraction=0.0)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(1.0, mean_cycle_arrivals=0.0)

    def test_not_a_renewal_process(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(1.0).interarrival_distribution()

    def test_times_strictly_increasing(self, rng):
        times = MMPPArrivals(2.0).arrival_times(rng, 5_000)
        assert np.all(np.diff(times) > 0)

    def test_long_run_rate(self, rng):
        times = MMPPArrivals(2.0).arrival_times(rng, 400_000)
        realized = len(times) / times[-1]
        assert realized == pytest.approx(2.0, rel=0.05)

    def test_burstier_than_poisson(self, rng):
        """Index of dispersion of counts far exceeds Poisson's 1."""
        mmpp_times = MMPPArrivals(2.0).arrival_times(rng, 200_000)
        window = 50.0

        def idc(times):
            counts, _ = np.histogram(times, np.arange(0, times[-1], window))
            return np.var(counts) / np.mean(counts)

        poisson_times = PoissonArrivals(2.0).arrival_times(rng, 200_000)
        assert idc(mmpp_times) > 10 * idc(poisson_times)

    def test_with_rate_preserves_shape(self):
        process = MMPPArrivals(1.0, burst_factor=8.0, burst_fraction=0.1)
        scaled = process.with_rate(4.0)
        assert scaled.rate == 4.0
        assert scaled.burst_factor == 8.0
        assert scaled.burst_fraction == 0.1

    def test_zero_count(self, rng):
        assert MMPPArrivals(1.0).arrival_times(rng, 0).size == 0

    def test_start_offset(self, rng):
        times = MMPPArrivals(1.0).arrival_times(rng, 10, start=500.0)
        assert times[0] > 500.0
