"""Unit tests for the analytic distribution family."""

import numpy as np
import pytest

from repro.distributions import (
    BoundedPareto,
    Deterministic,
    Exponential,
    HyperExponential,
    LogNormal,
    Mixture,
    Pareto,
    Shifted,
    Uniform,
    Weibull,
)
from repro.errors import DistributionError


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestDeterministic:
    def test_mean_is_value(self):
        assert Deterministic(3.0).mean() == 3.0

    def test_cdf_step(self):
        d = Deterministic(2.0)
        assert d.cdf(1.9) == 0.0
        assert d.cdf(2.0) == 1.0

    def test_quantile_constant(self):
        d = Deterministic(2.0)
        assert d.quantile(0.01) == 2.0
        assert d.quantile(0.99) == 2.0

    def test_negative_rejected(self):
        with pytest.raises(DistributionError):
            Deterministic(-1.0)


class TestUniform:
    def test_mean(self):
        assert Uniform(1.0, 3.0).mean() == 2.0

    def test_quantile_endpoints(self):
        u = Uniform(1.0, 3.0)
        assert u.quantile(0.0) == 1.0
        assert u.quantile(1.0) == 3.0

    def test_cdf_midpoint(self):
        assert Uniform(0.0, 4.0).cdf(1.0) == 0.25

    def test_invalid_bounds(self):
        with pytest.raises(DistributionError):
            Uniform(3.0, 1.0)


class TestExponential:
    def test_mean(self):
        assert Exponential(2.0).mean() == 0.5

    def test_from_mean(self):
        assert Exponential.from_mean(0.25).rate == 4.0

    def test_quantile_cdf_roundtrip(self):
        d = Exponential(1.7)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert d.cdf(d.quantile(q)) == pytest.approx(q, rel=1e-9)

    def test_sample_mean(self, rng):
        d = Exponential(2.0)
        samples = d.sample(rng, 200_000)
        assert np.mean(samples) == pytest.approx(0.5, rel=0.02)

    def test_invalid_rate(self):
        with pytest.raises(DistributionError):
            Exponential(0.0)


class TestLogNormal:
    def test_mean_closed_form(self):
        d = LogNormal(mu=0.0, sigma=0.5)
        assert d.mean() == pytest.approx(np.exp(0.125), rel=1e-9)

    def test_quantile_cdf_roundtrip(self):
        d = LogNormal(mu=-1.0, sigma=0.8)
        for q in (0.05, 0.5, 0.95, 0.99):
            assert d.cdf(d.quantile(q)) == pytest.approx(q, abs=2e-4)

    def test_median(self):
        d = LogNormal(mu=1.0, sigma=0.3)
        assert d.quantile(0.5) == pytest.approx(np.e, rel=1e-4)

    def test_cdf_zero_below_support(self):
        assert LogNormal(0.0, 1.0).cdf(0.0) == 0.0


class TestWeibull:
    def test_mean_gamma_form(self):
        import math

        d = Weibull(shape=2.0, scale=3.0)
        assert d.mean() == pytest.approx(3.0 * math.gamma(1.5), rel=1e-9)

    def test_quantile_cdf_roundtrip(self):
        d = Weibull(1.5, 2.0)
        for q in (0.1, 0.5, 0.9):
            assert d.cdf(d.quantile(q)) == pytest.approx(q, rel=1e-9)


class TestPareto:
    def test_mean(self):
        assert Pareto(shape=2.0, xm=1.0).mean() == 2.0

    def test_infinite_mean_for_small_shape(self):
        assert Pareto(shape=0.9, xm=1.0).mean() == float("inf")

    def test_cdf_below_xm_is_zero(self):
        assert Pareto(2.0, 1.0).cdf(0.5) == 0.0


class TestBoundedPareto:
    def test_support_respected(self, rng):
        d = BoundedPareto(shape=1.1, low=1.0, high=100.0)
        samples = d.sample(rng, 10_000)
        assert samples.min() >= 1.0
        assert samples.max() <= 100.0

    def test_from_mean_hits_mean(self):
        d = BoundedPareto.from_mean(5.0)
        assert d.mean() == pytest.approx(5.0, rel=1e-9)

    def test_sample_mean_close(self, rng):
        d = BoundedPareto.from_mean(2.0, shape=1.3, spread=100.0)
        samples = d.sample(rng, 300_000)
        assert np.mean(samples) == pytest.approx(2.0, rel=0.05)

    def test_quantile_cdf_roundtrip(self):
        d = BoundedPareto(1.1, 1.0, 1000.0)
        for q in (0.01, 0.5, 0.99):
            assert d.cdf(d.quantile(q)) == pytest.approx(q, rel=1e-9)

    def test_shape_one_mean(self):
        d = BoundedPareto(1.0, 1.0, 10.0)
        grid_mean = float(np.mean(d.quantile((np.arange(100_000) + 0.5)
                                             / 100_000)))
        assert d.mean() == pytest.approx(grid_mean, rel=1e-3)


class TestHyperExponential:
    def test_mean(self):
        d = HyperExponential([0.5, 0.5], [1.0, 2.0])
        assert d.mean() == pytest.approx(0.75)

    def test_sample_mean(self, rng):
        d = HyperExponential([0.9, 0.1], [10.0, 0.5])
        samples = d.sample(rng, 200_000)
        assert np.mean(samples) == pytest.approx(d.mean(), rel=0.05)

    def test_probs_must_sum_to_one(self):
        with pytest.raises(DistributionError):
            HyperExponential([0.5, 0.4], [1.0, 2.0])

    def test_quantile_inverts_cdf(self):
        d = HyperExponential([0.7, 0.3], [5.0, 0.5])
        assert d.cdf(d.quantile(0.95)) == pytest.approx(0.95, abs=1e-6)


class TestMixture:
    def test_mean_weighted(self):
        d = Mixture([0.25, 0.75], [Deterministic(1.0), Deterministic(5.0)])
        assert d.mean() == 4.0

    def test_cdf_combination(self):
        d = Mixture([0.5, 0.5], [Uniform(0.0, 1.0), Uniform(1.0, 2.0)])
        assert float(d.cdf(1.0)) == pytest.approx(0.5)

    def test_sampling_covers_components(self, rng):
        d = Mixture([0.5, 0.5], [Deterministic(1.0), Deterministic(9.0)])
        samples = np.asarray(d.sample(rng, 10_000))
        assert set(np.unique(samples)) == {1.0, 9.0}


class TestShifted:
    def test_mean_adds_offset(self):
        assert Shifted(Exponential(1.0), 2.0).mean() == 3.0

    def test_quantile_adds_offset(self):
        base = Uniform(0.0, 1.0)
        assert Shifted(base, 5.0).quantile(0.5) == pytest.approx(5.5)

    def test_negative_offset_rejected(self):
        with pytest.raises(DistributionError):
            Shifted(Exponential(1.0), -0.1)
