"""Unit tests for timeline instrumentation."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import ClusterConfig, simulate
from repro.cluster.config import ServicePerturbation
from repro.cluster.results import Timeline
from repro.distributions import Deterministic
from repro.errors import ConfigurationError
from repro.experiments.setups import paper_single_class_config
from repro.types import QuerySpec, ServiceClass


@pytest.fixture
def gold():
    return ServiceClass("gold", slo_ms=100.0)


class TestTimelineSampling:
    def test_disabled_by_default(self, small_config):
        assert simulate(small_config).timeline is None

    def test_interval_validation(self, small_config):
        with pytest.raises(ConfigurationError):
            replace(small_config, timeline_interval_ms=0.0)

    def test_sample_spacing(self, gold):
        specs = [QuerySpec(0, 0.0, 1, gold, servers=(0,))]
        config = ClusterConfig(
            n_servers=1, policy="fifo", specs=specs,
            server_cdfs={0: Deterministic(10.0)},
            warmup_fraction=0.0, timeline_interval_ms=2.0,
        )
        timeline = simulate(config).timeline
        assert np.allclose(np.diff(timeline.time), 2.0)
        # Samples at 2..10 ms; the t=10 sample reflects the state just
        # *before* the completion event at t=10, so all five show busy.
        assert list(timeline.busy_servers) == [1, 1, 1, 1, 1]

    def test_queue_depth_observed(self, gold):
        # Three tasks to one server, deterministic 10 ms service: at
        # t=5 two are queued, at t=15 one, at t=25 none.
        specs = [QuerySpec(i, 0.0, 1, gold, servers=(0,)) for i in range(3)]
        config = ClusterConfig(
            n_servers=1, policy="fifo", specs=specs,
            server_cdfs={0: Deterministic(10.0)},
            warmup_fraction=0.0, timeline_interval_ms=10.0,
        )
        timeline = simulate(config).timeline
        by_time = dict(zip(timeline.time, timeline.queued_tasks))
        assert by_time[10.0] == 2  # sampled just before the t=10 dequeue
        assert by_time[20.0] == 1

    def test_busy_tracks_load(self):
        config = replace(
            paper_single_class_config("masstree", 1.0,
                                      n_queries=20_000).at_load(0.4),
            timeline_interval_ms=2.0,
        )
        timeline = simulate(config).timeline
        assert timeline.mean_busy() == pytest.approx(40.0, abs=4.0)

    def test_perturbation_visible_in_timeline(self):
        base = paper_single_class_config("masstree", 1.0,
                                         n_queries=20_000).at_load(0.4)
        probe = simulate(base)
        horizon = float(probe.arrival.max())
        window = (horizon / 3, 2 * horizon / 3)
        config = replace(
            base,
            timeline_interval_ms=horizon / 200,
            perturbations=(
                ServicePerturbation(tuple(range(30)), window[0],
                                    window[1], 3.0),
            ),
        )
        timeline = simulate(config).timeline
        calm = timeline.between(0.0, window[0])
        stormy = timeline.between(window[0] + (window[1] - window[0]) / 2,
                                  window[1])
        assert stormy.queued_tasks.mean() > 3 * max(
            calm.queued_tasks.mean(), 0.5
        )


class TestTimelineContainer:
    def test_between_filters(self):
        timeline = Timeline(
            time=np.asarray([1.0, 2.0, 3.0]),
            queued_tasks=np.asarray([5, 6, 7]),
            busy_servers=np.asarray([1, 2, 3]),
        )
        window = timeline.between(1.5, 3.0)
        assert list(window.time) == [2.0]
        assert window.peak_queue() == 6

    def test_empty_timeline(self):
        empty = Timeline(np.asarray([]), np.asarray([]), np.asarray([]))
        assert len(empty) == 0
        assert empty.peak_queue() == 0
        assert empty.mean_busy() == 0.0
