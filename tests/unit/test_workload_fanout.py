"""Unit tests for fanout distributions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    CategoricalFanout,
    FixedFanout,
    UniformFanout,
    ZipfFanout,
    inverse_proportional_fanout,
)


@pytest.fixture
def rng():
    return np.random.default_rng(21)


class TestFixedFanout:
    def test_constant_samples(self, rng):
        assert set(FixedFanout(7).sample(rng, 100)) == {7}

    def test_mean(self):
        assert FixedFanout(100).mean() == 100.0

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            FixedFanout(0)


class TestCategoricalFanout:
    def test_pmf_normalized(self):
        dist = CategoricalFanout({1: 0.5, 10: 0.5})
        assert dist.pmf() == {1: 0.5, 10: 0.5}

    def test_mean(self):
        dist = CategoricalFanout({1: 0.5, 3: 0.5})
        assert dist.mean() == 2.0

    def test_sample_support(self, rng):
        dist = CategoricalFanout({2: 0.3, 5: 0.7})
        samples = dist.sample(rng, 1000)
        assert set(np.unique(samples)) <= {2, 5}

    def test_probabilities_must_sum(self):
        with pytest.raises(ConfigurationError):
            CategoricalFanout({1: 0.5, 2: 0.4})

    def test_fanouts_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CategoricalFanout({0: 1.0})


class TestInverseProportional:
    def test_paper_probabilities(self):
        """§IV.B: P(1)=100/111, P(10)=10/111, P(100)=1/111."""
        dist = inverse_proportional_fanout([1, 10, 100])
        pmf = dist.pmf()
        assert pmf[1] == pytest.approx(100 / 111)
        assert pmf[10] == pytest.approx(10 / 111)
        assert pmf[100] == pytest.approx(1 / 111)

    def test_equal_expected_task_volume(self):
        """The mix equalizes expected tasks per type: k * P(k) constant."""
        dist = inverse_proportional_fanout([1, 10, 100])
        volumes = {k: k * p for k, p in dist.pmf().items()}
        values = list(volumes.values())
        assert max(values) == pytest.approx(min(values))

    def test_empirical_frequencies(self, rng):
        dist = inverse_proportional_fanout([1, 10, 100])
        samples = dist.sample(rng, 111_000)
        share_1 = np.mean(samples == 1)
        assert share_1 == pytest.approx(100 / 111, abs=0.01)


class TestUniformFanout:
    def test_bounds(self, rng):
        dist = UniformFanout(2, 5)
        samples = dist.sample(rng, 1000)
        assert samples.min() >= 2
        assert samples.max() <= 5

    def test_mean(self):
        assert UniformFanout(1, 3).mean() == 2.0

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformFanout(5, 2)


class TestZipfFanout:
    def test_probabilities_decrease(self):
        dist = ZipfFanout(1.3, 50)
        pmf = dist.pmf()
        assert pmf[1] > pmf[2] > pmf[10] > pmf[50]

    def test_facebook_like_shape(self):
        """§II.A: Facebook fanouts are 'one to several hundreds with 65%
        under 20'; alpha=1.3, k_max=300 roughly matches."""
        dist = ZipfFanout(1.3, 300)
        under_20 = sum(p for k, p in dist.pmf().items() if k < 20)
        assert 0.55 < under_20 < 0.95

    def test_sample_range(self, rng):
        dist = ZipfFanout(1.0, 10)
        samples = dist.sample(rng, 1000)
        assert samples.min() >= 1
        assert samples.max() <= 10

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            ZipfFanout(0.0, 10)
