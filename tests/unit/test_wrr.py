"""Unit tests for the weighted round-robin queue and policy."""

import pytest

from repro.core.policies import (
    WRRPolicy,
    WeightedRoundRobinTaskQueue,
    get_policy,
)
from repro.errors import ConfigurationError
from repro.types import ServiceClass


class TestWRRQueue:
    def test_weights_validation(self):
        with pytest.raises(ConfigurationError):
            WeightedRoundRobinTaskQueue({0: 0.0})
        with pytest.raises(ConfigurationError):
            WeightedRoundRobinTaskQueue({}, default_weight=0.0)

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            WeightedRoundRobinTaskQueue({0: 1.0}).pop()

    def test_fifo_within_lane(self):
        queue = WeightedRoundRobinTaskQueue({0: 1.0})
        for tag in ("a", "b", "c"):
            queue.push(tag, (0, 0.0))
        assert [queue.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_share_matches_weights(self):
        """2:1 weights serve the heavy lane twice as often."""
        queue = WeightedRoundRobinTaskQueue({0: 2.0, 1: 1.0})
        for i in range(300):
            queue.push(("heavy", i), (0, 0.0))
            queue.push(("light", i), (1, 0.0))
        first_90 = [queue.pop()[0] for _ in range(90)]
        heavy = first_90.count("heavy")
        assert heavy == pytest.approx(60, abs=2)

    def test_no_starvation(self):
        """Unlike strict priority, the light lane is served regularly."""
        queue = WeightedRoundRobinTaskQueue({0: 10.0, 1: 1.0})
        for i in range(110):
            queue.push(("heavy", i), (0, 0.0))
        for i in range(10):
            queue.push(("light", i), (1, 0.0))
        first_44 = [queue.pop()[0] for _ in range(44)]
        assert first_44.count("light") >= 3

    def test_empty_lane_gets_no_share(self):
        queue = WeightedRoundRobinTaskQueue({0: 1.0, 1: 1.0})
        for i in range(5):
            queue.push(("only", i), (1, 0.0))
        assert [queue.pop()[0] for _ in range(5)] == ["only"] * 5

    def test_conservation(self):
        queue = WeightedRoundRobinTaskQueue({0: 3.0, 1: 1.0, 2: 1.0})
        pushed = set()
        for i in range(60):
            queue.push(i, (i % 3, 0.0))
            pushed.add(i)
        popped = {queue.pop() for _ in range(60)}
        assert popped == pushed


class TestWRRPolicy:
    def test_registered(self):
        assert get_policy("wrr").name == "wrr"

    def test_key_is_priority_then_arrival(self):
        policy = get_policy("wrr")
        gold = ServiceClass("gold", 1.0, priority=0)
        assert policy.queue_key(3.0, gold, 99.0) == (0, 3.0)

    def test_custom_weights(self):
        policy = WRRPolicy({0: 5.0, 1: 1.0})
        queue = policy.create_queue()
        for i in range(60):
            queue.push(("a", i), (0, 0.0))
            queue.push(("b", i), (1, 0.0))
        first_60 = [queue.pop()[0] for _ in range(60)]
        assert first_60.count("a") == pytest.approx(50, abs=2)

    def test_default_weights_decay_with_priority(self):
        queue = WRRPolicy().create_queue()
        for i in range(120):
            queue.push(("hi", i), (0, 0.0))
            queue.push(("lo", i), (1, 0.0))
        first_90 = [queue.pop()[0] for _ in range(90)]
        # Default weights 1 : 1/2 give the high class a 2/3 share.
        assert first_90.count("hi") == pytest.approx(60, abs=3)

    def test_end_to_end_between_fifo_and_priq(self):
        """WRR's class-I tail sits between FIFO's (no preference) and
        PRIQ's (absolute preference) at equal load."""
        from repro.cluster import simulate
        from repro.experiments.setups import paper_two_class_config

        tails = {}
        for policy in ("fifo", "wrr", "priq"):
            result = simulate(
                paper_two_class_config("masstree", 1.0, policy=policy,
                                       n_queries=20_000, seed=9).at_load(0.5)
            )
            tails[policy] = result.tail(99.0, "class-I")
        assert tails["priq"] <= tails["wrr"] <= tails["fifo"] * 1.05, tails
