"""Unit tests for query admission control (paper §III.C)."""

import pytest

from repro.core.admission import DeadlineMissRatioAdmission, NoAdmission
from repro.errors import ConfigurationError


class TestNoAdmission:
    def test_always_admits(self):
        controller = NoAdmission()
        controller.record_task(True)
        assert controller.admit()
        assert controller.miss_ratio() == 0.0


class TestDeadlineMissRatioAdmission:
    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            DeadlineMissRatioAdmission(0.0)
        with pytest.raises(ConfigurationError):
            DeadlineMissRatioAdmission(1.0)

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            DeadlineMissRatioAdmission(0.02, window_tasks=0)
        with pytest.raises(ConfigurationError):
            DeadlineMissRatioAdmission(0.02, window_tasks=10, min_samples=11)

    def test_empty_ratio_is_zero(self):
        controller = DeadlineMissRatioAdmission(0.02)
        assert controller.miss_ratio() == 0.0

    def test_ratio_over_partial_window(self):
        controller = DeadlineMissRatioAdmission(0.5, window_tasks=100,
                                                min_samples=1)
        for missed in (True, False, False, False):
            controller.record_task(missed)
        assert controller.miss_ratio() == pytest.approx(0.25)

    def test_window_eviction(self):
        controller = DeadlineMissRatioAdmission(0.5, window_tasks=4,
                                                min_samples=1)
        for _ in range(4):
            controller.record_task(True)
        assert controller.miss_ratio() == 1.0
        for _ in range(4):
            controller.record_task(False)
        assert controller.miss_ratio() == 0.0

    def test_admits_below_threshold(self):
        controller = DeadlineMissRatioAdmission(0.10, window_tasks=100,
                                                min_samples=10)
        for i in range(100):
            controller.record_task(i % 20 == 0)  # 5% misses
        assert controller.admit()

    def test_rejects_above_threshold(self):
        controller = DeadlineMissRatioAdmission(0.10, window_tasks=100,
                                                min_samples=10)
        for i in range(100):
            controller.record_task(i % 5 == 0)  # 20% misses
        assert not controller.admit()

    def test_recovers_when_ratio_falls(self):
        controller = DeadlineMissRatioAdmission(0.10, window_tasks=50,
                                                min_samples=10)
        for _ in range(50):
            controller.record_task(True)
        assert not controller.admit()
        for _ in range(50):
            controller.record_task(False)
        assert controller.admit()

    def test_grace_period_before_min_samples(self):
        controller = DeadlineMissRatioAdmission(0.01, window_tasks=1000,
                                                min_samples=100)
        for _ in range(50):
            controller.record_task(True)  # 100% misses but few samples
        assert controller.admit()

    def test_decision_counters(self):
        controller = DeadlineMissRatioAdmission(0.10, window_tasks=10,
                                                min_samples=1)
        controller.record_task(True)
        assert not controller.admit()
        controller.record_task(False)
        for _ in range(20):
            controller.record_task(False)
        assert controller.admit()
        assert controller.rejected == 1
        assert controller.admitted == 1
        assert controller.rejection_rate() == pytest.approx(0.5)

    def test_exact_threshold_admits(self):
        controller = DeadlineMissRatioAdmission(0.5, window_tasks=10,
                                                min_samples=2)
        controller.record_task(True)
        controller.record_task(False)
        assert controller.admit()  # ratio == threshold is acceptable

    def test_time_window_evicts_stale_entries(self):
        controller = DeadlineMissRatioAdmission(0.5, window_tasks=100,
                                                window_ms=10.0,
                                                min_samples=1)
        controller.record_task(True, now=0.0)
        controller.record_task(True, now=1.0)
        assert controller.miss_ratio() == 1.0
        # By t=20 both entries are stale; the window empties and the
        # controller recovers.
        assert controller.admit(now=20.0)
        assert controller.miss_ratio() == 0.0

    def test_invalid_window_ms(self):
        with pytest.raises(ConfigurationError):
            DeadlineMissRatioAdmission(0.5, window_ms=0.0)


class TestDutyCycleMode:
    def _controller(self, threshold=0.1, **kwargs):
        defaults = dict(window_tasks=1_000, window_ms=100.0,
                        min_samples=10, mode="duty-cycle",
                        ctl_interval_ms=1.0)
        defaults.update(kwargs)
        return DeadlineMissRatioAdmission(threshold, **defaults)

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            DeadlineMissRatioAdmission(0.1, mode="random")

    def test_invalid_tuning(self):
        with pytest.raises(ConfigurationError):
            DeadlineMissRatioAdmission(0.1, mode="duty-cycle", decrease=1.5)
        with pytest.raises(ConfigurationError):
            DeadlineMissRatioAdmission(0.1, mode="duty-cycle",
                                       ctl_interval_ms=0.0)

    def test_admits_everything_when_healthy(self):
        controller = self._controller()
        for i in range(50):
            controller.record_task(False, now=float(i))
        decisions = [controller.admit(now=50.0 + i) for i in range(20)]
        assert all(decisions)
        assert controller.admit_probability == 1.0

    def test_probability_decreases_under_misses(self):
        controller = self._controller()
        for i in range(50):
            controller.record_task(True, now=float(i))
        for i in range(10):
            controller.admit(now=50.0 + i * 2.0)
        assert controller.admit_probability < 1.0

    def test_thinning_approximates_probability(self):
        controller = self._controller(threshold=0.01)
        # Saturate with misses so the probability drops to ~0.5 range.
        for i in range(100):
            controller.record_task(True, now=float(i))
        for i in range(5):
            controller.admit(now=100.0 + i * 2.0)
        # One more decision starts a fresh control interval; the
        # remaining 999 land inside it, so the probability is constant.
        controller.admit(now=110.0)
        probability = controller.admit_probability
        decisions = [controller.admit(now=110.0 + (i + 1) * 1e-7)
                     for i in range(999)]
        admitted_fraction = sum(decisions) / len(decisions)
        assert admitted_fraction == pytest.approx(probability, abs=0.05)

    def test_probability_recovers_after_quiet_period(self):
        controller = self._controller()
        for i in range(100):
            controller.record_task(True, now=float(i))
        for i in range(10):
            controller.admit(now=100.0 + i * 2.0)
        depressed = controller.admit_probability
        # Misses age out (window_ms=100); fresh successes dominate.
        for i in range(100):
            controller.record_task(False, now=300.0 + i)
        for i in range(30):
            controller.admit(now=400.0 + i * 2.0)
        assert controller.admit_probability > depressed
