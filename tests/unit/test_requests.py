"""Unit tests for request-level decomposition (paper Eq. 7)."""

import pytest

from repro.core.deadline import DeadlineEstimator
from repro.core.requests import (
    EqualSplit,
    ProportionalToTail,
    RequestPlanner,
    SloSplit,
)
from repro.distributions import Exponential
from repro.errors import ConfigurationError
from repro.types import RequestSpec


@pytest.fixture
def estimator():
    return DeadlineEstimator(Exponential(10.0), n_servers=50)


@pytest.fixture
def request_spec():
    return RequestSpec(request_id=0, arrival_time=0.0,
                       query_fanouts=(1, 4, 16), slo_ms=3.0)


class TestRequestSpec:
    def test_needs_queries(self):
        with pytest.raises(ConfigurationError):
            RequestSpec(0, 0.0, (), slo_ms=1.0)

    def test_num_queries(self, request_spec):
        assert request_spec.num_queries == 3


class TestStrategies:
    def test_equal_split_conserves_budget(self):
        budgets = EqualSplit().split(3.0, [0.5, 0.7, 0.9], 10.0)
        assert sum(budgets) == pytest.approx(3.0)
        assert budgets == [1.0, 1.0, 1.0]

    def test_proportional_split_conserves_budget(self):
        budgets = ProportionalToTail().split(3.0, [1.0, 2.0], 10.0)
        assert sum(budgets) == pytest.approx(3.0)
        assert budgets[1] == pytest.approx(2 * budgets[0])

    def test_slo_split_ignores_additivity(self):
        # Per-query SLO 10/2 = 5; budgets 5 - tail.
        budgets = SloSplit().split(3.0, [1.0, 6.0], 10.0)
        assert budgets == [4.0, -1.0]

    def test_proportional_degenerate_tails(self):
        budgets = ProportionalToTail().split(2.0, [0.0, 0.0], 10.0)
        assert budgets == [1.0, 1.0]


class TestRequestPlanner:
    def test_plan_quantities(self, estimator, request_spec):
        planner = RequestPlanner(estimator, EqualSplit())
        plan = planner.plan(request_spec)
        assert len(plan.query_budgets_ms) == 3
        assert plan.total_budget_ms == pytest.approx(
            request_spec.slo_ms - plan.unloaded_request_tail_ms
        )
        assert sum(plan.query_budgets_ms) == pytest.approx(
            plan.total_budget_ms
        )

    def test_eq7_subadditivity(self, estimator, request_spec):
        """x_p^{R,u} < Σ x_p^u(k_i): the request budget from Eq. 7 is
        larger than the naive per-query decomposition allows."""
        planner = RequestPlanner(estimator, EqualSplit())
        plan = planner.plan(request_spec)
        assert plan.unloaded_request_tail_ms < sum(plan.query_tails_ms)

    def test_single_query_request(self, estimator):
        planner = RequestPlanner(estimator, EqualSplit())
        plan = planner.plan(RequestSpec(0, 0.0, (4,), slo_ms=2.0))
        assert plan.unloaded_request_tail_ms == pytest.approx(
            plan.query_tails_ms[0]
        )

    def test_infeasible_request_flagged(self, estimator):
        planner = RequestPlanner(estimator, EqualSplit())
        plan = planner.plan(RequestSpec(0, 0.0, (16, 16), slo_ms=0.001))
        assert not plan.feasible

    def test_query_deadline_relative_to_start(self, estimator, request_spec):
        planner = RequestPlanner(estimator, EqualSplit())
        plan = planner.plan(request_spec)
        assert plan.query_deadline(0, 10.0) == pytest.approx(
            10.0 + plan.query_budgets_ms[0]
        )

    def test_heterogeneous_cluster_rejected(self):
        hetero = DeadlineEstimator({0: Exponential(1.0),
                                    1: Exponential(2.0)})
        planner = RequestPlanner(hetero, EqualSplit())
        with pytest.raises(ConfigurationError):
            planner.plan(RequestSpec(0, 0.0, (1,), slo_ms=10.0))

    def test_query_tails_increase_with_fanout(self, estimator, request_spec):
        planner = RequestPlanner(estimator, EqualSplit())
        plan = planner.plan(request_spec)
        assert plan.query_tails_ms == sorted(plan.query_tails_ms)
