"""Unit tests for numerical convolution (paper Eq. 7 machinery)."""

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Exponential,
    SumOfIndependent,
    Uniform,
)
from repro.errors import DistributionError


class TestSumOfIndependent:
    def test_mean_is_additive(self):
        s = SumOfIndependent([Exponential(1.0), Exponential(0.5), Uniform(0, 1)])
        assert s.mean() == pytest.approx(1.0 + 2.0 + 0.5)

    def test_deterministic_sum(self):
        s = SumOfIndependent([Deterministic(1.0), Deterministic(2.0)],
                             resolution=4096)
        assert float(s.quantile(0.5)) == pytest.approx(3.0, abs=0.01)

    def test_sum_of_uniforms_is_triangular(self):
        s = SumOfIndependent([Uniform(0.0, 1.0), Uniform(0.0, 1.0)],
                             resolution=8192)
        # Triangular distribution on [0, 2]: CDF(1.0) = 0.5.
        assert float(s.cdf(1.0)) == pytest.approx(0.5, abs=0.01)
        assert float(s.cdf(0.5)) == pytest.approx(0.125, abs=0.01)

    def test_matches_monte_carlo_tail(self):
        components = [Exponential(1.0), Exponential(2.0), Uniform(0.0, 0.5)]
        s = SumOfIndependent(components, resolution=8192)
        rng = np.random.default_rng(17)
        draws = sum(np.asarray(c.sample(rng, 200_000)) for c in components)
        assert float(s.quantile(0.99)) == pytest.approx(
            np.percentile(draws, 99), rel=0.02
        )

    def test_quantile_monotone(self):
        s = SumOfIndependent([Exponential(1.0), Uniform(0, 1)])
        qs = [float(s.quantile(q)) for q in (0.1, 0.3, 0.5, 0.7, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_sampling_is_exact_sum(self):
        s = SumOfIndependent([Deterministic(1.5), Deterministic(2.5)])
        rng = np.random.default_rng(1)
        assert float(np.asarray(s.sample(rng, 3)).min()) == pytest.approx(4.0)

    def test_needs_components(self):
        with pytest.raises(DistributionError):
            SumOfIndependent([])

    def test_resolution_validation(self):
        with pytest.raises(DistributionError):
            SumOfIndependent([Exponential(1.0)], resolution=4)

    def test_paper_subadditivity(self):
        """Eq. 7 context: x_p of a sum is below the sum of the x_p's."""
        a, b = Exponential(1.0), Exponential(1.0)
        s = SumOfIndependent([a, b], resolution=8192)
        sum_of_tails = float(a.quantile(0.99)) + float(b.quantile(0.99))
        assert float(s.quantile(0.99)) < sum_of_tails


class TestSampleStream:
    def test_stream_yields_distribution_samples(self):
        from repro.distributions import SampleStream

        rng = np.random.default_rng(0)
        stream = SampleStream(Deterministic(2.0), rng, block=4)
        assert [stream.next() for _ in range(10)] == [2.0] * 10

    def test_stream_statistics(self):
        from repro.distributions import SampleStream

        rng = np.random.default_rng(0)
        stream = SampleStream(Exponential(1.0), rng, block=1024)
        values = [stream.next() for _ in range(50_000)]
        assert np.mean(values) == pytest.approx(1.0, rel=0.03)

    def test_invalid_block(self):
        from repro.distributions import SampleStream

        with pytest.raises(DistributionError):
            SampleStream(Exponential(1.0), np.random.default_rng(0), block=0)
