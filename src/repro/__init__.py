"""TailGuard — tail-latency-SLO-and-fanout-aware task scheduling.

A complete, from-scratch reproduction of *TailGuard: Tail Latency SLO
Guaranteed Task Scheduling for Data-Intensive User-Facing Applications*
(ICDCS 2023): the TF-EDFQ policy and its FIFO/PRIQ/T-EDFQ baselines, the
order-statistics task decomposition (Eq. 1–6), query admission control,
request-level decomposition (Eq. 7), a discrete-event simulation
substrate, the reconstructed Tailbench workloads, the heterogeneous SaS
testbed model, and a harness regenerating every table and figure of the
paper's evaluation.

Quickstart::

    from repro import (
        ClusterConfig, ServiceClass, Workload, simulate,
        PoissonArrivals, inverse_proportional_fanout, single_class_mix,
        get_workload,
    )

    bench = get_workload("masstree")
    workload = Workload(
        name="demo",
        arrivals=PoissonArrivals(1.0),
        fanout=inverse_proportional_fanout([1, 10, 100]),
        class_mix=single_class_mix(ServiceClass("gold", slo_ms=1.0)),
        service_time=bench.service_time,
    )
    config = ClusterConfig(n_servers=100, policy="tailguard",
                           workload=workload, n_queries=20_000)
    result = simulate(config.at_load(0.40))
    print(result.per_type_tails())
"""

from repro.cluster import ClusterConfig, SimulationResult, simulate
from repro.core import (
    AdmissionController,
    DeadlineEstimator,
    DeadlineMissRatioAdmission,
    NoAdmission,
    Policy,
    QueryHandler,
    RequestPlanner,
    TaskServer,
    get_policy,
)
from repro.errors import (
    AdmissionRejected,
    ConfigurationError,
    DistributionError,
    ExperimentError,
    ReproError,
    SimulationError,
)
from repro.experiments import (
    EXPERIMENTS,
    find_max_load,
    load_sweep,
    run_experiment,
)
from repro.sas import SaSTestbed
from repro.types import QueryRecord, QuerySpec, RequestSpec, ServiceClass, Task
from repro.workloads import (
    PoissonArrivals,
    ParetoArrivals,
    Workload,
    get_workload,
    inverse_proportional_fanout,
    single_class_mix,
    uniform_class_mix,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "ClusterConfig",
    "ConfigurationError",
    "DeadlineEstimator",
    "DeadlineMissRatioAdmission",
    "DistributionError",
    "EXPERIMENTS",
    "ExperimentError",
    "NoAdmission",
    "ParetoArrivals",
    "PoissonArrivals",
    "Policy",
    "QueryHandler",
    "QueryRecord",
    "QuerySpec",
    "ReproError",
    "RequestPlanner",
    "RequestSpec",
    "SaSTestbed",
    "ServiceClass",
    "SimulationError",
    "SimulationResult",
    "Task",
    "TaskServer",
    "Workload",
    "find_max_load",
    "get_policy",
    "get_workload",
    "inverse_proportional_fanout",
    "load_sweep",
    "run_experiment",
    "simulate",
    "single_class_mix",
    "uniform_class_mix",
    "__version__",
]
