"""TailGuard — tail-latency-SLO-and-fanout-aware task scheduling.

A complete, from-scratch reproduction of *TailGuard: Tail Latency SLO
Guaranteed Task Scheduling for Data-Intensive User-Facing Applications*
(ICDCS 2023): the TF-EDFQ policy and its FIFO/PRIQ/T-EDFQ baselines, the
order-statistics task decomposition (Eq. 1–6), query admission control,
request-level decomposition (Eq. 7), a discrete-event simulation
substrate, the reconstructed Tailbench workloads, the heterogeneous SaS
testbed model, and a harness regenerating every table and figure of the
paper's evaluation.

Quickstart::

    from repro import (
        ClusterConfig, ServiceClass, Workload, simulate,
        PoissonArrivals, inverse_proportional_fanout, single_class_mix,
        get_workload,
    )

    bench = get_workload("masstree")
    workload = Workload(
        name="demo",
        arrivals=PoissonArrivals(1.0),
        fanout=inverse_proportional_fanout([1, 10, 100]),
        class_mix=single_class_mix(ServiceClass("gold", slo_ms=1.0)),
        service_time=bench.service_time,
    )
    config = ClusterConfig(n_servers=100, policy="tailguard",
                           workload=workload, n_queries=20_000)
    result = simulate(config.at_load(0.40))
    print(result.per_type_tails())

This module is the package's *stable public surface*: every name in
``__all__`` is covered by the snapshot test in
``tests/unit/test_public_api.py`` and by the compatibility policy in
``docs/api.md``.  Internals imported from submodules directly carry no
such guarantee.
"""

from repro.cluster import (
    ClusterConfig,
    ServicePerturbation,
    SimulationResult,
    simulate,
)
from repro.core import (
    AdmissionController,
    DeadlineEstimator,
    DeadlineMissRatioAdmission,
    NoAdmission,
    Policy,
    QueryHandler,
    RequestPlanner,
    TaskServer,
    get_policy,
)
from repro.errors import (
    AdmissionRejected,
    ConfigurationError,
    DistributionError,
    ExperimentError,
    ReproError,
    SimulationError,
)
from repro.experiments import (
    EXPERIMENTS,
    find_max_load,
    load_sweep,
    run_experiment,
)
from repro.experiments.parallel import run_simulations
from repro.federation import (
    FederationConfig,
    FederationResult,
    SpillPolicy,
    simulate_federation,
)
from repro.faults import (
    CrashProcess,
    Downtime,
    FaultPlan,
    HedgePolicy,
    RetryPolicy,
    StragglerEpisode,
    install_faults,
)
from repro.obs import (
    ClusterAttribution,
    ErrorBudget,
    NullRecorder,
    QueryAttribution,
    SLOAccountant,
    TraceRecorder,
    attribute_queries,
    tail_forensics_report,
)
from repro.overload import (
    AdaptiveAdmission,
    AdaptiveAdmissionPolicy,
    BreakerPolicy,
    DegradePolicy,
    DriftPolicy,
    OverloadPolicy,
    install_overload,
)
from repro.replicas import (
    AdaptiveHedgePolicy,
    HedgeSuppressionPolicy,
    ReplicaPolicy,
    ReplicaScorer,
    install_replicas,
)
from repro.sas import SaSTestbed
from repro.types import QueryRecord, QuerySpec, RequestSpec, ServiceClass, Task
from repro.workloads import (
    PoissonArrivals,
    ParetoArrivals,
    Workload,
    get_workload,
    inverse_proportional_fanout,
    single_class_mix,
    uniform_class_mix,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveAdmission",
    "AdaptiveAdmissionPolicy",
    "AdaptiveHedgePolicy",
    "AdmissionController",
    "AdmissionRejected",
    "BreakerPolicy",
    "ClusterAttribution",
    "ClusterConfig",
    "ConfigurationError",
    "CrashProcess",
    "DeadlineEstimator",
    "DeadlineMissRatioAdmission",
    "DegradePolicy",
    "DistributionError",
    "Downtime",
    "DriftPolicy",
    "EXPERIMENTS",
    "ErrorBudget",
    "ExperimentError",
    "FaultPlan",
    "FederationConfig",
    "FederationResult",
    "HedgePolicy",
    "HedgeSuppressionPolicy",
    "NoAdmission",
    "NullRecorder",
    "OverloadPolicy",
    "ParetoArrivals",
    "PoissonArrivals",
    "Policy",
    "QueryAttribution",
    "QueryHandler",
    "QueryRecord",
    "QuerySpec",
    "ReplicaPolicy",
    "ReplicaScorer",
    "ReproError",
    "RequestPlanner",
    "RequestSpec",
    "RetryPolicy",
    "SLOAccountant",
    "SaSTestbed",
    "ServiceClass",
    "ServicePerturbation",
    "SimulationError",
    "SimulationResult",
    "SpillPolicy",
    "StragglerEpisode",
    "Task",
    "TaskServer",
    "TraceRecorder",
    "Workload",
    "attribute_queries",
    "find_max_load",
    "get_policy",
    "get_workload",
    "install_faults",
    "install_overload",
    "install_replicas",
    "inverse_proportional_fanout",
    "load_sweep",
    "run_experiment",
    "run_simulations",
    "simulate",
    "simulate_federation",
    "single_class_mix",
    "tail_forensics_report",
    "uniform_class_mix",
    "__version__",
]
