"""Two-level federation simulation.

:func:`simulate_federation` materializes the front-tier query stream,
routes every query to a shard (:mod:`repro.federation.router`), runs
each shard's TF-EDFQ cluster on the existing golden-pinned kernels —
fanned out over the persistent worker pool via
:func:`repro.experiments.run_simulations` — and composes the per-shard
results back into one federation-scope
:class:`~repro.cluster.SimulationResult` with
:meth:`SimulationResult.merge`, global arrival order restored.

Determinism contract: the federation root RNG spawns
``(spec_rng, router_rng, reserved)`` exactly like the cluster kernel
spawns ``(spec, placement, service)`` streams, and each shard run
derives its own randomness from its template's ``seed``.  A one-shard
federation therefore reproduces the bare cluster simulation
bit-for-bit when the shard template shares the federation's seed —
the equivalence the integration suite pins.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

import numpy as np

from repro.cluster.results import SimulationResult
from repro.experiments.parallel import run_simulations
from repro.federation.config import FederationConfig
from repro.federation.results import FederationResult
from repro.federation.router import route_queries
from repro.obs.recorder import TraceRecorder
from repro.workloads.generator import generate_queries


def simulate_federation(config: FederationConfig,
                        workers: Optional[int] = None) -> FederationResult:
    """Run one federation simulation.

    ``workers`` fans the per-shard runs over the persistent
    shared-memory worker pool (see
    :func:`repro.experiments.run_simulations`); ``None`` or 1 runs
    them serially in-process.
    """
    root = np.random.default_rng(config.seed)
    spec_rng, router_rng, _reserved = root.spawn(3)
    specs = generate_queries(config.workload, config.n_queries, spec_rng)
    m = len(specs)

    # Columnar view of the stream (deduplicated class table in
    # first-appearance order, matching the kernel's convention).
    classes: List = []
    index_of = {}
    class_index = np.empty(m, dtype=np.int64)
    fanout = np.empty(m, dtype=np.int64)
    arrival = np.empty(m, dtype=np.float64)
    for i, spec in enumerate(specs):
        idx = index_of.get(spec.service_class.name)
        if idx is None:
            idx = len(classes)
            index_of[spec.service_class.name] = idx
            classes.append(spec.service_class)
        class_index[i] = idx
        fanout[i] = spec.fanout
        arrival[i] = spec.arrival_time

    route = route_queries(config, classes, class_index, fanout, arrival,
                          router_rng)

    fed_tracing = (config.recorder is not None
                   and getattr(config.recorder, "enabled", False))
    offsets = config.server_offsets()
    run_shards: List[int] = []
    run_configs = []
    run_indices: List[np.ndarray] = []
    for s, shard in enumerate(config.shards):
        idx = np.flatnonzero(route.shard_of == s)
        if idx.size == 0:
            continue
        sub = tuple(specs[int(i)] for i in idx)
        changes = dict(
            workload=None,
            specs=sub,
            n_queries=len(sub),
            server_cdfs=dict(shard.resolve_server_cdfs()),
        )
        if fed_tracing and shard.recorder is None:
            changes["recorder"] = TraceRecorder()
        run_shards.append(s)
        run_configs.append(shard.evolve(**changes))
        run_indices.append(idx)

    results = run_simulations(run_configs, workers=workers)

    # Compose back into global arrival order.  `order` maps each
    # concatenated per-shard row to its global position.
    order = np.concatenate(run_indices)
    if fed_tracing:
        parent = config.recorder
        for s, idx, result in zip(run_shards, run_indices, results):
            if result.obs is not None and getattr(result.obs, "enabled",
                                                  False):
                parent.merge_from(result.obs, server_id_offset=offsets[s],
                                  query_id_map=idx)
        merged = SimulationResult.merge(results, order=order, obs=parent)
    else:
        merged = SimulationResult.merge(results, order=order, obs=None)

    # Patch federation-level metadata the shard-local merge cannot
    # know: the flat server count includes query-less shards, the seed
    # is the federation root, and offered load / mean service follow
    # the workload-mode convention over the *total* capacity (matching
    # what a bare cluster of the same size would report).
    total = config.total_servers
    means: List[float] = []
    for shard in config.shards:
        cdfs = shard.resolve_server_cdfs()
        means.extend(cdfs[sid].mean() for sid in range(shard.n_servers))
    mean_service = np.mean(means)
    merged = replace(
        merged,
        n_servers=total,
        seed=config.seed,
        offered_load=config.workload.load(total),
        mean_service_ms=float(mean_service),
    )

    shard_results: List[Optional[SimulationResult]] = [None] * config.n_shards
    for s, result in zip(run_shards, results):
        shard_results[s] = result

    return FederationResult(
        config=config,
        shards=tuple(shard_results),
        shard_of=route.shard_of,
        spilled=route.spilled,
        merged=merged,
        tenant_of=route.tenant_of,
    )
