"""Federation simulation outcome."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.results import SimulationResult
from repro.errors import ConfigurationError
from repro.federation.config import FederationConfig


@dataclass
class FederationResult:
    """Everything measured by one federation run.

    ``merged`` is the federation-scope :class:`SimulationResult`
    (composed via :meth:`SimulationResult.merge` with the global
    arrival order restored), so every cluster-level analysis — tails,
    SLO checks, attribution, SLO burn-down — works unchanged at
    federation scope.  ``shards`` keeps the per-shard results for
    drill-down (``None`` for shards that received no queries).
    """

    config: FederationConfig
    #: Per-shard results, index-aligned with ``config.shards``.
    shards: Tuple[Optional[SimulationResult], ...]
    #: Shard index serving each query (global arrival order).
    shard_of: np.ndarray
    #: Queries re-routed off their primary shard by the spill policy.
    spilled: np.ndarray
    #: Federation-scope composed result.
    merged: SimulationResult
    #: Tenant id per query (``tenant`` router only).
    tenant_of: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.config.n_shards

    @property
    def total_servers(self) -> int:
        return self.config.total_servers

    def spill_count(self) -> int:
        return int(self.spilled.sum())

    def spill_ratio(self) -> float:
        if self.spilled.size == 0:
            return 0.0
        return float(self.spilled.sum()) / float(self.spilled.size)

    def shard_query_counts(self) -> np.ndarray:
        """Queries routed to each shard."""
        return np.bincount(self.shard_of, minlength=self.n_shards)

    def shard_imbalance(self) -> float:
        """Max-over-mean of per-server task work routed to each shard.

        1.0 is a perfectly balanced federation; the ``tenant`` router
        under Zipf skew drives this up, load-aware routers keep it near
        one.
        """
        n_servers = np.array([s.n_servers for s in self.config.shards],
                             dtype=float)
        work = np.bincount(self.shard_of,
                           weights=np.asarray(self.merged.fanout,
                                              dtype=float),
                           minlength=self.n_shards) / n_servers
        mean = float(work.mean())
        if mean <= 0:
            return 1.0
        return float(work.max()) / mean

    # ------------------------------------------------------------------
    # Federation-scope analysis: delegate to the merged result.
    # ------------------------------------------------------------------
    def tail(self, percentile: float = 99.0,
             class_name: Optional[str] = None,
             fanout: Optional[int] = None) -> float:
        return self.merged.tail(percentile, class_name, fanout)

    def per_type_tails(self, percentile: Optional[float] = None
                       ) -> Dict[Tuple[str, int], float]:
        return self.merged.per_type_tails(percentile)

    def meets_all_slos(self, min_samples: int = 100,
                       fanout_buckets: Optional[Tuple[int, ...]] = None
                       ) -> bool:
        return self.merged.meets_all_slos(min_samples, fanout_buckets)

    def utilization(self) -> float:
        return self.merged.utilization()

    def deadline_miss_ratio(self) -> float:
        return self.merged.deadline_miss_ratio()

    def attribution(self):
        """Federation-scope latency attribution (requires a federation
        recorder — see ``FederationConfig.recorder``)."""
        return self.merged.attribution()

    # ------------------------------------------------------------------
    def shard_rows(self) -> List[Dict[str, float]]:
        """One diagnostics row per shard (CLI/CSV table)."""
        counts = self.shard_query_counts()
        rows: List[Dict[str, float]] = []
        for s, (shard, result) in enumerate(zip(self.config.shards,
                                                self.shards)):
            row: Dict[str, float] = {
                "shard": float(s),
                "n_servers": float(shard.n_servers),
                "queries": float(counts[s]),
                "spilled_in": float(
                    ((self.shard_of == s) & self.spilled).sum()
                ),
            }
            if result is not None:
                row["utilization"] = result.utilization()
                row["deadline_miss_ratio"] = result.deadline_miss_ratio()
                try:
                    row["p99"] = result.tail(99.0)
                except ConfigurationError:
                    pass
            rows.append(row)
        return rows

    def summary(self) -> Dict[str, float]:
        """Headline numbers: the merged summary plus federation shape,
        routing and spill counters."""
        out = dict(self.merged.summary())
        out.update({
            "n_shards": float(self.n_shards),
            "total_servers": float(self.total_servers),
            "spilled": float(self.spill_count()),
            "spill_ratio": self.spill_ratio(),
            "shard_imbalance": self.shard_imbalance(),
        })
        return out
