"""Front-tier inter-shard routing.

The federation's front tier sits above ``n_shards`` independent
TF-EDFQ clusters and decides, per query, which shard serves it.  It
has no access to shard-internal queue state (shards are separate
failure/scaling domains); instead it maintains a **fluid backlog
model**: per-shard outstanding work ``W_s`` in server-milliseconds,
drained at the shard's aggregate capacity (``n_s`` server-ms per ms)
between arrivals and credited ``fanout × E[S_s]`` on each assignment.
``W_s / n_s`` is then the estimated queueing delay a new query would
see on shard ``s`` — the delayed-but-cheap global signal the
load-balancing literature uses at this tier (cf. the power-of-two
results surveyed in PAPERS.md).

Routers (``FederationConfig.router``):

``jsq``
    Join-the-shortest-queue on estimated delay: ``argmin W_s / n_s``
    over shards large enough for the query's fanout.
``p2c``
    Power-of-two-choices: two distinct eligible shards drawn uniformly,
    the one with less estimated delay wins.  O(1) state reads and
    near-JSQ tails — the classic trade.
``least-slack``
    Deadline-aware best fit: per-shard slack is the shard's own
    TailGuard budget ``T_b = SLO − x_p^u(k_f)`` (from its
    :class:`~repro.core.deadline.DeadlineEstimator`, Eq. 5) minus the
    estimated delay.  The query goes to the eligible shard with the
    *smallest non-negative* slack (tightest fit, preserving headroom on
    slack-rich shards), falling back to the largest slack when no shard
    can meet the budget.  With a :class:`~repro.replicas.ReplicaScorer`
    on the :class:`~repro.federation.FederationConfig`, feasible shards
    are instead ranked by the replica layer's depth+tail score —
    estimated delay as the depth term, the shard's mean service time as
    the (static) tail signal — trading tightest-fit packing for
    fastest-tail placement on heterogeneous federations; the infeasible
    fallback likewise takes the best-scored eligible shard.
``tenant``
    Zipf-skewed tenant affinity: each query belongs to one of
    ``n_tenants`` tenants (popularity ``∝ rank^-tenant_alpha``) and is
    routed to the tenant's home shard ``tenant mod n_shards`` — the
    data-locality baseline that *concentrates* hot tenants and shows
    why load-aware routing matters.  Combine with a
    :class:`~repro.federation.SpillPolicy` to let overloaded home
    shards shed to the federation.

Spill (any router): when a :class:`~repro.federation.SpillPolicy` is
set, the front tier predicts the chosen shard's admission verdict —
estimated delay exceeding the query's budget by more than
``margin_ms`` is the same deadline-infeasibility signal a shard-local
deadline-aware admission controller would reject on — and re-routes
the query to the eligible shard with the most slack, marking it
``spilled``.  One hop only: if no shard improves on the primary, the
query stays put (the shard's own admission control has the last word).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.deadline import DeadlineEstimator
from repro.errors import ConfigurationError
from repro.types import ServiceClass

#: Supported inter-shard routing policies.
ROUTERS: Tuple[str, ...] = ("jsq", "p2c", "least-slack", "tenant")


@dataclass
class RouteOutcome:
    """Per-query routing decisions, aligned with the front-tier spec
    stream (global arrival order)."""

    #: Shard index serving each query.
    shard_of: np.ndarray
    #: True where the spill policy re-routed the query off its primary
    #: shard (all-False without a :class:`SpillPolicy`).
    spilled: np.ndarray
    #: Tenant id per query (``tenant`` router only, else None).
    tenant_of: Optional[np.ndarray] = None


def shard_mean_service_ms(shard) -> float:
    """Mean task service time of a shard template (ms).

    Follows the kernel's ``_finalize`` convention — the mean over the
    resolved per-server CDF means — so federation-level metadata agrees
    with what a bare cluster of the same shape would report.
    """
    if shard.server_cdfs is None and shard.workload is not None:
        return float(shard.workload.mean_service_ms())
    cdfs = shard.resolve_server_cdfs()
    return float(np.mean([dist.mean() for dist in cdfs.values()]))


class FrontTier:
    """Fluid backlog model over the federation's shards.

    Tracks per-shard outstanding work ``W_s`` (server-ms): drained at
    capacity ``n_s`` per simulated ms between arrivals, credited
    ``fanout × E[S_s]`` per assignment.  ``delays()`` is the estimated
    per-shard queueing delay ``W_s / n_s``.
    """

    def __init__(self, shards: Sequence) -> None:
        self.capacity = np.array([float(s.n_servers) for s in shards])
        self.mean_ms = np.array([shard_mean_service_ms(s) for s in shards])
        self.work = np.zeros(len(self.capacity))
        self._clock = 0.0

    def advance(self, now: float) -> None:
        """Drain backlog up to simulation time ``now``."""
        dt = now - self._clock
        if dt > 0.0:
            self.work -= dt * self.capacity
            np.maximum(self.work, 0.0, out=self.work)
            self._clock = now

    def delays(self) -> np.ndarray:
        """Estimated queueing delay per shard (ms)."""
        return self.work / self.capacity

    def assign(self, shard: int, fanout: int) -> None:
        """Credit one query's work to a shard."""
        self.work[shard] += fanout * self.mean_ms[shard]


class _ShardBudgets:
    """Memoized per-shard TailGuard budgets ``T_b(class, fanout)``.

    Uses each shard's own estimator when the template carries one, else
    a fresh :class:`DeadlineEstimator` over the shard's resolved server
    CDFs — the same offline initialization the shard's simulation
    kernel would build.  Heterogeneous shards are signed by a
    representative selection (servers ``0..k-1``); the front tier only
    needs a per-shard scalar, not a placement-exact budget.
    """

    def __init__(self, shards: Sequence) -> None:
        self._estimators: List[DeadlineEstimator] = []
        for shard in shards:
            est = shard.estimator
            if est is None:
                est = DeadlineEstimator(dict(shard.resolve_server_cdfs()))
            self._estimators.append(est)
        self._n = np.array([s.n_servers for s in shards])
        self._memo: Dict[Tuple[int, int], np.ndarray] = {}

    def vector(self, service_class: ServiceClass, class_idx: int,
               fanout: int) -> np.ndarray:
        """Budgets across shards (NaN where the fanout does not fit)."""
        key = (class_idx, fanout)
        vec = self._memo.get(key)
        if vec is None:
            vec = np.full(len(self._estimators), np.nan)
            for s, est in enumerate(self._estimators):
                if fanout > self._n[s]:
                    continue
                if est.homogeneous:
                    vec[s] = est.budget(service_class, fanout=fanout)
                else:
                    vec[s] = est.budget(service_class,
                                        servers=tuple(range(fanout)))
            self._memo[key] = vec
        return vec


def route_queries(config, classes: Sequence[ServiceClass],
                  class_index: np.ndarray, fanout: np.ndarray,
                  arrival: np.ndarray,
                  rng: np.random.Generator) -> RouteOutcome:
    """Assign every query in the front-tier stream to a shard.

    Arrays are the columnar form of the generated spec stream (already
    in arrival order).  ``rng`` is the router's own child stream —
    consumed only by the ``p2c`` draws and the ``tenant`` Zipf draw, so
    routing randomness never perturbs shard-internal seeding.
    """
    shards = config.shards
    n_shards = len(shards)
    tier = FrontTier(shards)
    need_budgets = config.router == "least-slack" or config.spill is not None
    budgets = _ShardBudgets(shards) if need_budgets else None
    n_servers = np.array([s.n_servers for s in shards])
    elig_mask: Dict[int, np.ndarray] = {}
    elig_idx: Dict[int, np.ndarray] = {}

    def eligible(k: int) -> np.ndarray:
        mask = elig_mask.get(k)
        if mask is None:
            mask = n_servers >= k
            if not mask.any():
                raise ConfigurationError(
                    f"fanout {k} exceeds every shard's server count "
                    f"(largest shard has {int(n_servers.max())})"
                )
            elig_mask[k] = mask
            elig_idx[k] = np.flatnonzero(mask)
        return mask

    m = int(len(fanout))
    shard_of = np.empty(m, dtype=np.int32)
    spilled = np.zeros(m, dtype=bool)
    tenant_of: Optional[np.ndarray] = None
    home_of: Optional[np.ndarray] = None
    if config.router == "tenant":
        ranks = np.arange(1, config.n_tenants + 1, dtype=float)
        weights = ranks ** -config.tenant_alpha
        tenant_of = rng.choice(config.n_tenants, size=m,
                               p=weights / weights.sum())
        home_of = tenant_of % n_shards
    draws: Optional[np.ndarray] = None
    if config.router == "p2c":
        draws = rng.integers(0, np.iinfo(np.int64).max, size=(m, 2))
    tie_draws: Optional[np.ndarray] = None
    if config.router in ("jsq", "tenant"):
        # Randomized tie-break: an idle federation has all-zero backlog
        # on every shard, and a deterministic argmin would pile the
        # whole stream onto shard 0 until backlog accrues.
        tie_draws = rng.integers(0, np.iinfo(np.int64).max, size=m)

    def pick_least_delay(delay: np.ndarray, mask: np.ndarray,
                         draw: int) -> int:
        masked = np.where(mask, delay, np.inf)
        ties = np.flatnonzero(masked == masked.min())
        if ties.size == 1:
            return int(ties[0])
        return int(ties[draw % ties.size])

    margin = config.spill.margin_ms if config.spill is not None else 0.0
    router = config.router
    scorer = getattr(config, "scorer", None)

    for i in range(m):
        tier.advance(float(arrival[i]))
        k = int(fanout[i])
        mask = eligible(k)
        delay = tier.work / tier.capacity
        if router == "jsq":
            shard = pick_least_delay(delay, mask, int(tie_draws[i]))
        elif router == "p2c":
            idx = elig_idx[k]
            width = int(idx.size)
            if width == 1:
                shard = int(idx[0])
            else:
                # Two distinct positions from one pair of raw draws.
                a = int(draws[i, 0] % width)
                b = (a + 1 + int(draws[i, 1] % (width - 1))) % width
                first, second = int(idx[a]), int(idx[b])
                shard = first if delay[first] <= delay[second] else second
        elif router == "least-slack":
            vec = budgets.vector(classes[int(class_index[i])],
                                 int(class_index[i]), k)
            slack = np.where(mask, vec - delay, -np.inf)
            feasible = slack >= 0.0
            if scorer is not None:
                score = np.array([
                    scorer.score(float(delay[s]), float(tier.mean_ms[s]))
                    for s in range(n_shards)
                ])
                pool = feasible if feasible.any() else mask
                shard = int(np.argmin(np.where(pool, score, np.inf)))
            elif feasible.any():
                shard = int(np.argmin(np.where(feasible, slack, np.inf)))
            else:
                shard = int(np.argmax(slack))
        else:  # tenant
            shard = int(home_of[i])
            if not mask[shard]:
                shard = pick_least_delay(delay, mask, int(tie_draws[i]))
        if config.spill is not None:
            vec = budgets.vector(classes[int(class_index[i])],
                                 int(class_index[i]), k)
            primary_slack = float(vec[shard] - delay[shard])
            if primary_slack < -margin:
                slack = np.where(mask, vec - delay, -np.inf)
                alt = int(np.argmax(slack))
                if alt != shard and float(slack[alt]) > primary_slack:
                    shard = alt
                    spilled[i] = True
        shard_of[i] = shard
        tier.assign(shard, k)

    return RouteOutcome(shard_of=shard_of, spilled=spilled,
                        tenant_of=tenant_of)
