"""Federation configuration: a front tier over per-shard clusters.

:class:`FederationConfig` nests one :class:`~repro.cluster.ClusterConfig`
*template* per shard — each shard runs its own TF-EDFQ cluster on the
existing simulation kernels — under a shared front-tier workload and an
inter-shard routing policy (see :mod:`repro.federation.router`).  It
follows the same builder convention as ``ClusterConfig`` (docs/api.md,
"Config builders"): frozen dataclass, ``with_*`` helpers as thin
wrappers over :meth:`evolve`, which is
:func:`repro.cluster.config.evolve_config`.
"""

from __future__ import annotations

from dataclasses import KW_ONLY, dataclass
from typing import Optional, Tuple

from repro.cluster.config import ClusterConfig, evolve_config
from repro.errors import ConfigurationError
from repro.federation.router import ROUTERS
from repro.obs.recorder import TraceRecorder
from repro.replicas.policy import ReplicaScorer
from repro.workloads.generator import Workload


@dataclass(frozen=True)
class SpillPolicy:
    """Cross-shard overflow spill.

    The front tier predicts the chosen shard's admission verdict — a
    query whose estimated queueing delay exceeds its TailGuard budget
    ``T_b`` by more than ``margin_ms`` would be rejected by a
    shard-local deadline-aware admission controller — and re-routes it
    to the eligible shard with the most slack instead of letting it be
    dropped.  ``margin_ms = 0`` spills exactly at budget exhaustion;
    positive margins tolerate estimation error before spilling.
    """

    margin_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.margin_ms < 0:
            raise ConfigurationError(
                f"margin_ms must be >= 0, got {self.margin_ms}"
            )


@dataclass(frozen=True)
class FederationConfig:
    """Everything :func:`repro.federation.simulate_federation` needs.

    ``shards`` are workload-driven ``ClusterConfig`` templates: their
    ``workload`` supplies each shard's service-time model (and hence
    its deadline budgets); arrivals, fanouts and service classes come
    from the federation-level ``workload``, routed by the front tier.
    Shard templates must not be spec-driven — the front tier supplies
    the specs.

    Like ``ClusterConfig``, all optional fields are keyword-only and
    the fluent helpers (:meth:`at_load`, :meth:`with_seed`,
    :meth:`with_recorder`, :meth:`with_router`, :meth:`with_spill`,
    :meth:`evolve`) are preferred over ``dataclasses.replace``.
    """

    shards: Tuple[ClusterConfig, ...]
    _: KW_ONLY
    #: Front-tier arrival stream (required; keyword-only fields need a
    #: default, so the check lives in ``__post_init__``).
    workload: Optional[Workload] = None
    n_queries: int = 50_000
    seed: int = 0
    #: Inter-shard routing policy; one of
    #: :data:`repro.federation.router.ROUTERS`.
    router: str = "jsq"
    #: Optional cross-shard overflow spill (any router).
    spill: Optional[SpillPolicy] = None
    #: Tenant population for the ``tenant`` router (Zipf popularity).
    n_tenants: int = 64
    tenant_alpha: float = 1.1
    #: Optional :class:`~repro.replicas.ReplicaScorer` for the
    #: ``least-slack`` router: feasible shards are ranked by the same
    #: depth+tail score the replica layer uses inside a cluster
    #: (estimated delay as depth, shard mean service time as the tail
    #: signal) instead of tightest-fit slack.
    scorer: Optional[ReplicaScorer] = None
    #: Federation-scope trace recorder: shard runs are traced into
    #: per-shard recorders and folded here with each shard's server-id
    #: offset and global query positions, so ``tailguard report`` and
    #: SLO burn-down work unchanged at federation scope.
    recorder: Optional[TraceRecorder] = None

    def __post_init__(self) -> None:
        shards = tuple(self.shards)
        object.__setattr__(self, "shards", shards)
        if not shards:
            raise ConfigurationError("need at least one shard")
        for i, shard in enumerate(shards):
            if not isinstance(shard, ClusterConfig):
                raise ConfigurationError(
                    f"shard {i} is not a ClusterConfig: {type(shard).__name__}"
                )
            if shard.specs is not None:
                raise ConfigurationError(
                    f"shard {i} is spec-driven; federation shards are "
                    f"workload-driven templates — the front tier supplies "
                    f"the specs"
                )
        if self.workload is None:
            raise ConfigurationError(
                "federation needs a workload (the front-tier arrival stream)"
            )
        if self.n_queries < 1:
            raise ConfigurationError(
                f"n_queries must be >= 1, got {self.n_queries}"
            )
        if self.router not in ROUTERS:
            raise ConfigurationError(
                f"unknown router {self.router!r}; known: {list(ROUTERS)}"
            )
        if self.scorer is not None:
            if not isinstance(self.scorer, ReplicaScorer):
                raise ConfigurationError(
                    f"scorer must be a ReplicaScorer, got "
                    f"{type(self.scorer).__name__}"
                )
            if self.router != "least-slack":
                raise ConfigurationError(
                    f"scorer only applies to the 'least-slack' router, "
                    f"not {self.router!r}"
                )
        if self.n_tenants < 1:
            raise ConfigurationError(
                f"n_tenants must be >= 1, got {self.n_tenants}"
            )
        if self.tenant_alpha <= 0:
            raise ConfigurationError(
                f"tenant_alpha must be positive, got {self.tenant_alpha}"
            )
        if self.recorder is not None and getattr(self.recorder, "enabled",
                                                 False):
            for i, shard in enumerate(shards):
                if shard.recorder is not None and getattr(
                        shard.recorder, "enabled", False):
                    raise ConfigurationError(
                        f"shard {i} carries its own recorder while the "
                        f"federation has one; shard traces fold into the "
                        f"federation recorder — drop one of the two"
                    )

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def total_servers(self) -> int:
        return sum(shard.n_servers for shard in self.shards)

    def server_offsets(self) -> Tuple[int, ...]:
        """Each shard's first server id in the merged flat index."""
        offsets = []
        offset = 0
        for shard in self.shards:
            offsets.append(offset)
            offset += shard.n_servers
        return tuple(offsets)

    # ------------------------------------------------------------------
    # Builder convention (docs/api.md, "Config builders"): ``evolve``
    # owns validation, every ``with_*`` helper is a thin wrapper.
    # ------------------------------------------------------------------
    def at_load(self, load: float) -> "FederationConfig":
        """A copy with the front-tier workload re-rated so the offered
        load on the *total* federation capacity is ``load``."""
        return self.evolve(
            workload=self.workload.at_load(load, self.total_servers)
        )

    def with_seed(self, seed: int) -> "FederationConfig":
        """A copy with a different root seed (spec and router streams)."""
        return self.evolve(seed=seed)

    def with_recorder(self, recorder: Optional[TraceRecorder]
                      ) -> "FederationConfig":
        """A copy instrumented with a federation-scope trace recorder."""
        return self.evolve(recorder=recorder)

    def with_router(self, router: str) -> "FederationConfig":
        """A copy using a different inter-shard routing policy."""
        return self.evolve(router=router)

    def with_spill(self, spill: Optional[SpillPolicy]) -> "FederationConfig":
        """A copy with cross-shard spill enabled (None removes it)."""
        return self.evolve(spill=spill)

    def with_scorer(self, scorer: Optional[ReplicaScorer]
                    ) -> "FederationConfig":
        """A copy ranking least-slack candidates by replica score
        (None restores tightest-fit slack)."""
        return self.evolve(scorer=scorer)

    def evolve(self, **changes) -> "FederationConfig":
        """A validated copy with arbitrary fields replaced (see
        :func:`repro.cluster.config.evolve_config`)."""
        return evolve_config(self, **changes)
