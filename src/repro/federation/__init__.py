"""Two-level shard federation (front tier over per-shard clusters).

A :class:`FederationConfig` nests per-shard
:class:`~repro.cluster.ClusterConfig` templates under a shared
front-tier workload; :func:`simulate_federation` routes queries to
shards via pluggable inter-shard policies (JSQ, power-of-two,
deadline-aware least-slack, Zipf tenant affinity — see
:mod:`repro.federation.router`), runs each shard's TF-EDFQ cluster on
the existing kernels, and composes the results into one
federation-scope view (:class:`FederationResult`, built on
:meth:`repro.cluster.SimulationResult.merge`).  See docs/federation.md.
"""

from repro.federation.config import FederationConfig, SpillPolicy
from repro.federation.results import FederationResult
from repro.federation.router import ROUTERS, FrontTier, RouteOutcome, route_queries
from repro.federation.simulation import simulate_federation

__all__ = [
    "ROUTERS",
    "FederationConfig",
    "FederationResult",
    "FrontTier",
    "RouteOutcome",
    "SpillPolicy",
    "route_queries",
    "simulate_federation",
]
