"""SLO error budgets and multi-window burn-rate accounting.

A class's latency objective — "p99 under ``slo_ms``" — implies an
*error budget*: a ``percentile`` of 99 tolerates 1% of queries being
*bad* (over the SLO, timed out, or rejected).  :class:`ErrorBudget`
tracks good/bad outcomes per service class, and
:class:`SLOAccountant` feeds one budget per class from the terminal
lifecycle events (``QUERY_COMPLETE`` / ``QUERY_TIMEOUT`` /
``QUERY_REJECTED``) of a :class:`~repro.obs.recorder.TraceRecorder`.

The burn rate over a window is ``(bad fraction in window) / (budget
fraction)``: a rate of 1.0 spends the budget exactly at the sustainable
pace, above 1.0 spends it faster.  The classic multi-window alert rule
(fast *and* slow window both burning hot) suppresses blips while still
catching sustained burn quickly; window spans default to fractions of
the observed run (fast = span/20, slow = span/5) so the same code works
on a 2-second smoke run and a 20-minute sweep.

Everything here is derived state over the event stream — ingesting the
same events twice doubles every count, so feed each accountant once.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import (
    QUERY_COMPLETE,
    QUERY_REJECTED,
    QUERY_TIMEOUT,
)

#: Default alert threshold: both windows burning at 2x the sustainable
#: pace.  Deliberately lower than production SRE folklore values (14.4)
#: because simulated runs are short and dense.
ALERT_BURN_RATE = 2.0


class ErrorBudget:
    """Good/bad accounting for one service class's latency SLO.

    ``budget_fraction`` is ``1 - percentile / 100``: the fraction of
    queries *allowed* to be bad.  Outcomes are recorded with their event
    time so trailing-window burn rates can be computed after the fact.
    """

    __slots__ = ("class_name", "slo_ms", "percentile", "budget_fraction",
                 "_times", "_bad_times")

    def __init__(self, class_name: str, slo_ms: float,
                 percentile: float = 99.0) -> None:
        if not 0 < percentile < 100:
            raise ConfigurationError(
                f"percentile must be in (0, 100), got {percentile}"
            )
        if slo_ms <= 0:
            raise ConfigurationError(f"slo_ms must be positive, got {slo_ms}")
        self.class_name = class_name
        self.slo_ms = float(slo_ms)
        self.percentile = float(percentile)
        self.budget_fraction = 1.0 - self.percentile / 100.0
        self._times: List[float] = []      # every outcome, in time order
        self._bad_times: List[float] = []  # bad outcomes, in time order

    # ------------------------------------------------------------------
    def record(self, time: float, bad: bool) -> None:
        """Record one terminal outcome at ``time`` (must be fed in
        non-decreasing time order, as event streams are)."""
        self._times.append(time)
        if bad:
            self._bad_times.append(time)

    @property
    def total(self) -> int:
        return len(self._times)

    @property
    def bad(self) -> int:
        return len(self._bad_times)

    def bad_fraction(self) -> float:
        return self.bad / self.total if self.total else 0.0

    def budget_consumed(self) -> float:
        """Fraction of the error budget spent (may exceed 1.0)."""
        return self.bad_fraction() / self.budget_fraction

    def budget_remaining(self) -> float:
        """1.0 = untouched budget, 0.0 = exactly spent, negative = blown."""
        return 1.0 - self.budget_consumed()

    # ------------------------------------------------------------------
    def _window_counts(self, window_ms: float, now: float) -> Tuple[int, int]:
        start = now - window_ms
        total = (bisect.bisect_right(self._times, now)
                 - bisect.bisect_left(self._times, start))
        bad = (bisect.bisect_right(self._bad_times, now)
               - bisect.bisect_left(self._bad_times, start))
        return total, bad

    def burn_rate(self, window_ms: float, now: float) -> float:
        """Error-budget burn rate over the trailing window ending at
        ``now``: 1.0 spends the budget exactly at the sustainable pace.
        Empty windows burn at 0.0."""
        if window_ms <= 0:
            raise ConfigurationError(
                f"window_ms must be positive, got {window_ms}"
            )
        total, bad = self._window_counts(window_ms, now)
        if total == 0:
            return 0.0
        return (bad / total) / self.budget_fraction


class SLOAccountant:
    """Per-class error budgets fed from terminal lifecycle events.

    Parameters
    ----------
    classes:
        Mapping of class name to ``(slo_ms, percentile)``, or any
        iterable of objects with ``name`` / ``slo_ms`` / ``percentile``
        attributes (e.g. :class:`repro.types.ServiceClass`).
    """

    def __init__(self, classes) -> None:
        self.budgets: Dict[str, ErrorBudget] = {}
        if isinstance(classes, Mapping):
            for name, (slo_ms, percentile) in classes.items():
                self.budgets[name] = ErrorBudget(name, slo_ms, percentile)
        else:
            for cls in classes:
                self.budgets[cls.name] = ErrorBudget(
                    cls.name, cls.slo_ms, cls.percentile)
        if not self.budgets:
            raise ConfigurationError("need at least one service class")
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None

    # ------------------------------------------------------------------
    def ingest(self, recorder) -> int:
        """Feed every terminal event from a recorder; returns the number
        of outcomes absorbed.  Events for unknown classes are skipped
        (merged traces may carry classes this accountant doesn't track).
        """
        n = 0
        for event in recorder.events:
            kind = event.type
            if kind == QUERY_COMPLETE:
                latency = (event.extra or {}).get("latency")
                bad = latency is None or latency > self._slo_for(event)
            elif kind in (QUERY_TIMEOUT, QUERY_REJECTED):
                bad = True
            else:
                continue
            budget = self.budgets.get(event.class_name)
            if budget is None:
                continue
            budget.record(event.time, bad)
            if self._first_time is None:
                self._first_time = event.time
            self._last_time = event.time
            n += 1
        return n

    def _slo_for(self, event) -> float:
        budget = self.budgets.get(event.class_name)
        return budget.slo_ms if budget is not None else float("inf")

    @classmethod
    def from_result(cls, result) -> "SLOAccountant":
        """Build and feed an accountant from a traced
        :class:`~repro.cluster.results.SimulationResult`."""
        if result.obs is None:
            raise ConfigurationError(
                "result has no trace recorder; run with a TraceRecorder "
                "to enable SLO accounting"
            )
        accountant = cls(result.classes)
        accountant.ingest(result.obs)
        return accountant

    # ------------------------------------------------------------------
    @property
    def span_ms(self) -> float:
        """Time between the first and last ingested outcome."""
        if self._first_time is None or self._last_time is None:
            return 0.0
        return self._last_time - self._first_time

    def windows(self, fast_ms: Optional[float] = None,
                slow_ms: Optional[float] = None) -> Dict[str, float]:
        """The (fast, slow) window spans, defaulting to span/20 and
        span/5 of the ingested stream."""
        span = self.span_ms
        fast = fast_ms if fast_ms is not None else max(span / 20.0, 1e-9)
        slow = slow_ms if slow_ms is not None else max(span / 5.0, 1e-9)
        if fast > slow:
            raise ConfigurationError(
                f"fast window ({fast}) must not exceed slow window ({slow})"
            )
        return {"fast": fast, "slow": slow}

    def burn_rates(self, fast_ms: Optional[float] = None,
                   slow_ms: Optional[float] = None
                   ) -> Dict[str, Dict[str, float]]:
        """Per-class burn rate over both trailing windows, anchored at
        the last ingested outcome."""
        spans = self.windows(fast_ms, slow_ms)
        now = self._last_time if self._last_time is not None else 0.0
        return {
            name: {window: budget.burn_rate(span, now)
                   for window, span in spans.items()}
            for name, budget in self.budgets.items()
        }

    def alerts(self, threshold: float = ALERT_BURN_RATE,
               fast_ms: Optional[float] = None,
               slow_ms: Optional[float] = None) -> Dict[str, bool]:
        """Multi-window alert per class: fires only when *both* windows
        burn above the threshold."""
        rates = self.burn_rates(fast_ms, slow_ms)
        return {
            name: (windows["fast"] > threshold
                   and windows["slow"] > threshold)
            for name, windows in rates.items()
        }

    # ------------------------------------------------------------------
    def to_json(self, fast_ms: Optional[float] = None,
                slow_ms: Optional[float] = None) -> Dict[str, Any]:
        """JSON-ready accounting snapshot."""
        spans = self.windows(fast_ms, slow_ms)
        rates = self.burn_rates(fast_ms, slow_ms)
        alerts = self.alerts(fast_ms=fast_ms, slow_ms=slow_ms)
        classes: Dict[str, Any] = {}
        for name, budget in self.budgets.items():
            classes[name] = {
                "slo_ms": budget.slo_ms,
                "percentile": budget.percentile,
                "budget_fraction": budget.budget_fraction,
                "total": budget.total,
                "bad": budget.bad,
                "bad_fraction": budget.bad_fraction(),
                "budget_consumed": budget.budget_consumed(),
                "budget_remaining": budget.budget_remaining(),
                "burn_rate": rates[name],
                "alert": alerts[name],
            }
        return {"span_ms": self.span_ms, "windows_ms": spans,
                "classes": classes}

    def to_prometheus(self, fast_ms: Optional[float] = None,
                      slow_ms: Optional[float] = None) -> str:
        """Prometheus text exposition of the accounting state."""
        rates = self.burn_rates(fast_ms, slow_ms)
        lines = [
            "# HELP tailguard_slo_queries_total Terminal query outcomes.",
            "# TYPE tailguard_slo_queries_total counter",
        ]
        for name, budget in self.budgets.items():
            lines.append(
                f'tailguard_slo_queries_total{{class="{name}"}} '
                f'{budget.total}')
        lines += [
            "# HELP tailguard_slo_bad_total Outcomes that violated the SLO.",
            "# TYPE tailguard_slo_bad_total counter",
        ]
        for name, budget in self.budgets.items():
            lines.append(
                f'tailguard_slo_bad_total{{class="{name}"}} {budget.bad}')
        lines += [
            "# HELP tailguard_slo_budget_remaining Error budget left "
            "(1 = untouched, <0 = blown).",
            "# TYPE tailguard_slo_budget_remaining gauge",
        ]
        for name, budget in self.budgets.items():
            lines.append(
                f'tailguard_slo_budget_remaining{{class="{name}"}} '
                f'{budget.budget_remaining():.6g}')
        lines += [
            "# HELP tailguard_slo_burn_rate Error-budget burn rate over "
            "a trailing window (1 = sustainable pace).",
            "# TYPE tailguard_slo_burn_rate gauge",
        ]
        for name, windows in rates.items():
            for window, rate in windows.items():
                lines.append(
                    f'tailguard_slo_burn_rate{{class="{name}",'
                    f'window="{window}"}} {rate:.6g}')
        return "\n".join(lines) + "\n"
