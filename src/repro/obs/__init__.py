"""Task-lifecycle tracing and streaming metrics (observability layer).

End-of-run aggregates (percentiles, admission counters) say *whether* a
run missed its SLO; this package records *why*: when each task was
enqueued, how far it jumped in the queue, when it was dequeued, whether
its queuing deadline had already passed, and how the per-server queue
state evolved over time.  The design follows the telemetry surfaces of
production tail-latency schedulers (RackSched's per-request scheduling
traces, QWin's per-window queue observations): per-event records plus
sampled per-server time series.

Three pieces:

* :mod:`repro.obs.events` — the typed lifecycle event vocabulary and
  the compact :class:`~repro.obs.events.TraceEvent` record;
* :mod:`repro.obs.recorder` — :class:`~repro.obs.recorder.TraceRecorder`
  (collects events, counters, a log-scale latency histogram, and
  per-server time series) and the zero-overhead
  :class:`~repro.obs.recorder.NullRecorder`;
* :mod:`repro.obs.export` — JSONL and Chrome ``chrome://tracing`` /
  Perfetto trace-event exporters plus a human-readable text summary;
* :mod:`repro.obs.attribution` — critical-path latency attribution:
  the exact per-query additive breakdown of end-to-end latency into
  queueing / service / retry / hedge components, and the cluster-level
  tail attribution built on it;
* :mod:`repro.obs.slo` — per-class SLO error budgets with multi-window
  burn-rate accounting, fed from the same terminal events;
* :mod:`repro.obs.forensics` — the ``tailguard report`` document
  builder, text renderer, and a dependency-free JSON-schema checker.

The hot paths (:mod:`repro.cluster.simulation`,
:mod:`repro.core.server`) only ever pay a single ``is not None`` /
``enabled`` check when tracing is off.
"""

from repro.obs.events import (
    CDF_UPDATE,
    DEADLINE_MISS,
    EVENT_TYPES,
    QUERY_ARRIVE,
    QUERY_COMPLETE,
    QUERY_REJECTED,
    QUERY_TIMEOUT,
    SERVER_BUSY,
    SERVER_IDLE,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_ENQUEUE,
    TraceEvent,
)
from repro.obs.metrics import LogHistogram, ServerSeries
from repro.obs.recorder import NullRecorder, TraceRecorder
from repro.obs.export import (
    chrome_trace_events,
    read_jsonl,
    recorder_from_jsonl,
    text_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.attribution import (
    COMPONENTS,
    ClusterAttribution,
    QueryAttribution,
    attribute_queries,
)
from repro.obs.slo import ErrorBudget, SLOAccountant
from repro.obs.forensics import (
    render_report,
    tail_forensics_report,
    validate_report,
)

__all__ = [
    "CDF_UPDATE",
    "DEADLINE_MISS",
    "EVENT_TYPES",
    "QUERY_ARRIVE",
    "QUERY_COMPLETE",
    "QUERY_REJECTED",
    "QUERY_TIMEOUT",
    "SERVER_BUSY",
    "SERVER_IDLE",
    "TASK_COMPLETE",
    "TASK_DEQUEUE",
    "TASK_ENQUEUE",
    "TraceEvent",
    "LogHistogram",
    "ServerSeries",
    "NullRecorder",
    "TraceRecorder",
    "chrome_trace_events",
    "read_jsonl",
    "recorder_from_jsonl",
    "text_summary",
    "write_chrome_trace",
    "write_jsonl",
    "COMPONENTS",
    "ClusterAttribution",
    "QueryAttribution",
    "attribute_queries",
    "ErrorBudget",
    "SLOAccountant",
    "render_report",
    "tail_forensics_report",
    "validate_report",
]
