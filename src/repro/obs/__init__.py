"""Task-lifecycle tracing and streaming metrics (observability layer).

End-of-run aggregates (percentiles, admission counters) say *whether* a
run missed its SLO; this package records *why*: when each task was
enqueued, how far it jumped in the queue, when it was dequeued, whether
its queuing deadline had already passed, and how the per-server queue
state evolved over time.  The design follows the telemetry surfaces of
production tail-latency schedulers (RackSched's per-request scheduling
traces, QWin's per-window queue observations): per-event records plus
sampled per-server time series.

Three pieces:

* :mod:`repro.obs.events` — the typed lifecycle event vocabulary and
  the compact :class:`~repro.obs.events.TraceEvent` record;
* :mod:`repro.obs.recorder` — :class:`~repro.obs.recorder.TraceRecorder`
  (collects events, counters, a log-scale latency histogram, and
  per-server time series) and the zero-overhead
  :class:`~repro.obs.recorder.NullRecorder`;
* :mod:`repro.obs.export` — JSONL and Chrome ``chrome://tracing`` /
  Perfetto trace-event exporters plus a human-readable text summary.

The hot paths (:mod:`repro.cluster.simulation`,
:mod:`repro.core.server`) only ever pay a single ``is not None`` /
``enabled`` check when tracing is off.
"""

from repro.obs.events import (
    CDF_UPDATE,
    DEADLINE_MISS,
    EVENT_TYPES,
    QUERY_ARRIVE,
    QUERY_REJECTED,
    SERVER_BUSY,
    SERVER_IDLE,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_ENQUEUE,
    TraceEvent,
)
from repro.obs.metrics import LogHistogram, ServerSeries
from repro.obs.recorder import NullRecorder, TraceRecorder
from repro.obs.export import (
    chrome_trace_events,
    text_summary,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "CDF_UPDATE",
    "DEADLINE_MISS",
    "EVENT_TYPES",
    "QUERY_ARRIVE",
    "QUERY_REJECTED",
    "SERVER_BUSY",
    "SERVER_IDLE",
    "TASK_COMPLETE",
    "TASK_DEQUEUE",
    "TASK_ENQUEUE",
    "TraceEvent",
    "LogHistogram",
    "ServerSeries",
    "NullRecorder",
    "TraceRecorder",
    "chrome_trace_events",
    "text_summary",
    "write_chrome_trace",
    "write_jsonl",
]
