"""Trace exporters: JSONL, Chrome trace-event format, text summary.

The Chrome exporter emits the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_:

* one *process* (pid 0) named ``tailguard``;
* *thread* 0 is the query handler; thread ``sid + 1`` is task server
  ``sid`` (``tid`` must be >= 0 and 0 is taken by the handler);
* each served task becomes a complete (``ph: "X"``) slice on its
  server's thread, paired from its ``TASK_DEQUEUE``/``TASK_COMPLETE``
  events;
* deadline misses, rejections, and arrivals become instant (``"i"``)
  events;
* queue lengths become counter (``"C"``) tracks per server.

Timestamps: the trace-event format counts microseconds; simulation time
is milliseconds, hence the ×1000.
"""

from __future__ import annotations

import json
import math
from typing import IO, Any, Dict, List, Union

from repro.obs.events import (
    DEADLINE_MISS,
    QUERY_ARRIVE,
    QUERY_COMPLETE,
    QUERY_REJECTED,
    QUERY_TIMEOUT,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_ENQUEUE,
    TraceEvent,
)

#: Accepts a filesystem path (str / PathLike) or an open text stream.
PathOrFile = Union[str, Any, IO[str]]

#: Trace-event pid used for the whole simulated cluster.
TRACE_PID = 0
#: Thread id of the query handler; server ``sid`` maps to ``sid + 1``.
HANDLER_TID = 0


def _server_tid(server_id: int) -> int:
    return server_id + 1


def _open(path_or_file: PathOrFile):
    """Returns (file, should_close)."""
    if hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, "w", encoding="utf-8"), True


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(recorder, path_or_file: PathOrFile) -> int:
    """One compact JSON object per event line; returns the line count."""
    stream, should_close = _open(path_or_file)
    try:
        n = 0
        for event in recorder.events:
            stream.write(json.dumps(event.to_dict(), separators=(",", ":")))
            stream.write("\n")
            n += 1
        return n
    finally:
        if should_close:
            stream.close()


def read_jsonl(path_or_file: PathOrFile) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into dicts (analysis convenience)."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file, "r", encoding="utf-8") as stream:
            lines = stream.read().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


#: ``TraceEvent`` fields :meth:`~repro.obs.events.TraceEvent.to_dict`
#: writes at the top level; everything else round-trips through
#: ``extra``.
_EVENT_FIELDS = frozenset({"seq", "type", "time", "server_id", "query_id",
                           "class_name", "fanout", "deadline", "slack"})


def recorder_from_jsonl(path_or_file: PathOrFile):
    """Rebuild a recorder from a JSONL trace written by
    :func:`write_jsonl`.

    The loader is lenient (``strict=False``): unknown event types pass
    through unchanged, and any non-standard keys land back in each
    event's ``extra`` dict.  Sequence numbers are reassigned in file
    order, which is emission order for an unedited trace.  Only the
    event stream survives the round-trip — counters, gauges, the
    latency histogram, and sampled series are not serialized to JSONL.
    """
    from repro.obs.recorder import TraceRecorder

    recorder = TraceRecorder(strict=False)
    for entry in read_jsonl(path_or_file):
        extra = {k: v for k, v in entry.items() if k not in _EVENT_FIELDS}
        recorder.emit(
            entry["type"], entry["time"],
            server_id=int(entry.get("server_id", -1)),
            query_id=int(entry.get("query_id", -1)),
            class_name=entry.get("class_name", ""),
            fanout=int(entry.get("fanout", 0)),
            deadline=float(entry.get("deadline", float("nan"))),
            slack=float(entry.get("slack", float("nan"))),
            extra=extra or None,
        )
    return recorder


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def _slice_name(event: TraceEvent) -> str:
    if event.class_name:
        return f"{event.class_name}/q{event.query_id}"
    return f"q{event.query_id}"


def chrome_trace_events(recorder) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list from a recorder's event stream."""
    trace: List[Dict[str, Any]] = [{
        "ph": "M", "pid": TRACE_PID, "tid": HANDLER_TID,
        "name": "process_name", "args": {"name": "tailguard"},
    }, {
        "ph": "M", "pid": TRACE_PID, "tid": HANDLER_TID,
        "name": "thread_name", "args": {"name": "query handler"},
    }]
    named_servers = set()
    #: (server_id, query_id) -> TASK_DEQUEUE event awaiting completion.
    open_slices: Dict[tuple, TraceEvent] = {}

    def ensure_server(server_id: int) -> int:
        tid = _server_tid(server_id)
        if server_id not in named_servers:
            named_servers.add(server_id)
            trace.append({
                "ph": "M", "pid": TRACE_PID, "tid": tid,
                "name": "thread_name",
                "args": {"name": f"server {server_id}"},
            })
        return tid

    for event in recorder.events:
        ts = event.time * 1000.0
        if event.type == QUERY_ARRIVE:
            trace.append({
                "ph": "i", "s": "p", "pid": TRACE_PID, "tid": HANDLER_TID,
                "ts": ts, "name": "QUERY_ARRIVE",
                "args": {"query_id": event.query_id,
                         "class": event.class_name,
                         "fanout": event.fanout},
            })
        elif event.type in (QUERY_REJECTED, QUERY_COMPLETE, QUERY_TIMEOUT):
            args: Dict[str, Any] = {"query_id": event.query_id}
            if event.extra:
                args.update(event.extra)
            trace.append({
                "ph": "i", "s": "p", "pid": TRACE_PID, "tid": HANDLER_TID,
                "ts": ts, "name": event.type, "args": args,
            })
        elif event.type == TASK_DEQUEUE:
            ensure_server(event.server_id)
            open_slices[(event.server_id, event.query_id)] = event
        elif event.type == TASK_COMPLETE:
            tid = ensure_server(event.server_id)
            start = open_slices.pop((event.server_id, event.query_id), None)
            begin_ts = start.time * 1000.0 if start is not None else ts
            args = {"query_id": event.query_id}
            if start is not None and not math.isnan(start.slack):
                args["slack_ms"] = start.slack
            if event.extra and "duration" in event.extra:
                args["service_ms"] = event.extra["duration"]
            trace.append({
                "ph": "X", "pid": TRACE_PID, "tid": tid, "ts": begin_ts,
                "dur": ts - begin_ts,
                "name": _slice_name(start if start is not None else event),
                "args": args,
            })
        elif event.type == DEADLINE_MISS:
            tid = ensure_server(event.server_id)
            trace.append({
                "ph": "i", "s": "t", "pid": TRACE_PID, "tid": tid,
                "ts": ts, "name": "DEADLINE_MISS",
                "args": {"query_id": event.query_id,
                         "slack_ms": None if math.isnan(event.slack)
                         else event.slack},
            })
        elif event.type == TASK_ENQUEUE:
            tid = ensure_server(event.server_id)
            queue_len = (event.extra or {}).get("queue_len")
            if queue_len is not None:
                trace.append({
                    "ph": "C", "pid": TRACE_PID, "tid": tid, "ts": ts,
                    "name": f"queue[{event.server_id}]",
                    "args": {"queued": queue_len},
                })
        # SERVER_BUSY / SERVER_IDLE / CDF_UPDATE stay JSONL-only: they
        # would only duplicate what the slices already show.

    series = recorder.server_series()
    if series is not None:
        for row, t in enumerate(series.time):
            trace.append({
                "ph": "C", "pid": TRACE_PID, "tid": HANDLER_TID,
                "ts": float(t) * 1000.0, "name": "cluster",
                "args": {
                    "queued_tasks": int(series.queue_len[row].sum()),
                    "busy_servers": int(series.busy[row].sum()),
                },
            })
    return trace


def write_chrome_trace(recorder, path_or_file: PathOrFile) -> int:
    """Write a ``{"traceEvents": [...]}`` JSON file; returns event count."""
    events = chrome_trace_events(recorder)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    stream, should_close = _open(path_or_file)
    try:
        json.dump(document, stream, indent=1, sort_keys=True)
        stream.write("\n")
    finally:
        if should_close:
            stream.close()
    return len(events)


# ----------------------------------------------------------------------
# Text summary
# ----------------------------------------------------------------------
def text_summary(recorder, collector=None) -> str:
    """Human-readable run summary.

    ``collector`` is an optional
    :class:`~repro.metrics.collector.LatencyCollector`; when given, its
    :meth:`summary` per-type percentiles are appended.
    """
    lines: List[str] = ["=== trace summary ==="]
    counts = recorder.counts_by_type()
    for name in sorted(counts):
        lines.append(f"{name:<16} {counts[name]:>10d}")
    if recorder.counters:
        lines.append("--- counters ---")
        for name in sorted(recorder.counters):
            lines.append(f"{name:<24} {recorder.counters[name]:>10d}")
    if recorder.gauges:
        lines.append("--- gauges ---")
        for name in sorted(recorder.gauges):
            lines.append(f"{name:<24} {recorder.gauges[name]:>12.4f}")
    hist = recorder.latency_hist
    if hist.total_count():
        lines.append("--- query latency (histogram, ms) ---")
        lines.append(
            f"count={hist.total_count()} mean={hist.mean():.4f} "
            f"p50<={hist.percentile(50.0):.4f} p99<={hist.percentile(99.0):.4f}"
        )
    series = recorder.server_series()
    if series is not None and len(series):
        peak = int(series.total_queued().max())
        lines.append("--- sampled series ---")
        lines.append(
            f"samples={len(series)} servers={series.n_servers} "
            f"peak_queued={peak} "
            f"mean_busy={float(series.busy_servers().mean()):.2f}"
        )
    if collector is not None:
        lines.append("--- per-type latency (exact, ms) ---")
        for group in collector.summary()["groups"]:
            lines.append(
                f"{group['class_name']:<10} kf={group['fanout']:<5d} "
                f"n={group['count']:<7d} mean={group['mean']:.4f} "
                f"p99={group['p99']:.4f}"
            )
    return "\n".join(lines)
