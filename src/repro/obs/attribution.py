"""Critical-path latency attribution from lifecycle event streams.

A completed query's end-to-end latency is the story of its *critical
copy*: the task copy whose completion drove the query's outstanding
count to zero.  Both simulators emit ``TASK_COMPLETE`` only for winning
copies (hedge losers and stale crash-era copies complete silently), so
the **last** ``TASK_COMPLETE`` of a query is exactly that copy, and the
events around it pin down the decomposition:

* the query arrived at ``t0`` (``QUERY_ARRIVE``);
* the critical copy was *launched* at ``t1`` — at ``t0`` for a primary
  dispatch, or at its ``TASK_RETRY`` / ``TASK_HEDGE`` event for a
  mitigation relaunch;
* it left the waiting line at ``t2`` (its ``TASK_DEQUEUE``); and
* it finished at ``Tc`` (its ``TASK_COMPLETE``), with
  ``latency = Tc - t0`` — the same float subtraction the simulators
  store in ``SimulationResult.latency``.

The additive decomposition is then

* ``retry_delay`` / ``hedge_wait`` = ``t1 - t0`` (zero for primaries;
  at most one of the two is nonzero, by the critical copy's kind),
* ``queueing`` = ``t2 - t1``, and
* ``service`` = the *remainder* ``latency - retry_delay - hedge_wait -
  queueing``, so the components sum back to the recorded latency
  bit-exactly by construction.  The remainder differs from the raw
  ``Tc - t2`` by at most a couple of float roundings — except under
  pause-mode downtime, where a crashed server restarts its in-flight
  task without a second dequeue and the service component deliberately
  absorbs the downtime the copy sat through.

Degradation is *not* an additive component: serving a query at reduced
fanout removes work instead of adding wait, so its "effect" is carried
as per-query annotations (``degraded``, ``coverage``) and surfaces in
the cluster-level tail attribution.

Matching is exact, not heuristic.  Servers serialize service, so the
dequeue belonging to a completion on server ``s`` is simply the latest
``TASK_DEQUEUE`` seen on ``s``; fault-path task events carry a
``slot`` tag so relaunches of different slots of the same query never
alias.  Queries that permanently failed (``QUERY_TIMEOUT``) have no
latency and are counted, not decomposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.percentile import exact_percentile
from repro.obs.events import (
    QUERY_ARRIVE,
    QUERY_COMPLETE,
    QUERY_DEGRADED,
    QUERY_TIMEOUT,
    TASK_CANCEL,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_HEDGE,
    TASK_RETRY,
    TASK_SHED,
)

#: How the critical copy came to be.
PRIMARY = "primary"
RETRY = "retry"
HEDGE = "hedge"

#: The additive components, in the decomposition's canonical order:
#: the sum ``retry_delay + hedge_wait + queueing + service`` equals the
#: end-to-end latency (``service`` is the remainder).
COMPONENTS = ("retry_delay", "hedge_wait", "queueing", "service")


@dataclass(slots=True)
class QueryAttribution:
    """The exact latency breakdown of one completed query."""

    query_id: int
    class_name: str
    fanout: int
    arrival_ms: float
    completion_ms: float
    latency_ms: float
    #: Additive components (milliseconds); they sum to ``latency_ms``.
    retry_delay_ms: float
    hedge_wait_ms: float
    queueing_ms: float
    service_ms: float
    #: The server that served the critical (completion-driving) copy.
    critical_server: int
    #: How that copy was launched: ``primary`` / ``retry`` / ``hedge``.
    critical_kind: str
    #: Mitigation activity across *all* of the query's copies.
    n_retries: int = 0
    n_hedges: int = 0
    n_cancels: int = 0
    #: Overload degradation annotations (not additive — see module doc).
    degraded: bool = False
    coverage: float = 1.0

    def components(self) -> Dict[str, float]:
        """The additive breakdown, keyed by :data:`COMPONENTS`."""
        return {
            "retry_delay": self.retry_delay_ms,
            "hedge_wait": self.hedge_wait_ms,
            "queueing": self.queueing_ms,
            "service": self.service_ms,
        }

    def check_additivity(self) -> bool:
        """The defining invariant, bit-exact: subtracting the launch
        and queueing components from the latency leaves the service
        remainder."""
        return (((self.latency_ms - self.retry_delay_ms)
                 - self.hedge_wait_ms)
                - self.queueing_ms) == self.service_ms


def attribute_queries(recorder) -> List[QueryAttribution]:
    """Reconstruct the per-query breakdown from a recorder's events.

    Works on any stream that contains the task lifecycle events — both
    simulation paths, the DES handler/server stack, and traces loaded
    back via :func:`repro.obs.export.recorder_from_jsonl`.  Returns one
    entry per *completed* query, in query-id order.
    """
    arrive: Dict[int, Any] = {}
    open_dequeue: Dict[int, Any] = {}
    #: query_id -> (completion event, its matched dequeue event).
    final: Dict[int, Tuple[Any, Any]] = {}
    launches: Dict[int, List[Any]] = {}
    retries: Dict[int, int] = {}
    hedges: Dict[int, int] = {}
    cancels: Dict[int, int] = {}
    coverage: Dict[int, float] = {}
    terminal_latency: Dict[int, float] = {}
    timed_out: set = set()

    for event in recorder.events:
        kind = event.type
        if kind == TASK_DEQUEUE:
            open_dequeue[event.server_id] = event
        elif kind == TASK_COMPLETE:
            final[event.query_id] = (event,
                                     open_dequeue.get(event.server_id))
        elif kind == QUERY_ARRIVE:
            arrive[event.query_id] = event
        elif kind == TASK_RETRY:
            launches.setdefault(event.query_id, []).append(event)
            retries[event.query_id] = retries.get(event.query_id, 0) + 1
        elif kind == TASK_HEDGE:
            launches.setdefault(event.query_id, []).append(event)
            hedges[event.query_id] = hedges.get(event.query_id, 0) + 1
        elif kind == TASK_CANCEL:
            cancels[event.query_id] = cancels.get(event.query_id, 0) + 1
        elif kind == QUERY_DEGRADED:
            coverage[event.query_id] = float(
                (event.extra or {}).get("coverage", 1.0))
        elif kind == QUERY_TIMEOUT:
            timed_out.add(event.query_id)
        elif kind == QUERY_COMPLETE and event.extra:
            if "latency" in event.extra:
                terminal_latency[event.query_id] = event.extra["latency"]

    out: List[QueryAttribution] = []
    for qid in sorted(final):
        arrival = arrive.get(qid)
        if arrival is None:
            continue  # truncated stream: completion without an arrival
        if qid in timed_out:
            continue  # failed query: sibling slots may have completed,
            # but there is no end-to-end latency to decompose
        complete, dequeue = final[qid]
        t0 = arrival.time
        latency = terminal_latency.get(qid)
        if latency is None:
            latency = complete.time - t0
        extra = complete.extra or {}
        slot = extra.get("slot")
        if dequeue is not None and dequeue.query_id == complete.query_id:
            t2 = dequeue.time
            dequeue_seq = dequeue.seq
        elif "duration" in extra:
            # Defensive fallback (e.g. a stream whose dequeues were
            # filtered out): infer the service start from the duration.
            t2 = complete.time - extra["duration"]
            dequeue_seq = complete.seq
        else:
            t2 = t0
            dequeue_seq = complete.seq

        # The critical copy's launch: the latest retry/hedge targeting
        # the completing server (and slot, when tagged) before its
        # dequeue; none means the primary dispatch at arrival.
        launch = None
        for candidate in launches.get(qid, ()):
            if candidate.server_id != complete.server_id:
                continue
            if candidate.seq >= dequeue_seq:
                continue
            cand_slot = (candidate.extra or {}).get("slot")
            if slot is not None and cand_slot is not None \
                    and cand_slot != slot:
                continue
            if launch is None or candidate.seq > launch.seq:
                launch = candidate

        if launch is None:
            kind, t1 = PRIMARY, t0
        elif launch.type == TASK_HEDGE:
            kind, t1 = HEDGE, launch.time
        else:
            kind, t1 = RETRY, launch.time

        pre = t1 - t0
        retry_delay = pre if kind == RETRY else 0.0
        hedge_wait = pre if kind == HEDGE else 0.0
        queueing = t2 - t1
        service = ((latency - retry_delay) - hedge_wait) - queueing

        out.append(QueryAttribution(
            query_id=qid,
            class_name=arrival.class_name or complete.class_name,
            fanout=arrival.fanout,
            arrival_ms=t0,
            completion_ms=complete.time,
            latency_ms=latency,
            retry_delay_ms=retry_delay,
            hedge_wait_ms=hedge_wait,
            queueing_ms=queueing,
            service_ms=service,
            critical_server=complete.server_id,
            critical_kind=kind,
            n_retries=retries.get(qid, 0),
            n_hedges=hedges.get(qid, 0),
            n_cancels=cancels.get(qid, 0),
            degraded=qid in coverage,
            coverage=coverage.get(qid, 1.0),
        ))
    return out


class ClusterAttribution:
    """Cluster-level view over per-query attributions.

    Answers the tail question the aggregates cannot: *where* does p99
    latency go — queueing, service, retry backoff, or hedge waits —
    and on which servers.
    """

    def __init__(self, queries: List[QueryAttribution],
                 timed_out: int = 0, shed_tasks: int = 0,
                 hedge_losses: int = 0) -> None:
        self.queries = list(queries)
        self.timed_out = timed_out
        self.shed_tasks = shed_tasks
        self.hedge_losses = hedge_losses

    @classmethod
    def from_recorder(cls, recorder) -> "ClusterAttribution":
        timed_out = 0
        shed = 0
        hedge_losses = 0
        for event in recorder.events:
            if event.type == QUERY_TIMEOUT:
                timed_out += 1
            elif event.type == TASK_SHED:
                shed += 1
            elif event.type == TASK_CANCEL:
                if (event.extra or {}).get("reason") == "hedge_lost":
                    hedge_losses += 1
        return cls(attribute_queries(recorder), timed_out=timed_out,
                   shed_tasks=shed, hedge_losses=hedge_losses)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.queries)

    def latencies(self) -> np.ndarray:
        return np.asarray([q.latency_ms for q in self.queries])

    def component_values(self, component: str) -> np.ndarray:
        if component not in COMPONENTS:
            raise KeyError(f"unknown component {component!r}; "
                           f"known: {COMPONENTS}")
        field = f"{component}_ms"
        return np.asarray([getattr(q, field) for q in self.queries])

    def mechanism_table(self) -> Dict[str, Dict[str, float]]:
        """Per-component p50/p99/mean and share of total latency."""
        total_latency = float(self.latencies().sum()) if self.queries else 0.0
        table: Dict[str, Dict[str, float]] = {}
        for component in COMPONENTS:
            values = self.component_values(component)
            if values.size == 0:
                table[component] = {"p50": 0.0, "p99": 0.0, "mean": 0.0,
                                    "share": 0.0}
                continue
            table[component] = {
                "p50": float(exact_percentile(values, 50.0)),
                "p99": float(exact_percentile(values, 99.0)),
                "mean": float(values.mean()),
                "share": (float(values.sum()) / total_latency
                          if total_latency > 0 else 0.0),
            }
        return table

    def tail_attribution(self, percentile: float = 99.0,
                         top_servers: int = 3) -> Dict[str, Any]:
        """Where the tail's time goes.

        Selects the queries at or above the latency percentile and
        reports each component's share of their summed latency, the
        servers whose critical copies carry the most tail time, and
        how many tail queries were degraded / hedge-won / retried.
        """
        if not self.queries:
            return {"percentile": percentile, "threshold_ms": 0.0,
                    "n_tail": 0, "shares": {c: 0.0 for c in COMPONENTS},
                    "servers": [], "degraded_fraction": 0.0,
                    "hedge_won_fraction": 0.0, "retried_fraction": 0.0}
        latencies = self.latencies()
        threshold = float(exact_percentile(latencies, percentile))
        tail = [q for q in self.queries if q.latency_ms >= threshold]
        tail_time = sum(q.latency_ms for q in tail)
        shares = {}
        for component in COMPONENTS:
            field = f"{component}_ms"
            shares[component] = (
                sum(getattr(q, field) for q in tail) / tail_time
                if tail_time > 0 else 0.0
            )
        by_server: Dict[int, Tuple[float, int]] = {}
        for q in tail:
            time_so_far, count = by_server.get(q.critical_server, (0.0, 0))
            by_server[q.critical_server] = (time_so_far + q.latency_ms,
                                            count + 1)
        servers = sorted(
            ({"server": sid, "share": time / tail_time if tail_time else 0.0,
              "queries": count}
             for sid, (time, count) in by_server.items()),
            key=lambda row: -row["share"],
        )[:top_servers]
        n = len(tail)
        return {
            "percentile": percentile,
            "threshold_ms": threshold,
            "n_tail": n,
            "shares": shares,
            "servers": servers,
            "degraded_fraction": sum(q.degraded for q in tail) / n,
            "hedge_won_fraction": sum(
                q.critical_kind == HEDGE for q in tail) / n,
            "retried_fraction": sum(
                q.critical_kind == RETRY for q in tail) / n,
        }

    def top_k(self, k: int = 5) -> List[QueryAttribution]:
        """The k slowest queries, slowest first."""
        return sorted(self.queries, key=lambda q: -q.latency_ms)[:k]

    def hedge_accounting(self) -> Dict[str, int]:
        """Hedging cost/benefit: launched duplicates, queries whose
        hedge *won* the critical path, and loser copies cancelled
        (duplicated work that bought nothing)."""
        return {
            "hedges_launched": sum(q.n_hedges for q in self.queries),
            "hedge_won_queries": sum(
                q.critical_kind == HEDGE for q in self.queries),
            "hedge_losses_cancelled": self.hedge_losses,
        }

    def summary(self) -> Dict[str, Any]:
        """JSON-ready cluster attribution (no per-query payload)."""
        out: Dict[str, Any] = {
            "queries_attributed": len(self.queries),
            "queries_timed_out": self.timed_out,
            "shed_tasks": self.shed_tasks,
            "components": self.mechanism_table(),
            "hedges": self.hedge_accounting(),
        }
        if self.queries:
            out["tail"] = self.tail_attribution()
            out["degraded_queries"] = sum(
                q.degraded for q in self.queries)
        return out
