"""Tail-forensics reports: drill-down from a traced run to "where did
the tail go".

:func:`tail_forensics_report` folds a traced
:class:`~repro.cluster.results.SimulationResult` into one JSON-ready
document: run headline numbers, the cluster latency attribution
(per-mechanism percentiles and tail shares from
:mod:`repro.obs.attribution`), per-class SLO error budgets with
multi-window burn rates (:mod:`repro.obs.slo`), and the top-k slowest
queries with their component waterfalls.  :func:`render_report` turns
that document into the text form the ``tailguard report`` subcommand
prints.

:func:`validate_report` is a deliberately small JSON-Schema checker
(``type`` / ``required`` / ``properties`` / ``items`` / ``enum`` /
``minimum``) so the report contract can be pinned by a checked-in
schema without a third-party dependency.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.attribution import COMPONENTS, ClusterAttribution
from repro.obs.slo import SLOAccountant

#: Report document version; bump on breaking shape changes.
REPORT_VERSION = 1


def tail_forensics_report(result, top_k: int = 5,
                          percentile: float = 99.0,
                          fast_window_ms: Optional[float] = None,
                          slow_window_ms: Optional[float] = None
                          ) -> Dict[str, Any]:
    """Build the forensics document from a traced simulation result."""
    if result.obs is None:
        raise ConfigurationError(
            "result has no trace recorder; run with a TraceRecorder to "
            "build a forensics report"
        )
    attribution = ClusterAttribution.from_recorder(result.obs)
    accountant = SLOAccountant(result.classes)
    accountant.ingest(result.obs)

    waterfalls: List[Dict[str, Any]] = []
    for q in attribution.top_k(top_k):
        waterfalls.append({
            "query_id": q.query_id,
            "class_name": q.class_name,
            "fanout": q.fanout,
            "latency_ms": q.latency_ms,
            "critical_server": q.critical_server,
            "critical_kind": q.critical_kind,
            "degraded": bool(q.degraded),
            "components": q.components(),
        })

    return {
        "version": REPORT_VERSION,
        "run": {
            "policy": result.policy_name,
            "n_servers": result.n_servers,
            "seed": result.seed,
            "offered_load": result.offered_load,
            "queries_measured": int(result._mask(None, None).sum()),
            "utilization": result.utilization(),
            "deadline_miss_ratio": result.deadline_miss_ratio(),
        },
        "attribution": attribution.summary(),
        "slo": accountant.to_json(fast_window_ms, slow_window_ms),
        "slowest_queries": waterfalls,
    }


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_report(report: Dict[str, Any]) -> str:
    """The human-readable form of a forensics document."""
    run = report["run"]
    lines = [
        "=== tail forensics ===",
        f"policy={run['policy']} servers={run['n_servers']} "
        f"load={run['offered_load']:.3f} seed={run['seed']} "
        f"measured={run['queries_measured']}",
    ]

    attribution = report["attribution"]
    lines.append("--- latency attribution (per mechanism, ms) ---")
    lines.append(f"{'component':<12} {'p50':>10} {'p99':>10} {'mean':>10} "
                 f"{'share':>7}")
    for component in COMPONENTS:
        row = attribution["components"][component]
        lines.append(
            f"{component:<12} {row['p50']:>10.4f} {row['p99']:>10.4f} "
            f"{row['mean']:>10.4f} {row['share']:>6.1%}"
        )

    tail = attribution.get("tail")
    if tail:
        lines.append(
            f"--- p{tail['percentile']:g} tail "
            f"(>= {tail['threshold_ms']:.4f} ms, n={tail['n_tail']}) ---"
        )
        for component in COMPONENTS:
            share = tail["shares"][component]
            lines.append(f"{component:<12} {_bar(share)} {share:>6.1%}")
        for row in tail["servers"]:
            lines.append(
                f"critical server {row['server']:>3d}: "
                f"{row['share']:.1%} of tail time "
                f"({row['queries']} queries)"
            )
        annotations = []
        if tail["hedge_won_fraction"]:
            annotations.append(
                f"hedge-won {tail['hedge_won_fraction']:.1%}")
        if tail["retried_fraction"]:
            annotations.append(f"retried {tail['retried_fraction']:.1%}")
        if tail["degraded_fraction"]:
            annotations.append(f"degraded {tail['degraded_fraction']:.1%}")
        if annotations:
            lines.append("tail queries: " + ", ".join(annotations))

    hedges = attribution["hedges"]
    if hedges["hedges_launched"]:
        lines.append(
            f"hedging: launched={hedges['hedges_launched']} "
            f"won={hedges['hedge_won_queries']} "
            f"losses_cancelled={hedges['hedge_losses_cancelled']}"
        )
    if attribution["queries_timed_out"]:
        lines.append(f"queries failed: {attribution['queries_timed_out']}")

    slo = report["slo"]
    lines.append(
        f"--- SLO budgets (span={slo['span_ms']:.1f} ms, "
        f"fast={slo['windows_ms']['fast']:.1f} ms, "
        f"slow={slo['windows_ms']['slow']:.1f} ms) ---"
    )
    lines.append(f"{'class':<8} {'slo_ms':>8} {'bad/total':>12} "
                 f"{'remaining':>10} {'fast':>8} {'slow':>8}  alert")
    for name in sorted(slo["classes"]):
        row = slo["classes"][name]
        lines.append(
            f"{name:<8} {row['slo_ms']:>8.2f} "
            f"{row['bad']:>5d}/{row['total']:<6d} "
            f"{row['budget_remaining']:>10.3f} "
            f"{row['burn_rate']['fast']:>8.2f} "
            f"{row['burn_rate']['slow']:>8.2f}  "
            f"{'FIRING' if row['alert'] else 'ok'}"
        )

    if report["slowest_queries"]:
        lines.append("--- slowest queries ---")
        for entry in report["slowest_queries"]:
            lines.append(
                f"q{entry['query_id']} [{entry['class_name']} "
                f"kf={entry['fanout']}] {entry['latency_ms']:.4f} ms "
                f"via {entry['critical_kind']} on "
                f"server {entry['critical_server']}"
                + (" (degraded)" if entry["degraded"] else "")
            )
            latency = entry["latency_ms"]
            for component in COMPONENTS:
                value = entry["components"][component]
                if value == 0.0 and component != "service":
                    continue
                fraction = value / latency if latency > 0 else 0.0
                lines.append(f"    {component:<12} {_bar(fraction)} "
                             f"{value:>10.4f} ms")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Minimal JSON-Schema validation
# ----------------------------------------------------------------------
_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "null": type(None),
}


def _type_ok(value: Any, name: str) -> bool:
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    expected = _TYPES.get(name)
    return expected is not None and isinstance(value, expected)


def validate_report(instance: Any, schema: Dict[str, Any],
                    path: str = "$") -> List[str]:
    """Check ``instance`` against a (subset-)JSON-Schema.

    Supports ``type`` (string or list), ``required``, ``properties``,
    ``items``, ``enum``, and ``minimum`` — enough to pin the report
    contract.  Returns a list of human-readable violations; empty means
    valid.
    """
    errors: List[str] = []
    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(instance, name) for name in names):
            errors.append(
                f"{path}: expected type {declared!r}, "
                f"got {type(instance).__name__}"
            )
            return errors
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']!r}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) \
            and instance < schema["minimum"]:
        errors.append(f"{path}: {instance!r} < minimum {schema['minimum']!r}")
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in instance:
                errors.extend(validate_report(instance[key], subschema,
                                              f"{path}.{key}"))
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(validate_report(item, schema["items"],
                                          f"{path}[{i}]"))
    return errors
