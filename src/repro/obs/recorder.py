"""Trace recorders: the real one and the zero-overhead null one.

The simulators accept ``recorder=None`` (default) or any object with
this interface.  Hot paths guard every instrumentation block with a
single truthiness/``enabled`` check, so a disabled run never constructs
an event, touches a counter, or formats a string.

:class:`NullRecorder` exists for call sites that want to hold a
recorder unconditionally (e.g. a :class:`~repro.core.server.TaskServer`
wired once and reused): every method is a no-op and ``enabled`` is
``False``, so instrumented code can skip even argument computation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import EVENT_TYPES, TraceEvent
from repro.obs.metrics import (
    LogHistogram,
    ServerSeries,
    ServerSeriesBuilder,
)

_NAN = float("nan")


class NullRecorder:
    """Does nothing, costs (almost) nothing.

    ``enabled`` is ``False`` so instrumented hot paths can skip the
    whole block, including building event payloads.
    """

    enabled: bool = False

    def emit(self, *args: Any, **kwargs: Any) -> None:
        pass

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe_latency(self, value: float) -> None:
        pass

    def sample_servers(self, *args: Any, **kwargs: Any) -> None:
        pass

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return ()

    def counts_by_type(self) -> Dict[str, int]:
        return {}

    def server_series(self) -> Optional[ServerSeries]:
        return None

    def merge_from(self, other: Any, *, server_id_offset: int = 0,
                   query_id_map: Optional[Any] = None) -> "NullRecorder":
        return self

    def summary(self) -> Dict[str, Any]:
        return {}


class TraceRecorder:
    """Collects lifecycle events, streaming metrics, and time series.

    Parameters
    ----------
    sample_interval_ms:
        When set, the simulator samples per-server state (queue length,
        busy flag, cumulative utilization, cumulative miss ratio) every
        this many simulated milliseconds into :meth:`server_series`.
    histogram:
        Latency histogram to stream completed-query latencies into;
        defaults to a fresh :class:`LogHistogram` spanning 1 µs – 10 s.
    strict:
        Validate event types on emit (cheap; on by default).  Turn off
        to shave the frozenset lookup in extremely hot custom loops.
    """

    enabled: bool = True

    def __init__(self, sample_interval_ms: Optional[float] = None,
                 histogram: Optional[LogHistogram] = None,
                 strict: bool = True) -> None:
        if sample_interval_ms is not None and sample_interval_ms <= 0:
            raise ConfigurationError(
                f"sample_interval_ms must be positive, got {sample_interval_ms}"
            )
        self.sample_interval_ms = sample_interval_ms
        self.latency_hist = histogram if histogram is not None else LogHistogram()
        self._strict = strict
        self.events: List[TraceEvent] = []
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._series = ServerSeriesBuilder()
        self._built_series: Optional[ServerSeries] = None

    # ------------------------------------------------------------------
    def emit(self, type: str, time: float, server_id: int = -1,
             query_id: int = -1, class_name: str = "", fanout: int = 0,
             deadline: float = _NAN, slack: float = _NAN,
             extra: Optional[Dict[str, Any]] = None) -> TraceEvent:
        """Append one lifecycle event; returns it (mainly for tests)."""
        if self._strict and type not in EVENT_TYPES:
            raise ConfigurationError(f"unknown event type {type!r}")
        event = TraceEvent(
            seq=len(self.events), type=type, time=time, server_id=server_id,
            query_id=query_id, class_name=class_name, fanout=fanout,
            deadline=deadline, slack=slack, extra=extra,
        )
        self.events.append(event)
        return event

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe_latency(self, value: float) -> None:
        self.latency_hist.record(value)

    def sample_servers(self, time: float, queue_len: Sequence[int],
                       busy: Sequence[int],
                       utilization: Sequence[float],
                       miss_ratio: Sequence[float]) -> None:
        self._built_series = None
        self._series.sample(time, queue_len, busy, utilization, miss_ratio)

    def merge_from(self, other: "TraceRecorder", *,
                   server_id_offset: int = 0,
                   query_id_map: Optional[Sequence[int]] = None
                   ) -> "TraceRecorder":
        """Absorb another recorder (cross-process aggregation).

        Events are appended with fresh sequence numbers, counters add,
        gauges take the other's value (last writer wins — gauges are
        end-of-run facts like utilization), the latency histogram
        merges bucket-wise, and sampled server series concatenate in
        merge order.  Used by the parallel experiment runner to fold a
        worker-side recorder into the parent-side one.

        ``server_id_offset`` and ``query_id_map`` give merged streams a
        *shard dimension* (see :mod:`repro.federation`): a shard's
        server ids are shifted into the federation's flat server index
        and its per-run query ids are mapped to global query positions,
        so attribution and SLO accounting read the merged stream exactly
        as they would a single-cluster trace.  Sentinel ids (``-1``) are
        left untouched.  Sampled per-server series are a fixed-width
        single-cluster format and cannot carry an offset: merging a
        recorder that holds series samples under a non-zero offset
        raises :class:`ConfigurationError`.

        Merging an empty recorder is a no-op: nothing is appended and
        the histogram layout is not checked (an empty histogram has
        nothing to say about bucket edges).
        """
        remap = server_id_offset != 0 or query_id_map is not None
        if server_id_offset and len(other._series):
            raise ConfigurationError(
                "cannot merge sampled server series under a server-id "
                "offset; series are per-cluster — read them on the "
                "shard's own recorder"
            )
        for event in other.events:
            if remap:
                sid = event.server_id
                if server_id_offset and sid >= 0:
                    sid += server_id_offset
                qid = event.query_id
                if query_id_map is not None and qid >= 0:
                    qid = int(query_id_map[qid])
                self.events.append(dataclasses.replace(
                    event, seq=len(self.events), server_id=sid,
                    query_id=qid))
                continue
            self.events.append(dataclasses.replace(event,
                                                   seq=len(self.events)))
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        self.gauges.update(other.gauges)
        self.latency_hist.merge(other.latency_hist)
        if len(other._series):
            self._built_series = None
            for i in range(len(other._series._time)):
                self._series.sample(
                    other._series._time[i], other._series._queue[i],
                    other._series._busy[i], other._series._util[i],
                    other._series._miss[i],
                )
        return self

    # ------------------------------------------------------------------
    def counts_by_type(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return counts

    def server_series(self) -> Optional[ServerSeries]:
        """The sampled per-server time series (None when never sampled)."""
        if len(self._series) == 0:
            return None
        if self._built_series is None:
            self._built_series = self._series.build()
        return self._built_series

    def summary(self) -> Dict[str, Any]:
        """Headline observability numbers (JSON-ready)."""
        out: Dict[str, Any] = {
            "n_events": len(self.events),
            "events_by_type": self.counts_by_type(),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }
        if self.latency_hist.total_count():
            out["latency_ms"] = {
                "count": self.latency_hist.total_count(),
                "mean": self.latency_hist.mean(),
                "p50": self.latency_hist.percentile(50.0),
                "p99": self.latency_hist.percentile(99.0),
            }
        series = self.server_series()
        if series is not None:
            out["series_samples"] = len(series)
            out["series_servers"] = series.n_servers
        return out
