"""Streaming metric primitives: log-scale histogram and time series.

:class:`LogHistogram` is a fixed-bucket, log10-spaced latency histogram
in the HdrHistogram spirit: O(1) record, bounded memory, snapshots that
merge exactly (same bucket layout ⇒ element-wise count addition), and
percentile estimates that are conservative (upper bucket edge).

:class:`ServerSeries` holds per-server state sampled at a fixed
interval — queue length, busy flag, cumulative utilization and
cumulative deadline-miss ratio — the queue-state time series that
transient analyses and the Chrome-trace counter tracks are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError


class LogHistogram:
    """Fixed-bucket log-scale histogram over positive values.

    Bucket ``i`` covers ``[min_value * 10**(i/bpd), min_value *
    10**((i+1)/bpd))`` where ``bpd = buckets_per_decade``.  Values below
    ``min_value`` land in the underflow bucket, values at or above
    ``max_value`` in the overflow bucket, so ``total_count`` is exact
    even when the range is exceeded.
    """

    __slots__ = ("min_value", "max_value", "buckets_per_decade",
                 "_n", "_counts", "_sum", "_min", "_max",
                 "underflow", "overflow")

    def __init__(self, min_value: float = 1e-3, max_value: float = 1e4,
                 buckets_per_decade: int = 8) -> None:
        if min_value <= 0 or max_value <= min_value:
            raise ConfigurationError(
                f"need 0 < min_value < max_value, got "
                f"[{min_value}, {max_value})"
            )
        if buckets_per_decade < 1:
            raise ConfigurationError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(self.max_value / self.min_value)
        self._n = int(math.ceil(decades * self.buckets_per_decade - 1e-9))
        self._counts = [0] * self._n
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: Counts outside [min_value, max_value).
        self.underflow = 0
        self.overflow = 0

    def _index(self, value: float) -> int:
        return int(math.log10(value / self.min_value)
                   * self.buckets_per_decade)

    def record(self, value: float, count: int = 1) -> None:
        if value < 0 or math.isnan(value):
            raise ConfigurationError(f"cannot record {value!r}")
        self._sum += value * count
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if value < self.min_value:
            self.underflow += count
            return
        if value >= self.max_value:
            self.overflow += count
            return
        index = self._index(value)
        # Float rounding at exact bucket edges can land one off; clamp.
        if index >= self._n:
            index = self._n - 1
        self._counts[index] += count

    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return self._n

    def bucket_lower(self, index: int) -> float:
        """Inclusive lower edge of bucket ``index``."""
        return self.min_value * 10.0 ** (index / self.buckets_per_decade)

    def bucket_upper(self, index: int) -> float:
        """Exclusive upper edge of bucket ``index``."""
        return min(self.max_value,
                   self.min_value
                   * 10.0 ** ((index + 1) / self.buckets_per_decade))

    def total_count(self) -> int:
        return sum(self._counts) + self.underflow + self.overflow

    def sum(self) -> float:
        return self._sum

    def mean(self) -> float:
        total = self.total_count()
        return self._sum / total if total else 0.0

    def percentile(self, p: float) -> float:
        """Conservative percentile estimate (upper edge of the bucket).

        Underflow resolves to ``min_value``; overflow to the maximum
        recorded value.
        """
        if not 0 <= p <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100], got {p}")
        total = self.total_count()
        if total == 0:
            raise ConfigurationError("empty histogram has no percentiles")
        rank = p / 100.0 * total
        cumulative = self.underflow
        if rank <= cumulative:
            return self.min_value
        for index, count in enumerate(self._counts):
            cumulative += count
            if rank <= cumulative:
                return self.bucket_upper(index)
        return self._max

    # ------------------------------------------------------------------
    def _same_layout(self, other: "LogHistogram") -> bool:
        return (self.min_value == other.min_value
                and self.max_value == other.max_value
                and self.buckets_per_decade == other.buckets_per_decade)

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Absorb ``other`` (same bucket layout) into this histogram.

        Merging an *empty* histogram is a no-op regardless of layout:
        there is nothing to fold in, so nothing — not even the layout —
        gets checked or touched.
        """
        if other.total_count() == 0:
            return self
        if not self._same_layout(other):
            raise ConfigurationError(
                "cannot merge histograms with different bucket layouts"
            )
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self.underflow += other.underflow
        self.overflow += other.overflow
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready, mergeable view of the histogram state."""
        return {
            "min_value": self.min_value,
            "max_value": self.max_value,
            "buckets_per_decade": self.buckets_per_decade,
            "counts": list(self._counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "sum": self._sum,
            "count": self.total_count(),
            "observed_min": None if math.isinf(self._min) else self._min,
            "observed_max": None if math.isinf(self._max) else self._max,
        }

    def merge_snapshot(self, snap: Dict[str, object]) -> "LogHistogram":
        """Merge a :meth:`snapshot` dict without materializing counts
        into a second histogram first.

        The cross-process aggregation path: workers ship JSON-ready
        snapshots home and the parent folds them in.  Layout must
        match, exactly as for :meth:`merge` — and exactly as there, an
        empty snapshot merges as a no-op without a layout check.
        """
        if int(snap.get("count", 0)) == 0:
            return self
        if (self.min_value != snap["min_value"]
                or self.max_value != snap["max_value"]
                or self.buckets_per_decade != snap["buckets_per_decade"]):
            raise ConfigurationError(
                "cannot merge a snapshot with a different bucket layout"
            )
        counts = snap["counts"]
        if len(counts) != self._n:
            raise ConfigurationError("snapshot bucket count mismatch")
        for i, count in enumerate(counts):
            self._counts[i] += count
        self.underflow += int(snap["underflow"])
        self.overflow += int(snap["overflow"])
        self._sum += float(snap["sum"])
        if snap.get("observed_min") is not None:
            self._min = min(self._min, float(snap["observed_min"]))
        if snap.get("observed_max") is not None:
            self._max = max(self._max, float(snap["observed_max"]))
        return self

    @classmethod
    def from_snapshot(cls, snap: Dict[str, object]) -> "LogHistogram":
        hist = cls(snap["min_value"], snap["max_value"],
                   snap["buckets_per_decade"])
        counts = snap["counts"]
        if len(counts) != hist._n:
            raise ConfigurationError("snapshot bucket count mismatch")
        hist._counts = list(counts)
        hist.underflow = int(snap["underflow"])
        hist.overflow = int(snap["overflow"])
        hist._sum = float(snap["sum"])
        if snap.get("observed_min") is not None:
            hist._min = float(snap["observed_min"])
        if snap.get("observed_max") is not None:
            hist._max = float(snap["observed_max"])
        return hist


@dataclass
class ServerSeries:
    """Per-server state sampled at a fixed interval.

    ``queue_len`` and ``busy`` are (T, N) arrays; ``utilization`` and
    ``miss_ratio`` are cumulative-from-start per sample instant.
    """

    time: np.ndarray
    queue_len: np.ndarray
    busy: np.ndarray
    utilization: np.ndarray
    miss_ratio: np.ndarray

    def __len__(self) -> int:
        return int(self.time.size)

    @property
    def n_servers(self) -> int:
        return int(self.queue_len.shape[1]) if self.queue_len.ndim == 2 else 0

    def total_queued(self) -> np.ndarray:
        """Cluster-wide queued tasks per sample instant."""
        return self.queue_len.sum(axis=1)

    def busy_servers(self) -> np.ndarray:
        return self.busy.sum(axis=1)


class ServerSeriesBuilder:
    """Accumulates samples; :meth:`build` freezes them into arrays."""

    def __init__(self) -> None:
        self._time: List[float] = []
        self._queue: List[Sequence[int]] = []
        self._busy: List[Sequence[int]] = []
        self._util: List[Sequence[float]] = []
        self._miss: List[Sequence[float]] = []

    def __len__(self) -> int:
        return len(self._time)

    def sample(self, time: float, queue_len: Sequence[int],
               busy: Sequence[int], utilization: Sequence[float],
               miss_ratio: Sequence[float]) -> None:
        self._time.append(time)
        self._queue.append(list(queue_len))
        self._busy.append(list(busy))
        self._util.append(list(utilization))
        self._miss.append(list(miss_ratio))

    def build(self) -> ServerSeries:
        if not self._time:
            empty2 = np.zeros((0, 0))
            return ServerSeries(np.zeros(0), empty2.astype(np.int64),
                                empty2.astype(np.int64), empty2, empty2)
        return ServerSeries(
            time=np.asarray(self._time),
            queue_len=np.asarray(self._queue, dtype=np.int64),
            busy=np.asarray(self._busy, dtype=np.int64),
            utilization=np.asarray(self._util),
            miss_ratio=np.asarray(self._miss),
        )
