"""Typed task-lifecycle events.

Event types are plain strings (cheap to compare, JSON-friendly); the
full vocabulary is in :data:`EVENT_TYPES`.  A :class:`TraceEvent` is a
slotted record stamped with the simulation time and a monotonically
increasing sequence number — events emitted at equal sim-times keep
their emission order, which matches the engine's deterministic
tie-break (time, priority, insertion order).

All times are simulation milliseconds, like everywhere else in the
reproduction.  ``server_id`` is ``-1`` for events that happen at the
query handler rather than at a task server.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: A query reached the handler (before admission control).
QUERY_ARRIVE = "QUERY_ARRIVE"
#: Admission control turned the query away; ``extra["miss_ratio"]`` is
#: the controller's observed deadline-miss ratio at decision time.
QUERY_REJECTED = "QUERY_REJECTED"
#: A task entered a busy server's waiting line; ``extra`` carries the
#: queue length after insertion and the reorder depth (how many queued
#: tasks it jumped ahead of under the active policy).
TASK_ENQUEUE = "TASK_ENQUEUE"
#: A task left the waiting line and started service.  ``slack`` is
#: ``deadline - now`` — negative slack at dequeue is a deadline miss.
TASK_DEQUEUE = "TASK_DEQUEUE"
#: A task finished service; ``extra["duration"]`` is its service time.
TASK_COMPLETE = "TASK_COMPLETE"
#: A task was dequeued after its queuing deadline ``t_D`` (Eq. 6).
DEADLINE_MISS = "DEADLINE_MISS"
#: A server ran out of queued work.
SERVER_IDLE = "SERVER_IDLE"
#: An idle server started serving again.
SERVER_BUSY = "SERVER_BUSY"
#: The online-updating estimator absorbed a service-time observation.
CDF_UPDATE = "CDF_UPDATE"
#: A server crashed (fault injection).  With a retry policy active its
#: in-flight and queued tasks are killed and requeued; without one the
#: server pauses and its work waits out the downtime.
SERVER_FAIL = "SERVER_FAIL"
#: A crashed server came back and resumed serving.
SERVER_RECOVER = "SERVER_RECOVER"
#: A killed or timed-out task was requeued to a surviving server;
#: ``extra["attempt"]`` counts retries (0 for a dispatch-time redirect
#: away from a down server) and ``extra["reason"]`` is one of
#: ``"server_fail"``, ``"timeout"``, ``"redirect"``.  When every up
#: server's breaker was refusing work and the retry overrode breaker
#: state rather than fail the slot, ``extra["fallback"]`` is ``True``.
TASK_RETRY = "TASK_RETRY"
#: A hedged duplicate was launched; ``extra["hedge"]`` counts the
#: slot's hedges so far.
TASK_HEDGE = "TASK_HEDGE"
#: A task copy was cancelled: the losing copy of a hedged pair, a
#: timed-out queued copy, or a copy that died with its server while a
#: sibling copy stayed live (``extra["reason"]``).
TASK_CANCEL = "TASK_CANCEL"
#: A query was admitted *degraded*: only ``extra["dispatched"]`` of its
#: ``fanout`` tasks were sent (``extra["coverage"]`` is the fraction).
QUERY_DEGRADED = "QUERY_DEGRADED"
#: A shard was shed: its server's circuit breaker refused it and no
#: permitted replica was available.
TASK_SHED = "TASK_SHED"
#: A server's circuit breaker tripped open (consecutive queuing-deadline
#: misses, or the fault layer reported the server down).
BREAKER_OPEN = "BREAKER_OPEN"
#: A half-open breaker saw enough on-time probes and closed.
BREAKER_CLOSE = "BREAKER_CLOSE"
#: The drift monitor replaced a server's unloaded CDF estimate;
#: ``extra["ks_distance"]`` is the divergence that triggered it.
CDF_REBOOTSTRAP = "CDF_REBOOTSTRAP"
#: The replica layer withheld a hedge duplicate; ``extra["reason"]`` is
#: one of ``"budget"`` (redundancy budget exhausted), ``"pressure"``
#: (cluster-pressure EWMA over threshold), ``"score"`` (no server
#: scored well enough to plausibly win).  The hedge timer re-arms.
HEDGE_SUPPRESSED = "HEDGE_SUPPRESSED"
#: The adaptive hedge controller adjusted its delay factor;
#: ``extra["factor"]`` is the new base-delay multiplier and
#: ``extra["win_ratio"]`` the windowed duplicate-win ratio that drove
#: the move.
HEDGE_DELAY_UPDATE = "HEDGE_DELAY_UPDATE"
#: Terminal event: the query's last winning task finished, so the query
#: completed; ``extra["latency"]`` is its end-to-end response time.
QUERY_COMPLETE = "QUERY_COMPLETE"
#: Terminal event: the query permanently failed — a task slot exhausted
#: its retry budget or no surviving server could take it.  Emitted once,
#: at the first slot loss; the query's latency stays undefined.
QUERY_TIMEOUT = "QUERY_TIMEOUT"

#: Every recognised lifecycle event type.
EVENT_TYPES = frozenset({
    QUERY_ARRIVE,
    QUERY_REJECTED,
    TASK_ENQUEUE,
    TASK_DEQUEUE,
    TASK_COMPLETE,
    DEADLINE_MISS,
    SERVER_IDLE,
    SERVER_BUSY,
    CDF_UPDATE,
    SERVER_FAIL,
    SERVER_RECOVER,
    TASK_RETRY,
    TASK_HEDGE,
    TASK_CANCEL,
    QUERY_DEGRADED,
    TASK_SHED,
    BREAKER_OPEN,
    BREAKER_CLOSE,
    CDF_REBOOTSTRAP,
    HEDGE_SUPPRESSED,
    HEDGE_DELAY_UPDATE,
    QUERY_COMPLETE,
    QUERY_TIMEOUT,
})

_NAN = float("nan")


@dataclass(slots=True)
class TraceEvent:
    """One lifecycle event.

    ``seq`` disambiguates events at equal sim-times: it increases in
    emission order, which the simulators guarantee follows the
    deterministic event ordering of the DES kernel.
    """

    seq: int
    type: str
    time: float
    server_id: int = -1
    query_id: int = -1
    class_name: str = ""
    fanout: int = 0
    deadline: float = _NAN
    slack: float = _NAN
    extra: Optional[Dict[str, Any]] = field(default=None)

    def to_dict(self) -> Dict[str, Any]:
        """A compact JSON-ready dict (NaN fields omitted)."""
        out: Dict[str, Any] = {"seq": self.seq, "type": self.type,
                               "time": self.time}
        if self.server_id >= 0:
            out["server_id"] = self.server_id
        if self.query_id >= 0:
            out["query_id"] = self.query_id
        if self.class_name:
            out["class_name"] = self.class_name
        if self.fanout:
            out["fanout"] = self.fanout
        if not math.isnan(self.deadline):
            out["deadline"] = self.deadline
        if not math.isnan(self.slack):
            out["slack"] = self.slack
        if self.extra:
            out.update(self.extra)
        return out
