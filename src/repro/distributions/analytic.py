"""Closed-form distributions.

These serve three roles in the reproduction: arrival processes (the
exponential interarrivals of the Poisson process and the bounded-Pareto
interarrivals of the paper's bursty case), building blocks for synthetic
service-time models, and ground truth for property tests of the
empirical/piecewise machinery.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distributions.base import ArrayLike, Distribution, validate_probability
from repro.errors import DistributionError


class Deterministic(Distribution):
    """A point mass at ``value``."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise DistributionError(f"value must be >= 0, got {value}")
        self.value = float(value)

    def cdf(self, t: ArrayLike) -> ArrayLike:
        return np.where(np.asarray(t, dtype=float) >= self.value, 1.0, 0.0)

    def quantile(self, q: ArrayLike) -> ArrayLike:
        validate_probability(q)
        return np.full_like(np.asarray(q, dtype=float), self.value)

    def mean(self) -> float:
        return self.value


class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low < high:
            raise DistributionError(f"need 0 <= low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def cdf(self, t: ArrayLike) -> ArrayLike:
        t = np.asarray(t, dtype=float)
        return np.clip((t - self.low) / (self.high - self.low), 0.0, 1.0)

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = validate_probability(q)
        return self.low + q * (self.high - self.low)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


class Exponential(Distribution):
    """Exponential with the given ``rate`` (mean ``1/rate``)."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise DistributionError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        if mean <= 0:
            raise DistributionError(f"mean must be positive, got {mean}")
        return cls(1.0 / mean)

    def cdf(self, t: ArrayLike) -> ArrayLike:
        t = np.asarray(t, dtype=float)
        return np.where(t < 0, 0.0, 1.0 - np.exp(-self.rate * np.maximum(t, 0.0)))

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = validate_probability(q)
        with np.errstate(divide="ignore"):
            return -np.log1p(-q) / self.rate

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        return rng.exponential(1.0 / self.rate, size)

    def mean(self) -> float:
        return 1.0 / self.rate


class LogNormal(Distribution):
    """Lognormal with underlying normal parameters ``mu``, ``sigma``."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise DistributionError(f"sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def cdf(self, t: ArrayLike) -> ArrayLike:
        arr = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.zeros_like(arr)
        positive = arr > 0
        z = (np.log(arr[positive]) - self.mu) / (self.sigma * np.sqrt(2.0))
        out[positive] = 0.5 * (1.0 + _erf(z))
        scalar = np.isscalar(t) or np.asarray(t).ndim == 0
        return float(out[0]) if scalar else out

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = validate_probability(q)
        return np.exp(self.mu + self.sigma * _norm_ppf(q))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        return rng.lognormal(self.mu, self.sigma, size)

    def mean(self) -> float:
        return float(np.exp(self.mu + 0.5 * self.sigma**2))


class Weibull(Distribution):
    """Weibull with ``shape`` k and ``scale`` λ."""

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise DistributionError("shape and scale must be positive")
        self.shape = float(shape)
        self.scale = float(scale)

    def cdf(self, t: ArrayLike) -> ArrayLike:
        t = np.asarray(t, dtype=float)
        return np.where(
            t < 0, 0.0, 1.0 - np.exp(-np.power(np.maximum(t, 0.0) / self.scale,
                                               self.shape))
        )

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = validate_probability(q)
        return self.scale * np.power(-np.log1p(-q), 1.0 / self.shape)

    def mean(self) -> float:
        # Γ(1 + 1/k) via lgamma to stay scipy-free.
        import math

        return self.scale * math.gamma(1.0 + 1.0 / self.shape)


class Pareto(Distribution):
    """Pareto (Lomax-style, type I) with ``shape`` α and minimum ``xm``."""

    def __init__(self, shape: float, xm: float) -> None:
        if shape <= 0 or xm <= 0:
            raise DistributionError("shape and xm must be positive")
        self.shape = float(shape)
        self.xm = float(xm)

    def cdf(self, t: ArrayLike) -> ArrayLike:
        t = np.asarray(t, dtype=float)
        safe = np.maximum(t, self.xm)
        return np.where(t < self.xm, 0.0, 1.0 - np.power(self.xm / safe, self.shape))

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = validate_probability(q)
        with np.errstate(divide="ignore"):
            return self.xm / np.power(1.0 - q, 1.0 / self.shape)

    def mean(self) -> float:
        if self.shape <= 1:
            return float("inf")
        return self.shape * self.xm / (self.shape - 1.0)


class BoundedPareto(Distribution):
    """Pareto truncated to ``[low, high]``.

    Used for the bursty interarrival process in §IV.B (an unbounded
    Pareto with α ≤ 1 has no mean, so a load cannot be defined for it;
    the bounded variant is the standard fix).
    """

    def __init__(self, shape: float, low: float, high: float) -> None:
        if shape <= 0:
            raise DistributionError(f"shape must be positive, got {shape}")
        if not 0 < low < high:
            raise DistributionError(f"need 0 < low < high, got [{low}, {high}]")
        self.shape = float(shape)
        self.low = float(low)
        self.high = float(high)
        self._tail_low = self.low**-self.shape
        self._tail_high = self.high**-self.shape

    def cdf(self, t: ArrayLike) -> ArrayLike:
        t = np.asarray(t, dtype=float)
        clipped = np.clip(t, self.low, self.high)
        value = (self._tail_low - np.power(clipped, -self.shape)) / (
            self._tail_low - self._tail_high
        )
        return np.where(t < self.low, 0.0, np.where(t >= self.high, 1.0, value))

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = validate_probability(q)
        inner = self._tail_low - q * (self._tail_low - self._tail_high)
        return np.power(inner, -1.0 / self.shape)

    def mean(self) -> float:
        a, lo, hi = self.shape, self.low, self.high
        if a == 1.0:
            return float(np.log(hi / lo) / (1.0 / lo - 1.0 / hi))
        num = a / (1.0 - a) * (hi ** (1.0 - a) - lo ** (1.0 - a))
        den = lo ** (-a) - hi ** (-a)
        return float(num / den)

    @classmethod
    def from_mean(cls, mean: float, shape: float = 1.1,
                  spread: float = 1000.0) -> "BoundedPareto":
        """Construct a bounded Pareto with the requested mean.

        ``spread`` fixes ``high = spread * low``; ``low`` is then solved
        from the closed-form mean, which is proportional to ``low``.
        """
        probe = cls(shape, 1.0, spread)
        return cls(shape, mean / probe.mean(), spread * mean / probe.mean())


class HyperExponential(Distribution):
    """Mixture of exponentials: high-variance service times."""

    def __init__(self, probs: Sequence[float], rates: Sequence[float]) -> None:
        if len(probs) != len(rates) or not probs:
            raise DistributionError("probs and rates must be equal-length, non-empty")
        probs_arr = np.asarray(probs, dtype=float)
        rates_arr = np.asarray(rates, dtype=float)
        if np.any(probs_arr < 0) or not np.isclose(probs_arr.sum(), 1.0):
            raise DistributionError("probs must be non-negative and sum to 1")
        if np.any(rates_arr <= 0):
            raise DistributionError("rates must be positive")
        self.probs = probs_arr
        self.rates = rates_arr

    def cdf(self, t: ArrayLike) -> ArrayLike:
        t = np.asarray(t, dtype=float)[..., None]
        value = np.sum(self.probs * (1.0 - np.exp(-self.rates * np.maximum(t, 0.0))),
                       axis=-1)
        return np.where(np.asarray(t[..., 0]) < 0, 0.0, value)

    def quantile(self, q: ArrayLike) -> ArrayLike:
        from repro.distributions.base import bisect_quantile

        q_arr = validate_probability(q)
        hi = float(np.max(-np.log(1e-15) / self.rates.min()))
        scalar = np.isscalar(q) or q_arr.ndim == 0
        result = np.array(
            [bisect_quantile(self.cdf, float(qi), 0.0, hi)
             for qi in np.atleast_1d(q_arr)]
        )
        return float(result[0]) if scalar else result

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        n = 1 if size is None else size
        branch = rng.choice(len(self.probs), size=n, p=self.probs)
        draws = rng.exponential(1.0, n) / self.rates[branch]
        return float(draws[0]) if size is None else draws

    def mean(self) -> float:
        return float(np.sum(self.probs / self.rates))


class Mixture(Distribution):
    """Finite mixture of arbitrary component distributions."""

    def __init__(self, probs: Sequence[float],
                 components: Sequence[Distribution]) -> None:
        if len(probs) != len(components) or not probs:
            raise DistributionError("probs/components length mismatch")
        probs_arr = np.asarray(probs, dtype=float)
        if np.any(probs_arr < 0) or not np.isclose(probs_arr.sum(), 1.0):
            raise DistributionError("probs must be non-negative and sum to 1")
        self.probs = probs_arr
        self.components = list(components)

    def cdf(self, t: ArrayLike) -> ArrayLike:
        return sum(p * c.cdf(t) for p, c in zip(self.probs, self.components))

    def quantile(self, q: ArrayLike) -> ArrayLike:
        from repro.distributions.base import bisect_quantile

        q_arr = validate_probability(q)
        hi = max(float(np.asarray(c.quantile(1.0 - 1e-12)).max())
                 for c in self.components)
        scalar = np.isscalar(q) or q_arr.ndim == 0
        result = np.array(
            [bisect_quantile(self.cdf, float(qi), 0.0, hi * 1.001)
             for qi in np.atleast_1d(q_arr)]
        )
        return float(result[0]) if scalar else result

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        n = 1 if size is None else size
        branch = rng.choice(len(self.probs), size=n, p=self.probs)
        draws = np.empty(n)
        for idx, component in enumerate(self.components):
            mask = branch == idx
            count = int(mask.sum())
            if count:
                draws[mask] = np.asarray(component.sample(rng, count))
        return float(draws[0]) if size is None else draws

    def mean(self) -> float:
        return float(sum(p * c.mean() for p, c in zip(self.probs, self.components)))


class Shifted(Distribution):
    """``base + offset``: models a fixed network/dispatch delay on top of
    a service-time distribution (used by the SaS network model)."""

    def __init__(self, base: Distribution, offset: float) -> None:
        if offset < 0:
            raise DistributionError(f"offset must be >= 0, got {offset}")
        self.base = base
        self.offset = float(offset)

    def cdf(self, t: ArrayLike) -> ArrayLike:
        return self.base.cdf(np.asarray(t, dtype=float) - self.offset)

    def quantile(self, q: ArrayLike) -> ArrayLike:
        return self.base.quantile(q) + self.offset

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        return self.base.sample(rng, size) + self.offset

    def mean(self) -> float:
        return self.base.mean() + self.offset


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorized error function (Abramowitz–Stegun 7.1.26, |err|<1.5e-7)."""
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (0.254829592 + t * (-0.284496736 + t * (1.421413741
           + t * (-1.453152027 + t * 1.061405429))))
    return sign * (1.0 - poly * np.exp(-ax * ax))


def _norm_ppf(q: np.ndarray) -> np.ndarray:
    """Vectorized standard-normal inverse CDF (Acklam's algorithm)."""
    q = np.asarray(q, dtype=float)
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low, p_high = 0.02425, 1 - 0.02425
    out = np.empty_like(q)

    lower = (q > 0) & (q < p_low)
    ql = np.sqrt(-2 * np.log(q[lower])) if lower.any() else np.empty(0)
    out[lower] = (((((c[0] * ql + c[1]) * ql + c[2]) * ql + c[3]) * ql + c[4]) * ql
                  + c[5]) / ((((d[0] * ql + d[1]) * ql + d[2]) * ql + d[3]) * ql + 1)

    central = (q >= p_low) & (q <= p_high)
    qc = q[central] - 0.5
    r = qc * qc
    out[central] = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
                    + a[5]) * qc / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                    + b[4]) * r + 1)

    upper = (q > p_high) & (q < 1)
    qu = np.sqrt(-2 * np.log(1 - q[upper])) if upper.any() else np.empty(0)
    out[upper] = -(((((c[0] * qu + c[1]) * qu + c[2]) * qu + c[3]) * qu + c[4]) * qu
                   + c[5]) / ((((d[0] * qu + d[1]) * qu + d[2]) * qu + d[3]) * qu + 1)

    out[q == 0] = -np.inf
    out[q == 1] = np.inf
    return out
