"""Empirical CDFs built from observed samples.

The paper estimates the per-server unloaded task response-time CDFs
``F_l^u(t)`` by an offline profiling pass and keeps them fresh with an
online updating process fed by completed-task post-queuing times
(§III.B.2).  :class:`EmpiricalDistribution` is the static snapshot and
:class:`OnlineEmpiricalCDF` the updatable windowed estimator.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.distributions.base import ArrayLike, Distribution, validate_probability
from repro.errors import DistributionError


class EmpiricalDistribution(Distribution):
    """The ECDF of a fixed sample set with linear quantile interpolation.

    ``cdf`` is the right-continuous step ECDF; ``quantile`` uses numpy's
    ``linear`` interpolation so that ``quantile(cdf(x)) ≈ x`` away from
    ties.  ``sample`` bootstraps (draws uniformly from the samples).
    """

    def __init__(self, samples: Iterable[float]) -> None:
        arr = np.asarray(list(samples) if not isinstance(samples, np.ndarray)
                         else samples, dtype=float)
        if arr.size == 0:
            raise DistributionError("need at least one sample")
        if np.any(arr < 0):
            raise DistributionError("latency samples must be non-negative")
        if np.any(~np.isfinite(arr)):
            raise DistributionError("latency samples must be finite")
        self._sorted = np.sort(arr)

    @property
    def n(self) -> int:
        return int(self._sorted.size)

    @property
    def samples(self) -> np.ndarray:
        """The sorted sample array (read-only view)."""
        view = self._sorted.view()
        view.flags.writeable = False
        return view

    def cdf(self, t: ArrayLike) -> ArrayLike:
        positions = np.searchsorted(self._sorted, np.asarray(t, dtype=float),
                                    side="right")
        result = positions / self._sorted.size
        return float(result) if np.isscalar(t) else result

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = validate_probability(q)
        result = np.quantile(self._sorted, q)
        return float(result) if np.ndim(q) == 0 else result

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        picks = rng.integers(0, self._sorted.size, size=size)
        return self._sorted[picks]

    def mean(self) -> float:
        return float(self._sorted.mean())


class OnlineEmpiricalCDF(Distribution):
    """A windowed, updatable ECDF (the paper's online updating process).

    Keeps the most recent ``window`` observations in a ring buffer.
    The buffer is seeded from an initial (offline-estimated)
    distribution so deadlines can be computed from the very first query,
    exactly as §III.B.2 prescribes.  Quantile/CDF queries sort lazily
    and cache until the next update.
    """

    def __init__(
        self,
        initial: Optional[Distribution] = None,
        window: int = 10_000,
        seed_samples: int = 1_000,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if window < 2:
            raise DistributionError(f"window must be >= 2, got {window}")
        self._window = window
        self._buffer = np.empty(window, dtype=float)
        self._count = 0
        self._cursor = 0
        self._updates = 0
        self._sorted_cache: Optional[np.ndarray] = None
        if initial is not None:
            n_seed = min(seed_samples, window)
            rng = rng if rng is not None else np.random.default_rng(0)
            seeds = np.asarray(initial.sample(rng, n_seed), dtype=float)
            self._buffer[:n_seed] = seeds
            self._count = n_seed
            self._cursor = n_seed % window

    @property
    def n(self) -> int:
        """Number of observations currently in the window."""
        return self._count

    @property
    def total_updates(self) -> int:
        """Observations recorded via :meth:`update` since construction."""
        return self._updates

    def update(self, value: float) -> None:
        """Record one completed-task post-queuing time."""
        if value < 0 or not np.isfinite(value):
            raise DistributionError(f"invalid observation {value}")
        self._buffer[self._cursor] = value
        self._cursor = (self._cursor + 1) % self._window
        self._count = min(self._count + 1, self._window)
        self._updates += 1
        self._sorted_cache = None

    def update_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.update(value)

    def _sorted(self) -> np.ndarray:
        if self._count == 0:
            raise DistributionError("no observations yet")
        if self._sorted_cache is None:
            self._sorted_cache = np.sort(self._buffer[: self._count])
        return self._sorted_cache

    def cdf(self, t: ArrayLike) -> ArrayLike:
        data = self._sorted()
        positions = np.searchsorted(data, np.asarray(t, dtype=float), side="right")
        result = positions / data.size
        return float(result) if np.isscalar(t) else result

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = validate_probability(q)
        result = np.quantile(self._sorted(), q)
        return float(result) if np.ndim(q) == 0 else result

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        data = self._sorted()
        picks = rng.integers(0, data.size, size=size)
        return data[picks]

    def mean(self) -> float:
        return float(self._sorted().mean())

    def snapshot(self) -> EmpiricalDistribution:
        """Freeze the current window into a static distribution."""
        return EmpiricalDistribution(self._sorted().copy())


def from_quantile_table(quantiles: Sequence[float],
                        values: Sequence[float]) -> EmpiricalDistribution:
    """Build an empirical distribution whose quantiles interpolate a
    published table — a convenience used in tests to cross-check the
    piecewise-linear models."""
    q = np.asarray(quantiles, dtype=float)
    v = np.asarray(values, dtype=float)
    if q.size != v.size or q.size < 2:
        raise DistributionError("need matching quantile/value arrays of size >= 2")
    grid = np.linspace(0.0, 1.0, 10_001)
    return EmpiricalDistribution(np.interp(grid, q, v))
