"""Fit analytic distributions to latency samples.

The paper's offline estimation step profiles a task server and builds
``F(t)`` from samples.  An :class:`~repro.distributions.EmpiricalDistribution`
is the non-parametric answer; these fitters provide the parametric
alternative — useful when samples are scarce (an empirical p99 needs
hundreds of points; a fitted lognormal extrapolates from dozens) and
for generating compact, shareable models of measured workloads.

All fitters use closed-form moment/quantile matching (no optimizer
dependency); :func:`fit_best` tries every family and picks the one with
the smallest Kolmogorov–Smirnov distance to the ECDF.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple, Union

import numpy as np

from repro.distributions.analytic import (
    BoundedPareto,
    Exponential,
    LogNormal,
    Uniform,
    Weibull,
)
from repro.distributions.base import Distribution
from repro.errors import DistributionError


def _as_samples(values: Union[Sequence[float], np.ndarray]) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        raise DistributionError("need at least two samples to fit")
    if np.any(arr < 0) or np.any(~np.isfinite(arr)):
        raise DistributionError("samples must be finite and non-negative")
    return arr


def fit_exponential(samples: Union[Sequence[float], np.ndarray]) -> Exponential:
    """Maximum-likelihood exponential: rate = 1 / mean."""
    arr = _as_samples(samples)
    mean = float(arr.mean())
    if mean <= 0:
        raise DistributionError("samples have zero mean")
    return Exponential(1.0 / mean)


def fit_lognormal(samples: Union[Sequence[float], np.ndarray]) -> LogNormal:
    """Maximum-likelihood lognormal on the log-samples."""
    arr = _as_samples(samples)
    if np.any(arr <= 0):
        raise DistributionError("lognormal requires strictly positive samples")
    logs = np.log(arr)
    sigma = float(logs.std(ddof=1))
    if sigma <= 0:
        raise DistributionError("samples are degenerate (zero variance)")
    return LogNormal(float(logs.mean()), sigma)


def fit_uniform(samples: Union[Sequence[float], np.ndarray]) -> Uniform:
    """Uniform over the sample range (slightly widened to cover ties)."""
    arr = _as_samples(samples)
    low, high = float(arr.min()), float(arr.max())
    if high <= low:
        raise DistributionError("samples are degenerate (zero range)")
    return Uniform(low, high)


def fit_weibull(samples: Union[Sequence[float], np.ndarray]) -> Weibull:
    """Weibull via quantile matching at the 50th/90th percentiles.

    Using ``F(t) = 1 − exp(−(t/λ)^k)``, two quantiles give two
    equations; the ratio eliminates λ and yields a closed form for k.
    """
    arr = _as_samples(samples)
    q50, q90 = np.percentile(arr, [50.0, 90.0])
    if q50 <= 0 or q90 <= q50:
        raise DistributionError("samples unsuitable for Weibull fitting")
    log_ratio = np.log(np.log(1 / 0.1) / np.log(1 / 0.5))
    shape = float(log_ratio / np.log(q90 / q50))
    if shape <= 0:
        raise DistributionError("computed non-positive Weibull shape")
    scale = float(q50 / np.log(2.0) ** (1.0 / shape))
    return Weibull(shape, scale)


def fit_bounded_pareto(
    samples: Union[Sequence[float], np.ndarray],
    shape: float = 1.1,
) -> BoundedPareto:
    """Bounded Pareto with fixed shape, bounds from the sample range."""
    arr = _as_samples(samples)
    low, high = float(arr.min()), float(arr.max())
    if low <= 0 or high <= low:
        raise DistributionError("samples unsuitable for bounded Pareto")
    return BoundedPareto(shape, low, high)


#: The families :func:`fit_best` considers, by name.
FITTERS: Dict[str, Callable[[np.ndarray], Distribution]] = {
    "exponential": fit_exponential,
    "lognormal": fit_lognormal,
    "weibull": fit_weibull,
    "uniform": fit_uniform,
    "bounded-pareto": fit_bounded_pareto,
}


def ks_distance(dist: Distribution,
                samples: Union[Sequence[float], np.ndarray]) -> float:
    """Kolmogorov–Smirnov distance between a model and the ECDF."""
    arr = np.sort(_as_samples(samples))
    n = arr.size
    model = np.asarray(dist.cdf(arr), dtype=float)
    upper = np.arange(1, n + 1) / n
    lower = np.arange(0, n) / n
    return float(np.max(np.maximum(np.abs(model - upper),
                                   np.abs(model - lower))))


def fit_best(
    samples: Union[Sequence[float], np.ndarray],
    families: Sequence[str] = ("exponential", "lognormal", "weibull",
                               "uniform"),
) -> Tuple[str, Distribution, float]:
    """Fit every family and return (name, model, KS distance) of the best.

    Families whose fitters reject the samples (e.g. lognormal on zeros)
    are skipped; at least one family must succeed.
    """
    arr = _as_samples(samples)
    best: Tuple[str, Distribution, float] = ("", None, np.inf)  # type: ignore
    for name in families:
        try:
            fitter = FITTERS[name]
        except KeyError:
            raise DistributionError(
                f"unknown family {name!r}; known: {sorted(FITTERS)}"
            ) from None
        try:
            model = fitter(arr)
        except DistributionError:
            continue
        distance = ks_distance(model, arr)
        if distance < best[2]:
            best = (name, model, distance)
    if best[1] is None:
        raise DistributionError("no family could fit these samples")
    return best
