"""Numerical convolution of independent latencies (paper Eq. 7).

A request is ``M`` queries issued sequentially, so the unloaded request
latency is the *sum* of the unloaded query latencies and its CDF the
convolution of theirs.  The paper notes ``x_p^{R,SLO} <=
Σ x_p^{SLO,i}`` makes naive per-query decomposition pessimistic and
derives the additive budget ``T_b^R = x_p^{R,SLO} - x_p^{R,u}``; this
module computes ``x_p^{R,u}`` by discretizing each component onto a
uniform grid and convolving the densities with FFTs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distributions.base import ArrayLike, Distribution, validate_probability
from repro.errors import DistributionError


class SumOfIndependent(Distribution):
    """The distribution of a sum of independent latencies.

    The component CDFs are discretized to probability-mass vectors on a
    shared grid of ``resolution`` cells covering ``[0, upper]`` where
    ``upper`` is the sum of component maxima (taken at the
    ``1 - tail_epsilon`` quantile for unbounded components).  Densities
    are convolved via real FFTs; the result supports ``cdf``,
    ``quantile`` and ``mean`` like any other distribution.
    """

    def __init__(
        self,
        components: Sequence[Distribution],
        resolution: int = 4096,
        tail_epsilon: float = 1e-9,
    ) -> None:
        if not components:
            raise DistributionError("need at least one component")
        if resolution < 16:
            raise DistributionError(f"resolution too small: {resolution}")
        self.components = list(components)
        uppers = [float(c.quantile(1.0 - tail_epsilon)) for c in self.components]
        upper = sum(uppers)
        if upper <= 0:
            raise DistributionError("components have zero total support")
        # The sum's support is [sum of minima, sum of maxima]; grid the
        # whole of [0, upper] for simplicity.
        self._dt = upper / resolution
        n_total = resolution * len(self.components)
        grid = np.arange(resolution + 1) * self._dt

        # Probability mass per cell from CDF differences.
        pmf = None
        for component in self.components:
            cell_mass = np.diff(np.asarray(component.cdf(grid), dtype=float))
            residual = 1.0 - cell_mass.sum()
            if residual > 0:
                cell_mass[-1] += residual  # fold the far tail into the last cell
            pmf = cell_mass if pmf is None else _fft_convolve(pmf, cell_mass)

        # pmf now has length <= n_total + 1; build the CDF on its grid.
        pmf = np.clip(pmf, 0.0, None)
        pmf /= pmf.sum()
        self._pmf = pmf
        self._grid = np.arange(1, pmf.size + 1) * self._dt
        self._cdf = np.cumsum(pmf)
        self._cdf[-1] = 1.0
        self._n_total = n_total

    def cdf(self, t: ArrayLike) -> ArrayLike:
        result = np.interp(np.asarray(t, dtype=float), self._grid, self._cdf,
                           left=0.0, right=1.0)
        return float(result) if np.isscalar(t) else result

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = validate_probability(q)
        result = np.interp(q, self._cdf, self._grid)
        return float(result) if np.ndim(q) == 0 else result

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        # Sampling a sum exactly: draw each component independently.
        n = 1 if size is None else size
        total = np.zeros(n)
        for component in self.components:
            total = total + np.asarray(component.sample(rng, n), dtype=float)
        return float(total[0]) if size is None else total

    def mean(self) -> float:
        return float(sum(c.mean() for c in self.components))


def _fft_convolve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Linear convolution of two PMF vectors via real FFT."""
    n = a.size + b.size - 1
    n_fft = 1 << (n - 1).bit_length()
    spectrum = np.fft.rfft(a, n_fft) * np.fft.rfft(b, n_fft)
    return np.fft.irfft(spectrum, n_fft)[:n]
