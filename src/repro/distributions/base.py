"""Distribution protocol and shared numeric helpers."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import DistributionError

ArrayLike = Union[float, np.ndarray]


class Distribution:
    """A one-dimensional distribution of a non-negative latency.

    Concrete subclasses must implement :meth:`cdf` and :meth:`quantile`;
    sampling defaults to inverse-transform, and :meth:`mean` defaults to
    numerical integration of the quantile function, both of which
    subclasses override when a closed form exists.
    """

    def cdf(self, t: ArrayLike) -> ArrayLike:
        """``P(X <= t)``; vectorized over numpy arrays."""
        raise NotImplementedError

    def quantile(self, q: ArrayLike) -> ArrayLike:
        """Inverse CDF; ``q`` in [0, 1], vectorized."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        """Draw samples via inverse transform (overridable)."""
        return self.quantile(rng.random(size))

    def mean(self) -> float:
        """E[X], by default ``∫₀¹ quantile(u) du`` on a fine grid."""
        # Midpoint rule over 20k cells is accurate to ~1e-4 relative for
        # the smooth CDFs used here and avoids the open endpoints.
        u = (np.arange(20_000) + 0.5) / 20_000
        return float(np.mean(self.quantile(u)))

    def percentile(self, p: float) -> float:
        """Convenience wrapper: quantile at the ``p``-th *percentile*."""
        if not 0 <= p <= 100:
            raise DistributionError(f"percentile must be in [0, 100], got {p}")
        return float(self.quantile(p / 100.0))

    def support(self) -> tuple:
        """(lower, upper) bounds of the support, possibly infinite."""
        return (float(self.quantile(0.0)), float(self.quantile(1.0)))


def validate_probability(q: ArrayLike, name: str = "q") -> np.ndarray:
    """Check that all values lie in [0, 1] and return them as an array."""
    arr = np.asarray(q, dtype=float)
    if np.any(arr < 0.0) or np.any(arr > 1.0):
        raise DistributionError(f"{name} must be within [0, 1]")
    return arr


def bisect_quantile(
    cdf,
    q: float,
    lo: float,
    hi: float,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Invert a monotone CDF by bisection on a known bracket.

    Used for distributions whose inverse has no closed form (products of
    heterogeneous CDFs, numerical convolutions).
    """
    if not 0.0 <= q <= 1.0:
        raise DistributionError(f"q must be in [0, 1], got {q}")
    f_lo, f_hi = cdf(lo), cdf(hi)
    if q <= f_lo:
        return lo
    if q >= f_hi:
        return hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)


class SampleStream:
    """Block-buffered sampler for the simulator's hot loop.

    Drawing one variate at a time through the full ``Distribution``
    machinery costs a few microseconds each; drawing blocks of a few
    thousand through numpy amortizes that to nanoseconds.  Each stream
    owns its RNG so distinct model components (arrivals, fanout,
    service) stay on independent, reproducible streams.
    """

    __slots__ = ("_dist", "_rng", "_block", "_buffer", "_index")

    def __init__(
        self,
        dist: Distribution,
        rng: np.random.Generator,
        block: int = 8192,
    ) -> None:
        if block < 1:
            raise DistributionError(f"block must be >= 1, got {block}")
        self._dist = dist
        self._rng = rng
        self._block = block
        self._buffer = np.empty(0)
        self._index = 0

    def next(self) -> float:
        if self._index >= len(self._buffer):
            self._buffer = np.asarray(
                self._dist.sample(self._rng, self._block), dtype=float
            )
            self._index = 0
        value = self._buffer[self._index]
        self._index += 1
        return float(value)

    def drain_block(self) -> list:
        """Refill and return one full block as a list of Python floats.

        Hot-loop support: the simulation kernel indexes the returned
        list directly instead of paying a :meth:`next` call per draw.
        Draw order is identical to ``block`` consecutive :meth:`next`
        calls, and the stream's own cursor is advanced past the block so
        the two styles can be mixed without replaying variates.
        """
        buffer = np.asarray(
            self._dist.sample(self._rng, self._block), dtype=float
        )
        self._buffer = buffer
        self._index = len(buffer)
        return buffer.tolist()

    def __iter__(self):
        while True:
            yield self.next()
