"""Piecewise-linear CDFs.

The Tailbench service-time models (paper Fig. 3 / Table II) are
reconstructed as piecewise-linear CDFs through published anchor
quantiles; see :mod:`repro.workloads.tailbench`.  A piecewise-linear
CDF has exact closed forms for everything the scheduler needs —
inverse, mean, vectorized sampling — which keeps the hot simulation
loop fast.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import ArrayLike, Distribution, validate_probability
from repro.errors import DistributionError


class PiecewiseLinearCDF(Distribution):
    """A distribution defined by CDF knots ``(t_i, F_i)``.

    Between knots the CDF is linear (density is uniform per segment).
    The knot list must start at probability 0 and end at probability 1,
    with strictly increasing times and non-decreasing probabilities.
    """

    def __init__(self, knots: Sequence[Tuple[float, float]]) -> None:
        if len(knots) < 2:
            raise DistributionError("need at least two knots")
        times = np.asarray([k[0] for k in knots], dtype=float)
        probs = np.asarray([k[1] for k in knots], dtype=float)
        if np.any(np.diff(times) <= 0):
            raise DistributionError("knot times must be strictly increasing")
        if np.any(np.diff(probs) < 0):
            raise DistributionError("knot probabilities must be non-decreasing")
        if not np.isclose(probs[0], 0.0) or not np.isclose(probs[-1], 1.0):
            raise DistributionError("knots must span probabilities 0 to 1")
        if times[0] < 0:
            raise DistributionError("latency support must be non-negative")
        self._t = times
        self._f = probs
        # Collapse duplicate probabilities for the inverse: np.interp on a
        # flat region would otherwise return the left edge, whereas the
        # right edge of a flat CDF region is the conventional inverse.
        keep = np.concatenate([np.diff(probs) > 0, [True]])
        self._inv_f = probs[keep]
        self._inv_t = times[keep]
        if self._inv_f[0] > 0.0:
            self._inv_f = np.concatenate([[0.0], self._inv_f])
            self._inv_t = np.concatenate([[times[0]], self._inv_t])

    @property
    def knots(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(zip(self._t.tolist(), self._f.tolist()))

    def cdf(self, t: ArrayLike) -> ArrayLike:
        result = np.interp(np.asarray(t, dtype=float), self._t, self._f,
                           left=0.0, right=1.0)
        return float(result) if np.isscalar(t) else result

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = validate_probability(q)
        result = np.interp(q, self._inv_f, self._inv_t)
        return float(result) if np.ndim(q) == 0 else result

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        return self.quantile(rng.random(size))

    def mean(self) -> float:
        # E[X] = Σ segments (F_{i+1} - F_i) * (t_i + t_{i+1}) / 2 since the
        # density is uniform on each segment.
        seg_mass = np.diff(self._f)
        seg_mid = 0.5 * (self._t[:-1] + self._t[1:])
        return float(np.sum(seg_mass * seg_mid))

    def variance(self) -> float:
        seg_mass = np.diff(self._f)
        a, b = self._t[:-1], self._t[1:]
        second_moment = np.sum(seg_mass * (a * a + a * b + b * b) / 3.0)
        mu = self.mean()
        return float(second_moment - mu * mu)

    def support(self) -> Tuple[float, float]:
        return (float(self._t[0]), float(self._t[-1]))

    def scaled(self, factor: float) -> "PiecewiseLinearCDF":
        """A copy with all latencies multiplied by ``factor`` (used to
        model faster/slower nodes in the heterogeneous SaS testbed)."""
        if factor <= 0:
            raise DistributionError(f"factor must be positive, got {factor}")
        return PiecewiseLinearCDF(
            [(t * factor, f) for t, f in zip(self._t, self._f)]
        )


def calibrated_piecewise_cdf(
    body_anchors: Sequence[Tuple[float, float]],
    fixed_anchors: Sequence[Tuple[float, float]],
    minimum: float,
    maximum: float,
    target_mean: float,
) -> PiecewiseLinearCDF:
    """A piecewise CDF through published quantiles with an exact mean.

    ``fixed_anchors`` are ``(probability, latency)`` points that must
    not move (published tail statistics); ``body_anchors`` are
    approximate shape points below them whose latencies (and the support
    ``minimum``) are scaled by a common factor, found by bisection, so
    that the distribution's exact mean equals ``target_mean``.  This is
    how the Tailbench workloads (Table II) and the SaS cluster models
    (§IV.E) are reconstructed from the paper's numbers.
    """
    if not body_anchors or not fixed_anchors:
        raise DistributionError("need both body and fixed anchors")
    first_fixed_time = fixed_anchors[0][1]
    body_max = max(t for _, t in body_anchors)
    alpha_lo = 0.05
    alpha_hi = 0.999 * first_fixed_time / body_max

    def build(alpha: float) -> PiecewiseLinearCDF:
        anchors = [(p, t * alpha) for p, t in body_anchors] + list(fixed_anchors)
        return from_anchors(anchors, minimum * alpha, maximum)

    mean_lo = build(alpha_lo).mean()
    mean_hi = build(alpha_hi).mean()
    if not mean_lo <= target_mean <= mean_hi:
        raise DistributionError(
            f"target mean {target_mean} outside calibratable range "
            f"[{mean_lo:.4f}, {mean_hi:.4f}]"
        )
    for _ in range(100):
        alpha = 0.5 * (alpha_lo + alpha_hi)
        if build(alpha).mean() < target_mean:
            alpha_lo = alpha
        else:
            alpha_hi = alpha
    return build(0.5 * (alpha_lo + alpha_hi))


def from_anchors(
    anchors: Sequence[Tuple[float, float]],
    minimum: float,
    maximum: float,
) -> PiecewiseLinearCDF:
    """Build a CDF through ``(probability, latency)`` anchors.

    ``minimum``/``maximum`` close the support at probabilities 0 and 1.
    Anchors must be sorted by probability.  This is the constructor used
    by the Tailbench reconstructions: the anchors are the quantiles the
    paper publishes (median-ish shape points from Fig. 3 plus the tail
    points implied by Table II).
    """
    probs = [0.0] + [a[0] for a in anchors] + [1.0]
    times = [minimum] + [a[1] for a in anchors] + [maximum]
    if any(p2 <= p1 for p1, p2 in zip(probs, probs[1:])):
        raise DistributionError("anchor probabilities must be strictly increasing "
                                "and inside (0, 1)")
    return PiecewiseLinearCDF(list(zip(times, probs)))
