"""Order statistics of parallel task latencies (paper Eq. 1–2).

A query with fanout ``k`` completes when its slowest task does, so the
unloaded query latency is the maximum of ``k`` independent task
latencies:

    F_Q^u(t) = Π_{i=1..k} F_i^u(t)                         (Eq. 1)
    x_p^u(k) = (F_Q^u)^{-1}(p / 100)                        (Eq. 2)

For the homogeneous case (all servers share one CDF ``F``) the inverse
has the closed form ``F^{-1}((p/100)^{1/k})``, which is what the
simulation experiments use.  The heterogeneous SaS case needs the
general product inverted numerically.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distributions.base import (
    ArrayLike,
    Distribution,
    bisect_quantile,
    validate_probability,
)
from repro.errors import DistributionError


def iid_max_cdf(dist: Distribution, k: int, t: ArrayLike) -> ArrayLike:
    """``P(max of k i.i.d. draws <= t) = F(t)^k``."""
    if k < 1:
        raise DistributionError(f"k must be >= 1, got {k}")
    return np.power(dist.cdf(t), k)


def iid_max_quantile(dist: Distribution, k: int, q: float) -> float:
    """Closed-form inverse of the i.i.d. max CDF: ``F^{-1}(q^{1/k})``.

    This is exactly the paper's ``x_p^u(k_f)`` for a homogeneous
    cluster: ``iid_max_quantile(F, k_f, p/100)``.
    """
    if k < 1:
        raise DistributionError(f"k must be >= 1, got {k}")
    if not 0.0 <= q <= 1.0:
        raise DistributionError(f"q must be in [0, 1], got {q}")
    return float(dist.quantile(q ** (1.0 / k)))


class MaxOfIID(Distribution):
    """The distribution of the max of ``k`` i.i.d. draws from ``base``."""

    def __init__(self, base: Distribution, k: int) -> None:
        if k < 1:
            raise DistributionError(f"k must be >= 1, got {k}")
        self.base = base
        self.k = int(k)

    def cdf(self, t: ArrayLike) -> ArrayLike:
        return np.power(self.base.cdf(t), self.k)

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q = validate_probability(q)
        return self.base.quantile(np.power(q, 1.0 / self.k))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        # Inverse transform on the max CDF is one draw, not k.
        return self.quantile(rng.random(size))


class MaxOfIndependent(Distribution):
    """The max of independent, *non-identical* latencies (SaS case).

    ``cdf`` is the product of the component CDFs; ``quantile`` inverts
    it by bisection on a bracket derived from component quantiles.
    """

    def __init__(self, components: Sequence[Distribution]) -> None:
        if not components:
            raise DistributionError("need at least one component")
        self.components = list(components)

    def cdf(self, t: ArrayLike) -> ArrayLike:
        result = np.ones_like(np.asarray(t, dtype=float))
        for component in self.components:
            result = result * np.asarray(component.cdf(t), dtype=float)
        return float(result) if np.isscalar(t) else result

    def _upper_bracket(self, q: float) -> float:
        # If X_i's q^{1/n}-quantile bounds every component from above,
        # the product CDF there is at least q; expand geometrically in
        # case a component quantile is capped by numerical flatness.
        n = len(self.components)
        q_hi = q ** (1.0 / n) if q > 0 else 0.0
        hi = max(float(c.quantile(q_hi)) for c in self.components)
        hi = max(hi, 1e-9)
        for _ in range(200):
            if self.cdf(hi) >= q:
                break
            hi *= 2.0
        return hi

    def quantile(self, q: ArrayLike) -> ArrayLike:
        q_arr = validate_probability(q)
        scalar = np.ndim(q) == 0

        def invert(qi: float) -> float:
            if qi == 0.0:
                return min(float(c.quantile(0.0)) for c in self.components)
            return bisect_quantile(self.cdf, qi, 0.0, self._upper_bracket(qi))

        result = np.array([invert(float(qi)) for qi in np.atleast_1d(q_arr)])
        return float(result[0]) if scalar else result

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> ArrayLike:
        draws = np.stack(
            [np.asarray(c.sample(rng, size if size is not None else 1))
             for c in self.components]
        )
        result = draws.max(axis=0)
        return float(result[0]) if size is None else result


class QuantileInversionMemo:
    """Version-stamped bounded memo for quantile-inversion results.

    The deadline estimator evaluates ``x_p^u`` (Eq. 2) and the derived
    budgets ``T_b`` (Eq. 5) once per distinct key and serves repeats
    from here.  Every entry is stamped with the memo's version at
    insertion and :meth:`get` refuses entries from older versions, so a
    consumer that bumps the version on any estimate change (online-CDF
    refresh, :meth:`~repro.core.deadline.DeadlineEstimator.rebootstrap`)
    is structurally unable to serve a stale inversion — even if a clear
    were forgotten.  :meth:`invalidate` does both: bumps the version and
    drops the entries.

    The capacity bound works by wholesale clear, not recency tracking:
    keys recur heavily or not at all (fanouts and class signatures),
    so an LRU's bookkeeping would cost more than the rare re-inversion.
    """

    __slots__ = ("_entries", "_max_entries", "_version")

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise DistributionError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._entries: dict = {}
        self._max_entries = int(max_entries)
        self._version = 0

    @property
    def version(self) -> int:
        return self._version

    def invalidate(self) -> None:
        """Bump the version and drop every entry."""
        self._version += 1
        self._entries.clear()

    def get(self, key) -> Optional[float]:
        entry = self._entries.get(key)
        if entry is None or entry[0] != self._version:
            return None
        return entry[1]

    def put(self, key, value: float) -> None:
        if len(self._entries) >= self._max_entries:
            self._entries.clear()
        self._entries[key] = (self._version, value)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def unloaded_query_tail(
    server_cdfs: Sequence[Distribution],
    percentile: float,
) -> float:
    """``x_p^u`` for a query whose tasks go to the given servers.

    One call evaluates Eq. 1 + Eq. 2 for an arbitrary (possibly
    heterogeneous) server selection.  With a single distinct CDF the
    homogeneous closed form is used.
    """
    if not server_cdfs:
        raise DistributionError("a query must touch at least one server")
    if not 0 < percentile < 100:
        raise DistributionError(f"percentile must be in (0, 100), got {percentile}")
    q = percentile / 100.0
    first = server_cdfs[0]
    if all(c is first for c in server_cdfs):
        return iid_max_quantile(first, len(server_cdfs), q)
    return float(MaxOfIndependent(server_cdfs).quantile(q))
