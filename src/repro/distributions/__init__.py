"""Probability-distribution substrate for TailGuard.

TailGuard's deadline estimation is CDF arithmetic: the unloaded query
latency CDF is the *product* of per-server task CDFs (paper Eq. 1), the
unloaded query tail is that product's inverse at the SLO percentile
(Eq. 2), and the request-level extension needs the *convolution* of
query-latency CDFs (Eq. 7).  This package provides:

* analytic distributions (exponential, Pareto, lognormal, ...);
* empirical CDFs built from samples, including an online-updating
  variant for the paper's §III.B.2 updating process;
* piecewise-linear CDFs used to reconstruct the Tailbench workloads
  from their published quantiles;
* order statistics: max of i.i.d. and of independent non-identical
  variables;
* numerical convolution of independent distributions.
"""

from repro.distributions.base import Distribution, SampleStream
from repro.distributions.analytic import (
    BoundedPareto,
    Deterministic,
    Exponential,
    HyperExponential,
    LogNormal,
    Mixture,
    Pareto,
    Shifted,
    Uniform,
    Weibull,
)
from repro.distributions.empirical import EmpiricalDistribution, OnlineEmpiricalCDF
from repro.distributions.piecewise import PiecewiseLinearCDF
from repro.distributions.order_statistics import (
    MaxOfIID,
    MaxOfIndependent,
    QuantileInversionMemo,
    iid_max_cdf,
    iid_max_quantile,
)
from repro.distributions.convolution import SumOfIndependent
from repro.distributions.fitting import FITTERS, fit_best, ks_distance

__all__ = [
    "BoundedPareto",
    "Deterministic",
    "Distribution",
    "EmpiricalDistribution",
    "FITTERS",
    "Exponential",
    "HyperExponential",
    "LogNormal",
    "MaxOfIID",
    "MaxOfIndependent",
    "Mixture",
    "OnlineEmpiricalCDF",
    "Pareto",
    "PiecewiseLinearCDF",
    "QuantileInversionMemo",
    "SampleStream",
    "Shifted",
    "SumOfIndependent",
    "Uniform",
    "Weibull",
    "fit_best",
    "iid_max_cdf",
    "iid_max_quantile",
    "ks_distance",
]
