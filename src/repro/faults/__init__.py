"""Fault injection and tail-cutting redundancy (crash/recovery + mitigation).

The paper's model assumes servers never fail; production deployments
cannot.  This package adds the robustness layer:

* :mod:`repro.faults.plan` — :class:`FaultPlan` (crash windows, seeded
  MTBF/MTTR processes, straggler episodes) and the mitigations
  (:class:`RetryPolicy`, :class:`HedgePolicy`), plus the deterministic
  materialization both simulation paths replay;
* :mod:`repro.faults.kernel` — :class:`FaultManager` /
  :func:`install_faults`, the DES-kernel wiring (the optimized fast
  path lives in :mod:`repro.cluster.faultsim` and is selected
  automatically by :func:`repro.cluster.simulation.simulate` whenever
  ``config.faults`` is active).

Both paths implement one semantics contract (``docs/faults.md``); an
integration test asserts identical per-query latencies on a shared
trace with a non-trivial plan active.
"""

from repro.faults.plan import (
    CrashProcess,
    Downtime,
    FAIL,
    FaultPlan,
    HedgePolicy,
    MaterializedFaults,
    RECOVER,
    RetryPolicy,
    StragglerEpisode,
    fault_horizon,
    pick_server,
)
from repro.faults.kernel import FaultManager, install_faults

__all__ = [
    "CrashProcess",
    "Downtime",
    "FAIL",
    "FaultManager",
    "FaultPlan",
    "HedgePolicy",
    "MaterializedFaults",
    "RECOVER",
    "RetryPolicy",
    "StragglerEpisode",
    "fault_horizon",
    "install_faults",
    "pick_server",
]
