"""Fault injection for the composable DES-kernel path.

The :class:`FaultManager` drives a :class:`~repro.core.server.TaskServer`
fleet through a :class:`~repro.faults.plan.FaultPlan`: it replays the
materialized crash transitions as a kernel process, redirects dispatch
away from down servers (kill mode), requeues killed and timed-out task
copies, launches hedged duplicates, and filters stale completions so the
query handler only ever merges each slot's *winning* copy.

The semantics contract (shared with the fast path in
:mod:`repro.cluster.faultsim`) is documented in ``docs/faults.md``; an
integration test asserts both paths produce identical per-query
latencies on a shared trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.server import TaskServer
from repro.errors import ConfigurationError
from repro.faults.plan import (
    FAIL,
    FaultPlan,
    MaterializedFaults,
    pick_server,
)
from repro.obs.events import (
    SERVER_FAIL,
    SERVER_RECOVER,
    TASK_CANCEL,
    TASK_HEDGE,
    TASK_RETRY,
)
from repro.sim.engine import Environment
from repro.types import QuerySpec, Task


class _Slot:
    """Mitigation state of one (query, slot) pair."""

    __slots__ = ("query_id", "slot", "key", "deadline", "class_priority",
                 "primary_sid", "done", "failed", "attempts", "hedges",
                 "pending", "live", "hedged")

    def __init__(self, query_id: int, slot: int, key: Tuple,
                 deadline: float, class_priority: int,
                 primary_sid: int) -> None:
        self.query_id = query_id
        self.slot = slot
        self.key = key
        self.deadline = deadline
        self.class_priority = class_priority
        self.primary_sid = primary_sid
        self.done = False
        self.failed = False
        self.attempts = 0          # retry budget consumed
        self.hedges = 0            # hedged duplicates launched
        self.pending = 0           # requeues in backoff flight
        #: Live copies: ``id(task) -> (task, server_id)``.
        self.live: Dict[int, Tuple[Task, int]] = {}
        #: ids of *live* copies that were hedge-launched (pruned in
        #: lockstep with ``live`` so recycled ``id()`` values of dead
        #: copies can never be mistaken for hedges).
        self.hedged: set = set()

    @property
    def open(self) -> bool:
        return not self.done and not self.failed

    def live_servers(self) -> List[int]:
        return [sid for _, sid in self.live.values()]


class FaultManager:
    """Orchestrates a fault plan over DES-kernel servers and handler."""

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        servers: Sequence[TaskServer],
        server_cdfs,
        recorder=None,
    ) -> None:
        if not plan.active:
            raise ConfigurationError("fault plan is inactive; nothing to do")
        self.env = env
        self.plan = plan
        self.servers = list(servers)
        self.server_cdfs = server_cdfs
        self._recorder = recorder if (recorder is not None
                                      and recorder.enabled) else None
        self.handler = None
        #: Optional :class:`repro.overload.OverloadController` (set by
        #: :func:`repro.overload.install_overload`): notified of every
        #: fail/recover transition so circuit breakers track crashes,
        #: and consulted so retries/hedges avoid breaker-open servers.
        self.overload = None
        #: Optional :class:`repro.replicas.ReplicaController` (set by
        #: :func:`repro.replicas.install_replicas`): scored requeue and
        #: hedge placement, hedge suppression, adaptive hedge delay.
        self.replicas = None
        #: The handler's :class:`~repro.core.deadline.DeadlineEstimator`
        #: (set by :func:`install_faults`): quantile-mode hedge delays
        #: route through its version-stamped inversion memo.
        self.estimator = None
        self.materialized: Optional[MaterializedFaults] = None
        self._slots: Dict[Tuple[int, int], _Slot] = {}
        # Outcome counters (mirrored into SimulationResult by callers).
        self.server_failures = 0
        self.tasks_retried = 0
        self.tasks_hedged = 0
        self.tasks_cancelled = 0
        self.tasks_failed = 0

    # ------------------------------------------------------------------
    def install(self, horizon_ms: float) -> None:
        """Materialize the plan and start the transition replay."""
        self.materialized = self.plan.materialize(len(self.servers),
                                                  horizon_ms)
        if self.plan.stragglers:
            factor = self.materialized.straggler_factor
            for server in self.servers:
                # Only servers with applicable episodes pay the scale
                # hook; elsewhere the factor is identically 1.0 and
                # skipping the multiply is bit-exact.
                if self.materialized.straggler_episodes(server.server_id):
                    server.service_scale = factor
        transitions = self.materialized.transitions()
        if transitions:
            self.env.process(self._transition_proc(transitions))

    def _transition_proc(self, transitions):
        for time, sid, kind in transitions:
            if time > self.env.now:
                yield self.env.timeout(time - self.env.now)
            if kind == FAIL:
                self._fail(sid)
            else:
                self._recover(sid)

    # ------------------------------------------------------------------
    def _depths(self) -> List[int]:
        return [server.depth for server in self.servers]

    def _up(self) -> List[bool]:
        return [not server.down for server in self.servers]

    def _pick_mitigation(self, depths: List[int], up: List[bool],
                         exclude: List[int], allow_fallback: bool):
        """Shared requeue/hedge target choice.

        Breaker-open servers are excluded when an overload controller
        with breakers is installed (mitigation traffic must not deepen
        a tripping server's queue); retries (``allow_fallback``) fall
        back to the unfiltered up set rather than failing the slot when
        *every* up server is refusing, hedges simply don't launch.  The
        scored :class:`~repro.replicas.ReplicaController` pick replaces
        the bare least-loaded one when installed.  Returns
        ``(target, fellback)`` so the trace can mark retries that
        knowingly overrode breaker state.
        """
        eff = up
        if self.overload is not None:
            eff = self.overload.mitigation_up(up, self.env.now)
        rc = self.replicas
        fellback = False
        if rc is not None:
            target = rc.pick(depths, eff, exclude)
            if target < 0 and allow_fallback and eff is not up:
                target = rc.pick(depths, up, exclude)
                fellback = target >= 0
        else:
            target = pick_server(depths, eff, exclude=exclude)
            if target < 0 and allow_fallback and eff is not up:
                target = pick_server(depths, up, exclude=exclude)
                fellback = target >= 0
        return target, fellback

    def _fail(self, sid: int) -> None:
        self.server_failures += 1
        if self._recorder is not None:
            self._recorder.emit(SERVER_FAIL, self.env.now, server_id=sid)
        if self.overload is not None:
            self.overload.on_server_fail(sid, self.env.now)
        victims = self.servers[sid].fail(self.plan.kill_mode)
        for task in victims:
            self._handle_kill(task)

    def _recover(self, sid: int) -> None:
        if self._recorder is not None:
            self._recorder.emit(SERVER_RECOVER, self.env.now, server_id=sid)
        if self.overload is not None:
            self.overload.on_server_recover(sid, self.env.now)
        self.servers[sid].recover()

    def _handle_kill(self, task: Task) -> None:
        slot = self._slots.get((task.query_id, task.slot))
        if slot is None or not slot.open:
            return
        slot.live.pop(id(task), None)
        slot.hedged.discard(id(task))
        if slot.live or slot.pending:
            # A sibling copy survives the crash; this copy just dies.
            self.tasks_cancelled += 1
            if self._recorder is not None:
                self._recorder.emit(TASK_CANCEL, self.env.now,
                                    server_id=task.server_id,
                                    query_id=task.query_id,
                                    extra={"reason": "server_fail",
                                           "slot": task.slot})
            return
        self._schedule_requeue(slot, "server_fail")

    # ------------------------------------------------------------------
    def _schedule_requeue(self, slot: _Slot, reason: str) -> None:
        """Consume one retry and requeue the slot after backoff."""
        retry = self.plan.retry
        if retry is None or slot.attempts >= retry.max_retries:
            self._slot_fail(slot)
            return
        slot.attempts += 1
        slot.pending += 1
        self.env.process(self._requeue_proc(slot, reason,
                                            retry.backoff_ms * slot.attempts))

    def _requeue_proc(self, slot: _Slot, reason: str, backoff: float):
        if backoff > 0:
            yield self.env.timeout(backoff)
        else:
            yield self.env.timeout(0.0)
        slot.pending -= 1
        if not slot.open:
            return
        target, fellback = self._pick_mitigation(self._depths(), self._up(),
                                                 slot.live_servers(),
                                                 allow_fallback=True)
        if target < 0:
            self._slot_fail(slot)
            return
        self.tasks_retried += 1
        if self.replicas is not None:
            self.replicas.record_launch()
        if self._recorder is not None:
            extra = {"attempt": slot.attempts,
                     "reason": reason,
                     "slot": slot.slot}
            if fellback:
                extra["fallback"] = True
            self._recorder.emit(TASK_RETRY, self.env.now, server_id=target,
                                query_id=slot.query_id,
                                deadline=slot.deadline,
                                extra=extra)
        self._launch_copy(slot, target)

    def _launch_copy(self, slot: _Slot, sid: int,
                     hedged: bool = False) -> None:
        task = Task(
            query_id=slot.query_id,
            server_id=sid,
            deadline=slot.deadline,
            class_priority=slot.class_priority,
            enqueue_time=self.env.now,
            slot=slot.slot,
        )
        slot.live[id(task)] = (task, sid)
        if hedged:
            slot.hedged.add(id(task))
        self.servers[sid].enqueue(task, slot.key)
        self._arm_timeout(slot, task)

    # ------------------------------------------------------------------
    def _arm_timeout(self, slot: _Slot, task: Task) -> None:
        retry = self.plan.retry
        if retry is not None and retry.timeout_ms is not None:
            self.env.process(self._timeout_proc(slot, task,
                                                retry.timeout_ms))

    def _timeout_proc(self, slot: _Slot, task: Task, timeout_ms: float):
        yield self.env.timeout(timeout_ms)
        if not slot.open or id(task) not in slot.live:
            return
        if task.dequeue_time >= 0:
            return  # in (or past) service — timeouts cover queued copies
        if slot.attempts >= self.plan.retry.max_retries:
            return  # budget exhausted: leave it queued
        sid = slot.live.pop(id(task))[1]
        slot.hedged.discard(id(task))
        self.servers[sid].cancel(task)
        self.tasks_cancelled += 1
        if self._recorder is not None:
            self._recorder.emit(TASK_CANCEL, self.env.now, server_id=sid,
                                query_id=slot.query_id,
                                extra={"reason": "timeout",
                                       "slot": slot.slot})
        self._schedule_requeue(slot, "timeout")

    # ------------------------------------------------------------------
    def _arm_hedge(self, slot: _Slot) -> None:
        hedge = self.plan.hedge
        if hedge is not None:
            if self.estimator is not None:
                base = hedge.delay_via(self.estimator, slot.primary_sid)
            else:
                base = hedge.delay_for(self.server_cdfs[slot.primary_sid])
            self.env.process(self._hedge_proc(slot, base))

    def _hedge_proc(self, slot: _Slot, base_delay: float):
        hedge = self.plan.hedge
        while True:
            rc = self.replicas
            delay = (rc.hedge_delay(base_delay) if rc is not None
                     else base_delay)
            yield self.env.timeout(delay)
            if not slot.open or slot.hedges >= hedge.max_hedges:
                return
            if rc is not None:
                up = self._up()
                if self.overload is not None:
                    up = self.overload.mitigation_up(up, self.env.now)
                target = rc.hedge_target(self._depths(), up,
                                         slot.live_servers(), self.env.now,
                                         slot.query_id)
            else:
                target, _ = self._pick_mitigation(self._depths(), self._up(),
                                                  slot.live_servers(),
                                                  allow_fallback=False)
            if target >= 0:
                slot.hedges += 1
                self.tasks_hedged += 1
                if self._recorder is not None:
                    self._recorder.emit(TASK_HEDGE, self.env.now,
                                        server_id=target,
                                        query_id=slot.query_id,
                                        deadline=slot.deadline,
                                        extra={"hedge": slot.hedges,
                                               "slot": slot.slot})
                self._launch_copy(slot, target, hedged=True)
                if slot.hedges >= hedge.max_hedges:
                    return

    # ------------------------------------------------------------------
    def dispatch(self, spec: QuerySpec, tasks: Sequence[Task], key: Tuple,
                 deadline: float) -> None:
        """Dispatch a query's task slots under the fault plan."""
        kill = self.plan.kill_mode
        for task in tasks:
            slot = _Slot(spec.query_id, task.slot, key, deadline,
                         task.class_priority, task.server_id)
            self._slots[(spec.query_id, task.slot)] = slot
            sid = task.server_id
            if kill and self.servers[sid].down:
                # Dispatch-time redirect away from a down server: free
                # (attempt 0, no retry budget consumed).
                target = pick_server(self._depths(), self._up())
                if target < 0:
                    self._slot_fail(slot)
                    continue
                task.server_id = sid = target
                self.tasks_retried += 1
                if self._recorder is not None:
                    self._recorder.emit(TASK_RETRY, self.env.now,
                                        server_id=sid,
                                        query_id=spec.query_id,
                                        deadline=deadline,
                                        extra={"attempt": 0,
                                               "reason": "redirect",
                                               "slot": task.slot})
            slot.live[id(task)] = (task, sid)
            if self.replicas is not None:
                self.replicas.record_launch()
            self.servers[sid].enqueue(task, key)
            self._arm_timeout(slot, task)
            self._arm_hedge(slot)

    def on_complete(self, task: Task, server: TaskServer) -> bool:
        """Filter a task completion.  Returns True exactly once per
        slot — for the winning copy — after cancelling the losers."""
        slot = self._slots.get((task.query_id, task.slot))
        if slot is None or not slot.open:
            return False
        slot.done = True
        hedge_won = id(task) in slot.hedged
        slot.live.pop(id(task), None)
        for other, sid in slot.live.values():
            self.servers[sid].cancel(other)
            self.tasks_cancelled += 1
            if self._recorder is not None:
                self._recorder.emit(TASK_CANCEL, self.env.now, server_id=sid,
                                    query_id=task.query_id,
                                    extra={"reason": "hedge_lost",
                                           "slot": task.slot})
        slot.live.clear()
        slot.hedged.clear()
        rc = self.replicas
        if rc is not None:
            rc.on_task_complete(task.server_id, server.last_duration)
            if slot.hedges > 0:
                rc.record_hedge_outcome(hedge_won, self.env.now)
        return True

    def _slot_fail(self, slot: _Slot) -> None:
        slot.failed = True
        self.tasks_failed += 1
        rc = self.replicas
        if rc is not None and slot.hedges > 0:
            rc.record_hedge_outcome(False, self.env.now)
        if self.handler is not None:
            self.handler._slot_failed(slot.query_id)


def install_faults(
    env: Environment,
    handler,
    servers: Sequence[TaskServer],
    plan: FaultPlan,
    horizon_ms: float,
    server_cdfs,
    recorder=None,
) -> FaultManager:
    """Wire a fault plan into a handler + server fleet.

    ``horizon_ms`` should come from
    :func:`repro.faults.plan.fault_horizon` on the trace's last arrival
    so seeded crash schedules match the fast path exactly.
    """
    manager = FaultManager(env, plan, servers, server_cdfs,
                           recorder=recorder)
    manager.handler = handler
    manager.estimator = handler.estimator
    handler.fault_manager = manager
    manager.install(horizon_ms)
    return manager
