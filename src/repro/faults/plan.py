"""Fault plans: server crash/recovery schedules and tail-cutting mitigations.

TailGuard's evaluation assumes servers never fail; this module supplies
the missing robustness axis.  A :class:`FaultPlan` combines

* **crash schedules** — explicit :class:`Downtime` windows and/or a
  seeded :class:`CrashProcess` (exponential MTBF/MTTR per server);
* **straggler episodes** — windowed service-time inflation
  (:class:`StragglerEpisode`, the fault-layer spelling of
  :class:`~repro.cluster.config.ServicePerturbation`);
* **mitigations** — :class:`RetryPolicy` (kill-and-requeue with
  backoff/timeout, RackSched-style reassignment to a surviving server)
  and :class:`HedgePolicy` (SafeTail-style duplicate launch after a
  quantile-derived delay, cancel the loser on first completion).

Semantics (mirrored exactly by both simulation paths; see
``docs/faults.md`` for the full contract):

* With **no retry policy**, a crash *pauses* the server: the in-flight
  task restarts from scratch at recovery, queued tasks wait out the
  downtime, and newly arriving tasks assigned to the down server simply
  queue behind it.
* With a **retry policy**, a crash *kills* the server's work: the
  in-flight task and every queued task are requeued (after backoff) to
  the least-loaded surviving server, up to ``max_retries`` per task
  slot; tasks arriving for a down server are redirected on dispatch.
  ``timeout_ms`` additionally lets a still-queued task escape a slow
  queue by retrying elsewhere.
* Retried and hedged tasks keep the **original queuing deadline**
  ``t_D`` (Eq. 6) — mitigation must not loosen the SLO accounting.

Everything is deterministic given the plan (the crash process carries
its own seed), so fault-injected runs remain exactly reproducible and
the fast path / DES kernel equivalence holds under failures.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Transition kinds emitted by :meth:`MaterializedFaults.transitions`.
FAIL = "FAIL"
RECOVER = "RECOVER"


def fault_horizon(last_arrival_ms: float) -> float:
    """The crash-schedule materialization horizon for a run.

    Both simulation paths derive it identically from the trace (the
    last query arrival), so a seeded :class:`CrashProcess` yields the
    same windows on either path.  The 1.5x + 1000 ms slack covers queue
    drain after the last arrival; transitions beyond the actual drain
    time are processed harmlessly.
    """
    return float(last_arrival_ms) * 1.5 + 1000.0


@dataclass(frozen=True)
class Downtime:
    """One deterministic crash window: server ``server_id`` is down
    (not serving) during ``[start_ms, end_ms)``."""

    server_id: int
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ConfigurationError(
                f"server_id must be >= 0, got {self.server_id}"
            )
        if not 0 <= self.start_ms < self.end_ms:
            raise ConfigurationError(
                f"need 0 <= start < end, got [{self.start_ms}, {self.end_ms})"
            )


@dataclass(frozen=True)
class CrashProcess:
    """A seeded MTBF/MTTR crash-recovery process.

    Each covered server alternates exponentially distributed up-times
    (mean ``mtbf_ms``) and down-times (mean ``mttr_ms``), starting up
    at t = 0.  Windows are materialized from
    ``np.random.default_rng(seed).spawn(...)`` per server, so the
    schedule is a pure function of ``(seed, n_servers, horizon)`` —
    identical on every simulation path and across processes.
    """

    mtbf_ms: float
    mttr_ms: float
    server_ids: Optional[Tuple[int, ...]] = None  #: None = every server.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mtbf_ms <= 0 or self.mttr_ms <= 0:
            raise ConfigurationError(
                f"mtbf/mttr must be positive, got "
                f"({self.mtbf_ms}, {self.mttr_ms})"
            )

    def materialize(self, n_servers: int,
                    horizon_ms: float) -> Tuple[Downtime, ...]:
        """Sample the crash windows over ``[0, horizon_ms)``."""
        covered = (tuple(range(n_servers)) if self.server_ids is None
                   else self.server_ids)
        for sid in covered:
            if not 0 <= sid < n_servers:
                raise ConfigurationError(
                    f"crash process covers server {sid}, cluster has "
                    f"{n_servers}"
                )
        streams = np.random.default_rng(self.seed).spawn(len(covered))
        windows: List[Downtime] = []
        for sid, rng in zip(covered, streams):
            now = 0.0
            while True:
                now += float(rng.exponential(self.mtbf_ms))
                if now >= horizon_ms:
                    break
                down = float(rng.exponential(self.mttr_ms))
                windows.append(Downtime(sid, now, now + down))
                now += down
        return tuple(windows)


@dataclass(frozen=True)
class StragglerEpisode:
    """A windowed straggler: the listed servers run ``factor`` times
    slower while the clock is in ``[start_ms, end_ms)``.

    Same semantics as
    :class:`~repro.cluster.config.ServicePerturbation` (the factor is
    applied to service times sampled while the window is open), but
    restricted to slowdowns — this is the fault layer.
    """

    server_ids: Tuple[int, ...]
    start_ms: float
    end_ms: float
    factor: float

    def __post_init__(self) -> None:
        if not self.server_ids:
            raise ConfigurationError("straggler episode needs >= 1 server")
        if not 0 <= self.start_ms < self.end_ms:
            raise ConfigurationError(
                f"need 0 <= start < end, got [{self.start_ms}, {self.end_ms})"
            )
        if self.factor < 1.0:
            raise ConfigurationError(
                f"straggler factor must be >= 1, got {self.factor}"
            )

    def applies(self, server_id: int, now: float) -> bool:
        return (self.start_ms <= now < self.end_ms
                and server_id in self.server_ids)


@dataclass(frozen=True)
class RetryPolicy:
    """Kill-and-requeue mitigation (RackSched-style reassignment).

    With a retry policy active, a server crash kills its in-flight and
    queued tasks; each killed task is requeued to the least-loaded
    surviving server (ties broken by lowest server id) after
    ``backoff_ms * attempt`` milliseconds, at most ``max_retries``
    times per task slot, after which the slot — and its query — fails.
    ``timeout_ms`` (optional) additionally retries a task that has been
    *queued* (not yet in service) for longer than the timeout, letting
    it escape a straggling or paused queue.
    """

    max_retries: int = 3
    backoff_ms: float = 0.0
    timeout_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ConfigurationError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.backoff_ms < 0:
            raise ConfigurationError(
                f"backoff_ms must be >= 0, got {self.backoff_ms}"
            )
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ConfigurationError(
                f"timeout_ms must be positive, got {self.timeout_ms}"
            )


@dataclass(frozen=True)
class HedgePolicy:
    """Hedged requests (SafeTail-style tail cutting).

    ``delay`` per task slot is either the explicit ``delay_ms`` or the
    ``quantile`` of the slot's *primary server's* service-time CDF —
    hedge exactly when the task has fallen onto the slow margin of the
    distribution.  When the timer fires and the slot is still
    incomplete, a duplicate is launched on the least-loaded up server
    not already holding a live copy; the first completion wins and the
    loser is cancelled (queued losers are removed, in-service losers
    run to completion but are discarded — service is not preemptible).
    At most ``max_hedges`` duplicates are launched per slot, re-armed
    every ``delay`` until exhausted.
    """

    quantile: float = 0.95
    delay_ms: Optional[float] = None
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.quantile < 1:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {self.quantile}"
            )
        if self.delay_ms is not None and self.delay_ms <= 0:
            raise ConfigurationError(
                f"delay_ms must be positive, got {self.delay_ms}"
            )
        if self.max_hedges < 1:
            raise ConfigurationError(
                f"max_hedges must be >= 1, got {self.max_hedges}"
            )

    def delay_for(self, primary_cdf) -> float:
        """The hedge delay for a slot whose primary server has the
        given service-time distribution."""
        if self.delay_ms is not None:
            return self.delay_ms
        return float(primary_cdf.quantile(self.quantile))

    def delay_via(self, estimator, primary_sid: int) -> float:
        """The hedge delay for a slot, memoized through the estimator.

        Quantile-mode delays route through
        :meth:`repro.core.deadline.DeadlineEstimator.hedge_delay` — the
        version-stamped quantile-inversion memo — so the inversion is
        computed once per distinct (distribution, quantile) pair and
        invalidated by rebootstrap / online refresh instead of being
        recomputed (and going stale) per hedge arm.
        """
        if self.delay_ms is not None:
            return self.delay_ms
        return estimator.hedge_delay(primary_sid, self.quantile)


@dataclass(frozen=True)
class FaultPlan:
    """Everything a fault-injected run needs: failures and mitigations.

    Attach to a simulation with
    :meth:`ClusterConfig.with_faults(plan) <repro.cluster.config.ClusterConfig.with_faults>`.
    A plan with no crash source, no stragglers, and no mitigations is
    *inactive* and leaves the simulation byte-identical to an untouched
    run.
    """

    downtimes: Tuple[Downtime, ...] = ()
    crashes: Optional[CrashProcess] = None
    stragglers: Tuple[StragglerEpisode, ...] = ()
    retry: Optional[RetryPolicy] = None
    hedge: Optional[HedgePolicy] = None

    def __post_init__(self) -> None:
        # Normalize lists to tuples so plans stay hashable/frozen.
        if not isinstance(self.downtimes, tuple):
            object.__setattr__(self, "downtimes", tuple(self.downtimes))
        if not isinstance(self.stragglers, tuple):
            object.__setattr__(self, "stragglers", tuple(self.stragglers))

    @property
    def active(self) -> bool:
        """Whether this plan changes anything at all."""
        return bool(self.downtimes or self.crashes is not None
                    or self.stragglers or self.hedge is not None)

    @property
    def kill_mode(self) -> bool:
        """Crashes kill work (retry active) vs pause it (no retry)."""
        return self.retry is not None

    def materialize(self, n_servers: int,
                    horizon_ms: float) -> "MaterializedFaults":
        """Resolve the plan into concrete per-server crash windows."""
        windows = list(self.downtimes)
        for downtime in windows:
            if downtime.server_id >= n_servers:
                raise ConfigurationError(
                    f"downtime names server {downtime.server_id}, cluster "
                    f"has {n_servers}"
                )
        if self.crashes is not None:
            windows.extend(self.crashes.materialize(n_servers, horizon_ms))
        for episode in self.stragglers:
            for sid in episode.server_ids:
                if not 0 <= sid < n_servers:
                    raise ConfigurationError(
                        f"straggler episode names server {sid}, cluster "
                        f"has {n_servers}"
                    )
        return MaterializedFaults(self, tuple(windows), n_servers)


class MaterializedFaults:
    """A :class:`FaultPlan` resolved to concrete crash windows.

    Validates that no server's windows overlap (ambiguous schedules are
    rejected rather than silently merged) and exposes the transition
    stream both simulators replay.
    """

    def __init__(self, plan: FaultPlan, windows: Tuple[Downtime, ...],
                 n_servers: int) -> None:
        self.plan = plan
        self.n_servers = n_servers
        per_server: Dict[int, List[Downtime]] = {}
        for window in windows:
            per_server.setdefault(window.server_id, []).append(window)
        for sid, server_windows in per_server.items():
            server_windows.sort(key=lambda w: w.start_ms)
            for prev, cur in zip(server_windows, server_windows[1:]):
                if cur.start_ms < prev.end_ms:
                    raise ConfigurationError(
                        f"server {sid} has overlapping crash windows "
                        f"[{prev.start_ms}, {prev.end_ms}) and "
                        f"[{cur.start_ms}, {cur.end_ms})"
                    )
        self.windows: Dict[int, Tuple[Downtime, ...]] = {
            sid: tuple(ws) for sid, ws in per_server.items()
        }
        self._starts: Dict[int, List[float]] = {
            sid: [w.start_ms for w in ws] for sid, ws in self.windows.items()
        }
        # Per-server straggler episodes, precomputed once in plan order
        # so the hot straggler_factor lookup scans only the episodes
        # that can ever apply to the server (usually zero or one)
        # instead of testing membership against every episode per
        # service start.  Plan order is preserved per server, so the
        # float product is bit-identical to the full scan.
        self._episodes: Dict[int, Tuple[Tuple[float, float, float], ...]] = {}
        for episode in plan.stragglers:
            for sid in episode.server_ids:
                self._episodes.setdefault(sid, []).append(
                    (episode.start_ms, episode.end_ms, episode.factor))
        self._episodes = {sid: tuple(eps)
                          for sid, eps in self._episodes.items()}

    def __bool__(self) -> bool:
        return bool(self.windows) or self.plan.active

    def transitions(self) -> List[Tuple[float, int, str]]:
        """All ``(time, server_id, FAIL|RECOVER)`` transitions, sorted.

        At equal times a server's RECOVER sorts before another's FAIL
        (kind is part of the sort key via the FAIL/RECOVER strings:
        "FAIL" < "RECOVER"), giving both simulators one deterministic
        replay order.
        """
        out: List[Tuple[float, int, str]] = []
        for sid, windows in self.windows.items():
            for window in windows:
                out.append((window.start_ms, sid, FAIL))
                out.append((window.end_ms, sid, RECOVER))
        out.sort()
        return out

    def is_down(self, server_id: int, now: float) -> bool:
        """Whether the server is inside a crash window at ``now``."""
        starts = self._starts.get(server_id)
        if not starts:
            return False
        index = bisect_right(starts, now) - 1
        if index < 0:
            return False
        window = self.windows[server_id][index]
        return now < window.end_ms

    def straggler_factor(self, server_id: int, now: float) -> float:
        """Combined slowdown factor of all open straggler episodes."""
        episodes = self._episodes.get(server_id)
        if not episodes:
            return 1.0
        factor = 1.0
        for start_ms, end_ms, episode_factor in episodes:
            if start_ms <= now < end_ms:
                factor *= episode_factor
        return factor

    def straggler_episodes(self, server_id: int
                           ) -> Tuple[Tuple[float, float, float], ...]:
        """This server's ``(start_ms, end_ms, factor)`` episodes.

        Plan-order, precomputed — the hook surface both kernels use to
        avoid per-decision scans over the full episode list.
        """
        return self._episodes.get(server_id, ())


def pick_server(depths: Sequence[int], up: Sequence[bool],
                exclude: Sequence[int] = ()) -> int:
    """The deterministic requeue/hedge target rule shared by both paths.

    Least-loaded (queue length including the in-service task) among up
    servers not excluded; ties broken by lowest server id.  Returns -1
    when no server is eligible.
    """
    best = -1
    best_depth = -1
    excluded = frozenset(exclude)
    for sid in range(len(depths)):
        if not up[sid] or sid in excluded:
            continue
        if best < 0 or depths[sid] < best_depth:
            best = sid
            best_depth = depths[sid]
    return best
