"""Contended-capacity primitives for the simulation kernel.

:class:`Resource` models a server (or pool of servers) with a waiting
line.  The waiting line's *discipline* is pluggable via a tiny
``WaitQueue`` protocol — this is exactly the hook TailGuard's queuing
policies (FIFO / PRIQ / T-EDFQ / TF-EDFQ) plug into when the coroutine
simulation path is used.

:class:`Store` models a producer/consumer buffer of Python objects and
is used by the SaS sensing-datastore model.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event


class WaitQueue:
    """Minimal queue-discipline protocol for :class:`Resource`.

    Subclasses order pending requests; the default is FIFO.  ``key`` is
    an arbitrary sort key supplied by the requester (TailGuard passes
    the task queuing deadline ``t_D``).
    """

    def push(self, item: Any, key: float) -> None:
        raise NotImplementedError

    def pop(self) -> Any:
        raise NotImplementedError

    def remove(self, item: Any) -> None:
        """Remove ``item`` if still queued (used by request cancellation)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FifoWaitQueue(WaitQueue):
    """First-in-first-out waiting line."""

    def __init__(self) -> None:
        self._items: Deque[Any] = deque()

    def push(self, item: Any, key: float) -> None:
        self._items.append(item)

    def pop(self) -> Any:
        return self._items.popleft()

    def remove(self, item: Any) -> None:
        try:
            self._items.remove(item)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self._items)


class SortedWaitQueue(WaitQueue):
    """Waiting line ordered by ascending ``key`` (EDF when the key is a
    deadline), with FIFO tie-breaking by insertion order."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = count()
        self._cancelled: set = set()

    def push(self, item: Any, key: float) -> None:
        heapq.heappush(self._heap, (key, next(self._seq), item))

    def pop(self) -> Any:
        while self._heap:
            _, _, item = heapq.heappop(self._heap)
            if id(item) not in self._cancelled:
                return item
            self._cancelled.discard(id(item))
        raise IndexError("pop from empty queue")

    def remove(self, item: Any) -> None:
        self._cancelled.add(id(item))

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)


class Request(Event):
    """A pending or granted claim on one unit of a :class:`Resource`.

    Usable as a context manager::

        with server.request(key=deadline) as req:
            yield req          # waits until granted
            yield env.timeout(service_time)
    """

    __slots__ = ("resource", "key")

    def __init__(self, resource: "Resource", key: float) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.key = key
        resource._admit(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        if self.triggered:
            self.resource.release(self)
        else:
            self.cancel()

    def cancel(self) -> None:
        """Withdraw an un-granted request from the waiting line."""
        if not self.triggered:
            self.resource._queue.remove(self)


class Resource:
    """``capacity`` identical servers sharing one waiting line."""

    def __init__(
        self,
        env: Environment,
        capacity: int = 1,
        queue: Optional[WaitQueue] = None,
    ) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._queue = queue if queue is not None else FifoWaitQueue()
        self._users: List[Request] = []

    @property
    def count(self) -> int:
        """Number of units currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self, key: float = 0.0) -> Request:
        return Request(self, key)

    def _admit(self, request: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.append(request)
            request.succeed()
        else:
            self._queue.push(request, request.key)

    def release(self, request: Request) -> None:
        """Return a granted unit and hand it to the next waiter."""
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that does not hold the resource")
        while len(self._queue) > 0:
            nxt = self._queue.pop()
            if not nxt.triggered:
                self._users.append(nxt)
                nxt.succeed()
                break


class Store:
    """An unbounded-or-bounded buffer of items with blocking get/put."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
            self._serve_putters()
        else:
            self._getters.append(event)
        return event

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            self._getters.popleft().succeed(self.items.popleft())

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()
            self._serve_getters()
