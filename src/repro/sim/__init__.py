"""A small discrete-event simulation kernel in the style of SimPy.

The TailGuard paper evaluates by simulation; this package is the
simulation substrate, built from scratch.  It provides:

* :class:`~repro.sim.engine.Environment` — the event calendar and clock;
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Timeout`
  and :class:`~repro.sim.engine.Process` — generator-based coroutine
  processes that ``yield`` events to wait on;
* :class:`~repro.sim.resources.Resource` and
  :class:`~repro.sim.resources.Store` — contended-capacity primitives
  with pluggable queue disciplines, which is exactly where TailGuard's
  queuing policies hook in.

The optimized cluster simulator (:mod:`repro.cluster.simulation`) uses a
flat event calendar for speed; an equivalence test in
``tests/integration`` drives both on the same trace.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Store",
    "Timeout",
]
