"""Discrete-event simulation engine.

The model follows SimPy's design: an :class:`Environment` owns a heap of
scheduled events ordered by ``(time, priority, insertion order)``, and a
:class:`Process` wraps a Python generator that ``yield``\\ s events.  When
a yielded event triggers, the engine resumes the generator with the
event's value (or throws its exception into it).

Determinism: ties in time are broken first by priority (``URGENT``
before ``NORMAL``) and then by insertion order, so a simulation with the
same inputs always produces the same event ordering.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError

#: Scheduling priorities.  URGENT events (process resumptions triggered
#: by an already-triggered event) run before NORMAL events at equal time.
URGENT = 0
NORMAL = 1

#: Sentinel stored in ``Event._value`` before the event is triggered.
_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary user context (e.g. which server failed),
    which makes this the failure-injection mechanism used by the
    fault-tolerance tests.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An occurrence that processes can wait on.

    An event is *triggered* when :meth:`succeed` or :meth:`fail` is
    called, which schedules it on the environment's calendar; it is
    *processed* once its callbacks have run.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A failed event that no process waits on raises when processed,
        unless :meth:`defused` was called — mirroring SimPy's "errors
        should never pass silently" behaviour.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not re-raise."""
        self._defused = True

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal event that starts a process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, URGENT, 0.0)


class Process(Event):
    """A running process: wraps a generator that yields events.

    The process *is itself an event* that triggers when the generator
    returns (value = the generator's return value) or raises.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env._schedule(interrupt_event, URGENT, 0.0)
        # Unsubscribe from the event we were waiting on: the interrupt
        # supersedes it.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggered event's outcome."""
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, NORMAL, 0.0)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env._schedule(self, NORMAL, 0.0)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                event = Event(self.env)
                event._ok = False
                event._value = exc
                event._defused = True
                continue
            if next_event.env is not self.env:
                raise SimulationError("cannot wait on an event from another environment")

            if next_event.callbacks is not None:
                # Event still pending (or triggered but unprocessed):
                # subscribe and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: continue immediately with its value.
            event = next_event

        self.env._active_process = None


class ConditionEvent(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite waits."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("all events must share one environment")
        self._remaining = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self._events
            if ev.triggered and ev._ok
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Triggers when every component event has triggered successfully."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(ConditionEvent):
    """Triggers as soon as any component event triggers successfully."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation clock and event calendar."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Observability hook: called as ``hook(now, event)`` for every
        #: event popped by :meth:`step`, *before* its callbacks run and
        #: in the engine's deterministic order.  ``None`` (default)
        #: costs a single attribute check per step.
        self.step_hook: Optional[Callable[[float, "Event"], None]] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("no more events") from None
        if self.step_hook is not None:
            self.step_hook(self._now, event)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        * ``until is None`` — run until the calendar is empty.
        * ``until`` is a number — run until the clock reaches it.
        * ``until`` is an :class:`Event` — run until it is processed and
          return its value (raising if it failed).
        """
        if until is None:
            # Run-to-exhaustion is the composable kernel's hot loop;
            # inline step() with bound locals (one method call per event
            # is measurable at millions of events).  Semantics are
            # identical: hook before callbacks, unhandled failures
            # surface.  ``self._queue`` is never rebound, so binding it
            # once is safe even as callbacks schedule more events.
            queue = self._queue
            pop = heapq.heappop
            while queue:
                self._now, _, _, event = pop(queue)
                hook = self.step_hook
                if hook is not None:
                    hook(self._now, event)
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None
        if isinstance(until, Event):
            stop = until
            while stop.callbacks is not None and self._queue:
                self.step()
            if not stop.triggered:
                raise SimulationError(
                    "ran out of events before the awaited event triggered"
                )
            if not stop._ok:
                raise stop._value
            return stop._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon}: clock is already at {self._now}"
            )
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
