"""Declarative configuration for adaptive redundancy (replica layer).

TailGuard's fixed quantile-delay hedging (:class:`repro.faults.HedgePolicy`)
cuts stragglers at light load but *amplifies* overload: every duplicate
is extra work injected exactly when the cluster can least afford it —
the redundancy-management problem SafeTail frames as "choose how many
replicas and when, conditioned on observed load".  This module is the
declarative half of the answer; :mod:`repro.replicas.controller` holds
the matching runtime.

Three orthogonal knobs, each optional:

:class:`ReplicaScorer`
    Load-aware server scoring (queue depth + recent-tail EWMA) that
    replaces the bare least-loaded ``pick_server`` for retry requeue
    and hedge placement, and optionally for initial fanout placement
    (RackSched-style load-aware dispatch).  Pluggable: subclass and
    override :meth:`ReplicaScorer.score`.

:class:`HedgeSuppressionPolicy`
    A utilization gate that withholds duplicates when the cluster is
    already saturated — a cluster-pressure EWMA (the same overshoot
    signal :class:`repro.overload.OverloadController` tracks for
    degradation) plus a per-server score ceiling.

:class:`AdaptiveHedgePolicy`
    An online AIMD controller on the hedge *delay* (mirroring the
    :class:`repro.overload.AdaptiveAdmission` idiom) driven by the
    observed duplicate-win ratio, under a hard redundancy budget
    (maximum duplicate-load fraction).

All three compose under :class:`ReplicaPolicy`, carried by
``ClusterConfig.replicas`` and buildable into a
:class:`~repro.replicas.controller.ReplicaController` shared verbatim
by both simulation kernels — decisions are RNG-free and depend only on
the deterministic feed order, so the DES kernel and the event-calendar
fast path stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = [
    "AdaptiveHedgePolicy",
    "HedgeSuppressionPolicy",
    "ReplicaPolicy",
    "ReplicaScorer",
]


@dataclass(frozen=True)
class ReplicaScorer:
    """Load-aware server scoring for replica placement (lower is better).

    The default weights reduce :meth:`score` to the queue depth alone,
    which makes the scored pick *exactly* the least-loaded lowest-id
    choice of :func:`repro.faults.pick_server` — the scorer is a strict
    generalization, not a behavior change.  ``tail_weight`` mixes in a
    per-server EWMA of observed task durations (milliseconds), the
    cheap recent-tail signal that separates a short queue on a slow or
    straggling server from a short queue on a healthy one.

    Subclass and override :meth:`score` for custom scoring functions;
    the controller only ever calls ``score(depth, tail_ewma_ms)``.
    """

    #: Weight of the server's instantaneous queue depth (tasks).
    depth_weight: float = 1.0
    #: Weight of the server's recent-tail EWMA (ms of observed task
    #: duration).  0 disables the tail term (pure least-loaded).
    tail_weight: float = 0.0
    #: EWMA gain for the recent-tail signal, per completed task.
    tail_alpha: float = 0.1
    #: Also use the scorer for *initial* fanout placement: the query's
    #: slots go to the k best-scored servers instead of a uniform
    #: random selection.  The nominal random draw is still consumed so
    #: downstream RNG streams are unperturbed.
    scored_fanout: bool = False

    def __post_init__(self) -> None:
        if self.depth_weight < 0.0 or self.tail_weight < 0.0:
            raise ConfigurationError(
                f"scorer weights must be >= 0, got depth_weight="
                f"{self.depth_weight}, tail_weight={self.tail_weight}"
            )
        if self.depth_weight == 0.0 and self.tail_weight == 0.0:
            raise ConfigurationError(
                "scorer needs at least one non-zero weight"
            )
        if not 0.0 < self.tail_alpha <= 1.0:
            raise ConfigurationError(
                f"tail_alpha must be in (0, 1], got {self.tail_alpha}"
            )

    def score(self, depth: int, tail_ewma_ms: float) -> float:
        """Placement badness of one server (lower wins; ties by id)."""
        return self.depth_weight * depth + self.tail_weight * tail_ewma_ms


@dataclass(frozen=True)
class HedgeSuppressionPolicy:
    """Utilization gate that withholds hedge duplicates under pressure.

    Two independent triggers, either of which suppresses (the timer
    re-arms and tries again a delay later, so suppression defers
    rather than cancels):

    * **cluster pressure** — an EWMA of per-task deadline overshoot at
      service start, the same signal
      :class:`repro.overload.OverloadController` maintains for
      degradation decisions (see ``docs/overload.md``).  At or above
      ``pressure_threshold_ms`` the whole cluster is behind its
      deadlines and a duplicate would add load to an already-saturated
      tail.
    * **per-server score** — even with acceptable cluster pressure, if
      the *best* candidate server scores at or above
      ``score_threshold`` (same units as :meth:`ReplicaScorer.score`),
      there is no server idle enough for the duplicate to plausibly
      win, only queues to lengthen.
    """

    #: EWMA gain of the overshoot pressure signal, per task start.
    pressure_alpha: float = 0.05
    #: Suppress hedges while the pressure EWMA is at or above this (ms).
    pressure_threshold_ms: float = 1.0
    #: Suppress when the best candidate's score is at or above this
    #: (``None`` disables the per-server gate).
    score_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.pressure_alpha <= 1.0:
            raise ConfigurationError(
                f"pressure_alpha must be in (0, 1], got "
                f"{self.pressure_alpha}"
            )
        if self.pressure_threshold_ms <= 0.0:
            raise ConfigurationError(
                f"pressure_threshold_ms must be > 0, got "
                f"{self.pressure_threshold_ms}"
            )
        if self.score_threshold is not None and self.score_threshold <= 0.0:
            raise ConfigurationError(
                f"score_threshold must be > 0, got {self.score_threshold}"
            )


@dataclass(frozen=True)
class AdaptiveHedgePolicy:
    """Online AIMD tuning of the hedge delay, under a redundancy budget.

    The controller scales the plan's base hedge delay (explicit
    ``delay_ms`` or the memoized quantile inversion) by a factor kept
    inside ``[min_factor, max_factor]`` and adjusted from the observed
    **duplicate-win ratio** — the fraction of hedged task slots whose
    winning copy was the hedge — over a sliding window, mirroring the
    :class:`repro.overload.AdaptiveAdmission` idiom:

    * ratio **below** ``target_win_ratio × (1 − hysteresis)``: hedges
      are mostly wasted work → *multiplicative* factor increase
      (hedge later, duplicate less);
    * ratio **above** ``target_win_ratio × (1 + hysteresis)``: hedges
      are paying off → *additive* factor decrease (hedge sooner).

    Independent of the AIMD loop, ``max_duplicate_fraction`` is a hard
    budget: a hedge only launches while
    ``hedges_launched + 1 <= fraction × base_copies_launched``, so the
    duplicate-load fraction can never exceed the budget (a property
    test pins this invariant on both kernels).
    """

    #: Steer the duplicate-win ratio toward this value.
    target_win_ratio: float = 0.35
    #: Sliding window of hedge outcomes the ratio is computed over.
    window_hedges: int = 200
    #: Minimum outcomes observed before the first adjustment.
    min_samples: int = 30
    #: Minimum simulated time between adjustments (ms).
    ctl_interval_ms: float = 25.0
    #: Multiplicative factor increase when hedges are wasted.
    increase: float = 1.4
    #: Additive factor decrease when hedges win above target.
    decrease: float = 0.1
    #: Dead band around the target before the controller reacts.
    hysteresis: float = 0.25
    #: Clamp band on the delay factor (base delay multiplier).
    min_factor: float = 0.5
    max_factor: float = 4.0
    #: Hard redundancy budget: maximum hedged fraction of launched
    #: base copies (``None`` disables the budget gate).
    max_duplicate_fraction: Optional[float] = 0.15

    def __post_init__(self) -> None:
        if not 0.0 < self.target_win_ratio < 1.0:
            raise ConfigurationError(
                f"target_win_ratio must be in (0, 1), got "
                f"{self.target_win_ratio}"
            )
        if self.window_hedges < 1:
            raise ConfigurationError(
                f"window_hedges must be >= 1, got {self.window_hedges}"
            )
        if self.min_samples < 1 or self.min_samples > self.window_hedges:
            raise ConfigurationError(
                f"min_samples must be in [1, window_hedges], got "
                f"{self.min_samples}"
            )
        if self.ctl_interval_ms <= 0.0:
            raise ConfigurationError(
                f"ctl_interval_ms must be > 0, got {self.ctl_interval_ms}"
            )
        if self.increase <= 1.0:
            raise ConfigurationError(
                f"increase must be > 1 (multiplicative), got "
                f"{self.increase}"
            )
        if self.decrease <= 0.0:
            raise ConfigurationError(
                f"decrease must be > 0 (additive), got {self.decrease}"
            )
        if self.hysteresis < 0.0:
            raise ConfigurationError(
                f"hysteresis must be >= 0, got {self.hysteresis}"
            )
        if not 0.0 < self.min_factor <= 1.0 <= self.max_factor:
            raise ConfigurationError(
                f"need 0 < min_factor <= 1 <= max_factor, got "
                f"[{self.min_factor}, {self.max_factor}]"
            )
        if (self.max_duplicate_fraction is not None
                and self.max_duplicate_fraction <= 0.0):
            raise ConfigurationError(
                f"max_duplicate_fraction must be > 0 (or None), got "
                f"{self.max_duplicate_fraction}"
            )


@dataclass(frozen=True)
class ReplicaPolicy:
    """Adaptive redundancy and replica selection, declaratively.

    Compose any subset of the three knobs; ``build`` bridges to the
    stateful :class:`~repro.replicas.controller.ReplicaController`
    both kernels share.  Suppression and adaptive delay only act on
    hedges, so they require the fault plan to carry a
    :class:`repro.faults.HedgePolicy`; the scorer alone also upgrades
    retry requeue and (with ``scored_fanout``) initial placement.
    """

    scorer: Optional[ReplicaScorer] = None
    suppression: Optional[HedgeSuppressionPolicy] = None
    adaptive: Optional[AdaptiveHedgePolicy] = None

    def __post_init__(self) -> None:
        if (self.scorer is None and self.suppression is None
                and self.adaptive is None):
            raise ConfigurationError(
                "ReplicaPolicy needs at least one of scorer, "
                "suppression, adaptive"
            )
        if self.scorer is not None and not isinstance(self.scorer,
                                                      ReplicaScorer):
            raise ConfigurationError(
                f"scorer must be a ReplicaScorer, got "
                f"{type(self.scorer).__name__}"
            )

    @property
    def active(self) -> bool:
        """Whether this policy changes anything at all."""
        return (self.scorer is not None or self.suppression is not None
                or self.adaptive is not None)

    @property
    def needs_hedging(self) -> bool:
        """Whether the policy is meaningless without a HedgePolicy."""
        return self.suppression is not None or self.adaptive is not None

    def build(self, n_servers: int, recorder=None):
        """Instantiate the runtime controller for an ``n_servers`` run."""
        from repro.replicas.controller import ReplicaController

        return ReplicaController(self, n_servers, recorder=recorder)
