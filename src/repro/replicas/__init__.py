"""Adaptive redundancy & replica selection (see ``docs/faults.md``).

Declarative policies (:class:`ReplicaScorer`,
:class:`HedgeSuppressionPolicy`, :class:`AdaptiveHedgePolicy`,
composed under :class:`ReplicaPolicy`) plus the runtime
:class:`ReplicaController` shared by both simulation kernels and the
DES-path installer :func:`install_replicas`.
"""

from repro.replicas.controller import ReplicaController, install_replicas
from repro.replicas.policy import (
    AdaptiveHedgePolicy,
    HedgeSuppressionPolicy,
    ReplicaPolicy,
    ReplicaScorer,
)

__all__ = [
    "AdaptiveHedgePolicy",
    "HedgeSuppressionPolicy",
    "ReplicaController",
    "ReplicaPolicy",
    "ReplicaScorer",
    "install_replicas",
]
