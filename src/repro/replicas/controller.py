"""Runtime half of the replica layer: one controller, both kernels.

A :class:`ReplicaController` is built from a
:class:`~repro.replicas.policy.ReplicaPolicy` and wired — verbatim, the
same class — into the DES kernel (:class:`repro.faults.FaultManager` /
:class:`repro.core.handler.QueryHandler`) and the event-calendar fast
path (:mod:`repro.cluster.faultsim`, generic loop and the specialized
timer-lane loop).  It is RNG-free: every decision is a pure function of
the feed history (task starts, winning completions, hedge outcomes) and
the instantaneous depth/up vectors, so identical event order on the two
paths yields bit-identical decisions — the cross-path equivalence suite
pins this.

Feed contract (the kernels must call these at matching points):

* :meth:`on_task_start` — once per task copy at first service attempt
  (pause-mode restarts excluded), right after the overload controller's
  ``record_task`` feed when one is installed.
* :meth:`on_task_complete` — winning (non-discarded) completions only,
  matching the estimator/overload feed rule.
* :meth:`record_launch` — every non-hedge copy launch (dispatch and
  retry requeue); the denominator of the duplicate-load budget.
* :meth:`hedge_target` — at each hedge timer expiry; applies the
  budget, pressure, and score gates, picks the scored target, and
  accounts the launch when one is returned.
* :meth:`record_hedge_outcome` — once per hedged slot at resolution
  (win when the winning copy was a hedge; loss on other winners or
  permanent slot failure); drives the AIMD delay adjustment.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import HEDGE_DELAY_UPDATE, HEDGE_SUPPRESSED
from repro.replicas.policy import ReplicaPolicy, ReplicaScorer

__all__ = ["ReplicaController", "install_replicas"]


class ReplicaController:
    """Scored replica placement, hedge suppression, and adaptive delay.

    See the module docstring for the feed contract.  All counters are
    public for tests and result finalization.
    """

    def __init__(self, policy: ReplicaPolicy, n_servers: int,
                 recorder=None) -> None:
        if not policy.active:
            raise ConfigurationError("ReplicaPolicy is inactive")
        self.policy = policy
        self.n_servers = int(n_servers)
        self.scorer: ReplicaScorer = policy.scorer or ReplicaScorer()
        self._recorder = recorder
        self._tracing = recorder is not None and getattr(
            recorder, "enabled", False)

        #: Per-server recent-tail EWMA (ms), updated on winning
        #: completions.
        self.tail_ewma: List[float] = [0.0] * self.n_servers
        #: Cluster-pressure EWMA (ms of deadline overshoot at service
        #: start) — same signal shape as ``OverloadController.pressure``.
        self.pressure = 0.0

        # --- adaptive delay state -------------------------------------
        adaptive = policy.adaptive
        self._factor = 1.0
        #: Every delay-factor adjustment as ``(time, factor)``, starting
        #: from the initial 1.0 — property tests assert the clamp band
        #: on this trace.
        self.delay_trace: List[Tuple[float, float]] = [(0.0, 1.0)]
        self._outcomes: Optional[Deque[bool]] = (
            deque(maxlen=adaptive.window_hedges)
            if adaptive is not None else None)
        self._window_wins = 0
        self._last_control = 0.0

        # --- counters --------------------------------------------------
        self.base_launches = 0
        self.hedges_launched = 0
        self.hedges_suppressed = 0
        self.suppressed_by: Dict[str, int] = {
            "budget": 0, "pressure": 0, "score": 0}
        self.hedge_wins = 0
        self.hedge_losses = 0

    # ------------------------------------------------------------------
    # feeds
    def on_task_start(self, server_id: int, slack: float) -> None:
        """A task copy entered service with ``slack`` ms to deadline."""
        suppression = self.policy.suppression
        if suppression is not None:
            overshoot = -slack if slack < 0.0 else 0.0
            self.pressure += suppression.pressure_alpha * (
                overshoot - self.pressure)

    def on_task_complete(self, server_id: int, duration: float) -> None:
        """A winning copy completed after ``duration`` ms of service."""
        alpha = self.scorer.tail_alpha
        self.tail_ewma[server_id] += alpha * (
            duration - self.tail_ewma[server_id])

    def record_launch(self) -> None:
        """Account one non-hedge copy launch (dispatch or requeue)."""
        self.base_launches += 1

    # ------------------------------------------------------------------
    # placement
    def pick(self, depths: Sequence[int], up: Sequence[bool],
             exclude: Sequence[int] = ()) -> int:
        """Scored replacement for :func:`repro.faults.pick_server`.

        Least score wins, ties to the lowest id; ``-1`` when no server
        is eligible.  With the default scorer this is exactly the
        least-loaded pick.
        """
        score = self.scorer.score
        tails = self.tail_ewma
        best = -1
        best_score = 0.0
        for sid in range(self.n_servers):
            if not up[sid] or sid in exclude:
                continue
            s = score(depths[sid], tails[sid])
            if best < 0 or s < best_score:
                best = sid
                best_score = s
        return best

    def place_fanout(self, k: int, depths: Sequence[int]) -> List[int]:
        """The ``k`` best-scored servers for initial slot placement.

        Ascending score order, ties to the lowest id.  Down-ness is not
        consulted — the nominal uniform placement does not consult it
        either, and dispatch-time redirection handles dead primaries.
        """
        score = self.scorer.score
        tails = self.tail_ewma
        ranked = sorted(range(self.n_servers),
                        key=lambda sid: (score(depths[sid], tails[sid]), sid))
        return ranked[:k]

    # ------------------------------------------------------------------
    # hedging
    def hedge_target(self, depths: Sequence[int], up: Sequence[bool],
                     exclude: Sequence[int], now: float,
                     query_id: int = -1) -> int:
        """Gate and place one hedge duplicate.

        Returns the target server id (the launch is accounted here, so
        the caller *must* launch on it) or ``-1`` — either because a
        suppression gate fired (counted, ``HEDGE_SUPPRESSED`` emitted)
        or because no server is eligible (not counted, same as the
        ungated kernels).  Gate order: budget, pressure, placement,
        score.
        """
        adaptive = self.policy.adaptive
        if (adaptive is not None
                and adaptive.max_duplicate_fraction is not None
                and (self.hedges_launched + 1
                     > adaptive.max_duplicate_fraction * self.base_launches)):
            self._suppress("budget", now, query_id)
            return -1
        suppression = self.policy.suppression
        if (suppression is not None
                and self.pressure >= suppression.pressure_threshold_ms):
            self._suppress("pressure", now, query_id)
            return -1
        target = self.pick(depths, up, exclude)
        if target < 0:
            return -1
        if (suppression is not None
                and suppression.score_threshold is not None
                and self.scorer.score(depths[target],
                                      self.tail_ewma[target])
                >= suppression.score_threshold):
            self._suppress("score", now, query_id)
            return -1
        self.hedges_launched += 1
        return target

    def _suppress(self, reason: str, now: float, query_id: int) -> None:
        self.hedges_suppressed += 1
        self.suppressed_by[reason] += 1
        if self._tracing:
            self._recorder.emit(HEDGE_SUPPRESSED, now, query_id=query_id,
                                extra={"reason": reason})

    def record_hedge_outcome(self, won: bool, now: float) -> None:
        """Resolve one hedged slot (win = a hedge copy won the slot)."""
        if won:
            self.hedge_wins += 1
        else:
            self.hedge_losses += 1
        outcomes = self._outcomes
        if outcomes is None:
            return
        if len(outcomes) == outcomes.maxlen and outcomes[0]:
            self._window_wins -= 1
        outcomes.append(won)
        if won:
            self._window_wins += 1
        self._maybe_adjust(now)

    def _maybe_adjust(self, now: float) -> None:
        adaptive = self.policy.adaptive
        if (len(self._outcomes) < adaptive.min_samples
                or now - self._last_control < adaptive.ctl_interval_ms):
            return
        self._last_control = now
        ratio = self._window_wins / len(self._outcomes)
        target = adaptive.target_win_ratio
        factor = self._factor
        if ratio < target * (1.0 - adaptive.hysteresis):
            factor = min(adaptive.max_factor, factor * adaptive.increase)
        elif ratio > target * (1.0 + adaptive.hysteresis):
            factor = max(adaptive.min_factor, factor - adaptive.decrease)
        if factor != self._factor:
            self._factor = factor
            self.delay_trace.append((now, factor))
            if self._tracing:
                self._recorder.emit(HEDGE_DELAY_UPDATE, now,
                                    extra={"factor": factor,
                                           "win_ratio": ratio})

    # ------------------------------------------------------------------
    @property
    def adaptive_delay(self) -> bool:
        """Whether hedge delays vary over the run (AIMD configured)."""
        return self.policy.adaptive is not None

    def delay_scale(self) -> float:
        """Current delay factor (1.0 until the AIMD loop first acts)."""
        return self._factor

    def hedge_delay(self, base_delay: float) -> float:
        """The delay to arm the next hedge timer with."""
        if self.policy.adaptive is None:
            return base_delay
        return base_delay * self._factor

    def duplicate_fraction(self) -> float:
        """Hedged fraction of launched base copies so far."""
        if self.base_launches == 0:
            return 0.0
        return self.hedges_launched / self.base_launches

    def win_ratio(self) -> float:
        """Lifetime duplicate-win ratio (not the sliding window)."""
        resolved = self.hedge_wins + self.hedge_losses
        if resolved == 0:
            return 0.0
        return self.hedge_wins / resolved


def install_replicas(env, handler, servers, policy: ReplicaPolicy,
                     recorder=None) -> ReplicaController:
    """Wire a :class:`ReplicaPolicy` into the DES-kernel path.

    Mirrors :func:`repro.overload.install_overload`: builds the
    controller, binds it to the handler (scored fanout) and the
    installed :class:`~repro.faults.FaultManager` (scored requeue,
    hedge gating, adaptive delay), and chains a dequeue feed onto each
    server *after* any overload hook so the pressure signal sees the
    same per-task order as the fast path.  Call after
    :func:`repro.faults.install_faults` (and after
    :func:`repro.overload.install_overload`, when used together).
    """
    if not isinstance(policy, ReplicaPolicy):
        raise ConfigurationError(
            f"expected a ReplicaPolicy, got {type(policy).__name__}"
        )
    if getattr(handler, "replicas", None) is not None:
        raise ConfigurationError("handler already has a replica controller")
    manager = getattr(handler, "fault_manager", None)
    if policy.needs_hedging and (
            manager is None or manager.plan.hedge is None):
        raise ConfigurationError(
            "hedge suppression / adaptive delay need a FaultPlan with a "
            "HedgePolicy installed first (install_faults)"
        )
    controller = policy.build(len(servers), recorder)
    handler.replicas = controller
    if manager is not None:
        manager.replicas = controller

    for server in servers:
        prev = server.on_dequeue

        def _feed_dequeue(task, server, _controller=controller, _prev=prev):
            if _prev is not None:
                _prev(task, server)
            _controller.on_task_start(server.server_id,
                                      task.deadline - server.env.now)

        server.on_dequeue = _feed_dequeue
    return controller
