"""Task queuing deadline estimation (paper §III.B).

The :class:`DeadlineEstimator` owns the per-server unloaded task
response-time CDF estimates ``F_l^u`` and turns an (SLO, fanout, server
selection) triple into a task pre-dequeuing budget

    T_b(x_p^SLO, k_f) = x_p^SLO − x_p^u(k_f)                (Eq. 5–6)

where ``x_p^u`` comes from the order-statistics product (Eq. 1–2).

Implementation notes mirroring §III.B.2:

* *Offline estimation* — construct with a single shared distribution
  (the homogeneous assumption "F_l(t) ≈ F(t)") or a per-server mapping.
* *Online updating* — :meth:`record` feeds completed-task post-queuing
  times into windowed empirical CDFs; cached tails refresh lazily every
  ``refresh_interval`` observations, matching the paper's "periodical
  online updating process" at low cost.
* *Caching* — ``x_p^u`` is cached per (percentile, server-group
  signature) so the per-query work is a dict lookup plus an addition,
  keeping TailGuard lightweight as claimed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.distributions import (
    Distribution,
    MaxOfIID,
    MaxOfIndependent,
    OnlineEmpiricalCDF,
    QuantileInversionMemo,
    iid_max_quantile,
)
from repro.errors import ConfigurationError
from repro.types import ServiceClass


class DeadlineEstimator:
    """Translates query-level SLOs into task queuing deadlines."""

    def __init__(
        self,
        server_cdfs: Union[Distribution, Mapping[int, Distribution]],
        n_servers: Optional[int] = None,
        online_window: Optional[int] = None,
        refresh_interval: int = 1000,
        server_groups: Optional[Mapping[int, str]] = None,
        tail_cache_max: int = 4096,
    ) -> None:
        """
        Parameters
        ----------
        server_cdfs:
            Either a single :class:`Distribution` shared by all servers
            (the paper's offline homogeneous initialization) or a
            mapping ``server_id -> Distribution``.
        n_servers:
            Required when a shared distribution is given.
        online_window:
            When set, each server gets a windowed online estimator of
            this capacity, seeded from its offline distribution, and
            :meth:`record` updates it (paper §III.B.2).  ``None``
            disables online updating (static CDFs, as in §IV.A).
        refresh_interval:
            Number of recorded observations between cache refreshes
            when online updating is enabled.
        server_groups:
            Optional mapping ``server_id -> group name``.  Servers in
            the same group share one online estimator, mirroring the
            SaS testbed where "all 8 edge nodes in each cluster share
            the same CDF" (§IV.E).  Grouping also keeps the tail cache
            effective under random server selection.
        tail_cache_max:
            Bound on the number of cached ``x_p^u`` entries.  Online
            updating with random server selections can produce a new
            signature per query; when the cache reaches this size it is
            cleared wholesale (the next refresh would drop it anyway,
            and a full clear is cheaper than tracking recency).
        """
        if isinstance(server_cdfs, Distribution):
            if n_servers is None or n_servers < 1:
                raise ConfigurationError(
                    "n_servers is required with a shared distribution"
                )
            self._offline: Dict[int, Distribution] = {
                server: server_cdfs for server in range(n_servers)
            }
        else:
            if not server_cdfs:
                raise ConfigurationError("need at least one server CDF")
            self._offline = dict(server_cdfs)
            if n_servers is not None and n_servers != len(self._offline):
                raise ConfigurationError(
                    f"n_servers={n_servers} but {len(self._offline)} CDFs given"
                )
        self.n_servers = len(self._offline)

        if server_groups is not None:
            missing = [s for s in self._offline if s not in server_groups]
            if missing:
                raise ConfigurationError(f"servers without a group: {missing}")
        self._groups = dict(server_groups) if server_groups is not None else None

        self._online: Optional[Dict[int, OnlineEmpiricalCDF]] = None
        if online_window is not None:
            if online_window < 2:
                raise ConfigurationError(f"online_window too small: {online_window}")
            if self._groups is None:
                self._online = {
                    server: OnlineEmpiricalCDF(initial=dist, window=online_window)
                    for server, dist in self._offline.items()
                }
            else:
                shared: Dict[str, OnlineEmpiricalCDF] = {}
                for server, dist in self._offline.items():
                    group = self._groups[server]
                    if group not in shared:
                        shared[group] = OnlineEmpiricalCDF(
                            initial=dist, window=online_window
                        )
                self._online = {
                    server: shared[self._groups[server]]
                    for server in self._offline
                }
        self._refresh_interval = max(1, refresh_interval)
        self._updates_since_refresh = 0

        # Distinct distribution objects get small integer keys so the
        # tail cache can sign a server selection cheaply.
        self._dist_keys: Dict[int, int] = {}
        self._server_dist_key: Dict[int, int] = {}
        self._rebuild_signature_index()
        if tail_cache_max < 1:
            raise ConfigurationError(
                f"tail_cache_max must be >= 1, got {tail_cache_max}"
            )
        self._tail_cache_max = int(tail_cache_max)
        # Version-stamped memos: ``_tail_cache`` holds x_p^u inversions
        # (Eq. 2), ``_budget_memo`` the derived per-(class, fanout)
        # budgets (Eq. 5).  Both versions advance on every
        # :meth:`invalidate`, so neither can serve a value computed
        # from superseded CDFs.
        self._tail_cache = QuantileInversionMemo(self._tail_cache_max)
        self._budget_memo = QuantileInversionMemo(self._tail_cache_max)

    # ------------------------------------------------------------------
    # CDF bookkeeping
    # ------------------------------------------------------------------
    def _current_cdfs(self) -> Mapping[int, Distribution]:
        if self._online is not None:
            return self._online
        return self._offline

    def _rebuild_signature_index(self) -> None:
        self._dist_keys.clear()
        self._server_dist_key.clear()
        for server, dist in self._current_cdfs().items():
            key = self._dist_keys.setdefault(id(dist), len(self._dist_keys))
            self._server_dist_key[server] = key

    @property
    def homogeneous(self) -> bool:
        """True when every server currently shares one CDF object."""
        return len(self._dist_keys) == 1

    @property
    def online_enabled(self) -> bool:
        return self._online is not None

    def server_cdf(self, server_id: int) -> Distribution:
        """The current (online if enabled, else offline) CDF for a server."""
        try:
            return self._current_cdfs()[server_id]
        except KeyError:
            raise ConfigurationError(f"unknown server {server_id}") from None

    def record(self, server_id: int, post_queuing_time: float) -> None:
        """Feed one completed task's post-queuing time (online updating)."""
        if self._online is None:
            return
        try:
            self._online[server_id].update(post_queuing_time)
        except KeyError:
            raise ConfigurationError(f"unknown server {server_id}") from None
        self._updates_since_refresh += 1
        if self._updates_since_refresh >= self._refresh_interval:
            self.invalidate()

    def invalidate(self) -> None:
        """Drop cached tails so the next query re-reads the CDFs."""
        self._tail_cache.invalidate()
        self._budget_memo.invalidate()
        self._updates_since_refresh = 0

    def rebootstrap(self, server_id: int, dist: Distribution) -> None:
        """Replace one server's offline CDF with a re-estimated one.

        The overload layer's drift monitor calls this when the
        bootstrapped ``F_l^u`` no longer matches observed post-queuing
        samples (KS distance past threshold).  Every future budget is
        re-stamped from the new distribution: the signature index is
        rebuilt and the tail cache dropped.

        Only meaningful for offline (static) estimators — the online
        updating of §III.B.2 already tracks drift through its windowed
        empirical CDFs.
        """
        if self._online is not None:
            raise ConfigurationError(
                "rebootstrap applies to offline estimators; online "
                "updating already adapts to drift"
            )
        if server_id not in self._offline:
            raise ConfigurationError(f"unknown server {server_id}")
        self._offline[server_id] = dist
        self._rebuild_signature_index()
        self.invalidate()

    def hedge_delay(self, server_id: int, quantile: float) -> float:
        """Memoized hedge delay: ``quantile`` of the server's CDF (ms).

        The fault layer's quantile-mode :class:`~repro.faults.HedgePolicy`
        inverts the primary server's service CDF for its delay; routing
        the inversion through the version-stamped tail memo means it is
        computed once per distinct (distribution, quantile) pair *and*
        dropped whenever :meth:`rebootstrap` or an online refresh
        invalidates the estimator — a re-estimated CDF immediately
        yields re-derived hedge delays instead of stale ones.
        """
        try:
            dist_key = self._server_dist_key[server_id]
        except KeyError:
            raise ConfigurationError(f"unknown server {server_id}") from None
        cache_key = ("hedge", dist_key, float(quantile))
        cached = self._tail_cache.get(cache_key)
        if cached is None:
            cached = float(self.server_cdf(server_id).quantile(quantile))
            self._tail_cache.put(cache_key, cached)
        return cached

    # ------------------------------------------------------------------
    # Eq. 1-2: unloaded query tail
    # ------------------------------------------------------------------
    def _signature(self, servers: Sequence[int]) -> Tuple:
        # Hand-rolled counting: this runs once per query on the
        # heterogeneous path, and a Counter allocation per call is
        # measurably slower than a plain dict for the typical handful
        # of distinct distributions.
        counts: Dict[int, int] = {}
        dist_key = self._server_dist_key
        for server in servers:
            key = dist_key[server]
            counts[key] = counts.get(key, 0) + 1
        return tuple(sorted(counts.items()))

    def unloaded_tail(
        self,
        percentile: float,
        fanout: Optional[int] = None,
        servers: Optional[Sequence[int]] = None,
    ) -> float:
        """``x_p^u`` for a query (Eq. 2).

        Pass ``fanout`` alone for a homogeneous cluster (the common
        fast path — which servers are chosen cannot matter), or the
        explicit ``servers`` selection for heterogeneous clusters.
        """
        if not 0 < percentile < 100:
            raise ConfigurationError(
                f"percentile must be in (0, 100), got {percentile}"
            )
        q = percentile / 100.0

        if servers is None:
            if fanout is None:
                raise ConfigurationError("need fanout or servers")
            if fanout < 1 or fanout > self.n_servers:
                raise ConfigurationError(
                    f"fanout {fanout} outside [1, {self.n_servers}]"
                )
            if not self.homogeneous:
                raise ConfigurationError(
                    "heterogeneous cluster: pass the explicit server selection"
                )
            cache_key = (percentile, fanout)
            cached = self._tail_cache.get(cache_key)
            if cached is None:
                any_cdf = next(iter(self._current_cdfs().values()))
                cached = iid_max_quantile(any_cdf, fanout, q)
                self._tail_cache.put(cache_key, cached)
            return cached

        if fanout is not None and fanout != len(servers):
            raise ConfigurationError(
                f"fanout {fanout} does not match {len(servers)} servers"
            )
        missing = [s for s in servers if s not in self._server_dist_key]
        if missing:
            raise ConfigurationError(f"unknown servers {missing}")
        cache_key = (percentile, self._signature(servers))
        cached = self._tail_cache.get(cache_key)
        if cached is None:
            cached = self._heterogeneous_tail(q, servers)
            self._tail_cache.put(cache_key, cached)
        return cached

    def _heterogeneous_tail(self, q: float, servers: Sequence[int]) -> float:
        cdfs = self._current_cdfs()
        groups: Dict[int, Tuple[Distribution, int]] = {}
        for server in servers:
            key = self._server_dist_key[server]
            dist, count = groups.get(key, (cdfs[server], 0))
            groups[key] = (dist, count + 1)
        components = [
            MaxOfIID(dist, count) if count > 1 else dist
            for dist, count in groups.values()
        ]
        if len(components) == 1:
            component = components[0]
            return float(component.quantile(q))
        return float(MaxOfIndependent(components).quantile(q))

    # ------------------------------------------------------------------
    # Eq. 5-6: budget and deadline
    # ------------------------------------------------------------------
    def budget(
        self,
        service_class: ServiceClass,
        fanout: Optional[int] = None,
        servers: Optional[Sequence[int]] = None,
    ) -> float:
        """Task pre-dequeuing time budget ``T_b = x_p^SLO − x_p^u``.

        A non-positive budget means the SLO is unattainable even on an
        idle cluster: the unloaded tail alone exceeds the SLO.  The
        value is still returned (a negative deadline keeps EDF ordering
        meaningful); callers that must fail fast can check the sign.
        """
        if servers is None and fanout is not None:
            # Per-query hot path: memoize the whole budget keyed by
            # (class, fanout) so a repeat costs one dict probe instead
            # of re-deriving T_b from the tail cache.  Version-stamped:
            # an online-CDF refresh or rebootstrap invalidates it.
            key = (service_class.name, service_class.percentile,
                   service_class.slo_ms, fanout)
            cached = self._budget_memo.get(key)
            if cached is not None:
                return cached
            value = (service_class.slo_ms
                     - self.unloaded_tail(service_class.percentile, fanout))
            self._budget_memo.put(key, value)
            return value
        tail = self.unloaded_tail(service_class.percentile, fanout, servers)
        return service_class.slo_ms - tail

    def deadline(
        self,
        arrival_time: float,
        service_class: ServiceClass,
        fanout: Optional[int] = None,
        servers: Optional[Sequence[int]] = None,
    ) -> float:
        """Task queuing deadline ``t_D = t_0 + T_b`` (Eq. 6)."""
        return arrival_time + self.budget(service_class, fanout, servers)

    def budget_table(
        self,
        service_class: ServiceClass,
        fanouts: Iterable[int],
    ) -> Dict[int, float]:
        """Pre-computed budgets for a set of fanouts (the paper notes
        ``x_p^u(k_f)`` "can be done in the background for all possible
        k_f's in advance")."""
        return {k: self.budget(service_class, k) for k in fanouts}
