"""Query admission control (paper §III.C).

TailGuard tolerates a small fraction of tasks missing their queuing
deadlines without violating any tail-latency SLO (the SLO is a
percentile guarantee).  The controller tracks the deadline-miss ratio
over a moving window of recent tasks; while the ratio exceeds the
threshold ``R_th``, upcoming queries are rejected.

The window is doubly bounded, following §III.C/§IV.D: at most
``window_tasks`` recent tasks (the paper uses 100 000 ≈ 1000 fanout-100
queries) and, when ``window_ms`` is set, at most that much wall-clock
history ("the moving time window can be set to be the same as the time
window in which the tail latency SLOs should be guaranteed").  The time
bound is what lets the controller *recover* from a deep overload: once
rejection has drained the backlog, stale misses age out even though no
new tasks arrive, so admission resumes instead of latching shut.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Tuple, Type

from repro.errors import ConfigurationError

#: Observability hook signature: (admitted, now, miss_ratio) -> None.
DecisionHook = Callable[[bool, float, float], None]


class AdmissionController:
    """Interface: per-task feedback in, admit/reject decisions out.

    ``now`` is the current (simulation) time in ms; controllers without
    time-based state may ignore it.

    ``decision_hook`` is an optional observability callback invoked by
    stateful controllers on every :meth:`admit` decision with
    ``(admitted, now, miss_ratio)`` — how the trace recorder learns the
    observed miss ratio behind each reject.
    """

    decision_hook: Optional[DecisionHook] = None

    def admit(self, now: float = 0.0) -> bool:
        """Whether a query arriving at ``now`` should be admitted."""
        raise NotImplementedError

    def record_task(self, missed_deadline: bool, now: float = 0.0) -> None:
        """Feed the outcome of one dequeued task."""
        raise NotImplementedError

    def miss_ratio(self) -> float:
        """Current deadline-miss ratio over the window (0 when empty)."""
        raise NotImplementedError


@dataclass(frozen=True)
class AdmissionFactory:
    """Picklable admission-controller factory: a class plus kwargs.

    Sweeps that use admission control need a *fresh* stateful
    controller per load point, and the parallel experiment runner
    builds that controller worker-side — so the factory must cross a
    process boundary.  A ``(class, kwargs)`` pair pickles by reference
    where a closure or lambda cannot.

    >>> factory = AdmissionFactory(DeadlineMissRatioAdmission,
    ...                            {"threshold": 0.017})
    >>> controller = factory()
    """

    controller_cls: Type["AdmissionController"]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def __call__(self) -> "AdmissionController":
        return self.controller_cls(**self.kwargs)


class NoAdmission(AdmissionController):
    """Admit everything (the paper's default evaluation mode)."""

    def admit(self, now: float = 0.0) -> bool:
        return True

    def record_task(self, missed_deadline: bool, now: float = 0.0) -> None:
        pass

    def miss_ratio(self) -> float:
        return 0.0


class DeadlineMissRatioAdmission(AdmissionController):
    """Moving-window deadline-miss-ratio control (§III.C, §IV.D).

    Parameters
    ----------
    threshold:
        ``R_th``: reject queries while the window's miss ratio exceeds
        this (the paper calibrates 1.7% for Masstree).
    window_tasks:
        Maximum number of task outcomes retained.
    window_ms:
        Optional maximum age of a retained outcome.  Strongly
        recommended for overload experiments — without it a saturated
        window can never recover once arrivals stop being admitted.
    min_samples:
        Grace period: admit unconditionally until this many outcomes
        have been observed.
    mode:
        ``"on-off"`` (default) is the paper's literal rule: reject every
        query while the ratio exceeds ``R_th``.  ``"duty-cycle"`` is a
        stabilized variant for sustained-overload experiments: an
        admit probability adapts AIMD-style (multiplicative decrease
        while over threshold, additive increase while clearly under)
        and queries are thinned deterministically to that probability.
        On/off control over bursty miss processes latches into long
        all-reject phases — the backlog drained during rejection keeps
        the window full of misses — whereas the duty cycle settles near
        the sustainable rate, which is the behaviour Fig. 7 reports.
    decrease / increase / floor / ctl_interval_ms:
        Duty-cycle tuning: multiplicative decrease factor, additive
        increase step, the lowest admit probability, and how often (in
        simulation time) the probability may be adjusted.
    max_latch_ms:
        Anti-windup escape hatch.  With ``window_ms`` unset, an
        all-miss window has no way to age out once rejection stops the
        flow of new task outcomes — the controller latches shut forever
        even after the load vanishes.  When set, the entire window is
        flushed if no outcome has arrived for this long, so admission
        resumes on the next decision.
    """

    def __init__(
        self,
        threshold: float,
        window_tasks: int = 100_000,
        window_ms: Optional[float] = None,
        min_samples: int = 1_000,
        mode: str = "on-off",
        decrease: float = 0.85,
        increase: float = 0.05,
        floor: float = 0.02,
        ctl_interval_ms: float = 50.0,
        max_latch_ms: Optional[float] = None,
    ) -> None:
        if not 0 < threshold < 1:
            raise ConfigurationError(
                f"threshold must be a ratio in (0, 1), got {threshold}"
            )
        if window_tasks < 1:
            raise ConfigurationError(f"window must be >= 1, got {window_tasks}")
        if window_ms is not None and window_ms <= 0:
            raise ConfigurationError(f"window_ms must be positive, got {window_ms}")
        if min_samples < 1 or min_samples > window_tasks:
            raise ConfigurationError(
                f"min_samples must be in [1, window]; got {min_samples}"
            )
        if mode not in ("on-off", "duty-cycle"):
            raise ConfigurationError(
                f"mode must be 'on-off' or 'duty-cycle', got {mode!r}"
            )
        if not 0 < decrease < 1 or increase <= 0 or not 0 < floor <= 1:
            raise ConfigurationError("invalid duty-cycle tuning parameters")
        if ctl_interval_ms <= 0:
            raise ConfigurationError(
                f"ctl_interval_ms must be positive, got {ctl_interval_ms}"
            )
        if max_latch_ms is not None and max_latch_ms <= 0:
            raise ConfigurationError(
                f"max_latch_ms must be positive, got {max_latch_ms}"
            )
        self.threshold = float(threshold)
        self.window_tasks = int(window_tasks)
        self.window_ms = window_ms
        self.max_latch_ms = max_latch_ms
        self.min_samples = int(min_samples)
        self.mode = mode
        self._decrease = float(decrease)
        self._increase = float(increase)
        self._floor = float(floor)
        self._ctl_interval = float(ctl_interval_ms)
        self._admit_probability = 1.0
        self._duty_accumulator = 0.0
        self._last_control = -float("inf")
        self._entries: Deque[Tuple[float, bool]] = deque()
        self._misses = 0
        self._seen = 0
        self._admitted = 0
        self._rejected = 0

    def _evict(self, now: float) -> None:
        entries = self._entries
        if (self.max_latch_ms is not None and entries
                and now - entries[-1][0] > self.max_latch_ms):
            # The whole window is stale: no task outcome for longer
            # than the latch timeout.  Flush it wholesale so an
            # all-miss window recorded during a drained overload cannot
            # keep the controller shut forever.
            entries.clear()
            self._misses = 0
        while len(entries) > self.window_tasks:
            _, missed = entries.popleft()
            if missed:
                self._misses -= 1
        if self.window_ms is not None:
            horizon = now - self.window_ms
            while entries and entries[0][0] < horizon:
                _, missed = entries.popleft()
                if missed:
                    self._misses -= 1
        # Entries are appended in nondecreasing time order (simulation
        # clocks never run backwards), so eviction from the left must
        # preserve sortedness — the time-bound eviction above relies on
        # it.  O(1) endpoint check.
        assert not entries or entries[0][0] <= entries[-1][0], (
            "admission window out of order: record_task called with a "
            "time earlier than an already-recorded outcome"
        )

    def window_occupancy(self) -> float:
        """Fill fraction of the task-count window, in [0, 1]."""
        return len(self._entries) / self.window_tasks

    def record_task(self, missed_deadline: bool, now: float = 0.0) -> None:
        self._entries.append((now, missed_deadline))
        if missed_deadline:
            self._misses += 1
        self._seen += 1
        self._evict(now)

    def miss_ratio(self) -> float:
        if not self._entries:
            return 0.0
        return self._misses / len(self._entries)

    @property
    def admit_probability(self) -> float:
        """Current duty-cycle admit probability (1.0 in on-off mode
        unless rejecting)."""
        return self._admit_probability

    def _decide_on_off(self) -> bool:
        if self._seen < self.min_samples:
            return True
        return self.miss_ratio() <= self.threshold

    def _decide_duty_cycle(self, now: float) -> bool:
        if (self._seen >= self.min_samples
                and now - self._last_control >= self._ctl_interval):
            self._last_control = now
            ratio = self.miss_ratio()
            if ratio > self.threshold:
                self._admit_probability = max(
                    self._floor, self._admit_probability * self._decrease
                )
            elif ratio < 0.8 * self.threshold:
                self._admit_probability = min(
                    1.0, self._admit_probability + self._increase
                )
        # Deterministic thinning to the admit probability.
        self._duty_accumulator += self._admit_probability
        if self._duty_accumulator >= 1.0:
            self._duty_accumulator -= 1.0
            return True
        return False

    def admit(self, now: float = 0.0) -> bool:
        self._evict(now)
        if self.mode == "on-off":
            decision = self._decide_on_off()
        else:
            decision = self._decide_duty_cycle(now)
        if decision:
            self._admitted += 1
        else:
            self._rejected += 1
        if self.decision_hook is not None:
            self.decision_hook(decision, now, self.miss_ratio())
        return decision

    @property
    def admitted(self) -> int:
        """Queries admitted so far (decisions, not completions)."""
        return self._admitted

    @property
    def rejected(self) -> int:
        return self._rejected

    def rejection_rate(self) -> float:
        total = self._admitted + self._rejected
        return self._rejected / total if total else 0.0
