"""A task server on the DES kernel (paper Fig. 2, right side).

Each :class:`TaskServer` owns one waiting line (ordered by the active
queuing policy) and one service unit.  Tasks are enqueued with their
policy key; whenever the server goes idle it dequeues the head task,
samples a service time, and reports completion to a callback — the
query handler's merge path.

This is the composable "library" model.  The batch experiments use the
optimized event-calendar loop in :mod:`repro.cluster.simulation`, which
implements identical semantics (an equivalence test asserts this).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.policies import Policy
from repro.distributions import Distribution, SampleStream
from repro.errors import ConfigurationError
from repro.obs.events import (
    DEADLINE_MISS,
    SERVER_BUSY,
    SERVER_IDLE,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_ENQUEUE,
)
from repro.sim.engine import Environment, Interrupt
from repro.types import Task

#: Signature of the completion callback: (task, server) -> None.
CompletionCallback = Callable[[Task, "TaskServer"], None]


class TaskServer:
    """One task server with a single policy-ordered waiting line."""

    def __init__(
        self,
        env: Environment,
        server_id: int,
        policy: Policy,
        service_time: Distribution,
        rng: np.random.Generator,
        on_complete: Optional[CompletionCallback] = None,
        recorder=None,
    ) -> None:
        """``recorder`` is an optional :class:`repro.obs.TraceRecorder`;
        when absent (or a :class:`~repro.obs.NullRecorder`) the server
        pays a single boolean check per operation."""
        if server_id < 0:
            raise ConfigurationError(f"server_id must be >= 0, got {server_id}")
        self.env = env
        self.server_id = server_id
        self.policy = policy
        self.service_time = service_time
        self._stream = SampleStream(service_time, rng)
        self._queue = policy.create_queue()
        self._busy = False
        self.on_complete = on_complete
        #: Optional dequeue hook ``(task, server) -> None``, invoked
        #: once per task when its first service attempt begins (never
        #: on a pause-mode restart) — where the overload controller
        #: observes queuing-deadline outcomes, matching the fast path's
        #: dequeue-time feed.
        self.on_dequeue: Optional[CompletionCallback] = None
        #: Service duration of the most recent completion.  Distinct
        #: from the task's post-queuing time when a pause-mode restart
        #: resampled the service; the drift monitor wants the actual
        #: sample the server drew.
        self.last_duration = 0.0
        self._recorder = recorder if (recorder is not None
                                      and recorder.enabled) else None
        # Utilization accounting.
        self._busy_since = 0.0
        self._busy_total = 0.0
        self.tasks_served = 0
        # Fault-injection state (driven by repro.faults.kernel).
        self.down = False
        #: Service-time scale hook: ``(server_id, start_time) -> factor``
        #: applied to every sampled duration (straggler episodes).
        self.service_scale: Optional[Callable[[int, float], float]] = None
        self._current: Optional[Task] = None
        self._current_proc = None
        self._paused: Optional[Task] = None
        self._cancelled: set = set()   # queued tasks to skip (by identity)
        self._discard: set = set()     # in-service tasks whose result is void
        # Queues advertising supports_cancel (LazyEDFTaskQueue) take
        # cancellations directly; others fall back to the phantom set.
        self._queue_cancels = getattr(self._queue, "supports_cancel", False)

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        """Queue length including the in-service task.

        The load signal used by the fault layer's requeue/hedge target
        rule (:func:`repro.faults.pick_server`).  Lazily cancelled
        (phantom) entries still count — both simulation paths share
        that convention so the rule picks identical servers.
        """
        return len(self._queue) + (1 if self._busy else 0)

    def busy_time(self) -> float:
        """Cumulative busy time, including an in-progress task so far."""
        total = self._busy_total
        if self._busy:
            total += self.env.now - self._busy_since
        return total

    def utilization(self, since: float = 0.0) -> float:
        horizon = self.env.now - since
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time() / horizon)

    # ------------------------------------------------------------------
    def enqueue(self, task: Task, key: Tuple) -> None:
        """Accept a task; start it immediately if the server is idle.

        A down (crashed) server still accepts tasks into its queue —
        pause-mode semantics let them wait out the downtime; kill-mode
        dispatch redirects *before* calling this method.
        """
        if self._busy or self.down:
            rec = self._recorder
            if rec is not None:
                depth = self._queue.reorder_depth(key)
                self._queue.push(task, key)
                rec.emit(
                    TASK_ENQUEUE, self.env.now, server_id=self.server_id,
                    query_id=task.query_id, deadline=task.deadline,
                    slack=task.deadline - self.env.now,
                    extra={"queue_len": len(self._queue),
                           "reorder_depth": depth},
                )
            else:
                self._queue.push(task, key)
        else:
            if self._recorder is not None:
                self._recorder.emit(SERVER_BUSY, self.env.now,
                                    server_id=self.server_id)
            self._start(task)

    def _start(self, task: Task, restart: bool = False) -> None:
        self._busy = True
        self._busy_since = self.env.now
        duration = self._stream.next()
        if self.service_scale is not None:
            duration *= self.service_scale(self.server_id, self.env.now)
        self._current = task
        rec = self._recorder
        if not restart:
            # A pause-mode restart is not a second dequeue: the task
            # left the waiting line (and was judged against t_D) when
            # its first service attempt began.
            task.dequeue_time = self.env.now
            if rec is not None:
                slack = task.deadline - self.env.now
                rec.emit(TASK_DEQUEUE, self.env.now,
                         server_id=self.server_id, query_id=task.query_id,
                         deadline=task.deadline, slack=slack,
                         extra={"slot": task.slot})
                if slack < 0:
                    rec.emit(DEADLINE_MISS, self.env.now,
                             server_id=self.server_id, query_id=task.query_id,
                             deadline=task.deadline, slack=slack)
            if self.on_dequeue is not None:
                self.on_dequeue(task, self)
        self._current_proc = self.env.process(self._serve(task, duration))

    def _serve(self, task: Task, duration: float):
        try:
            yield self.env.timeout(duration)
        except Interrupt:
            # fail() interrupted this service; it owns the bookkeeping.
            return
        self.tasks_served += 1
        self._busy_total += self.env.now - self._busy_since
        self._busy = False
        self._current = None
        self._current_proc = None
        self.last_duration = duration
        rec = self._recorder
        if id(task) in self._discard:
            # A cancelled hedge loser: it held the server until now
            # (service is not preemptible) but its result is void.
            self._discard.discard(id(task))
        else:
            task.finish_time = self.env.now
            if rec is not None:
                rec.emit(TASK_COMPLETE, self.env.now,
                         server_id=self.server_id, query_id=task.query_id,
                         deadline=task.deadline,
                         extra={"duration": duration, "slot": task.slot})
            if self.on_complete is not None:
                self.on_complete(task, self)
        # The callback may have enqueued more work; only pull from the
        # queue if we are still idle (and not crashed meanwhile).
        if not self._busy and not self.down:
            if not self._start_next() and rec is not None:
                rec.emit(SERVER_IDLE, self.env.now, server_id=self.server_id)

    def _start_next(self) -> bool:
        """Start the next live queued task, skipping lazily cancelled
        (phantom) entries.  Returns whether a task was started."""
        if self._queue_cancels:
            task, _ = self._queue.pop_live()
            if task is None:
                return False
            self._start(task)
            return True
        while len(self._queue) > 0:
            task = self._queue.pop()
            if id(task) in self._cancelled:
                self._cancelled.discard(id(task))
                continue
            self._start(task)
            return True
        return False

    # ------------------------------------------------------------------
    # Fault-injection primitives (driven by repro.faults.kernel; the
    # semantics contract lives in docs/faults.md).
    # ------------------------------------------------------------------
    def fail(self, kill: bool) -> list:
        """Crash the server.  Returns the killed tasks (kill mode) in
        drain order: the in-flight victim first, then queued tasks in
        policy order.  Pause mode returns ``[]`` and holds the in-flight
        task aside to restart from scratch at recovery."""
        self.down = True
        victims: list = []
        if self._busy:
            self._busy_total += self.env.now - self._busy_since
            self._busy = False
            inflight, self._current = self._current, None
            proc, self._current_proc = self._current_proc, None
            if proc is not None and proc.is_alive:
                proc.interrupt("server_fail")
            if id(inflight) in self._discard:
                # A cancelled loser dies with the server: nobody is
                # waiting for it, so it is neither paused nor retried.
                self._discard.discard(id(inflight))
            elif kill:
                victims.append(inflight)
            else:
                self._paused = inflight
        if kill:
            if self._queue_cancels:
                while True:
                    task, _ = self._queue.pop_live()
                    if task is None:
                        break
                    victims.append(task)
            else:
                while len(self._queue) > 0:
                    task = self._queue.pop()
                    if id(task) in self._cancelled:
                        self._cancelled.discard(id(task))
                        continue
                    victims.append(task)
        return victims

    def recover(self) -> None:
        """Come back up: restart the paused in-flight task (fresh
        service-time sample), else pull from the queue."""
        self.down = False
        if self._paused is not None:
            task, self._paused = self._paused, None
            if self._recorder is not None:
                self._recorder.emit(SERVER_BUSY, self.env.now,
                                    server_id=self.server_id)
            self._start(task, restart=True)
        elif self._start_next() and self._recorder is not None:
            self._recorder.emit(SERVER_BUSY, self.env.now,
                                server_id=self.server_id)

    def cancel(self, task: Task) -> None:
        """Cancel one task copy.  Queued copies become phantoms removed
        lazily at pop time; the in-service copy runs to completion but
        its result is discarded (service is not preemptible)."""
        if task is self._current:
            self._discard.add(id(task))
        elif task is self._paused:
            # A paused loser simply evaporates: nothing to restart at
            # recovery.
            self._paused = None
        elif self._queue_cancels:
            self._queue.cancel(task)
        else:
            self._cancelled.add(id(task))
