"""A task server on the DES kernel (paper Fig. 2, right side).

Each :class:`TaskServer` owns one waiting line (ordered by the active
queuing policy) and one service unit.  Tasks are enqueued with their
policy key; whenever the server goes idle it dequeues the head task,
samples a service time, and reports completion to a callback — the
query handler's merge path.

This is the composable "library" model.  The batch experiments use the
optimized event-calendar loop in :mod:`repro.cluster.simulation`, which
implements identical semantics (an equivalence test asserts this).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.policies import Policy
from repro.distributions import Distribution, SampleStream
from repro.errors import ConfigurationError
from repro.obs.events import (
    DEADLINE_MISS,
    SERVER_BUSY,
    SERVER_IDLE,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_ENQUEUE,
)
from repro.sim.engine import Environment
from repro.types import Task

#: Signature of the completion callback: (task, server) -> None.
CompletionCallback = Callable[[Task, "TaskServer"], None]


class TaskServer:
    """One task server with a single policy-ordered waiting line."""

    def __init__(
        self,
        env: Environment,
        server_id: int,
        policy: Policy,
        service_time: Distribution,
        rng: np.random.Generator,
        on_complete: Optional[CompletionCallback] = None,
        recorder=None,
    ) -> None:
        """``recorder`` is an optional :class:`repro.obs.TraceRecorder`;
        when absent (or a :class:`~repro.obs.NullRecorder`) the server
        pays a single boolean check per operation."""
        if server_id < 0:
            raise ConfigurationError(f"server_id must be >= 0, got {server_id}")
        self.env = env
        self.server_id = server_id
        self.policy = policy
        self.service_time = service_time
        self._stream = SampleStream(service_time, rng)
        self._queue = policy.create_queue()
        self._busy = False
        self.on_complete = on_complete
        self._recorder = recorder if (recorder is not None
                                      and recorder.enabled) else None
        # Utilization accounting.
        self._busy_since = 0.0
        self._busy_total = 0.0
        self.tasks_served = 0

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def busy_time(self) -> float:
        """Cumulative busy time, including an in-progress task so far."""
        total = self._busy_total
        if self._busy:
            total += self.env.now - self._busy_since
        return total

    def utilization(self, since: float = 0.0) -> float:
        horizon = self.env.now - since
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time() / horizon)

    # ------------------------------------------------------------------
    def enqueue(self, task: Task, key: Tuple) -> None:
        """Accept a task; start it immediately if the server is idle."""
        if self._busy:
            rec = self._recorder
            if rec is not None:
                depth = self._queue.reorder_depth(key)
                self._queue.push(task, key)
                rec.emit(
                    TASK_ENQUEUE, self.env.now, server_id=self.server_id,
                    query_id=task.query_id, deadline=task.deadline,
                    slack=task.deadline - self.env.now,
                    extra={"queue_len": len(self._queue),
                           "reorder_depth": depth},
                )
            else:
                self._queue.push(task, key)
        else:
            if self._recorder is not None:
                self._recorder.emit(SERVER_BUSY, self.env.now,
                                    server_id=self.server_id)
            self._start(task)

    def _start(self, task: Task) -> None:
        self._busy = True
        self._busy_since = self.env.now
        task.dequeue_time = self.env.now
        duration = self._stream.next()
        rec = self._recorder
        if rec is not None:
            slack = task.deadline - self.env.now
            rec.emit(TASK_DEQUEUE, self.env.now, server_id=self.server_id,
                     query_id=task.query_id, deadline=task.deadline,
                     slack=slack)
            if slack < 0:
                rec.emit(DEADLINE_MISS, self.env.now,
                         server_id=self.server_id, query_id=task.query_id,
                         deadline=task.deadline, slack=slack)
        self.env.process(self._serve(task, duration))

    def _serve(self, task: Task, duration: float):
        yield self.env.timeout(duration)
        task.finish_time = self.env.now
        self.tasks_served += 1
        self._busy_total += self.env.now - self._busy_since
        self._busy = False
        rec = self._recorder
        if rec is not None:
            rec.emit(TASK_COMPLETE, self.env.now, server_id=self.server_id,
                     query_id=task.query_id, deadline=task.deadline,
                     extra={"duration": duration})
        if self.on_complete is not None:
            self.on_complete(task, self)
        # The callback may have enqueued more work; only pull from the
        # queue if we are still idle.
        if not self._busy and len(self._queue) > 0:
            self._start(self._queue.pop())
        elif rec is not None and not self._busy:
            rec.emit(SERVER_IDLE, self.env.now, server_id=self.server_id)
