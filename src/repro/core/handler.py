"""The mid-tier query handler (paper Fig. 1/Fig. 2).

For each admitted query the handler determines the fanout's target
servers, computes the task queuing deadline ``t_D`` (Eq. 6), dispatches
one task per server with the policy's ordering key, merges task
completions, and feeds the online-updating and admission-control loops.

This class composes with the DES kernel (:mod:`repro.sim`); batch
experiments use :mod:`repro.cluster.simulation` instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.admission import AdmissionController, NoAdmission
from repro.core.deadline import DeadlineEstimator
from repro.core.policies import Policy
from repro.core.server import TaskServer
from repro.errors import ConfigurationError
from repro.obs.events import (
    QUERY_ARRIVE,
    QUERY_COMPLETE,
    QUERY_REJECTED,
    QUERY_TIMEOUT,
)
from repro.sim.engine import Environment, Event
from repro.types import QueryRecord, QuerySpec, Task


class QueryHandler:
    """Dispatches queries to task servers and merges their results."""

    def __init__(
        self,
        env: Environment,
        servers: Sequence[TaskServer],
        estimator: DeadlineEstimator,
        policy: Policy,
        rng: np.random.Generator,
        admission: Optional[AdmissionController] = None,
        dispatch_delay=None,
        recorder=None,
    ) -> None:
        """
        ``dispatch_delay`` (a :class:`~repro.distributions.Distribution`
        or None) models decentralized queuing (paper §III.B: when "task
        queuing occurs at the task server", the pre-dequeuing time
        "also includes task dispatching time"): each task waits a
        sampled network/dispatch delay before entering its server's
        queue.  ``None`` is the paper's central-queuing default.

        ``recorder`` (a :class:`repro.obs.TraceRecorder`) captures
        handler-level lifecycle events (query arrivals/rejections);
        pass the same recorder to the :class:`TaskServer`\\ s for the
        per-task events.
        """
        if not servers:
            raise ConfigurationError("need at least one task server")
        if estimator.n_servers != len(servers):
            raise ConfigurationError(
                f"estimator knows {estimator.n_servers} servers, "
                f"handler has {len(servers)}"
            )
        self.env = env
        self.servers = list(servers)
        self.estimator = estimator
        self.policy = policy
        self.admission = admission if admission is not None else NoAdmission()
        self._recorder = recorder if (recorder is not None
                                      and recorder.enabled) else None
        self._rng = rng
        self._dispatch_stream = None
        if dispatch_delay is not None:
            from repro.distributions import SampleStream

            self._dispatch_stream = SampleStream(dispatch_delay,
                                                 rng.spawn(1)[0])
        self._inflight: Dict[int, Tuple[QueryRecord, Event, List[Task]]] = {}
        self._remaining: Dict[int, int] = {}
        self.completed: List[QueryRecord] = []
        self.rejected: List[QueryRecord] = []
        #: Queries that permanently lost a task slot to a failure.
        self.failed: List[QueryRecord] = []
        #: Optional :class:`repro.faults.FaultManager` (set by
        #: :func:`repro.faults.install_faults`): owns dispatch under a
        #: fault plan and filters completions down to winning copies.
        self.fault_manager = None
        #: Optional :class:`repro.overload.OverloadController` (set by
        #: :func:`repro.overload.install_overload`): votes on every
        #: submitted query — admit, admit degraded at reduced fanout,
        #: re-route around open breakers, or reject.
        self.overload = None
        #: Optional :class:`repro.replicas.ReplicaController` (set by
        #: :func:`repro.replicas.install_replicas`): scored fanout
        #: placement at submit when its scorer asks for it.
        self.replicas = None
        for server in self.servers:
            if server.on_complete is not None:
                raise ConfigurationError(
                    f"server {server.server_id} already has a completion callback"
                )
            server.on_complete = self._task_done

    # ------------------------------------------------------------------
    def choose_servers(self, spec: QuerySpec) -> Tuple[int, ...]:
        """The ``k_f`` distinct servers the query's tasks go to.

        Pre-assigned servers (trace replay, SaS placement) win;
        otherwise a uniform random selection without replacement, with
        the full-cluster OLDI case short-circuited.
        """
        if spec.servers is not None:
            return spec.servers
        n = len(self.servers)
        if spec.fanout > n:
            raise ConfigurationError(
                f"query {spec.query_id}: fanout {spec.fanout} exceeds "
                f"cluster size {n}"
            )
        if spec.fanout == n:
            return tuple(range(n))
        picks = self._rng.choice(n, size=spec.fanout, replace=False)
        return tuple(int(s) for s in picks)

    def submit(
        self,
        spec: QuerySpec,
        deadline: Optional[float] = None,
    ) -> Tuple[QueryRecord, Event]:
        """Dispatch one query.

        Returns the (mutable) :class:`QueryRecord` and an event that
        triggers with the record when the query completes.  A rejected
        query's event triggers immediately with ``record.rejected``
        set.  ``deadline`` overrides Eq. 6 (used by the request-level
        decomposition, which assigns per-query budgets itself).
        """
        done = self.env.event()
        record = QueryRecord(spec=spec)
        rec = self._recorder
        if rec is not None:
            rec.inc("queries_arrived")
            rec.emit(QUERY_ARRIVE, self.env.now, query_id=spec.query_id,
                     class_name=spec.service_class.name, fanout=spec.fanout)
        if not self.admission.admit(self.env.now):
            record.rejected = True
            self.rejected.append(record)
            if rec is not None:
                rec.inc("queries_rejected")
                rec.emit(QUERY_REJECTED, self.env.now,
                         query_id=spec.query_id,
                         class_name=spec.service_class.name,
                         fanout=spec.fanout,
                         extra={"miss_ratio": self.admission.miss_ratio()})
            done.succeed(record)
            return record, done

        servers = self.choose_servers(spec)
        if (self.replicas is not None and spec.servers is None
                and self.replicas.scorer.scored_fanout):
            # The nominal uniform draw above still consumed the RNG, so
            # downstream streams are unperturbed; the slots just go to
            # the k best-scored servers instead.
            servers = tuple(self.replicas.place_fanout(
                spec.fanout, [server.depth for server in self.servers]))
        if self.overload is not None and deadline is None:
            decision = self.overload.route_query(
                self.env.now, spec.query_id, spec.service_class, servers,
                [server.depth for server in self.servers],
            )
            if decision is None:
                record.rejected = True
                self.rejected.append(record)
                if rec is not None:
                    rec.inc("queries_rejected")
                    rec.emit(QUERY_REJECTED, self.env.now,
                             query_id=spec.query_id,
                             class_name=spec.service_class.name,
                             fanout=spec.fanout,
                             extra={"miss_ratio": self.overload.miss_ratio()})
                done.succeed(record)
                return record, done
            servers = decision.servers
            deadline = decision.deadline
            record.coverage = decision.coverage
            record.degraded = decision.degraded
        if deadline is None:
            if self.estimator.homogeneous:
                deadline = self.estimator.deadline(
                    spec.arrival_time, spec.service_class, fanout=spec.fanout
                )
            else:
                deadline = self.estimator.deadline(
                    spec.arrival_time, spec.service_class, servers=servers
                )
        record.deadline = deadline
        key = self.policy.queue_key(spec.arrival_time, spec.service_class, deadline)

        tasks = [
            Task(
                query_id=spec.query_id,
                server_id=server_id,
                deadline=deadline,
                class_priority=spec.service_class.priority,
                enqueue_time=spec.arrival_time,
                slot=slot,
            )
            for slot, server_id in enumerate(servers)
        ]
        self._inflight[spec.query_id] = (record, done, tasks)
        self._remaining[spec.query_id] = len(tasks)
        if self.fault_manager is not None:
            self.fault_manager.dispatch(spec, tasks, key, deadline)
            return record, done
        for task in tasks:
            if self._dispatch_stream is None:
                self.servers[task.server_id].enqueue(task, key)
            else:
                self.env.process(self._dispatch(task, key))
        return record, done

    def _dispatch(self, task: Task, key: Tuple):
        """Deliver a task to its server after a sampled dispatch delay."""
        yield self.env.timeout(self._dispatch_stream.next())
        self.servers[task.server_id].enqueue(task, key)

    # ------------------------------------------------------------------
    def _task_done(self, task: Task, server: TaskServer) -> None:
        """Merge path: one task result arrived at the handler."""
        if self.fault_manager is not None:
            if not self.fault_manager.on_complete(task, server):
                return  # a stale copy: its slot already won elsewhere
        self.estimator.record(task.server_id, task.post_queuing_time)
        if self.overload is not None:
            # Drift monitoring wants the service sample the server
            # actually drew (a pause-mode restart resamples, so the
            # task's post-queuing time is not it).
            self.overload.on_task_complete(task.server_id,
                                           server.last_duration, self.env.now)
        missed = task.missed_deadline
        self.admission.record_task(missed, self.env.now)

        record, done, _ = self._inflight[task.query_id]
        if missed:
            record.tasks_missed_deadline += 1
        self._remaining[task.query_id] -= 1
        if self._remaining[task.query_id] == 0:
            if record.failed:
                # Another slot was permanently lost: the query failed
                # even though this slot finished.
                self.failed.append(record)
            else:
                record.finish_time = self.env.now
                self.completed.append(record)
                rec = self._recorder
                if rec is not None:
                    latency = self.env.now - record.spec.arrival_time
                    rec.observe_latency(latency)
                    rec.inc("queries_completed")
                    rec.emit(QUERY_COMPLETE, self.env.now,
                             query_id=task.query_id,
                             class_name=record.spec.service_class.name,
                             fanout=record.spec.fanout,
                             extra={"latency": latency})
            del self._inflight[task.query_id]
            del self._remaining[task.query_id]
            done.succeed(record)

    def _slot_failed(self, query_id: int) -> None:
        """A task slot was permanently lost: the query can never
        complete.  Its record keeps ``finish_time`` unset (latency is
        undefined) and lands on :attr:`failed` once all slots resolve."""
        record, done, _ = self._inflight[query_id]
        rec = self._recorder
        if rec is not None and not record.failed:
            # First slot loss: the query just became permanently failed.
            rec.inc("queries_timed_out")
            rec.emit(QUERY_TIMEOUT, self.env.now, query_id=query_id,
                     class_name=record.spec.service_class.name,
                     fanout=record.spec.fanout)
        record.failed = True
        self._remaining[query_id] -= 1
        if self._remaining[query_id] == 0:
            self.failed.append(record)
            del self._inflight[query_id]
            del self._remaining[query_id]
            done.succeed(record)

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def drive(self, specs: Sequence[QuerySpec]):
        """A kernel process that submits specs at their arrival times.

        Usage: ``env.process(handler.drive(specs)); env.run()``.
        """
        for spec in specs:
            delay = spec.arrival_time - self.env.now
            if delay < 0:
                raise ConfigurationError(
                    f"query {spec.query_id} arrives in the past "
                    f"({spec.arrival_time} < {self.env.now}); sort the specs"
                )
            if delay > 0:
                yield self.env.timeout(delay)
            self.submit(spec)
