"""TailGuard's core: the paper's primary contribution.

* :mod:`repro.core.deadline` — task decomposition: translate (SLO,
  fanout) into a task queuing deadline (Eq. 1–6);
* :mod:`repro.core.policies` — the TF-EDFQ queue and the FIFO / PRIQ /
  T-EDFQ baselines (§III.A);
* :mod:`repro.core.admission` — moving-window query admission control
  (§III.C);
* :mod:`repro.core.server` / :mod:`repro.core.handler` — task servers
  and the mid-tier query handler, composable on the DES kernel;
* :mod:`repro.core.requests` — request-level decomposition (Eq. 7).
"""

from repro.core.admission import (
    AdmissionController,
    AdmissionFactory,
    DeadlineMissRatioAdmission,
    NoAdmission,
)
from repro.core.deadline import DeadlineEstimator
from repro.core.policies import (
    EDFTaskQueue,
    FIFOTaskQueue,
    POLICIES,
    Policy,
    PriorityTaskQueue,
    TaskQueueBase,
    WRRPolicy,
    WeightedRoundRobinTaskQueue,
    get_policy,
)
from repro.core.handler import QueryHandler
from repro.core.server import TaskServer
from repro.core.requests import (
    BudgetAssignment,
    EqualSplit,
    ProportionalToTail,
    RequestPlanner,
    SloSplit,
)

__all__ = [
    "AdmissionController",
    "AdmissionFactory",
    "BudgetAssignment",
    "DeadlineEstimator",
    "DeadlineMissRatioAdmission",
    "EDFTaskQueue",
    "EqualSplit",
    "FIFOTaskQueue",
    "NoAdmission",
    "POLICIES",
    "Policy",
    "PriorityTaskQueue",
    "ProportionalToTail",
    "QueryHandler",
    "RequestPlanner",
    "SloSplit",
    "TaskQueueBase",
    "TaskServer",
    "WRRPolicy",
    "WeightedRoundRobinTaskQueue",
    "get_policy",
]
