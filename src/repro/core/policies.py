"""Task queuing policies (paper §III.A).

All four policies share one structure: each task server has a single
waiting line, and the policy determines the *ordering key* of a task in
that line.  Because all tasks of a query share the same deadline, the
key is computed once per query:

* **FIFO** — key is the arrival time (insertion order).
* **PRIQ** — strict class priority, FIFO within a class.
* **T-EDFQ** — earliest deadline first with the fanout-*unaware*
  deadline ``t_D = t_0 + x_p^SLO``.
* **TF-EDFQ (TailGuard)** — earliest deadline first with the
  fanout-aware deadline ``t_D = t_0 + x_p^SLO − x_p^u(k_f)`` (Eq. 6).

With a single service class, PRIQ and T-EDFQ degenerate to FIFO
(§III.A), which the integration tests assert.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.types import ServiceClass


class TaskQueueBase:
    """A server's waiting line: tasks ordered by a policy-specific key."""

    def push(self, task: Any, key: Tuple) -> None:
        raise NotImplementedError

    def pop(self) -> Any:
        """Remove and return the task at the head; raises IndexError if empty."""
        raise NotImplementedError

    def reorder_depth(self, key: Tuple) -> int:
        """How many queued tasks a push with ``key`` would jump ahead of.

        Observability-only (the trace recorder reports it as the queue
        reorder depth); O(n) for ordered queues, so it is never called
        on the untraced hot path.  FIFO-like queues return 0.
        """
        return 0

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class FIFOTaskQueue(TaskQueueBase):
    """First-in-first-out waiting line."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: Deque[Any] = deque()

    def push(self, task: Any, key: Tuple) -> None:
        self._items.append(task)

    def pop(self) -> Any:
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)


class EDFTaskQueue(TaskQueueBase):
    """Earliest-deadline-first waiting line (min-heap on the key).

    Ties broken by insertion order so the ordering is deterministic and
    the policy is work-conserving FIFO among equal deadlines.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple] = []
        self._seq = 0

    def push(self, task: Any, key: Tuple) -> None:
        heapq.heappush(self._heap, (key, self._seq, task))
        self._seq += 1

    def pop(self) -> Any:
        return heapq.heappop(self._heap)[2]

    def reorder_depth(self, key: Tuple) -> int:
        """Tasks already queued that the new key would overtake (EDF:
        strictly later deadlines)."""
        return sum(1 for entry in self._heap if key < entry[0])

    def __len__(self) -> int:
        return len(self._heap)


class LazyEDFTaskQueue(EDFTaskQueue):
    """EDF waiting line with O(1) task cancellation (lazy deletion).

    Fault mitigation cancels queued tasks constantly — hedge losers,
    timed-out copies, crash-killed queues.  Rebuilding a heap per
    cancellation is O(n); instead each entry is a mutable slot
    ``[key, seq, task, live]`` reachable through a handle map, and
    :meth:`cancel` just flips ``live`` — the dead slot stays in the
    heap until it surfaces.

    Two deliberate semantics, matching the simulators' accounting for
    phantom (cancelled-in-place) tasks:

    * ``len()`` counts dead slots too.  Queue depths drive retry/hedge
      server selection, and both simulation paths count phantoms until
      they are popped; reporting live entries only would diverge them.
    * :meth:`pop` raises :class:`KeyError`-free ``IndexError`` only
      when no live entry remains; use :meth:`pop_live` to learn how
      many slots (dead + the live one) were physically removed.
    """

    __slots__ = ("_handles",)

    #: Simulators test this to route cancellation through the queue
    #: instead of an external phantom set.
    supports_cancel = True

    def __init__(self) -> None:
        super().__init__()
        # Keyed by id(task): tasks need not be hashable, and both
        # simulators identify a queued copy by object identity anyway.
        # The heap entry keeps the task strongly referenced, so ids
        # cannot be recycled while a handle is outstanding.
        self._handles: Dict[int, List] = {}

    def push(self, task: Any, key: Tuple) -> None:
        entry = [key, self._seq, task, True]
        self._handles[id(task)] = entry
        heapq.heappush(self._heap, entry)
        self._seq += 1

    def cancel(self, task: Any) -> bool:
        """Mark a queued task dead.  Returns False if it is not queued
        live (never pushed, already popped, or already cancelled).
        Identity-based: pass the same object that was pushed."""
        entry = self._handles.pop(id(task), None)
        if entry is None or not entry[3]:
            return False
        entry[3] = False
        return True

    def pop(self) -> Any:
        task, _ = self.pop_live()
        if task is None:
            raise IndexError("pop from empty queue")
        return task

    def pop_live(self) -> Tuple[Optional[Any], int]:
        """Pop until a live entry surfaces.

        Returns ``(task, n_popped)`` where ``n_popped`` counts every
        slot physically removed, dead slots included — callers tracking
        queued-task totals (which include phantoms) subtract it.  When
        only dead slots remained, returns ``(None, n_popped)`` with the
        queue now empty.
        """
        heap = self._heap
        popped = 0
        while heap:
            entry = heapq.heappop(heap)
            popped += 1
            if entry[3]:
                task = entry[2]
                del self._handles[id(task)]
                return task, popped
        return None, popped

    def reorder_depth(self, key: Tuple) -> int:
        """Counts dead slots too — phantoms occupy queue positions
        until popped, exactly as the simulators account them."""
        return sum(1 for entry in self._heap if key < entry[0])

    def __len__(self) -> int:
        return len(self._heap)


class PriorityTaskQueue(TaskQueueBase):
    """Strict priority across classes, FIFO within each class (PRIQ).

    The key must be ``(priority, ...)``; the leading integer selects the
    per-class FIFO lane.
    """

    __slots__ = ("_lanes", "_size")

    def __init__(self) -> None:
        self._lanes: Dict[int, Deque[Any]] = {}
        self._size = 0

    def push(self, task: Any, key: Tuple) -> None:
        priority = int(key[0])
        lane = self._lanes.get(priority)
        if lane is None:
            lane = deque()
            self._lanes[priority] = lane
        lane.append(task)
        self._size += 1

    def pop(self) -> Any:
        if self._size == 0:
            raise IndexError("pop from empty queue")
        for priority in sorted(self._lanes):
            lane = self._lanes[priority]
            if lane:
                self._size -= 1
                return lane.popleft()
        raise IndexError("pop from empty queue")  # pragma: no cover

    def reorder_depth(self, key: Tuple) -> int:
        """Tasks in strictly lower-priority lanes the new task overtakes."""
        priority = int(key[0])
        return sum(len(lane) for p, lane in self._lanes.items()
                   if p > priority)

    def __len__(self) -> int:
        return self._size


class WeightedRoundRobinTaskQueue(TaskQueueBase):
    """Weighted round-robin across class lanes, FIFO within each lane.

    A classic middle ground between FIFO (class-blind) and PRIQ
    (starves low classes): each class gets service shares proportional
    to its weight via smooth weighted round-robin over the non-empty
    lanes.  Keys must be ``(priority, ...)`` like PRIQ's.
    """

    __slots__ = ("_lanes", "_weights", "_credit", "_size", "_default_weight")

    def __init__(self, weights: Dict[int, float], default_weight: float = 1.0):
        if not weights and default_weight <= 0:
            raise ConfigurationError("need positive weights")
        if any(w <= 0 for w in weights.values()) or default_weight <= 0:
            raise ConfigurationError("weights must be positive")
        self._weights = dict(weights)
        self._default_weight = float(default_weight)
        self._lanes: Dict[int, Deque[Any]] = {}
        self._credit: Dict[int, float] = {}
        self._size = 0

    def push(self, task: Any, key: Tuple) -> None:
        priority = int(key[0])
        lane = self._lanes.get(priority)
        if lane is None:
            lane = deque()
            self._lanes[priority] = lane
            self._credit.setdefault(priority, 0.0)
        lane.append(task)
        self._size += 1

    def pop(self) -> Any:
        if self._size == 0:
            raise IndexError("pop from empty queue")
        # Smooth WRR: add each non-empty lane's weight to its credit,
        # serve the lane with the highest credit, charge it the total.
        active = [p for p, lane in self._lanes.items() if lane]
        total = 0.0
        for priority in active:
            weight = self._weights.get(priority, self._default_weight)
            self._credit[priority] += weight
            total += weight
        # Ties resolved toward the numerically higher-priority class
        # (lower number) for determinism.
        chosen = max(active, key=lambda p: (self._credit[p], -p))
        self._credit[chosen] -= total
        self._size -= 1
        return self._lanes[chosen].popleft()

    def __len__(self) -> int:
        return self._size


class Policy:
    """A named queuing policy: key computation + queue construction."""

    #: Registry name, e.g. ``"tailguard"``.
    name: str = ""
    #: Whether :meth:`queue_key` consumes the fanout-aware deadline.
    uses_fanout: bool = False

    def queue_key(self, arrival_time: float, service_class: ServiceClass,
                  tf_deadline: float) -> Tuple:
        """Ordering key for all tasks of one query.

        ``tf_deadline`` is the TailGuard deadline ``t_D`` of Eq. 6; it
        is always available (the simulator computes it for deadline-miss
        accounting) but only TF-EDFQ orders by it.
        """
        raise NotImplementedError

    def create_queue(self) -> TaskQueueBase:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Policy {self.name}>"


class FIFOPolicy(Policy):
    name = "fifo"

    def queue_key(self, arrival_time: float, service_class: ServiceClass,
                  tf_deadline: float) -> Tuple:
        return (arrival_time,)

    def create_queue(self) -> TaskQueueBase:
        return FIFOTaskQueue()


class PRIQPolicy(Policy):
    name = "priq"

    def queue_key(self, arrival_time: float, service_class: ServiceClass,
                  tf_deadline: float) -> Tuple:
        return (service_class.priority, arrival_time)

    def create_queue(self) -> TaskQueueBase:
        return PriorityTaskQueue()


class TEDFPolicy(Policy):
    """Tail-latency-SLO-aware EDF: deadline ``t_0 + x_p^SLO``."""

    name = "t-edf"

    def queue_key(self, arrival_time: float, service_class: ServiceClass,
                  tf_deadline: float) -> Tuple:
        return (arrival_time + service_class.slo_ms,)

    def create_queue(self) -> TaskQueueBase:
        return LazyEDFTaskQueue()


class TFEDFPolicy(Policy):
    """TailGuard's TF-EDFQ: deadline ``t_0 + x_p^SLO − x_p^u(k_f)``."""

    name = "tailguard"
    uses_fanout = True

    def queue_key(self, arrival_time: float, service_class: ServiceClass,
                  tf_deadline: float) -> Tuple:
        return (tf_deadline,)

    def create_queue(self) -> TaskQueueBase:
        return LazyEDFTaskQueue()


class WRRPolicy(Policy):
    """Weighted round-robin across classes (an extra baseline).

    Not part of the paper's comparison; included because weighted
    sharing is the other standard answer to PRIQ's starvation problem,
    and it makes a useful contrast in the extension experiments.  The
    default weights give class priority 0 twice the share of priority 1
    and so on (weight = 1 / (priority + 1)).
    """

    name = "wrr"

    def __init__(self, weights: Optional[Dict[int, float]] = None) -> None:
        self.weights = dict(weights) if weights is not None else {}

    def queue_key(self, arrival_time: float, service_class: ServiceClass,
                  tf_deadline: float) -> Tuple:
        return (service_class.priority, arrival_time)

    def create_queue(self) -> TaskQueueBase:
        if self.weights:
            return WeightedRoundRobinTaskQueue(self.weights)
        return WeightedRoundRobinTaskQueue(
            {priority: 1.0 / (priority + 1) for priority in range(16)}
        )


#: All queuing policies compared in the paper (plus the WRR extension),
#: keyed by name.
POLICIES: Dict[str, Policy] = {
    policy.name: policy
    for policy in (FIFOPolicy(), PRIQPolicy(), TEDFPolicy(), TFEDFPolicy(),
                   WRRPolicy())
}

#: Aliases accepted by :func:`get_policy`.
_ALIASES = {
    "tf-edf": "tailguard",
    "tf-edfq": "tailguard",
    "t-edfq": "t-edf",
    "tedf": "t-edf",
    "edf": "t-edf",
}


def get_policy(name: str) -> Policy:
    """Look up a policy by name (case-insensitive, aliases accepted)."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return POLICIES[key]
    except KeyError:
        known = ", ".join(sorted(POLICIES) + sorted(_ALIASES))
        raise ConfigurationError(f"unknown policy {name!r}; known: {known}") from None
