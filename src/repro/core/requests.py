"""Request-level task decomposition (paper §III.B "remark", Eq. 7).

A request is ``M`` queries issued *sequentially* (the next query cannot
start before the current one finishes, §II.A).  The paper shows the
pre-dequeuing budgets are additive at the request level:

    T_b^R = x_p^{R,SLO} − x_p^{R,u} = Σ_i T_{b,i}            (Eq. 7)

where ``x_p^{R,u}`` is the pth percentile of the *convolution* of the
unloaded query latencies.  How to split ``T_b^R`` across queries to
maximize utilization is the paper's stated future work; this module
implements the machinery plus three assignment strategies so the
ablation bench can compare them:

* :class:`EqualSplit` — ``T_{b,i} = T_b^R / M`` (the same argument the
  paper uses for equal task budgets within a query);
* :class:`ProportionalToTail` — budgets proportional to each query's
  unloaded tail ``x_p^u(k_i)`` (longer queries tolerate more queuing);
* :class:`SloSplit` — the naive baseline that pretends each query has
  an SLO of ``x_p^{R,SLO}/M`` and budgets it independently; the paper's
  inequality ``x_p^{R,SLO} <= Σ x_p^{SLO,i}`` predicts this wastes
  budget, which the bench demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.deadline import DeadlineEstimator
from repro.distributions import Distribution, MaxOfIID, SumOfIndependent
from repro.errors import ConfigurationError
from repro.types import RequestSpec


class BudgetAssignment:
    """Strategy: split a request budget across its queries."""

    name: str = ""

    def split(
        self,
        total_budget: float,
        query_tails: Sequence[float],
        request_slo: float,
    ) -> List[float]:
        """Per-query pre-dequeuing budgets.

        ``query_tails`` are the unloaded tails ``x_p^u(k_i)``; for
        budget-conserving strategies the returned budgets sum to
        ``total_budget``.
        """
        raise NotImplementedError


class EqualSplit(BudgetAssignment):
    name = "equal"

    def split(self, total_budget: float, query_tails: Sequence[float],
              request_slo: float) -> List[float]:
        share = total_budget / len(query_tails)
        return [share] * len(query_tails)


class ProportionalToTail(BudgetAssignment):
    name = "proportional"

    def split(self, total_budget: float, query_tails: Sequence[float],
              request_slo: float) -> List[float]:
        total_tail = sum(query_tails)
        if total_tail <= 0:
            return EqualSplit().split(total_budget, query_tails, request_slo)
        return [total_budget * tail / total_tail for tail in query_tails]


class SloSplit(BudgetAssignment):
    """Naive per-query decomposition (ignores Eq. 7's additivity)."""

    name = "slo-split"

    def split(self, total_budget: float, query_tails: Sequence[float],
              request_slo: float) -> List[float]:
        per_query_slo = request_slo / len(query_tails)
        return [per_query_slo - tail for tail in query_tails]


@dataclass(frozen=True)
class RequestPlan:
    """The outcome of planning one request."""

    request_slo_ms: float
    #: ``x_p^{R,u}``: percentile of the convolution of unloaded query latencies.
    unloaded_request_tail_ms: float
    #: ``T_b^R = x_p^{R,SLO} − x_p^{R,u}`` (Eq. 7).
    total_budget_ms: float
    #: Per-query unloaded tails ``x_p^u(k_i)``.
    query_tails_ms: List[float]
    #: Per-query pre-dequeuing budgets ``T_{b,i}``.
    query_budgets_ms: List[float]

    @property
    def feasible(self) -> bool:
        """Whether the request SLO is attainable on an unloaded cluster."""
        return self.total_budget_ms >= 0

    def query_deadline(self, index: int, query_start_time: float) -> float:
        """Task queuing deadline for the ``index``-th query, relative to
        the time that query is actually issued."""
        return query_start_time + self.query_budgets_ms[index]


class RequestPlanner:
    """Plans per-query budgets for sequential multi-query requests."""

    def __init__(
        self,
        estimator: DeadlineEstimator,
        assignment: BudgetAssignment,
        convolution_resolution: int = 4096,
    ) -> None:
        self.estimator = estimator
        self.assignment = assignment
        self._resolution = convolution_resolution

    def unloaded_query_distribution(self, fanout: int) -> Distribution:
        """The unloaded latency distribution of one query (max of
        ``fanout`` i.i.d. task latencies)."""
        if not self.estimator.homogeneous:
            raise ConfigurationError(
                "request planning currently requires a homogeneous cluster"
            )
        base = self.estimator.server_cdf(0)
        return MaxOfIID(base, fanout) if fanout > 1 else base

    def plan(self, request: RequestSpec) -> RequestPlan:
        """Compute Eq. 7 quantities and split the budget."""
        q = request.percentile / 100.0
        query_dists = [
            self.unloaded_query_distribution(k) for k in request.query_fanouts
        ]
        query_tails = [float(d.quantile(q)) for d in query_dists]
        if len(query_dists) == 1:
            request_tail = query_tails[0]
        else:
            request_tail = float(
                SumOfIndependent(query_dists, self._resolution).quantile(q)
            )
        total_budget = request.slo_ms - request_tail
        budgets = self.assignment.split(total_budget, query_tails, request.slo_ms)
        if len(budgets) != len(query_tails):
            raise ConfigurationError(
                f"{self.assignment.name} returned {len(budgets)} budgets "
                f"for {len(query_tails)} queries"
            )
        return RequestPlan(
            request_slo_ms=request.slo_ms,
            unloaded_request_tail_ms=request_tail,
            total_budget_ms=total_budget,
            query_tails_ms=query_tails,
            query_budgets_ms=list(budgets),
        )
