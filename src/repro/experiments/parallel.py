"""Process-pool experiment fan-out with deterministic seeding.

Every headline number in the paper is a grid of independent
:func:`repro.cluster.simulation.simulate` calls — bisection probes ×
seeds × policies × loads.  This module fans those calls out over a
process pool while preserving the exact serial semantics:

* **Deterministic seeding** — each task carries a fully materialized
  :class:`~repro.cluster.config.ClusterConfig` whose ``seed`` field is
  assigned *before* fan-out, exactly as the serial loop would assign
  it.  ``simulate`` derives all of its randomness from
  ``np.random.default_rng(config.seed).spawn(...)`` internally, so a
  worker process reproduces the serial run bit for bit: parallel and
  serial results are identical, not merely statistically equivalent.
* **Order preservation** — results come back in task-submission order
  regardless of completion order.
* **Observability round-trip** — a worker's
  :class:`~repro.obs.recorder.TraceRecorder` travels home with its
  :class:`~repro.cluster.results.SimulationResult` and is merged into
  the parent-side recorder via the mergeable obs API
  (:meth:`LogHistogram.merge`, counter addition, event re-sequencing),
  so a shared recorder sees the same aggregate counters and histogram
  a serial run would have produced.

``workers=None`` (or ``0``/``1``) means serial in-process execution —
the default everywhere, preserving historical behavior and costing
nothing.  ``workers=-1`` means one worker per available CPU.

Three mechanisms keep the pool overhead proportional to useful work:

* **Persistent pools** — :func:`get_pool` keeps one executor alive per
  worker count for the life of the process (shut down atexit), so a
  bisection's dozens of probe rounds — and repeated
  :func:`run_simulations` calls — reuse warm workers instead of paying
  pool spin-up per call.
* **Per-worker estimator pre-warm** — workers keep a
  :class:`~repro.core.deadline.DeadlineEstimator` cache keyed by the
  config's server-CDF signature.  Repeated tasks over the same cluster
  (every probe of a max-load search, every point of a sweep) reuse one
  estimator whose quantile-inversion memo is already populated.  Only
  configs that would build a default estimator anyway are eligible
  (``estimator is None``, no active overload policy — drift
  re-bootstrap mutates estimator state mid-run), and the cached
  estimator is state-free across runs there, so results stay
  bit-identical to the serial loop.
* **Shared-memory result return** — :func:`run_simulations` workers
  write every ``SimulationResult`` array (per-query columns, fault
  masks, coverage, timeline) into one ``multiprocessing.shared_memory``
  segment and send home only a small descriptor, skipping the
  pickle round-trip for the bulk payload.  The worker unregisters the
  segment from its resource tracker and the parent unlinks it after
  copying out, so ownership passes cleanly.  Any shm failure (no
  ``/dev/shm``, size limits) falls back to plain pickling.

Chunk sizes come from *measured* per-task cost: the first config runs
in-parent as a timing pilot and :func:`choose_chunksize` balances
per-chunk dispatch overhead against load-balance granularity.

The pool uses the ``fork`` start method where available (Linux): the
workload objects, distributions, and estimators in a config are cheap
to pickle, and fork avoids re-importing NumPy per worker.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.results import SimulationResult, Timeline, merge_obs_home
from repro.cluster.simulation import simulate
from repro.errors import ExperimentError


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``--workers`` value to an effective worker count.

    ``None``, ``0`` and ``1`` all mean serial in-process execution;
    ``-1`` means one worker per available CPU; any other positive value
    is taken literally.
    """
    if workers is None or workers == 0 or workers == 1:
        return 1
    if workers == -1:
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ExperimentError(
            f"workers must be a positive count or -1 (all CPUs), got {workers}"
        )
    return int(workers)


def make_executor(workers: int) -> ProcessPoolExecutor:
    """A fresh process pool using ``fork`` where the platform offers it.

    Most callers want :func:`get_pool` (persistent, pre-warmed) — this
    remains for one-shot uses that manage their own shutdown.
    """
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    return ProcessPoolExecutor(max_workers=workers, mp_context=context,
                               initializer=_init_worker)


# ----------------------------------------------------------------------
# Persistent pools
# ----------------------------------------------------------------------
_POOLS: Dict[int, ProcessPoolExecutor] = {}


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent executor for this worker count.

    Created on first use and kept alive for the life of the process
    (all pools are shut down atexit), so bisection searches and
    repeated fan-out calls reuse warm workers — and the workers keep
    their estimator caches across calls.  A pool whose workers died
    (``BrokenProcessPool``) is replaced transparently.
    """
    if workers < 2:
        raise ExperimentError(f"pooled execution needs >= 2 workers, got {workers}")
    pool = _POOLS.get(workers)
    if pool is not None and getattr(pool, "_broken", False):
        pool.shutdown(wait=False, cancel_futures=True)
        pool = None
    if pool is None:
        pool = make_executor(workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every persistent pool (registered atexit)."""
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


atexit.register(shutdown_pools)


def choose_chunksize(n_tasks: int, pool_size: int,
                     per_task_s: Optional[float] = None,
                     target_chunk_s: float = 0.25) -> int:
    """Chunk size from measured per-task cost.

    Two pressures pull in opposite directions: big chunks amortize the
    per-chunk pickle/dispatch round-trip, small chunks keep the pool
    load-balanced.  Given a measured ``per_task_s`` the chunk aims for
    ``target_chunk_s`` of work, capped by the even-split bound
    (``n_tasks / (pool_size * 4)``) so no worker can starve behind one
    oversized chunk.  Without a measurement (``None`` or non-positive,
    e.g. a clock-resolution-zero pilot) only the even-split bound
    applies — the historical static heuristic.
    """
    if n_tasks <= 0:
        raise ExperimentError(f"need >= 1 task, got {n_tasks}")
    if pool_size <= 0:
        raise ExperimentError(f"need >= 1 worker, got {pool_size}")
    balanced = max(1, n_tasks // (pool_size * 4))
    if per_task_s is None or per_task_s <= 0:
        return balanced
    by_cost = max(1, int(target_chunk_s / per_task_s))
    return max(1, min(balanced, by_cost))


# ----------------------------------------------------------------------
# Per-worker estimator pre-warm
# ----------------------------------------------------------------------
_ESTIMATOR_CACHE: Dict[bytes, object] = {}


def _init_worker() -> None:
    """Pool initializer: fresh per-process estimator cache.

    Under ``fork`` the child inherits the parent's module state, so the
    cache is cleared explicitly to keep every worker generation
    independent.
    """
    _ESTIMATOR_CACHE.clear()


def _estimator_key(config: ClusterConfig) -> bytes:
    """A content hash of everything the default estimator depends on.

    The estimator is a pure function of the per-server CDFs, so two
    configs with byte-identical pickled CDF maps (every probe of one
    search, every load point of one sweep) share one cached estimator.
    """
    payload = pickle.dumps(
        tuple(sorted(config.resolve_server_cdfs().items())),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return hashlib.sha256(payload).digest()


def _prewarm(config: ClusterConfig) -> ClusterConfig:
    """Swap in this worker's cached estimator where that is invisible.

    Eligible configs are exactly those for which ``simulate`` would
    build a throwaway default ``DeadlineEstimator``: no explicit
    estimator (an explicit one may be online/stateful by caller intent)
    and no active overload policy (KS-drift re-bootstrap mutates the
    estimator mid-run).  The default estimator is offline and
    ``record``/``rebootstrap`` are never invoked on it, so reuse across
    tasks only warms its quantile-inversion memo — results are
    bit-identical with or without the cache.
    """
    if config.estimator is not None:
        return config
    if config.overload is not None and config.overload.active:
        return config
    key = _estimator_key(config)
    estimator = _ESTIMATOR_CACHE.get(key)
    if estimator is None:
        from repro.core.deadline import DeadlineEstimator

        if len(_ESTIMATOR_CACHE) >= 32:  # bound a long-lived worker
            _ESTIMATOR_CACHE.clear()
        estimator = DeadlineEstimator(dict(config.resolve_server_cdfs()))
        _ESTIMATOR_CACHE[key] = estimator
    return config.evolve(estimator=estimator)


# ----------------------------------------------------------------------
# Shared-memory result protocol
# ----------------------------------------------------------------------
#: SimulationResult array fields shipped through shared memory, in
#: layout order.  Optional fields (``failed``, ``coverage``,
#: ``degraded``) keep their None-ness via a None dtype in the spec.
_RESULT_ARRAYS = ("class_index", "fanout", "arrival", "latency",
                  "rejected", "measured", "failed", "coverage", "degraded")
_TIMELINE_ARRAYS = ("time", "queued_tasks", "busy_servers")
#: Everything else rides the normal pickle return (scalars, classes,
#: the obs recorder, the overload controller).
_SCALAR_FIELDS = ("policy_name", "n_servers", "seed", "offered_load",
                  "classes", "tasks_total", "tasks_missed_deadline",
                  "busy_time_total", "duration", "mean_service_ms", "obs",
                  "tasks_failed", "tasks_retried", "tasks_hedged",
                  "tasks_cancelled", "server_failures", "degraded_queries",
                  "shed_tasks", "breaker_trips", "cdf_rebootstraps",
                  "overload")


@dataclass
class _PackedResult:
    """Descriptor of a ``SimulationResult`` parked in shared memory."""

    shm_name: str
    #: (field, dtype str or None, shape, byte offset) per array field.
    arrays: Tuple[Tuple[str, Optional[str], Tuple[int, ...], int], ...]
    #: Same, for the timeline arrays; None when the run had no timeline.
    timeline_arrays: Optional[Tuple[Tuple[str, str, Tuple[int, ...], int], ...]]
    #: The non-array constructor fields, pickled normally.
    fields: Dict[str, object]


def _pack_result(result: SimulationResult):
    """Worker side: park the arrays in one shm segment.

    Returns the raw result unchanged (plain-pickle fallback) when the
    platform cannot hand over a segment.  The segment is unregistered
    from this process's resource tracker before returning: the parent
    re-registers on attach and unlinks after copying out, so exactly
    one owner is responsible at every instant.
    """
    specs: List[Tuple[str, Optional[str], Tuple[int, ...], int]] = []
    arrays: List[np.ndarray] = []
    total = 0
    for name in _RESULT_ARRAYS:
        arr = getattr(result, name)
        if arr is None:
            specs.append((name, None, (), 0))
            continue
        arr = np.ascontiguousarray(arr)
        specs.append((name, arr.dtype.str, arr.shape, total))
        arrays.append(arr)
        total += arr.nbytes
    tspecs: Optional[List[Tuple[str, str, Tuple[int, ...], int]]] = None
    if result.timeline is not None:
        tspecs = []
        for name in _TIMELINE_ARRAYS:
            arr = np.ascontiguousarray(getattr(result.timeline, name))
            tspecs.append((name, arr.dtype.str, arr.shape, total))
            arrays.append(arr)
            total += arr.nbytes
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    except (OSError, ValueError):
        return result
    offset = 0
    for arr in arrays:
        dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf,
                         offset=offset)
        dst[...] = arr
        offset += arr.nbytes
    name = shm.name
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    shm.close()
    return _PackedResult(
        shm_name=name,
        arrays=tuple(specs),
        timeline_arrays=tuple(tspecs) if tspecs is not None else None,
        fields={f: getattr(result, f) for f in _SCALAR_FIELDS},
    )


def _unpack_result(payload) -> SimulationResult:
    """Parent side: rebuild the result and release the segment."""
    if isinstance(payload, SimulationResult):
        return payload
    shm = shared_memory.SharedMemory(name=payload.shm_name)
    try:
        kwargs = dict(payload.fields)
        for name, dtype, shape, offset in payload.arrays:
            if dtype is None:
                kwargs[name] = None
                continue
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf,
                              offset=offset)
            kwargs[name] = view.copy()
        timeline = None
        if payload.timeline_arrays is not None:
            columns = {}
            for name, dtype, shape, offset in payload.timeline_arrays:
                view = np.ndarray(shape, dtype=dtype, buffer=shm.buf,
                                  offset=offset)
                columns[name] = view.copy()
            timeline = Timeline(**columns)
        kwargs["timeline"] = timeline
        return SimulationResult(**kwargs)
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# Worker entry points.  Top-level functions so they pickle by reference
# under every start method.
# ----------------------------------------------------------------------
def _simulate_task(config: ClusterConfig):
    return _pack_result(simulate(_prewarm(config)))


def _feasibility_task(args) -> bool:
    """One (load, seed) probe: does this run meet every SLO?"""
    config, load, seed, min_samples, fanout_buckets = args
    config = _prewarm(config.at_load(load).with_seed(seed))
    result = simulate(config)
    return result.meets_all_slos(min_samples=min_samples,
                                 fanout_buckets=fanout_buckets)


# ----------------------------------------------------------------------
# Simulation fan-out
# ----------------------------------------------------------------------
def run_simulations(
    configs: Iterable[ClusterConfig],
    workers: Optional[int] = None,
) -> Tuple[SimulationResult, ...]:
    """Run many independent simulations, optionally over a process pool.

    Results preserve input order and are bit-identical to running
    ``simulate`` over the configs serially (each config's ``seed``
    fully determines its run).  When a config carries an enabled
    recorder, the worker-side recorder is merged into the parent-side
    recorder object and the returned result is re-bound to the parent,
    so shared-recorder aggregation matches serial semantics.

    The first config runs in-parent as a timing pilot whose measured
    cost sizes the pool chunks (:func:`choose_chunksize`); the rest fan
    out over the persistent pool and return through the shared-memory
    result protocol.
    """
    config_list = list(configs)
    if not config_list:
        raise ExperimentError("need at least one config to run")
    n_workers = resolve_workers(workers)
    if n_workers == 1:
        return tuple(simulate(config) for config in config_list)

    traced = any(
        config.recorder is not None
        and getattr(config.recorder, "enabled", False)
        for config in config_list
    )
    if traced and len(config_list) > 1:
        # No in-parent pilot here: running config[0] first would write
        # its events into the shared recorder *before* the remaining
        # configs are pickled for the pool, and every worker-side
        # recorder copy would then carry (and merge home again) the
        # pilot's events.  Fan the whole batch out with the static
        # chunk bound instead.
        pool = get_pool(n_workers)
        chunksize = choose_chunksize(len(config_list), n_workers)
        results: List[SimulationResult] = [
            _unpack_result(payload)
            for payload in pool.map(_simulate_task, config_list,
                                    chunksize=chunksize)
        ]
    else:
        # In-parent timing pilot: the measured cost of the first config
        # sizes the chunks for the rest.
        start = time.perf_counter()
        first = simulate(config_list[0])
        per_task_s = time.perf_counter() - start
        results = [first]
        rest = config_list[1:]
        if rest:
            pool = get_pool(n_workers)
            chunksize = choose_chunksize(len(rest), n_workers, per_task_s)
            results.extend(
                _unpack_result(payload)
                for payload in pool.map(_simulate_task, rest,
                                        chunksize=chunksize)
            )

    return tuple(
        merge_obs_home(config.recorder, result)
        for config, result in zip(config_list, results)
    )


# ----------------------------------------------------------------------
# Feasibility probes (the max-load search's inner loop)
# ----------------------------------------------------------------------
def probe_feasible(
    pool: ProcessPoolExecutor,
    config: ClusterConfig,
    load: float,
    seeds: Sequence[int],
    min_samples: int,
    fanout_buckets: Optional[Tuple[int, ...]],
) -> bool:
    """All-seeds feasibility at one load, seeds evaluated concurrently.

    Cancels the still-pending seed probes as soon as any seed comes
    back infeasible (feasibility is the AND over seeds, so one failure
    decides the probe).  The result is identical to the serial
    short-circuit loop — which seed finishes first cannot change an
    AND — only the wasted work differs.
    """
    futures = [
        pool.submit(_feasibility_task,
                    (config, load, seed, min_samples, fanout_buckets))
        for seed in seeds
    ]
    feasible = True
    pending = set(futures)
    while pending and feasible:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            if not future.result():
                feasible = False
                break
    for future in pending:
        future.cancel()
    return feasible


def probe_many_feasible(
    pool: ProcessPoolExecutor,
    config: ClusterConfig,
    loads: Sequence[float],
    seeds: Sequence[int],
    min_samples: int,
    fanout_buckets: Optional[Tuple[int, ...]],
) -> List[bool]:
    """Feasibility of several loads at once (speculative bisection).

    All ``len(loads) × len(seeds)`` probes are submitted together; each
    load's verdict is the AND over its seeds.  Unlike
    :func:`probe_feasible` there is no early cancel — speculation
    deliberately trades extra work for fewer sequential rounds.
    """
    futures = {
        (load, seed): pool.submit(
            _feasibility_task,
            (config, load, seed, min_samples, fanout_buckets))
        for load in loads
        for seed in seeds
    }
    return [
        all(futures[(load, seed)].result() for seed in seeds)
        for load in loads
    ]
