"""Process-pool experiment fan-out with deterministic seeding.

Every headline number in the paper is a grid of independent
:func:`repro.cluster.simulation.simulate` calls — bisection probes ×
seeds × policies × loads.  This module fans those calls out over a
process pool while preserving the exact serial semantics:

* **Deterministic seeding** — each task carries a fully materialized
  :class:`~repro.cluster.config.ClusterConfig` whose ``seed`` field is
  assigned *before* fan-out, exactly as the serial loop would assign
  it.  ``simulate`` derives all of its randomness from
  ``np.random.default_rng(config.seed).spawn(...)`` internally, so a
  worker process reproduces the serial run bit for bit: parallel and
  serial results are identical, not merely statistically equivalent.
* **Order preservation** — results come back in task-submission order
  regardless of completion order.
* **Observability round-trip** — a worker's
  :class:`~repro.obs.recorder.TraceRecorder` travels home with its
  :class:`~repro.cluster.results.SimulationResult` and is merged into
  the parent-side recorder via the mergeable obs API
  (:meth:`LogHistogram.merge`, counter addition, event re-sequencing),
  so a shared recorder sees the same aggregate counters and histogram
  a serial run would have produced.

``workers=None`` (or ``0``/``1``) means serial in-process execution —
the default everywhere, preserving historical behavior and costing
nothing.  ``workers=-1`` means one worker per available CPU.

The pool uses the ``fork`` start method where available (Linux): the
workload objects, distributions, and estimators in a config are cheap
to pickle, and fork avoids re-importing NumPy per worker.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.results import SimulationResult
from repro.cluster.simulation import simulate
from repro.errors import ExperimentError


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``--workers`` value to an effective worker count.

    ``None``, ``0`` and ``1`` all mean serial in-process execution;
    ``-1`` means one worker per available CPU; any other positive value
    is taken literally.
    """
    if workers is None or workers == 0 or workers == 1:
        return 1
    if workers == -1:
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ExperimentError(
            f"workers must be a positive count or -1 (all CPUs), got {workers}"
        )
    return int(workers)


def make_executor(workers: int) -> ProcessPoolExecutor:
    """A process pool using ``fork`` where the platform offers it."""
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


# ----------------------------------------------------------------------
# Worker entry points.  Top-level functions so they pickle by reference
# under every start method.
# ----------------------------------------------------------------------
def _simulate_task(config: ClusterConfig) -> SimulationResult:
    return simulate(config)


def _feasibility_task(args) -> bool:
    """One (load, seed) probe: does this run meet every SLO?"""
    config, load, seed, min_samples, fanout_buckets = args
    result = simulate(config.at_load(load).with_seed(seed))
    return result.meets_all_slos(min_samples=min_samples,
                                 fanout_buckets=fanout_buckets)


# ----------------------------------------------------------------------
# Simulation fan-out
# ----------------------------------------------------------------------
def run_simulations(
    configs: Iterable[ClusterConfig],
    workers: Optional[int] = None,
) -> Tuple[SimulationResult, ...]:
    """Run many independent simulations, optionally over a process pool.

    Results preserve input order and are bit-identical to running
    ``simulate`` over the configs serially (each config's ``seed``
    fully determines its run).  When a config carries an enabled
    recorder, the worker-side recorder is merged into the parent-side
    recorder object and the returned result is re-bound to the parent,
    so shared-recorder aggregation matches serial semantics.
    """
    config_list = list(configs)
    if not config_list:
        raise ExperimentError("need at least one config to run")
    n_workers = resolve_workers(workers)
    if n_workers == 1:
        return tuple(simulate(config) for config in config_list)

    # Executor.map defaults to chunksize=1 — one pickle round-trip per
    # config.  Configs are small but numerous in sweep workloads, so
    # batch them evenly across workers; order (and thus determinism)
    # is unaffected.
    pool_size = min(n_workers, len(config_list))
    chunksize = max(1, len(config_list) // (pool_size * 4))
    with make_executor(pool_size) as pool:
        results = list(pool.map(_simulate_task, config_list,
                                chunksize=chunksize))

    merged: List[SimulationResult] = []
    for config, result in zip(config_list, results):
        parent = config.recorder
        if (parent is not None and getattr(parent, "enabled", False)
                and result.obs is not None and result.obs is not parent):
            parent.merge_from(result.obs)
            result = result.with_obs(parent)
        merged.append(result)
    return tuple(merged)


# ----------------------------------------------------------------------
# Feasibility probes (the max-load search's inner loop)
# ----------------------------------------------------------------------
def probe_feasible(
    pool: ProcessPoolExecutor,
    config: ClusterConfig,
    load: float,
    seeds: Sequence[int],
    min_samples: int,
    fanout_buckets: Optional[Tuple[int, ...]],
) -> bool:
    """All-seeds feasibility at one load, seeds evaluated concurrently.

    Cancels the still-pending seed probes as soon as any seed comes
    back infeasible (feasibility is the AND over seeds, so one failure
    decides the probe).  The result is identical to the serial
    short-circuit loop — which seed finishes first cannot change an
    AND — only the wasted work differs.
    """
    futures = [
        pool.submit(_feasibility_task,
                    (config, load, seed, min_samples, fanout_buckets))
        for seed in seeds
    ]
    feasible = True
    pending = set(futures)
    while pending and feasible:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            if not future.result():
                feasible = False
                break
    for future in pending:
        future.cancel()
    return feasible


def probe_many_feasible(
    pool: ProcessPoolExecutor,
    config: ClusterConfig,
    loads: Sequence[float],
    seeds: Sequence[int],
    min_samples: int,
    fanout_buckets: Optional[Tuple[int, ...]],
) -> List[bool]:
    """Feasibility of several loads at once (speculative bisection).

    All ``len(loads) × len(seeds)`` probes are submitted together; each
    load's verdict is the AND over its seeds.  Unlike
    :func:`probe_feasible` there is no early cancel — speculation
    deliberately trades extra work for fewer sequential rounds.
    """
    futures = {
        (load, seed): pool.submit(
            _feasibility_task,
            (config, load, seed, min_samples, fanout_buckets))
        for load in loads
        for seed in seeds
    }
    return [
        all(futures[(load, seed)].result() for seed in seeds)
        for load in loads
    ]
