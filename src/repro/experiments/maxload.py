"""Maximum-load search (the paper's headline metric).

§IV.B: "we measure the tail latency for each type of queries and
identify the maximum load at which all three types of queries meet
their tail latency SLOs."  Feasibility in load is monotone for a
work-conserving queue, so a bisection over the offered load finds the
boundary; multiple seeds vote to damp percentile noise at the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import simulate
from repro.errors import ExperimentError


@dataclass(frozen=True)
class MaxLoadResult:
    """Outcome of one maximum-load search."""

    policy_name: str
    max_load: float
    #: (load, feasible) pairs probed by the bisection, in probe order.
    history: Tuple[Tuple[float, bool], ...]

    @property
    def probes(self) -> int:
        return len(self.history)


def _feasible(config: ClusterConfig, load: float, seeds: Tuple[int, ...],
              min_samples: int,
              fanout_buckets: Optional[Tuple[int, ...]]) -> bool:
    """Whether every seed's run meets all SLOs at this load."""
    rated = config.at_load(load)
    for seed in seeds:
        result = simulate(replace(rated, seed=seed))
        if not result.meets_all_slos(min_samples=min_samples,
                                     fanout_buckets=fanout_buckets):
            return False
    return True


def find_max_load(
    config: ClusterConfig,
    lo: float = 0.05,
    hi: float = 0.95,
    tol: float = 0.01,
    seeds: Tuple[int, ...] = (1,),
    min_samples: int = 100,
    fanout_buckets: Optional[Tuple[int, ...]] = None,
) -> MaxLoadResult:
    """Bisection over offered load for the SLO-feasibility boundary.

    Returns ``max_load = 0`` when even ``lo`` is infeasible, and ``hi``
    when everything up to ``hi`` is feasible.  ``tol`` is the absolute
    load resolution (the paper reports loads at percent granularity).
    """
    if not 0 < lo < hi:
        raise ExperimentError(f"need 0 < lo < hi, got [{lo}, {hi}]")
    if tol <= 0:
        raise ExperimentError(f"tol must be positive, got {tol}")
    policy_name = config.resolve_policy().name
    history: List[Tuple[float, bool]] = []

    lo_ok = _feasible(config, lo, seeds, min_samples, fanout_buckets)
    history.append((lo, lo_ok))
    if not lo_ok:
        return MaxLoadResult(policy_name, 0.0, tuple(history))

    hi_ok = _feasible(config, hi, seeds, min_samples, fanout_buckets)
    history.append((hi, hi_ok))
    if hi_ok:
        return MaxLoadResult(policy_name, hi, tuple(history))

    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        mid_ok = _feasible(config, mid, seeds, min_samples, fanout_buckets)
        history.append((mid, mid_ok))
        if mid_ok:
            lo = mid
        else:
            hi = mid
    return MaxLoadResult(policy_name, lo, tuple(history))
