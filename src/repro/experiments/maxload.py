"""Maximum-load search (the paper's headline metric).

§IV.B: "we measure the tail latency for each type of queries and
identify the maximum load at which all three types of queries meet
their tail latency SLOs."  Feasibility in load is monotone for a
work-conserving queue, so a bisection over the offered load finds the
boundary; multiple seeds vote to damp percentile noise at the boundary.

The search parallelizes two ways (see :mod:`repro.experiments.parallel`):

* ``workers > 1`` evaluates all seeds of one probe concurrently and
  cancels the remaining seeds as soon as any seed is infeasible — the
  probe outcome is the AND over seeds, so this is bit-identical to the
  serial short-circuit loop, probe for probe.
* ``speculative >= 2`` additionally probes that many bisection
  midpoints per round at once.  Each round splits the bracket into
  ``speculative + 1`` equal parts instead of halving it, so the number
  of sequential rounds drops from ``log2(range/tol)`` to
  ``log_{speculative+1}(range/tol)`` — a wall-clock win whenever spare
  workers exist — at the cost of extra total probe work and a
  (deterministic) probe sequence that differs from plain bisection.
  The returned boundary is still feasibility-bracketed to within
  ``tol``, but may differ from the plain-bisection answer by up to
  ``tol``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import simulate
from repro.errors import ExperimentError
from repro.experiments.parallel import (
    get_pool,
    probe_feasible,
    probe_many_feasible,
    resolve_workers,
)


@dataclass(frozen=True)
class MaxLoadResult:
    """Outcome of one maximum-load search."""

    policy_name: str
    max_load: float
    #: (load, feasible) pairs probed by the bisection, in probe order.
    history: Tuple[Tuple[float, bool], ...]

    @property
    def probes(self) -> int:
        return len(self.history)


def _feasible(config: ClusterConfig, load: float, seeds: Tuple[int, ...],
              min_samples: int,
              fanout_buckets: Optional[Tuple[int, ...]]) -> bool:
    """Whether every seed's run meets all SLOs at this load (serial)."""
    rated = config.at_load(load)
    for seed in seeds:
        result = simulate(rated.with_seed(seed))
        if not result.meets_all_slos(min_samples=min_samples,
                                     fanout_buckets=fanout_buckets):
            return False
    return True


def find_max_load(
    config: ClusterConfig,
    lo: float = 0.05,
    hi: float = 0.95,
    tol: float = 0.01,
    seeds: Tuple[int, ...] = (1,),
    min_samples: int = 100,
    fanout_buckets: Optional[Tuple[int, ...]] = None,
    workers: Optional[int] = None,
    speculative: int = 1,
) -> MaxLoadResult:
    """Bisection over offered load for the SLO-feasibility boundary.

    Returns ``max_load = 0`` when even ``lo`` is infeasible, and ``hi``
    when everything up to ``hi`` is feasible.  ``tol`` is the absolute
    load resolution (the paper reports loads at percent granularity).

    ``workers`` fans seed evaluations (and, with ``speculative >= 2``,
    several midpoints per round) out over a process pool; the default
    (``None``/``1``) runs serially and is bit-identical to the
    historical behavior.  ``speculative == 1`` is plain bisection; its
    result is identical for any worker count.
    """
    if not 0 < lo < hi:
        raise ExperimentError(f"need 0 < lo < hi, got [{lo}, {hi}]")
    if tol <= 0:
        raise ExperimentError(f"tol must be positive, got {tol}")
    if speculative < 1:
        raise ExperimentError(
            f"speculative must be >= 1 midpoint per round, got {speculative}"
        )
    policy_name = config.resolve_policy().name
    history: List[Tuple[float, bool]] = []

    n_workers = resolve_workers(workers)
    # The persistent pool (shut down atexit) keeps workers — and their
    # pre-warmed estimator caches — alive across probe rounds and
    # across repeated searches, instead of paying pool spin-up per call.
    pool = get_pool(n_workers) if n_workers > 1 else None

    def probe(load: float) -> bool:
        if pool is None:
            ok = _feasible(config, load, seeds, min_samples,
                           fanout_buckets)
        else:
            ok = probe_feasible(pool, config, load, seeds, min_samples,
                                fanout_buckets)
        history.append((load, ok))
        return ok

    def probe_round(loads: Sequence[float]) -> List[bool]:
        if pool is None:
            return [probe(load) for load in loads]
        outcomes = probe_many_feasible(pool, config, loads, seeds,
                                       min_samples, fanout_buckets)
        history.extend(zip(loads, outcomes))
        return outcomes

    if not probe(lo):
        return MaxLoadResult(policy_name, 0.0, tuple(history))
    if probe(hi):
        return MaxLoadResult(policy_name, hi, tuple(history))

    if speculative == 1:
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if probe(mid):
                lo = mid
            else:
                hi = mid
    else:
        while hi - lo > tol:
            step = (hi - lo) / (speculative + 1)
            mids = [lo + step * i for i in range(1, speculative + 1)]
            outcomes = probe_round(mids)
            # Monotone narrowing: the bracket closes on the first
            # feasible-to-infeasible transition.  Seed noise can
            # make outcomes non-monotone across midpoints; taking
            # the first transition matches what plain bisection
            # would have converged onto.
            first_bad = next(
                (mid for mid, ok in zip(mids, outcomes) if not ok), None)
            if first_bad is None:
                lo = mids[-1]
            else:
                hi = first_bad
                good = [mid for mid, ok in zip(mids, outcomes)
                        if ok and mid < first_bad]
                if good:
                    lo = max(good)
    return MaxLoadResult(policy_name, lo, tuple(history))
