"""Builders for the paper's evaluation configurations (§IV.B–D).

Common choices across §IV.B/§IV.C: cluster size N=100; Poisson arrivals
(Pareto for the burstiness case); the fanout mix {1, 10, 100} with
P(k) ∝ 1/k; classes assigned uniformly at random; 99th-percentile SLOs.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.cluster.config import ClusterConfig
from repro.core.policies import Policy
from repro.errors import ExperimentError
from repro.types import ServiceClass, two_classes
from repro.workloads.arrivals import (
    ArrivalProcess,
    MMPPArrivals,
    ParetoArrivals,
    PoissonArrivals,
)
from repro.workloads.classes import ClassMix, single_class_mix, uniform_class_mix
from repro.workloads.fanout import FixedFanout, inverse_proportional_fanout
from repro.workloads.generator import Workload
from repro.workloads.tailbench import get_workload

#: The §IV.B fanout types.
PAPER_FANOUTS = (1, 10, 100)


def _arrival_process(kind: str) -> ArrivalProcess:
    """Arrival process with a placeholder rate (re-rated by ``at_load``)."""
    if kind == "poisson":
        return PoissonArrivals(1.0)
    if kind == "pareto":
        return ParetoArrivals(1.0)
    if kind == "mmpp":
        return MMPPArrivals(1.0)
    raise ExperimentError(f"unknown arrival process {kind!r}")


def _config(
    workload_name: str,
    class_mix: ClassMix,
    fanout,
    policy: Union[str, Policy],
    n_servers: int,
    n_queries: int,
    arrival: str,
    seed: int,
) -> ClusterConfig:
    bench = get_workload(workload_name)
    workload = Workload(
        name=workload_name,
        arrivals=_arrival_process(arrival),
        fanout=fanout,
        class_mix=class_mix,
        service_time=bench.service_time,
    )
    return ClusterConfig(
        n_servers=n_servers,
        policy=policy,
        workload=workload,
        n_queries=n_queries,
        seed=seed,
    )


def paper_single_class_config(
    workload_name: str,
    slo_ms: float,
    policy: Union[str, Policy] = "tailguard",
    n_servers: int = 100,
    n_queries: int = 50_000,
    arrival: str = "poisson",
    seed: int = 1,
) -> ClusterConfig:
    """§IV.B single-class case: one SLO, fanout mix {1, 10, 100}."""
    mix = single_class_mix(ServiceClass("single", slo_ms))
    return _config(workload_name, mix, inverse_proportional_fanout(PAPER_FANOUTS),
                   policy, n_servers, n_queries, arrival, seed)


def paper_two_class_config(
    workload_name: str,
    slo_high_ms: float,
    ratio: float = 1.5,
    policy: Union[str, Policy] = "tailguard",
    n_servers: int = 100,
    n_queries: int = 50_000,
    arrival: str = "poisson",
    seed: int = 1,
) -> ClusterConfig:
    """§IV.B two-class case: SLO_low = ratio × SLO_high, same fanout mix."""
    high, low = two_classes(slo_high_ms, ratio)
    mix = uniform_class_mix([high, low])
    return _config(workload_name, mix, inverse_proportional_fanout(PAPER_FANOUTS),
                   policy, n_servers, n_queries, arrival, seed)


def paper_oldi_config(
    workload_name: str,
    slo_class1_ms: float,
    slo_class2_ms: float,
    policy: Union[str, Policy] = "tailguard",
    n_servers: int = 100,
    n_queries: int = 20_000,
    arrival: str = "poisson",
    seed: int = 1,
) -> ClusterConfig:
    """§IV.C OLDI case: every query fans out to all N servers."""
    class1 = ServiceClass("class-I", slo_class1_ms, priority=0)
    class2 = ServiceClass("class-II", slo_class2_ms, priority=1)
    mix = uniform_class_mix([class1, class2])
    return _config(workload_name, mix, FixedFanout(n_servers),
                   policy, n_servers, n_queries, arrival, seed)


def multi_class_config(
    workload_name: str,
    slos_ms: Sequence[float],
    policy: Union[str, Policy] = "tailguard",
    n_servers: int = 100,
    n_queries: int = 50_000,
    arrival: str = "poisson",
    seed: int = 1,
) -> ClusterConfig:
    """Generalization to any number of classes (§IV.D mentions 4)."""
    if not slos_ms:
        raise ExperimentError("need at least one SLO")
    classes = [
        ServiceClass(f"class-{i + 1}", slo, priority=i)
        for i, slo in enumerate(sorted(slos_ms))
    ]
    mix = uniform_class_mix(classes)
    return _config(workload_name, mix, inverse_proportional_fanout(PAPER_FANOUTS),
                   policy, n_servers, n_queries, arrival, seed)
