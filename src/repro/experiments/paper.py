"""Reproductions of the paper's simulation tables and figures (§IV.A–D).

Each function returns an :class:`~repro.experiments.report.ExperimentReport`
whose rows mirror the corresponding table/figure series.  Scale knobs
(``n_queries``, ``loads``, ``seeds``, ``tol``) default to values that
finish in minutes; the registry's quick mode shrinks them further.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.cluster.simulation import simulate
from repro.core.admission import AdmissionFactory, DeadlineMissRatioAdmission
from repro.experiments.maxload import find_max_load
from repro.experiments.report import ExperimentReport
from repro.experiments.setups import (
    paper_oldi_config,
    paper_single_class_config,
    paper_two_class_config,
)
from repro.experiments.sweep import load_sweep
from repro.workloads.tailbench import (
    FIG4_SLOS_MS,
    FIG6_CLASS_SLOS_MS,
    TAILBENCH_WORKLOADS,
)

#: Published reference points quoted in the paper's text, used to anchor
#: EXPERIMENTS.md comparisons.  Fig. 4 Masstree at SLO 0.8 ms: FIFO 20%,
#: TailGuard 28%.
PAPER_FIG4_MASSTREE_08 = {"fifo": 0.20, "tailguard": 0.28}

#: Paper Table III (Masstree): per-fanout 99th tails at max load.
PAPER_TABLE3 = {
    (0.8, "fifo"): {1: 0.439, 10: 0.394, 100: 0.798},
    (0.8, "tailguard"): {1: 0.572, 10: 0.745, 100: 0.797},
    (1.0, "fifo"): {1: 0.533, 10: 0.731, 100: 0.997},
    (1.0, "tailguard"): {1: 0.705, 10: 0.941, 100: 0.994},
    (1.2, "fifo"): {1: 0.647, 10: 0.889, 100: 1.192},
    (1.2, "tailguard"): {1: 0.817, 10: 1.098, 100: 1.193},
    (1.4, "fifo"): {1: 0.751, 10: 1.061, 100: 1.389},
    (1.4, "tailguard"): {1: 0.945, 10: 1.262, 100: 1.392},
}

#: Paper Fig. 6: maximum loads (class I / class II) per workload, and
#: resulting overall max loads per policy quoted in §IV.C.
PAPER_FIG6_MAXLOADS = {
    ("masstree", "fifo"): 0.45,
    ("masstree", "priq"): 0.48,
    ("masstree", "tailguard"): 0.54,
    ("shore", "fifo"): 0.36,
    ("shore", "priq"): 0.45,
    ("shore", "tailguard"): 0.51,
    ("xapian", "fifo"): 0.49,
    ("xapian", "priq"): 0.45,
    ("xapian", "tailguard"): 0.58,
}


def fig3_workload_cdfs(grid_points: int = 9) -> ExperimentReport:
    """Fig. 3: service-time CDFs and unloaded 95/99th task tails."""
    report = ExperimentReport(
        experiment_id="fig3",
        title="Tailbench service-time CDF statistics (model vs paper anchors)",
        parameters={"grid_points": grid_points},
        columns=["workload", "statistic", "model_ms", "paper_ms"],
        notes="paper_ms = published anchors (Table II tails; Fig. 3 "
              "p95 read off the plots); NaN where the paper gives no number",
    )
    paper_p95 = {"masstree": 0.210, "shore": 1.20, "xapian": 1.80}
    for name, workload in TAILBENCH_WORKLOADS.items():
        dist = workload.service_time
        report.add_row(workload=name, statistic="mean",
                       model_ms=dist.mean(), paper_ms=workload.paper_mean_ms)
        report.add_row(workload=name, statistic="p95",
                       model_ms=dist.percentile(95.0), paper_ms=paper_p95[name])
        report.add_row(workload=name, statistic="p99",
                       model_ms=dist.percentile(99.0),
                       paper_ms=workload.paper_x99_ms[1])
        for q in np.linspace(0.1, 0.9, grid_points):
            report.add_row(workload=name, statistic=f"p{q * 100:.0f}",
                           model_ms=float(dist.quantile(q)), paper_ms=float("nan"))
    return report


def table2_unloaded_tails() -> ExperimentReport:
    """Table II: mean service time and x99^u at fanouts 1/10/100."""
    report = ExperimentReport(
        experiment_id="table2",
        title="Unloaded 99th-percentile query tails (Eq. 1-2) vs Table II",
        columns=["workload", "quantity", "model_ms", "paper_ms"],
    )
    for name, workload in TAILBENCH_WORKLOADS.items():
        row = workload.table2_row()
        report.add_row(workload=name, quantity="T_m",
                       model_ms=row["T_m"], paper_ms=workload.paper_mean_ms)
        for fanout in (1, 10, 100):
            report.add_row(workload=name, quantity=f"x99({fanout})",
                           model_ms=row[f"x99({fanout})"],
                           paper_ms=workload.paper_x99_ms[fanout])
    return report


def fig4_single_class_maxload(
    workloads: Sequence[str] = ("masstree", "shore", "xapian"),
    policies: Sequence[str] = ("tailguard", "fifo"),
    n_queries: int = 40_000,
    seeds: Tuple[int, ...] = (1,),
    tol: float = 0.01,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Fig. 4: max load meeting a single-class 99th SLO, per workload."""
    report = ExperimentReport(
        experiment_id="fig4",
        title="Single-class maximum load: TailGuard vs FIFO",
        parameters={"n_queries": n_queries, "seeds": list(seeds), "tol": tol},
        columns=["workload", "slo_ms", "policy", "max_load"],
        notes="with one class, PRIQ and T-EDFQ degenerate to FIFO (§III.A)",
    )
    for workload in workloads:
        for slo in FIG4_SLOS_MS[workload]:
            for policy in policies:
                config = paper_single_class_config(
                    workload, slo, policy=policy, n_queries=n_queries
                )
                outcome = find_max_load(config, tol=tol, seeds=seeds,
                                        workers=workers)
                report.add_row(workload=workload, slo_ms=slo, policy=policy,
                               max_load=outcome.max_load)
    return report


def table3_per_fanout_tails(
    slos_ms: Sequence[float] = (0.8, 1.0, 1.2, 1.4),
    policies: Sequence[str] = ("fifo", "tailguard"),
    n_queries: int = 80_000,
    search_queries: int = 40_000,
    seeds: Tuple[int, ...] = (1,),
    tol: float = 0.01,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Table III: per-fanout 99th tails at each policy's max load
    (Masstree)."""
    report = ExperimentReport(
        experiment_id="table3",
        title="99th tails of the three query types at maximum load (Masstree)",
        parameters={"n_queries": n_queries, "tol": tol},
        columns=["slo_ms", "policy", "max_load", "fanout",
                 "p99_ms", "paper_p99_ms"],
        notes="TailGuard equalizes per-type tails; kf=100 binds both policies",
    )
    for slo in slos_ms:
        for policy in policies:
            config = paper_single_class_config(
                "masstree", slo, policy=policy, n_queries=search_queries
            )
            max_load = find_max_load(config, tol=tol, seeds=seeds,
                                     workers=workers).max_load
            measured = simulate(
                config.evolve(n_queries=n_queries).at_load(max(max_load, 0.05))
            )
            paper_row = PAPER_TABLE3.get((slo, policy), {})
            for fanout in (1, 10, 100):
                report.add_row(
                    slo_ms=slo,
                    policy=policy,
                    max_load=max_load,
                    fanout=fanout,
                    p99_ms=measured.tail(99.0, fanout=fanout),
                    paper_p99_ms=paper_row.get(fanout, float("nan")),
                )
    return report


def fig5_two_class_maxload(
    slos_high_ms: Sequence[float] = (0.8, 1.0, 1.2, 1.4),
    policies: Sequence[str] = ("tailguard", "fifo", "priq", "t-edf"),
    arrivals: Sequence[str] = ("poisson", "pareto"),
    n_queries: int = 40_000,
    seeds: Tuple[int, ...] = (1,),
    tol: float = 0.01,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Fig. 5: two-class max loads under Poisson and Pareto arrivals
    (Masstree; SLO ratio 1.5)."""
    report = ExperimentReport(
        experiment_id="fig5",
        title="Two-class maximum load, four policies, two arrival processes",
        parameters={"n_queries": n_queries, "tol": tol, "seeds": list(seeds)},
        columns=["arrival", "slo_high_ms", "policy", "max_load"],
        notes="paper: gains up to 80% vs FIFO, 40% vs PRIQ, 22% vs T-EDFQ; "
              "Pareto arrivals cost every policy a few points of load",
    )
    for arrival in arrivals:
        for slo_high in slos_high_ms:
            for policy in policies:
                config = paper_two_class_config(
                    "masstree", slo_high, policy=policy,
                    n_queries=n_queries, arrival=arrival,
                )
                outcome = find_max_load(config, tol=tol, seeds=seeds,
                                        workers=workers)
                report.add_row(arrival=arrival, slo_high_ms=slo_high,
                               policy=policy, max_load=outcome.max_load)
    return report


def fig6_two_class_sweep(
    workloads: Sequence[str] = ("masstree", "shore", "xapian"),
    policies: Sequence[str] = ("tailguard", "fifo", "priq"),
    loads: Sequence[float] = tuple(np.arange(0.20, 0.651, 0.05)),
    n_queries: int = 12_000,
    seed: int = 1,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Fig. 6: per-class p99 vs load with fanout fixed at 100 (OLDI)."""
    report = ExperimentReport(
        experiment_id="fig6",
        title="OLDI two-class tail latency vs load",
        parameters={"n_queries": n_queries, "loads": [float(x) for x in loads],
                    "seed": seed},
        columns=["workload", "policy", "load", "class_name", "p99_ms",
                 "slo_ms", "meets_slo"],
        notes="fanout == N for every query, so T-EDFQ behaves exactly like "
              "TailGuard (§IV.C) and is omitted",
    )
    for workload in workloads:
        slo1, slo2 = FIG6_CLASS_SLOS_MS[workload]
        for policy in policies:
            config = paper_oldi_config(workload, slo1, slo2, policy=policy,
                                       n_queries=n_queries)
            points = load_sweep(config, loads, seed=seed, workers=workers)
            for point in points:
                for class_name, slo in (("class-I", slo1), ("class-II", slo2)):
                    tail = point.class_tails_ms[class_name]
                    report.add_row(workload=workload, policy=policy,
                                   load=point.offered_load,
                                   class_name=class_name, p99_ms=tail,
                                   slo_ms=slo, meets_slo=tail <= slo)
    return report


def fig6_summary_maxload(
    workloads: Sequence[str] = ("masstree", "shore", "xapian"),
    policies: Sequence[str] = ("tailguard", "fifo", "priq"),
    n_queries: int = 12_000,
    seeds: Tuple[int, ...] = (1,),
    tol: float = 0.01,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Fig. 6 arrows: the max load meeting both class SLOs, per policy."""
    report = ExperimentReport(
        experiment_id="fig6_summary",
        title="OLDI two-class maximum loads (the arrows in Fig. 6)",
        parameters={"n_queries": n_queries, "tol": tol},
        columns=["workload", "policy", "max_load", "paper_max_load"],
    )
    for workload in workloads:
        slo1, slo2 = FIG6_CLASS_SLOS_MS[workload]
        for policy in policies:
            config = paper_oldi_config(workload, slo1, slo2, policy=policy,
                                       n_queries=n_queries)
            outcome = find_max_load(config, tol=tol, seeds=seeds,
                                    workers=workers)
            report.add_row(
                workload=workload, policy=policy, max_load=outcome.max_load,
                paper_max_load=PAPER_FIG6_MAXLOADS.get((workload, policy),
                                                       float("nan")),
            )
    return report


def fig7_admission_control(
    offered_loads: Sequence[float] = tuple(np.arange(0.44, 0.701, 0.02)),
    n_queries: int = 20_000,
    seed: int = 1,
    window_tasks: int = 100_000,
    window_ms: float = 250.0,
    threshold: Optional[float] = None,
    maxload_queries: int = 12_000,
    tol: float = 0.01,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Fig. 7: TailGuard with query admission control (Masstree OLDI).

    Follows the paper's procedure: first find the maximum acceptable
    load without admission control and measure the deadline-miss ratio
    there (that ratio becomes ``R_th``, 1.7% in the paper); then sweep
    offered loads beyond it with the controller enabled (duty-cycle
    mode — see :class:`~repro.core.admission.DeadlineMissRatioAdmission`).
    """
    slo1, slo2 = FIG6_CLASS_SLOS_MS["masstree"]
    base = paper_oldi_config("masstree", slo1, slo2, policy="tailguard",
                             n_queries=maxload_queries)
    max_acceptable = find_max_load(base, tol=tol, workers=workers).max_load
    if threshold is None:
        at_max = simulate(base.at_load(max(max_acceptable, 0.05)))
        threshold = max(at_max.deadline_miss_ratio(), 1e-4)

    report = ExperimentReport(
        experiment_id="fig7",
        title="TailGuard with query admission control (Masstree)",
        parameters={
            "n_queries": n_queries,
            "window_tasks": window_tasks,
            "window_ms": window_ms,
            "threshold": threshold,
            "max_acceptable_load": max_acceptable,
        },
        columns=["offered_load", "accepted_load", "rejected_load",
                 "p99_class1_ms", "p99_class2_ms", "rejection_ratio"],
        notes=f"R_th={threshold:.4f} calibrated at max acceptable load "
              f"{max_acceptable:.3f} (paper: 1.7% at 54%)",
    )
    sweep_config = base.evolve(n_queries=n_queries)
    points = load_sweep(
        sweep_config,
        offered_loads,
        seed=seed,
        admission_factory=AdmissionFactory(
            DeadlineMissRatioAdmission,
            {"threshold": threshold, "window_tasks": window_tasks,
             "window_ms": window_ms,
             "min_samples": max(1000, window_tasks // 100),
             "mode": "duty-cycle"},
        ),
        workers=workers,
    )
    for point in points:
        report.add_row(
            offered_load=point.offered_load,
            accepted_load=point.accepted_load,
            rejected_load=point.offered_load * point.rejection_ratio,
            p99_class1_ms=point.class_tails_ms.get("class-I", float("nan")),
            p99_class2_ms=point.class_tails_ms.get("class-II", float("nan")),
            rejection_ratio=point.rejection_ratio,
        )
    return report
