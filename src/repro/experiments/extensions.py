"""Extension and ablation experiments.

These go beyond the paper's published plots, covering results the paper
mentions only in passing (N=1000, four classes — §IV.D), robustness
claims (inaccurate CDFs — §IV.E; online updating — §III.B.2), design
knobs (admission threshold — §III.C), and the stated future work
(request-level budget assignment — §III.B, Eq. 7).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig, ServicePerturbation
from repro.cluster.simulation import simulate
from repro.core.admission import DeadlineMissRatioAdmission
from repro.core.deadline import DeadlineEstimator
from repro.core.handler import QueryHandler
from repro.core.policies import get_policy
from repro.core.requests import (
    BudgetAssignment,
    EqualSplit,
    ProportionalToTail,
    RequestPlanner,
    SloSplit,
)
from repro.core.server import TaskServer
from repro.distributions import Deterministic, Distribution, Exponential
from repro.experiments.maxload import find_max_load
from repro.experiments.parallel import run_simulations
from repro.experiments.report import ExperimentReport
from repro.experiments.setups import (
    multi_class_config,
    paper_oldi_config,
    paper_single_class_config,
    paper_two_class_config,
)
from repro.metrics.percentile import exact_percentile
from repro.sim.engine import Environment
from repro.types import QuerySpec, RequestSpec, ServiceClass
from repro.workloads.tailbench import FIG6_CLASS_SLOS_MS, get_workload


def ext_scale_n1000(
    slo_ms: float = 1.0,
    policies: Sequence[str] = ("tailguard", "fifo"),
    n_queries: int = 40_000,
    tol: float = 0.01,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """§IV.D: "simulation results for cluster size N=1,000 ... are
    consistent" — single-class Masstree at N=1000 vs N=100."""
    report = ExperimentReport(
        experiment_id="ext_scale",
        title="Cluster-size scaling: N=100 vs N=1000 (Masstree, single class)",
        parameters={"slo_ms": slo_ms, "n_queries": n_queries, "tol": tol},
        columns=["n_servers", "policy", "max_load"],
    )
    for n_servers in (100, 1000):
        for policy in policies:
            config = paper_single_class_config(
                "masstree", slo_ms, policy=policy,
                n_servers=n_servers, n_queries=n_queries,
            )
            outcome = find_max_load(config, tol=tol, workers=workers)
            report.add_row(n_servers=n_servers, policy=policy,
                           max_load=outcome.max_load)
    return report


def ext_four_classes(
    slos_ms: Sequence[float] = (0.9, 1.2, 1.5, 1.8),
    policies: Sequence[str] = ("tailguard", "t-edf", "priq", "wrr", "fifo"),
    n_queries: int = 40_000,
    tol: float = 0.01,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """§IV.D: four service classes (Masstree), all four policies."""
    report = ExperimentReport(
        experiment_id="ext_four_classes",
        title="Four service classes: maximum load per policy (Masstree)",
        parameters={"slos_ms": list(slos_ms), "n_queries": n_queries},
        columns=["policy", "max_load"],
        notes="the paper states 4-class results are consistent with 2-class; "
              "we find the two deadline-based policies (TailGuard, T-EDFQ) "
              "within ~2% of each other — with four classes the SLO spread "
              "dominates Masstree's small fanout-tail spread (0.25 ms) — and "
              "both far above PRIQ and FIFO",
    )
    for policy in policies:
        config = multi_class_config("masstree", slos_ms, policy=policy,
                                    n_queries=n_queries)
        outcome = find_max_load(config, tol=tol, workers=workers)
        report.add_row(policy=policy, max_load=outcome.max_load)
    return report


def ext_arrival_burstiness(
    slo_high_ms: float = 1.0,
    policies: Sequence[str] = ("tailguard", "t-edf", "priq", "fifo"),
    arrivals: Sequence[str] = ("poisson", "pareto", "mmpp"),
    n_queries: int = 40_000,
    tol: float = 0.01,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Arrival-burstiness sensitivity beyond Fig. 5(b).

    The paper probes burstiness with heavy-tailed (Pareto) *renewal*
    interarrivals; an MMPP adds *correlated* arrivals (burst episodes).
    Expected: burstier arrivals lower every policy's max load, and the
    policy ordering is preserved under all three processes.
    """
    report = ExperimentReport(
        experiment_id="ext_arrival_burstiness",
        title="Max load vs arrival process (Masstree, two classes)",
        parameters={"slo_high_ms": slo_high_ms, "n_queries": n_queries},
        columns=["arrival", "policy", "max_load"],
        notes="MMPP bursts are correlated episodes, a harsher stress than "
              "the paper's Pareto renewal process",
    )
    for arrival in arrivals:
        for policy in policies:
            config = paper_two_class_config(
                "masstree", slo_high_ms, policy=policy,
                n_queries=n_queries, arrival=arrival,
            )
            outcome = find_max_load(config, tol=tol, workers=workers)
            report.add_row(arrival=arrival, policy=policy,
                           max_load=outcome.max_load)
    return report


def ablation_inaccurate_cdf(
    slo_high_ms: float = 1.0,
    scale_errors: Sequence[float] = (0.7, 0.85, 1.0, 1.15, 1.3),
    n_queries: int = 40_000,
    tol: float = 0.01,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Robustness to mis-estimated CDFs (the §IV.E stress concern).

    Two error models, both with actual service times unchanged:

    * *scale errors* — the estimator's CDF is a scaled copy of the
      truth (systematic speed misjudgment);
    * *shape errors* — the estimator fits a wrong family with the right
      mean: an exponential (far heavier tail than Masstree's) and a
      deterministic point mass (no tail at all).

    Findings: TailGuard is remarkably insensitive to *uniform scaling*
    (EDF ordering depends on deadline differences, and scaling shifts
    all ``x_u(k_f)`` together).  Shape matters through the *spread* of
    ``x_u`` across fanouts: a tail-free point-mass estimate collapses
    the spread to zero, degenerating TF-EDFQ into T-EDFQ and giving up
    the fanout-awareness gain, while a heavier-than-true tail estimate
    exaggerates the spread and is harmless or mildly helpful.
    """
    report = ExperimentReport(
        experiment_id="ablation_inaccurate_cdf",
        title="TailGuard with mis-estimated CDFs (Masstree, two-class)",
        parameters={"slo_high_ms": slo_high_ms, "n_queries": n_queries},
        columns=["estimate", "max_load"],
        notes="uniform scale errors barely move the max load; a tail-free "
              "point-mass estimate degenerates TF-EDFQ toward T-EDFQ and "
              "loses the fanout gain; a heavier tail estimate is harmless",
    )
    bench = get_workload("masstree")
    truth = bench.service_time
    estimates: List[Tuple[str, Distribution]] = [
        (f"scaled-{error}", truth.scaled(error)) for error in scale_errors
    ]
    estimates.append(("exp-fit", Exponential.from_mean(truth.mean())))
    estimates.append(("point-mass", Deterministic(truth.mean())))
    for label, estimate in estimates:
        estimator = DeadlineEstimator(estimate, n_servers=100)
        config = paper_two_class_config(
            "masstree", slo_high_ms,
            policy="tailguard", n_queries=n_queries,
        ).evolve(estimator=estimator)
        outcome = find_max_load(config, tol=tol, workers=workers)
        report.add_row(estimate=label, max_load=outcome.max_load)
    return report


def ablation_online_updating(
    load: float = 0.35,
    slo_high_ms: float = 1.2,
    n_queries: int = 30_000,
    seed: int = 1,
    online_window: int = 10_000,
    refresh_interval: int = 5_000,
) -> ExperimentReport:
    """Online CDF updating on a heterogeneous cluster (§III.B.2).

    Servers come in four speed groups (0.7x to 1.4x Masstree).  Three
    estimator modes: *oblivious* (homogeneous offline estimate, never
    updated), *online* (same wrong start, per-group online updating),
    and *oracle* (exact per-group CDFs).
    """
    bench = get_workload("masstree")
    speed_factors = (0.7, 0.9, 1.1, 1.4)
    n_servers = 100
    group_size = n_servers // len(speed_factors)
    group_dists: Dict[str, Distribution] = {
        f"g{i}": bench.service_time.scaled(factor)
        for i, factor in enumerate(speed_factors)
    }
    server_groups = {
        sid: f"g{min(sid // group_size, len(speed_factors) - 1)}"
        for sid in range(n_servers)
    }
    true_cdfs = {sid: group_dists[server_groups[sid]] for sid in range(n_servers)}

    def estimator_for(mode: str) -> DeadlineEstimator:
        if mode == "oblivious":
            return DeadlineEstimator(bench.service_time, n_servers=n_servers)
        if mode == "online":
            wrong_offline = {sid: bench.service_time for sid in range(n_servers)}
            return DeadlineEstimator(
                wrong_offline,
                online_window=online_window,
                refresh_interval=refresh_interval,
                server_groups=server_groups,
            )
        return DeadlineEstimator(dict(true_cdfs))  # oracle

    report = ExperimentReport(
        experiment_id="ablation_online_updating",
        title="Online CDF updating under server heterogeneity",
        parameters={"load": load, "slo_high_ms": slo_high_ms,
                    "speed_factors": list(speed_factors),
                    "n_queries": n_queries},
        columns=["estimator", "class_name", "p99_ms", "slo_ms", "meets_slo",
                 "deadline_miss_ratio"],
        notes="online updating recovers most of the oracle's accuracy from "
              "a deliberately wrong homogeneous start",
    )
    for mode in ("oblivious", "online", "oracle"):
        config = paper_two_class_config(
            "masstree", slo_high_ms,
            policy="tailguard", n_queries=n_queries, seed=seed,
        ).evolve(estimator=estimator_for(mode),
                 server_cdfs=dict(true_cdfs))
        result = simulate(config.at_load(load))
        for cls in result.classes:
            tail = result.tail(cls.percentile, cls.name)
            report.add_row(estimator=mode, class_name=cls.name, p99_ms=tail,
                           slo_ms=cls.slo_ms, meets_slo=tail <= cls.slo_ms,
                           deadline_miss_ratio=result.deadline_miss_ratio())
    return report


def ablation_admission_threshold(
    thresholds: Sequence[float] = (0.002, 0.009, 0.05, 0.10),
    offered_load: float = 0.62,
    n_queries: int = 20_000,
    window_tasks: int = 100_000,
    window_ms: float = 250.0,
    seed: int = 1,
) -> ExperimentReport:
    """Sensitivity of admission control to the threshold R_th (§III.C)."""
    slo1, slo2 = FIG6_CLASS_SLOS_MS["masstree"]
    report = ExperimentReport(
        experiment_id="ablation_admission_threshold",
        title="Admission threshold sensitivity (Masstree OLDI, overload)",
        parameters={"offered_load": offered_load, "n_queries": n_queries},
        columns=["threshold", "accepted_load", "rejection_ratio",
                 "p99_class1_ms", "p99_class2_ms", "meets_both"],
        notes="tighter thresholds reject more load; looser thresholds risk "
              "SLO violations under overload",
    )
    for threshold in thresholds:
        config = paper_oldi_config("masstree", slo1, slo2,
                                   policy="tailguard", n_queries=n_queries,
                                   seed=seed)
        config = config.at_load(offered_load).with_admission(
            DeadlineMissRatioAdmission(
                threshold, window_tasks=window_tasks, window_ms=window_ms,
                min_samples=max(1000, window_tasks // 100),
                mode="duty-cycle",
            )
        )
        result = simulate(config)
        tail1 = result.tail(99.0, "class-I")
        tail2 = result.tail(99.0, "class-II")
        report.add_row(
            threshold=threshold,
            accepted_load=result.accepted_load(),
            rejection_ratio=result.rejection_ratio(),
            p99_class1_ms=tail1,
            p99_class2_ms=tail2,
            meets_both=(tail1 <= slo1) and (tail2 <= slo2),
        )
    return report


def ablation_server_slowdown(
    load: float = 0.40,
    slo_high_ms: float = 1.2,
    n_queries: int = 40_000,
    slow_servers: int = 10,
    slow_factor: float = 1.8,
    seed: int = 1,
) -> ExperimentReport:
    """Failure injection: a rack of servers slows mid-run (§III.B.2's
    "resource availability changes").

    Ten of a hundred servers run ``slow_factor`` times slower during the
    middle third of the run (1.8x keeps the slowed rack stable —
    ordering policies cannot rescue an unstable queue).  Three schedulers are compared: FIFO,
    TailGuard with static (now stale) CDFs, and TailGuard with online
    updating per rack.  Reported per phase (before / during / after):
    class-I p99 over queries arriving in that phase.
    """
    bench = get_workload("masstree")
    n_servers = 100
    base = paper_two_class_config("masstree", slo_high_ms,
                                  policy="tailguard", n_queries=n_queries,
                                  seed=seed).at_load(load)
    # Probe the run's time span without perturbations to place the window.
    probe = simulate(base)
    horizon = float(probe.arrival.max())
    window = (horizon / 3.0, 2.0 * horizon / 3.0)
    perturbation = ServicePerturbation(
        server_ids=tuple(range(slow_servers)),
        start_ms=window[0],
        end_ms=window[1],
        factor=slow_factor,
    )
    groups = {sid: ("slow-rack" if sid < slow_servers else "rest")
              for sid in range(n_servers)}

    def online_estimator() -> DeadlineEstimator:
        return DeadlineEstimator(
            {sid: bench.service_time for sid in range(n_servers)},
            online_window=8_000,
            refresh_interval=4_000,
            server_groups=groups,
        )

    report = ExperimentReport(
        experiment_id="ablation_server_slowdown",
        title="Injected rack slowdown: static vs online deadline estimation",
        parameters={"load": load, "slow_servers": slow_servers,
                    "slow_factor": slow_factor, "n_queries": n_queries,
                    "window_ms": list(window)},
        columns=["scheduler", "phase", "p99_class1_ms", "slo_ms",
                 "deadline_miss_ratio"],
        notes="the slowdown inflates every scheduler's tails; TailGuard "
              "absorbs it best, and online updating adds a further margin "
              "by re-estimating the slow rack's CDF during the transient",
    )
    schedulers = {
        "fifo": base.evolve(policy="fifo"),
        "tailguard-static": base,
        "tailguard-online": base.evolve(estimator=online_estimator()),
    }
    phases = {
        "before": (0.0, window[0]),
        "during": window,
        "after": (window[1], horizon + 1.0),
    }
    for name, config in schedulers.items():
        result = simulate(config.evolve(perturbations=(perturbation,)))
        for phase, (start, end) in phases.items():
            report.add_row(
                scheduler=name,
                phase=phase,
                p99_class1_ms=result.tail_between(start, end, 99.0,
                                                  "class-I"),
                slo_ms=slo_high_ms,
                deadline_miss_ratio=result.deadline_miss_ratio(),
            )
    return report


def ext_replica_selection(
    loads: Sequence[float] = (0.35, 0.45, 0.55),
    policies: Sequence[str] = ("fifo", "tailguard"),
    n_servers: int = 16,
    n_shards: int = 160,
    replication: int = 3,
    popularity_alpha: float = 1.5,
    n_queries: int = 25_000,
    seed: int = 4,
    frontier_load: float = 0.65,
    frontier_delay_factors: Sequence[float] = (1.0, 2.0, 4.0),
    frontier_budget: float = 0.15,
    frontier_queries: Optional[int] = None,
) -> ExperimentReport:
    """Replica selection under hot shards, plus the hedging frontier.

    Part 1 (§II.B composability check): with Zipf-popular shards, the
    servers hosting hot shards become the §I "skewed workload" outlier
    source.  Replication lets the dispatcher choose among replicas;
    uniform random selection is compared against least-loaded
    (power-of-choices) selection.  Placement skew is a *placement*
    problem — queue ordering cannot fix it (the single class and narrow
    fanout spread make TailGuard and FIFO nearly indistinguishable),
    while least-loaded selection slashes the tail severalfold.

    Part 2 (the p99-vs-duplicate-load frontier): a straggler-afflicted
    cluster at ``frontier_load``, hot enough that fixed-delay hedging
    *amplifies* the overload it is meant to mitigate — every duplicate
    adds load, the queues grow, more primaries look slow, more
    duplicates fire.  Rows ``hedge-fixed-<f>x`` sweep the fixed hedge
    delay (multiples of the service-median base delay);
    ``hedge-adaptive`` runs the same base delay under the budgeted
    online controller (:class:`repro.replicas.AdaptiveHedgePolicy`),
    whose hard duplicate-load budget breaks the amplification loop.
    ``duplicate_load`` is hedges over base task launches (primaries +
    retries); sharded part-1 rows carry the 0.0/1.0 fillers.
    """
    from repro.faults import FaultPlan, HedgePolicy, StragglerEpisode
    from repro.replicas import AdaptiveHedgePolicy, ReplicaPolicy
    from repro.workloads.sharding import ShardMap, ShardedPlacement
    from repro.workloads import (
        PoissonArrivals,
        Workload,
        inverse_proportional_fanout,
        single_class_mix,
    )

    bench = get_workload("masstree")
    gold = ServiceClass("gold", slo_ms=10.0)
    workload = Workload(
        "sharded", PoissonArrivals(1.0),
        inverse_proportional_fanout([1, 4]),
        single_class_mix(gold), bench.service_time,
    )
    base_delay = float(bench.service_time.quantile(0.5))
    report = ExperimentReport(
        experiment_id="ext_replica_selection",
        title="Replica selection under hot shards + the hedging frontier",
        parameters={"n_servers": n_servers, "n_shards": n_shards,
                    "replication": replication,
                    "popularity_alpha": popularity_alpha,
                    "n_queries": n_queries,
                    "frontier_load": frontier_load,
                    "frontier_base_delay_ms": base_delay,
                    "frontier_delay_factors": list(frontier_delay_factors),
                    "frontier_budget": frontier_budget},
        columns=["policy", "selection", "load", "p99_ms", "mean_ms",
                 "duplicate_load", "hedge_delay_factor"],
        notes="least-loaded selection absorbs shard-popularity skew that "
              "queue ordering alone cannot; on the frontier rows the "
              "budgeted adaptive hedge controller meets or beats every "
              "fixed-delay p99 at a fraction of the duplicate load",
    )
    for policy in policies:
        for selection in ("random", "least-loaded"):
            for load in loads:
                placement = ShardedPlacement(
                    ShardMap(n_shards, n_servers, replication),
                    popularity_alpha=popularity_alpha,
                    select=selection,
                )
                config = ClusterConfig(
                    n_servers=n_servers, policy=policy, workload=workload,
                    n_queries=n_queries, seed=seed, placement=placement,
                ).at_load(load)
                result = simulate(config)
                report.add_row(
                    policy=policy, selection=selection, load=load,
                    p99_ms=result.tail(99.0),
                    mean_ms=float(result.latencies().mean()),
                    duplicate_load=0.0, hedge_delay_factor=1.0,
                )

    # ------------------------------------------------------------------
    # Part 2: the p99-vs-duplicate-load frontier.
    # ------------------------------------------------------------------
    frontier_workload = Workload(
        "frontier", PoissonArrivals(1.0),
        inverse_proportional_fanout([1, 4]),
        single_class_mix(gold), bench.service_time,
    )
    stragglers = (StragglerEpisode((0, 1), 0.0, 1e12, 3.0),)

    def frontier_config(delay_ms: float) -> ClusterConfig:
        plan = FaultPlan(
            stragglers=stragglers,
            hedge=HedgePolicy(delay_ms=delay_ms, max_hedges=1),
        )
        return ClusterConfig(
            n_servers=n_servers, policy="tailguard",
            workload=frontier_workload,
            n_queries=frontier_queries or n_queries, seed=seed,
        ).at_load(frontier_load).with_faults(plan)

    def duplicate_load(result) -> float:
        base = float(result.fanout.sum()) + result.tasks_retried
        return result.tasks_hedged / base if base else 0.0

    for factor in frontier_delay_factors:
        result = simulate(frontier_config(factor * base_delay))
        report.add_row(
            policy="tailguard", selection=f"hedge-fixed-{factor:g}x",
            load=frontier_load, p99_ms=result.tail(99.0),
            mean_ms=float(result.latencies().mean()),
            duplicate_load=duplicate_load(result),
            hedge_delay_factor=float(factor),
        )
    adaptive = ReplicaPolicy(adaptive=AdaptiveHedgePolicy(
        max_duplicate_fraction=frontier_budget, max_factor=8.0))
    result = simulate(frontier_config(base_delay).with_replicas(adaptive))
    report.add_row(
        policy="tailguard", selection="hedge-adaptive",
        load=frontier_load, p99_ms=result.tail(99.0),
        mean_ms=float(result.latencies().mean()),
        duplicate_load=duplicate_load(result),
        hedge_delay_factor=float(result.replicas.delay_scale()),
    )
    return report


# ----------------------------------------------------------------------
# Request-level decomposition (Eq. 7) on the DES kernel.
# ----------------------------------------------------------------------
def _simulate_requests(
    strategy: BudgetAssignment,
    n_requests: int,
    load: float,
    fanouts: Tuple[int, ...],
    slo_slack: float,
    n_servers: int,
    seed: int,
) -> Dict[str, float]:
    """Run sequential multi-query requests through the coroutine model."""
    bench = get_workload("masstree")
    service = bench.service_time
    rng = np.random.default_rng(seed)
    server_rng, handler_rng, arrival_rng = rng.spawn(3)

    env = Environment()
    policy = get_policy("tailguard")
    estimator = DeadlineEstimator(service, n_servers=n_servers)
    servers = [
        TaskServer(env, sid, policy, service, child)
        for sid, child in zip(range(n_servers), server_rng.spawn(n_servers))
    ]
    handler = QueryHandler(env, servers, estimator, policy, handler_rng)

    # Request SLO: unloaded request tail plus a slack fraction.
    planner = RequestPlanner(estimator, strategy)
    probe = RequestSpec(0, 0.0, fanouts, slo_ms=1e9)
    unloaded_tail = planner.plan(probe).unloaded_request_tail_ms
    slo_ms = unloaded_tail * (1.0 + slo_slack)
    request = RequestSpec(0, 0.0, fanouts, slo_ms=slo_ms)
    plan = planner.plan(request)
    service_class = ServiceClass("request", slo_ms)

    tasks_per_request = sum(fanouts)
    rate = load * n_servers / (tasks_per_request * service.mean())
    gaps = arrival_rng.exponential(1.0 / rate, n_requests)

    latencies: List[float] = []
    query_counter = [0]

    def run_request():
        start = env.now
        for index, fanout in enumerate(fanouts):
            query_counter[0] += 1
            spec = QuerySpec(
                query_id=query_counter[0],
                arrival_time=env.now,
                fanout=fanout,
                service_class=service_class,
            )
            deadline = plan.query_deadline(index, env.now)
            _, done = handler.submit(spec, deadline=deadline)
            yield done
        latencies.append(env.now - start)

    def arrivals():
        for gap in gaps:
            yield env.timeout(gap)
            env.process(run_request())

    env.process(arrivals())
    env.run()

    warmup = int(0.1 * len(latencies))
    measured = np.asarray(latencies[warmup:])
    p99 = exact_percentile(measured, 99.0)
    return {
        "slo_ms": slo_ms,
        "p99_ms": p99,
        "meets_slo": float(p99 <= slo_ms),
        "total_budget_ms": plan.total_budget_ms,
        "min_query_budget_ms": min(plan.query_budgets_ms),
    }


def ext_request_decomposition(
    strategies: Sequence[BudgetAssignment] = (
        EqualSplit(), ProportionalToTail(), SloSplit(),
    ),
    loads: Sequence[float] = (0.30, 0.40),
    fanouts: Tuple[int, ...] = (1, 4, 16),
    n_requests: int = 2_500,
    slo_slack: float = 1.0,
    n_servers: int = 20,
    seed: int = 1,
) -> ExperimentReport:
    """Eq. 7 in action: budget-assignment strategies for requests.

    Each request issues its queries sequentially on the coroutine
    cluster; task deadlines come from the per-query budgets of the
    strategy under test rather than from the query-level Eq. 6.
    """
    report = ExperimentReport(
        experiment_id="ext_request_decomposition",
        title="Request-level budget assignment strategies (Eq. 7)",
        parameters={"fanouts": list(fanouts), "n_requests": n_requests,
                    "slo_slack": slo_slack, "n_servers": n_servers},
        columns=["strategy", "load", "slo_ms", "p99_ms", "meets_slo",
                 "total_budget_ms", "min_query_budget_ms"],
        notes="any conserving assignment meets the SLO at low load (Eq. 7); "
              "near capacity the equal split shows the lowest request p99, "
              "matching the paper's equal-budget minimality argument, while "
              "slo-split (which ignores additivity) is consistently worst",
    )
    for strategy in strategies:
        for load in loads:
            outcome = _simulate_requests(
                strategy, n_requests, load, fanouts, slo_slack, n_servers, seed
            )
            report.add_row(strategy=strategy.name, load=load, **outcome)
    return report


def ext_fault_sweep(
    load: float = 0.40,
    slo_ms: float = 1.0,
    n_servers: int = 100,
    n_queries: int = 20_000,
    mttr_ms: float = 20.0,
    mtbf_values: Sequence[float] = (2000.0, 500.0),
    policies: Sequence[str] = ("tailguard", "fifo"),
    seed: int = 1,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Fault injection: crash rate x mitigation x policy.

    Servers crash and recover under a seeded MTBF/MTTR process (one
    crash process seed, so every cell sees the *same* crash schedule).
    Four mitigation modes are compared:

    * ``none`` — crashes pause the server; its tasks wait out the
      downtime (the tail absorbs the full MTTR);
    * ``retry`` — kill-mode crashes with requeue to a surviving server;
    * ``hedge`` — pause-mode crashes, but a hedged duplicate launched
      after the p95 service quantile lets queries escape a dead or
      straggling server;
    * ``retry+hedge`` — both mitigations together.

    Reported per (policy, MTBF, mitigation): p99 latency, deadline-miss
    ratio, failed-query ratio, and the fault-layer activity counters.
    Hedging (and retry) should cut p99 by orders of magnitude versus
    ``none`` whenever the MTTR dwarfs the SLO.
    """
    from repro.faults import CrashProcess, FaultPlan, HedgePolicy, RetryPolicy

    base = paper_single_class_config(
        "masstree", slo_ms, n_servers=n_servers, n_queries=n_queries,
        seed=seed,
    ).at_load(load)
    mitigations = {
        "none": lambda: FaultPlan(),
        "retry": lambda: FaultPlan(
            retry=RetryPolicy(max_retries=3, backoff_ms=0.1)),
        "hedge": lambda: FaultPlan(hedge=HedgePolicy(quantile=0.95)),
        "retry+hedge": lambda: FaultPlan(
            retry=RetryPolicy(max_retries=3, backoff_ms=0.1),
            hedge=HedgePolicy(quantile=0.95)),
    }
    grid = [
        (policy, mtbf, name)
        for policy in policies
        for mtbf in mtbf_values
        for name in mitigations
    ]
    configs = []
    for policy, mtbf, name in grid:
        crashes = CrashProcess(mtbf_ms=mtbf, mttr_ms=mttr_ms, seed=seed)
        plan = replace(mitigations[name](), crashes=crashes)
        configs.append(base.evolve(policy=policy).with_faults(plan))
    results = run_simulations(configs, workers=workers)

    report = ExperimentReport(
        experiment_id="ext_fault_sweep",
        title="Server crashes: tail latency under retry and hedging",
        parameters={"load": load, "slo_ms": slo_ms, "n_servers": n_servers,
                    "n_queries": n_queries, "mttr_ms": mttr_ms,
                    "mtbf_values": list(mtbf_values)},
        columns=["policy", "mtbf_ms", "mitigation", "p99_ms",
                 "deadline_miss_ratio", "failed_ratio", "tasks_retried",
                 "tasks_hedged", "server_failures"],
        notes="without mitigation a crash parks queued tasks for the full "
              "MTTR, so p99 tracks the repair time; hedging and kill-mode "
              "retry both cut the tail back toward the crash-free baseline",
    )
    for (policy, mtbf, name), result in zip(grid, results):
        report.add_row(
            policy=policy,
            mtbf_ms=mtbf,
            mitigation=name,
            p99_ms=result.tail(99.0),
            deadline_miss_ratio=result.deadline_miss_ratio(),
            failed_ratio=result.failed_ratio(),
            tasks_retried=result.tasks_retried,
            tasks_hedged=result.tasks_hedged,
            server_failures=result.server_failures,
        )
    return report


def ext_overload_sweep(
    loads: Sequence[float] = (0.35, 0.60, 0.90, 1.20),
    slo_ms: float = 1.0,
    n_servers: int = 100,
    n_queries: int = 12_000,
    seed: int = 1,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Overload protection: reject-only vs graceful degradation.

    Sweeps offered load across and past saturation under a light
    pause-mode crash process (so circuit breakers have something to
    break on), comparing three :class:`~repro.overload.OverloadPolicy`
    modes that share the same AIMD admission controller:

    * ``reject-only`` — adaptive admission alone: a denied query is
      turned away whole;
    * ``degrade`` — a denied query may instead be served at reduced
      fanout when the recomputed order-statistics budget still fits;
    * ``degrade+breakers`` — degradation plus per-server circuit
      breakers that re-route or shed shards of misbehaving servers.

    The robustness claim this sweep backs (see ``docs/overload.md``):
    well past the reject-only saturation point, degradation keeps p99
    within the SLO while serving strictly more queries — partial
    answers beat turned-away users.
    """
    from repro.faults import CrashProcess, FaultPlan
    from repro.overload import (
        AdaptiveAdmissionPolicy,
        BreakerPolicy,
        DegradePolicy,
        OverloadPolicy,
    )

    admission = AdaptiveAdmissionPolicy(
        target_miss_ratio=0.005, window_tasks=20_000, window_ms=10.0,
        min_samples=1_000, decrease=0.5, increase=0.08,
        ctl_interval_ms=1.0, max_latch_ms=50.0,
    )
    degrade = DegradePolicy(min_coverage=0.3, safety=2.0)
    modes = {
        "reject-only": OverloadPolicy(admission=admission),
        "degrade": OverloadPolicy(admission=admission, degrade=degrade),
        "degrade+breakers": OverloadPolicy(
            admission=admission,
            degrade=degrade,
            breakers=BreakerPolicy(miss_threshold=2, open_ms=3.0,
                                   half_open_probes=4, close_successes=4),
        ),
    }
    base = paper_single_class_config(
        "masstree", slo_ms, n_servers=n_servers, n_queries=n_queries,
        seed=seed,
    )
    plan = FaultPlan(
        crashes=CrashProcess(mtbf_ms=2_000.0, mttr_ms=0.3, seed=seed))
    grid = [(mode, load) for mode in modes for load in loads]
    configs = [
        base.at_load(load).with_faults(plan).with_overload(modes[mode])
        for mode, load in grid
    ]
    results = run_simulations(configs, workers=workers)

    report = ExperimentReport(
        experiment_id="ext_overload_sweep",
        title="Overload protection: admission, degradation, breakers",
        parameters={"loads": list(loads), "slo_ms": slo_ms,
                    "n_servers": n_servers, "n_queries": n_queries,
                    "seed": seed},
        columns=["mode", "load", "p99_ms", "meets_slo", "served",
                 "served_slo", "rejection_ratio", "degraded_queries",
                 "shed_tasks", "breaker_trips", "coverage_p50",
                 "coverage_p99"],
        notes="served counts completed (full or partial) measured "
              "queries; served_slo those within the SLO — the headline "
              "is degrade+breakers serving strictly more of both than "
              "reject-only at >= 1.5x the reject-only max load while "
              "still meeting p99",
    )
    for (mode, load), result in zip(grid, results):
        latencies = result.latencies()
        p99 = result.tail(99.0)
        report.add_row(
            mode=mode,
            load=load,
            p99_ms=p99,
            meets_slo=bool(p99 <= slo_ms),
            served=result.count(),
            served_slo=int((latencies <= slo_ms).sum()),
            rejection_ratio=result.rejection_ratio(),
            degraded_queries=result.degraded_queries,
            shed_tasks=result.shed_tasks,
            breaker_trips=result.breaker_trips,
            coverage_p50=result.coverage_p50(),
            coverage_p99=result.coverage_p99(),
        )
    return report


def ext_tail_attribution(
    load: float = 0.7,
    slo_ms: float = 1.0,
    n_servers: int = 100,
    n_queries: int = 8_000,
    seed: int = 1,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Tail forensics: where does p99 latency go, per mitigation mode?

    Runs the same workload three ways — ``clean`` (no faults),
    ``retry+hedge`` (kill-mode crashes with requeue plus hedged
    requests), and ``degrade`` (overload admission with graceful
    degradation) — each under its own
    :class:`~repro.obs.TraceRecorder`, and attributes every completed
    query's latency to {queueing, service, retry delay, hedge wait}
    via :mod:`repro.obs.attribution`.

    Reported per mode: p99 latency, each component's p99 and share of
    total latency, and the per-class fast/slow SLO burn rates.  The
    attribution columns are exactly
    :meth:`~repro.cluster.results.SimulationResult.attribution_summary`,
    so the row shape matches what ``tailguard report`` builds from a
    single run.
    """
    from repro.faults import CrashProcess, FaultPlan, HedgePolicy, RetryPolicy
    from repro.obs import SLOAccountant, TraceRecorder
    from repro.overload import (
        AdaptiveAdmissionPolicy,
        DegradePolicy,
        OverloadPolicy,
    )

    base = paper_single_class_config(
        "masstree", slo_ms, n_servers=n_servers, n_queries=n_queries,
        seed=seed,
    ).at_load(load)
    fault_plan = FaultPlan(
        crashes=CrashProcess(mtbf_ms=200.0, mttr_ms=5.0, seed=seed),
        retry=RetryPolicy(max_retries=3, backoff_ms=0.1),
        hedge=HedgePolicy(quantile=0.95),
    )
    overload = OverloadPolicy(
        admission=AdaptiveAdmissionPolicy(
            target_miss_ratio=0.005, window_tasks=20_000, window_ms=10.0,
            min_samples=1_000, decrease=0.5, increase=0.08,
            ctl_interval_ms=1.0, max_latch_ms=50.0,
        ),
        degrade=DegradePolicy(min_coverage=0.3, safety=2.0),
    )
    modes = {
        "clean": lambda c: c,
        "retry+hedge": lambda c: c.with_faults(fault_plan),
        "degrade": lambda c: c.at_load(1.2).with_overload(overload),
    }
    configs = [wrap(base.with_recorder(TraceRecorder()))
               for wrap in modes.values()]
    results = run_simulations(configs, workers=workers)

    report = ExperimentReport(
        experiment_id="ext_tail_attribution",
        title="Tail forensics: per-mechanism latency attribution",
        parameters={"load": load, "slo_ms": slo_ms, "n_servers": n_servers,
                    "n_queries": n_queries, "seed": seed},
        columns=["mode", "p99_ms",
                 "attr_queueing_p99", "attr_queueing_share",
                 "attr_service_p99", "attr_service_share",
                 "attr_retry_delay_p99", "attr_retry_delay_share",
                 "attr_hedge_wait_p99", "attr_hedge_wait_share",
                 "burn_rate_fast", "burn_rate_slow"],
        notes="shares are each component's fraction of total completed-"
              "query latency; the decomposition per query is exact "
              "(components sum to the measured end-to-end latency)",
    )
    for mode, result in zip(modes, results):
        accountant = SLOAccountant.from_result(result)
        rates = accountant.burn_rates()
        # Single-class workload: exactly one entry.
        (class_rates,) = rates.values()
        report.add_row(
            mode=mode,
            p99_ms=result.tail(99.0),
            burn_rate_fast=class_rates["fast"],
            burn_rate_slow=class_rates["slow"],
            **result.attribution_summary(),
        )
    return report


def ext_federation(
    shard_counts: Sequence[int] = (4, 16, 64),
    servers_per_shard: int = 160,
    routers: Sequence[str] = ("jsq", "p2c", "least-slack", "tenant"),
    fanouts: Sequence[int] = (1, 10, 100),
    load: float = 0.60,
    slo_ms: float = 20.0,
    n_queries: int = 1_000_000,
    n_tenants: int = 256,
    tenant_alpha: float = 1.3,
    spill_margin_ms: float = 0.0,
    seed: int = 11,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Two-level federation: shard count x inter-shard routing policy.

    Sweeps the federation width (up to ``max(shard_counts) ×
    servers_per_shard`` servers — 10,240 at the defaults) against the
    front-tier routers of :mod:`repro.federation.router`, with the
    Zipf-skewed ``tenant`` router additionally run under cross-shard
    spill.  Each cell routes the same front-tier query stream (same
    federation seed), fans the per-shard TF-EDFQ clusters over the
    persistent worker pool, and reports federation-scope tails from the
    merged result.

    Expected shape: load-aware routers (``jsq``/``p2c``) keep shard
    imbalance near 1 and tails flat as the federation widens;
    ``least-slack`` consolidates (best-fit on deadline slack) and
    trades a longer tail for packing headroom; ``tenant`` affinity
    concentrates hot tenants — imbalance grows with skew — and spill
    claws the tail back by shedding exactly the queries whose home
    shard cannot meet their budget.
    """
    from repro.federation import FederationConfig, SpillPolicy, simulate_federation
    from repro.workloads import (
        PoissonArrivals,
        Workload,
        inverse_proportional_fanout,
        single_class_mix,
    )

    bench = get_workload("masstree")
    workload = Workload(
        "federated", PoissonArrivals(1.0),
        inverse_proportional_fanout(tuple(fanouts)),
        single_class_mix(ServiceClass("fed", slo_ms=slo_ms)),
        bench.service_time,
    )
    shard_template = ClusterConfig(
        n_servers=servers_per_shard, policy="tailguard", workload=workload,
    )

    report = ExperimentReport(
        experiment_id="ext_federation",
        title="Shard federation: inter-shard routing at 10k-server scale",
        parameters={"shard_counts": list(shard_counts),
                    "servers_per_shard": servers_per_shard,
                    "fanouts": list(fanouts), "load": load,
                    "slo_ms": slo_ms, "n_queries": n_queries,
                    "n_tenants": n_tenants, "tenant_alpha": tenant_alpha,
                    "spill_margin_ms": spill_margin_ms, "seed": seed},
        columns=["n_shards", "total_servers", "router", "spill", "queries",
                 "p99_ms", "deadline_miss_ratio", "utilization",
                 "shard_imbalance", "spilled", "spill_ratio"],
        notes="one front-tier stream per cell (same federation seed); "
              "load-aware routers hold imbalance near 1, tenant affinity "
              "concentrates Zipf-hot tenants and spill sheds exactly the "
              "budget-infeasible overflow to slack-rich shards",
    )
    cells = [(n_shards, router, with_spill)
             for n_shards in shard_counts
             for router in routers
             for with_spill in ((False, True) if router == "tenant"
                                else (False,))]
    for n_shards, router, with_spill in cells:
        shards = tuple(
            shard_template.with_seed(seed + 1 + s) for s in range(n_shards)
        )
        fed = FederationConfig(
            shards, workload=workload, n_queries=n_queries, seed=seed,
            router=router, n_tenants=n_tenants, tenant_alpha=tenant_alpha,
            spill=SpillPolicy(margin_ms=spill_margin_ms) if with_spill
            else None,
        ).at_load(load)
        outcome = simulate_federation(fed, workers=workers)
        report.add_row(
            n_shards=n_shards,
            total_servers=fed.total_servers,
            router=router,
            spill=with_spill,
            queries=n_queries,
            p99_ms=outcome.tail(99.0),
            deadline_miss_ratio=outcome.deadline_miss_ratio(),
            utilization=outcome.utilization(),
            shard_imbalance=outcome.shard_imbalance(),
            spilled=outcome.spill_count(),
            spill_ratio=outcome.spill_ratio(),
        )
    return report
