"""Reproduction of the SaS testbed evaluation (paper §IV.E, Fig. 9)."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.experiments.report import ExperimentReport
from repro.sas.testbed import CLUSTER_NAMES, SaSTestbed

#: Max Server-room loads reported in §IV.E.
PAPER_FIG9_MAXLOADS = {
    "tailguard": 0.48,
    "fifo": 0.38,
    "priq": 0.36,
    "t-edf": 0.42,
}

#: Published per-cluster statistics (mean, p95, p99 in ms) — Fig. 9(a).
PAPER_CLUSTER_STATS = {
    "server-room": (82.0, 235.0, 300.0),
    "wet-lab": (31.0, 112.0, 136.0),
    "faculty": (92.0, 226.0, 306.0),
    "gta": (91.0, 228.0, 304.0),
}


def fig9a_cluster_cdfs() -> ExperimentReport:
    """Fig. 9(a): the four clusters' post-queuing-time statistics."""
    testbed = SaSTestbed()
    report = ExperimentReport(
        experiment_id="fig9a",
        title="SaS per-cluster post-queuing time statistics (model vs paper)",
        columns=["cluster", "statistic", "model_ms", "paper_ms"],
    )
    for cluster in CLUSTER_NAMES:
        cdf = testbed.cluster_cdfs[cluster]
        mean, p95, p99 = PAPER_CLUSTER_STATS[cluster]
        report.add_row(cluster=cluster, statistic="mean",
                       model_ms=cdf.mean(), paper_ms=mean)
        report.add_row(cluster=cluster, statistic="p95",
                       model_ms=cdf.percentile(95.0), paper_ms=p95)
        report.add_row(cluster=cluster, statistic="p99",
                       model_ms=cdf.percentile(99.0), paper_ms=p99)
    return report


def fig9_sas_testbed(
    policies: Sequence[str] = ("tailguard", "fifo", "priq", "t-edf"),
    loads: Sequence[float] = tuple(np.arange(0.20, 0.551, 0.05)),
    n_queries: int = 20_000,
    seed: int = 1,
) -> ExperimentReport:
    """Fig. 9(b–d): per-class p99 vs Server-room load, four policies."""
    testbed = SaSTestbed()
    report = ExperimentReport(
        experiment_id="fig9",
        title="SaS testbed: class A/B/C 99th tails vs Server-room load",
        parameters={"n_queries": n_queries, "seed": seed,
                    "loads": [float(x) for x in loads]},
        columns=["policy", "server_room_load", "class_name", "p99_ms",
                 "slo_ms", "meets_slo"],
        notes="heterogeneous 4x8-node cluster; deadline estimation shares "
              "one CDF per cluster as in the paper's stress test",
    )
    slos = {
        case.service_class.name: case.service_class.slo_ms
        for case in testbed.use_cases
    }
    for policy in policies:
        rows = testbed.sweep(policy, loads, n_queries=n_queries, seed=seed)
        for row in rows:
            for class_name, slo in slos.items():
                tail = row[class_name]
                report.add_row(policy=policy,
                               server_room_load=row["server_room_load"],
                               class_name=class_name, p99_ms=tail,
                               slo_ms=slo, meets_slo=tail <= slo)
    return report


def fig9_summary_maxload(
    policies: Sequence[str] = ("tailguard", "fifo", "priq", "t-edf"),
    n_queries: int = 20_000,
    seeds: Tuple[int, ...] = (1,),
    tol: float = 0.01,
) -> ExperimentReport:
    """Fig. 9 headline: max Server-room load per policy vs the paper's
    48/38/36/42% (TailGuard/FIFO/PRIQ/T-EDFQ)."""
    testbed = SaSTestbed()
    report = ExperimentReport(
        experiment_id="fig9_summary",
        title="SaS testbed maximum Server-room loads",
        parameters={"n_queries": n_queries, "tol": tol},
        columns=["policy", "max_load", "paper_max_load"],
    )
    for policy in policies:
        max_load = testbed.max_load(policy, tol=tol, n_queries=n_queries,
                                    seeds=seeds)
        report.add_row(policy=policy, max_load=max_load,
                       paper_max_load=PAPER_FIG9_MAXLOADS[policy])
    return report
