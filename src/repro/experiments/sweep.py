"""Tail-latency-versus-load sweeps (paper Figs. 6, 7, 9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.core.admission import AdmissionController
from repro.cluster.results import SimulationResult
from repro.cluster.simulation import simulate
from repro.errors import ExperimentError
from repro.experiments.parallel import _prewarm, get_pool, resolve_workers


@dataclass(frozen=True)
class SweepPoint:
    """Per-class tails (and admission stats) at one offered load."""

    offered_load: float
    policy_name: str
    #: class name -> measured tail at the class's SLO percentile.
    class_tails_ms: Dict[str, float]
    accepted_load: float
    rejection_ratio: float
    deadline_miss_ratio: float

    def tail(self, class_name: str) -> float:
        try:
            return self.class_tails_ms[class_name]
        except KeyError:
            raise ExperimentError(f"no class {class_name!r} in sweep point") from None


def _point(result: SimulationResult, load: float) -> SweepPoint:
    tails = {
        cls.name: result.tail(cls.percentile, cls.name)
        for cls in result.classes
        if result.count(cls.name) > 0
    }
    return SweepPoint(
        offered_load=load,
        policy_name=result.policy_name,
        class_tails_ms=tails,
        accepted_load=result.accepted_load(),
        rejection_ratio=result.rejection_ratio(),
        deadline_miss_ratio=result.deadline_miss_ratio(),
    )


def _sweep_point_task(args) -> SweepPoint:
    """One load point; the admission controller (if any) is built here,
    *worker-side*, so each point gets fresh state no matter which
    process runs it."""
    config, load, admission_factory = args
    if admission_factory is not None:
        config = config.with_admission(admission_factory())
    return _point(simulate(_prewarm(config)), load)


def load_sweep(
    config: ClusterConfig,
    loads: Sequence[float],
    seed: Optional[int] = None,
    admission_factory: Optional[Callable[[], AdmissionController]] = None,
    workers: Optional[int] = None,
) -> Tuple[SweepPoint, ...]:
    """Simulate at each load and collect per-class tails.

    Admission controllers are stateful, so sweeps that use admission
    control pass ``admission_factory`` and get a fresh controller per
    load instead of carrying one in ``config``.  With ``workers > 1``
    the factory is invoked worker-side, so it must be picklable — use
    :class:`repro.core.admission.AdmissionFactory` rather than a
    lambda.

    **Seed precedence:** the explicit ``seed`` argument wins; when it
    is ``None``, every load point runs with ``config.seed``.  Either
    way the effective seed is pinned per point before any simulation
    runs, so a sweep is reproducible (and identical under any
    ``workers`` value) whenever ``seed`` *or* ``config.seed`` is set —
    including sweeps that build fresh admission controllers per point.

    ``workers`` runs all load points concurrently over a process pool;
    the default (``None``/``1``) is serial and bit-identical to the
    historical behavior.
    """
    if not loads:
        raise ExperimentError("need at least one load")
    effective_seed = config.seed if seed is None else seed

    tasks = []
    for load in loads:
        rated = config.at_load(load).with_seed(effective_seed)
        tasks.append((rated, load, admission_factory))

    n_workers = resolve_workers(workers)
    if n_workers == 1:
        return tuple(_sweep_point_task(task) for task in tasks)

    if config.admission is not None and len(loads) > 1:
        raise ExperimentError(
            "parallel load_sweep cannot share one stateful admission "
            "controller across load points (the serial sweep threads its "
            "state through points in order); pass admission_factory to "
            "build a fresh controller per point instead"
        )
    if config.recorder is not None and getattr(config.recorder, "enabled",
                                               False):
        raise ExperimentError(
            "parallel load_sweep returns compact SweepPoints and drops "
            "recorders; use repro.experiments.parallel.run_simulations "
            "to fan out traced runs with obs merging"
        )
    pool = get_pool(n_workers)
    points: List[SweepPoint] = list(pool.map(_sweep_point_task, tasks))
    return tuple(points)
