"""Tail-latency-versus-load sweeps (paper Figs. 6, 7, 9)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.core.admission import AdmissionController
from repro.cluster.results import SimulationResult
from repro.cluster.simulation import simulate
from repro.errors import ExperimentError


@dataclass(frozen=True)
class SweepPoint:
    """Per-class tails (and admission stats) at one offered load."""

    offered_load: float
    policy_name: str
    #: class name -> measured tail at the class's SLO percentile.
    class_tails_ms: Dict[str, float]
    accepted_load: float
    rejection_ratio: float
    deadline_miss_ratio: float

    def tail(self, class_name: str) -> float:
        try:
            return self.class_tails_ms[class_name]
        except KeyError:
            raise ExperimentError(f"no class {class_name!r} in sweep point") from None


def _point(result: SimulationResult, load: float) -> SweepPoint:
    tails = {
        cls.name: result.tail(cls.percentile, cls.name)
        for cls in result.classes
        if result.count(cls.name) > 0
    }
    return SweepPoint(
        offered_load=load,
        policy_name=result.policy_name,
        class_tails_ms=tails,
        accepted_load=result.accepted_load(),
        rejection_ratio=result.rejection_ratio(),
        deadline_miss_ratio=result.deadline_miss_ratio(),
    )


def load_sweep(
    config: ClusterConfig,
    loads: Sequence[float],
    seed: Optional[int] = None,
    admission_factory: Optional[Callable[[], AdmissionController]] = None,
) -> Tuple[SweepPoint, ...]:
    """Simulate at each load and collect per-class tails.

    Admission controllers are stateful, so sweeps that use admission
    control pass ``admission_factory`` and get a fresh controller per
    load instead of carrying one in ``config``.
    """
    if not loads:
        raise ExperimentError("need at least one load")
    points = []
    for load in loads:
        rated = config.at_load(load)
        if seed is not None:
            rated = replace(rated, seed=seed)
        if admission_factory is not None:
            rated = replace(rated, admission=admission_factory())
        points.append(_point(simulate(rated), load))
    return tuple(points)
