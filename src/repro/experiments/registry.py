"""Experiment registry: one entry per reproduced table/figure.

Each entry maps an experiment id to a callable taking ``(quick,
workers)``.  ``quick`` mode shrinks query counts, grids and bisection
tolerances so the whole suite runs in a few minutes (used by tests);
full mode matches the benchmark harness.  ``workers`` fans the
entry's independent ``simulate()`` calls out over a process pool (see
:mod:`repro.experiments.parallel`); ``None`` keeps the historical
serial behavior bit for bit.  Entries whose work is not an independent
grid (e.g. single-run figures) accept and ignore it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ExperimentError
from repro.experiments import extensions, paper, sas_experiments
from repro.experiments.report import ExperimentReport

ExperimentFn = Callable[[bool, Optional[int]], ExperimentReport]


def _fig3(quick: bool, workers: Optional[int] = None) -> ExperimentReport:
    return paper.fig3_workload_cdfs()


def _table2(quick: bool, workers: Optional[int] = None) -> ExperimentReport:
    return paper.table2_unloaded_tails()


def _fig4(quick: bool, workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return paper.fig4_single_class_maxload(
            workloads=("masstree",), n_queries=12_000, tol=0.02,
            workers=workers,
        )
    return paper.fig4_single_class_maxload(workers=workers)


def _table3(quick: bool, workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return paper.table3_per_fanout_tails(
            slos_ms=(0.8, 1.4), n_queries=20_000,
            search_queries=12_000, tol=0.02, workers=workers,
        )
    return paper.table3_per_fanout_tails(workers=workers)


def _fig5(quick: bool, workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return paper.fig5_two_class_maxload(
            slos_high_ms=(1.0,), n_queries=12_000, tol=0.02, workers=workers,
        )
    return paper.fig5_two_class_maxload(workers=workers)


def _fig6(quick: bool, workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return paper.fig6_two_class_sweep(
            workloads=("masstree",),
            loads=(0.30, 0.45, 0.60),
            n_queries=4_000,
            workers=workers,
        )
    return paper.fig6_two_class_sweep(workers=workers)


def _fig6_summary(quick: bool,
                  workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return paper.fig6_summary_maxload(
            workloads=("masstree",), n_queries=4_000, tol=0.02,
            workers=workers,
        )
    return paper.fig6_summary_maxload(workers=workers)


def _fig7(quick: bool, workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return paper.fig7_admission_control(
            offered_loads=(0.50, 0.58, 0.66),
            n_queries=8_000, maxload_queries=4_000,
            window_tasks=20_000, tol=0.02, workers=workers,
        )
    return paper.fig7_admission_control(workers=workers)


def _fig9a(quick: bool, workers: Optional[int] = None) -> ExperimentReport:
    return sas_experiments.fig9a_cluster_cdfs()


def _fig9(quick: bool, workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return sas_experiments.fig9_sas_testbed(
            loads=(0.25, 0.40, 0.50), n_queries=6_000,
        )
    return sas_experiments.fig9_sas_testbed()


def _fig9_summary(quick: bool,
                  workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return sas_experiments.fig9_summary_maxload(n_queries=6_000, tol=0.02)
    return sas_experiments.fig9_summary_maxload()


def _ext_scale(quick: bool, workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return extensions.ext_scale_n1000(n_queries=12_000, tol=0.02,
                                          workers=workers)
    return extensions.ext_scale_n1000(workers=workers)


def _ext_four_classes(quick: bool,
                      workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return extensions.ext_four_classes(
            policies=("tailguard", "fifo"), n_queries=12_000, tol=0.02,
            workers=workers,
        )
    return extensions.ext_four_classes(workers=workers)


def _ablation_inaccurate_cdf(quick: bool,
                             workers: Optional[int] = None
                             ) -> ExperimentReport:
    if quick:
        return extensions.ablation_inaccurate_cdf(
            scale_errors=(0.8, 1.0), n_queries=12_000, tol=0.02,
            workers=workers,
        )
    return extensions.ablation_inaccurate_cdf(workers=workers)


def _ablation_online_updating(quick: bool,
                              workers: Optional[int] = None
                              ) -> ExperimentReport:
    if quick:
        return extensions.ablation_online_updating(n_queries=10_000)
    return extensions.ablation_online_updating()


def _ablation_admission_threshold(quick: bool,
                                  workers: Optional[int] = None
                                  ) -> ExperimentReport:
    if quick:
        return extensions.ablation_admission_threshold(
            thresholds=(0.009, 0.10), n_queries=6_000, window_tasks=20_000,
        )
    return extensions.ablation_admission_threshold()


def _ext_arrival_burstiness(quick: bool,
                            workers: Optional[int] = None
                            ) -> ExperimentReport:
    if quick:
        return extensions.ext_arrival_burstiness(
            policies=("tailguard", "fifo"), arrivals=("poisson", "mmpp"),
            n_queries=12_000, tol=0.02, workers=workers,
        )
    return extensions.ext_arrival_burstiness(workers=workers)


def _ext_replica_selection(quick: bool,
                           workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return extensions.ext_replica_selection(
            loads=(0.45,), n_queries=10_000, frontier_queries=10_000,
        )
    return extensions.ext_replica_selection()


def _ablation_server_slowdown(quick: bool,
                              workers: Optional[int] = None
                              ) -> ExperimentReport:
    if quick:
        return extensions.ablation_server_slowdown(n_queries=10_000)
    return extensions.ablation_server_slowdown()


def _ext_fault_sweep(quick: bool,
                     workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return extensions.ext_fault_sweep(
            n_queries=4_000, mtbf_values=(500.0,),
            policies=("tailguard",), workers=workers,
        )
    return extensions.ext_fault_sweep(workers=workers)


def _ext_federation(quick: bool,
                    workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return extensions.ext_federation(
            shard_counts=(2, 4), servers_per_shard=8,
            routers=("jsq", "tenant"), fanouts=(1, 4, 8),
            n_queries=4_000, n_tenants=16, workers=workers,
        )
    return extensions.ext_federation(workers=workers)


def _ext_overload_sweep(quick: bool,
                        workers: Optional[int] = None) -> ExperimentReport:
    if quick:
        return extensions.ext_overload_sweep(
            loads=(0.60, 0.90), n_queries=3_000, workers=workers,
        )
    return extensions.ext_overload_sweep(workers=workers)


def _ext_request_decomposition(quick: bool,
                               workers: Optional[int] = None
                               ) -> ExperimentReport:
    if quick:
        return extensions.ext_request_decomposition(
            loads=(0.35,), n_requests=800,
        )
    return extensions.ext_request_decomposition()


def _ext_tail_attribution(quick: bool,
                          workers: Optional[int] = None
                          ) -> ExperimentReport:
    if quick:
        return extensions.ext_tail_attribution(
            n_queries=2_000, workers=workers,
        )
    return extensions.ext_tail_attribution(workers=workers)


#: Registry of all experiments, keyed by the paper artifact they
#: reproduce (see DESIGN.md's per-experiment index).
EXPERIMENTS: Dict[str, ExperimentFn] = {
    "fig3": _fig3,
    "table2": _table2,
    "fig4": _fig4,
    "table3": _table3,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig6_summary": _fig6_summary,
    "fig7": _fig7,
    "fig9a": _fig9a,
    "fig9": _fig9,
    "fig9_summary": _fig9_summary,
    "ext_arrival_burstiness": _ext_arrival_burstiness,
    "ext_replica_selection": _ext_replica_selection,
    "ext_scale": _ext_scale,
    "ext_fault_sweep": _ext_fault_sweep,
    "ext_federation": _ext_federation,
    "ext_four_classes": _ext_four_classes,
    "ext_overload_sweep": _ext_overload_sweep,
    "ext_request_decomposition": _ext_request_decomposition,
    "ext_tail_attribution": _ext_tail_attribution,
    "ablation_inaccurate_cdf": _ablation_inaccurate_cdf,
    "ablation_online_updating": _ablation_online_updating,
    "ablation_admission_threshold": _ablation_admission_threshold,
    "ablation_server_slowdown": _ablation_server_slowdown,
}


def get_experiment(name: str) -> ExperimentFn:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {name!r}; known: {known}"
        ) from None


def run_experiment(name: str, quick: bool = False,
                   workers: Optional[int] = None) -> ExperimentReport:
    """Run one registered experiment and return its report.

    ``workers`` (``None`` = serial) fans the experiment's independent
    simulations over a process pool where the experiment supports it;
    results are bit-identical to the serial run.
    """
    return get_experiment(name)(quick, workers)
