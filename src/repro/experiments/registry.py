"""Experiment registry: one entry per reproduced table/figure.

Each entry maps an experiment id to a zero-config callable.  ``quick``
mode shrinks query counts, grids and bisection tolerances so the whole
suite runs in a few minutes (used by tests); full mode matches the
benchmark harness.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ExperimentError
from repro.experiments import extensions, paper, sas_experiments
from repro.experiments.report import ExperimentReport

ExperimentFn = Callable[[bool], ExperimentReport]


def _fig3(quick: bool) -> ExperimentReport:
    return paper.fig3_workload_cdfs()


def _table2(quick: bool) -> ExperimentReport:
    return paper.table2_unloaded_tails()


def _fig4(quick: bool) -> ExperimentReport:
    if quick:
        return paper.fig4_single_class_maxload(
            workloads=("masstree",), n_queries=12_000, tol=0.02,
        )
    return paper.fig4_single_class_maxload()


def _table3(quick: bool) -> ExperimentReport:
    if quick:
        return paper.table3_per_fanout_tails(
            slos_ms=(0.8, 1.4), n_queries=20_000,
            search_queries=12_000, tol=0.02,
        )
    return paper.table3_per_fanout_tails()


def _fig5(quick: bool) -> ExperimentReport:
    if quick:
        return paper.fig5_two_class_maxload(
            slos_high_ms=(1.0,), n_queries=12_000, tol=0.02,
        )
    return paper.fig5_two_class_maxload()


def _fig6(quick: bool) -> ExperimentReport:
    if quick:
        return paper.fig6_two_class_sweep(
            workloads=("masstree",),
            loads=(0.30, 0.45, 0.60),
            n_queries=4_000,
        )
    return paper.fig6_two_class_sweep()


def _fig6_summary(quick: bool) -> ExperimentReport:
    if quick:
        return paper.fig6_summary_maxload(
            workloads=("masstree",), n_queries=4_000, tol=0.02,
        )
    return paper.fig6_summary_maxload()


def _fig7(quick: bool) -> ExperimentReport:
    if quick:
        return paper.fig7_admission_control(
            offered_loads=(0.50, 0.58, 0.66),
            n_queries=8_000, maxload_queries=4_000,
            window_tasks=20_000, tol=0.02,
        )
    return paper.fig7_admission_control()


def _fig9a(quick: bool) -> ExperimentReport:
    return sas_experiments.fig9a_cluster_cdfs()


def _fig9(quick: bool) -> ExperimentReport:
    if quick:
        return sas_experiments.fig9_sas_testbed(
            loads=(0.25, 0.40, 0.50), n_queries=6_000,
        )
    return sas_experiments.fig9_sas_testbed()


def _fig9_summary(quick: bool) -> ExperimentReport:
    if quick:
        return sas_experiments.fig9_summary_maxload(n_queries=6_000, tol=0.02)
    return sas_experiments.fig9_summary_maxload()


def _ext_scale(quick: bool) -> ExperimentReport:
    if quick:
        return extensions.ext_scale_n1000(n_queries=12_000, tol=0.02)
    return extensions.ext_scale_n1000()


def _ext_four_classes(quick: bool) -> ExperimentReport:
    if quick:
        return extensions.ext_four_classes(
            policies=("tailguard", "fifo"), n_queries=12_000, tol=0.02,
        )
    return extensions.ext_four_classes()


def _ablation_inaccurate_cdf(quick: bool) -> ExperimentReport:
    if quick:
        return extensions.ablation_inaccurate_cdf(
            scale_errors=(0.8, 1.0), n_queries=12_000, tol=0.02,
        )
    return extensions.ablation_inaccurate_cdf()


def _ablation_online_updating(quick: bool) -> ExperimentReport:
    if quick:
        return extensions.ablation_online_updating(n_queries=10_000)
    return extensions.ablation_online_updating()


def _ablation_admission_threshold(quick: bool) -> ExperimentReport:
    if quick:
        return extensions.ablation_admission_threshold(
            thresholds=(0.009, 0.10), n_queries=6_000, window_tasks=20_000,
        )
    return extensions.ablation_admission_threshold()


def _ext_arrival_burstiness(quick: bool) -> ExperimentReport:
    if quick:
        return extensions.ext_arrival_burstiness(
            policies=("tailguard", "fifo"), arrivals=("poisson", "mmpp"),
            n_queries=12_000, tol=0.02,
        )
    return extensions.ext_arrival_burstiness()


def _ext_replica_selection(quick: bool) -> ExperimentReport:
    if quick:
        return extensions.ext_replica_selection(
            loads=(0.45,), n_queries=10_000,
        )
    return extensions.ext_replica_selection()


def _ablation_server_slowdown(quick: bool) -> ExperimentReport:
    if quick:
        return extensions.ablation_server_slowdown(n_queries=10_000)
    return extensions.ablation_server_slowdown()


def _ext_request_decomposition(quick: bool) -> ExperimentReport:
    if quick:
        return extensions.ext_request_decomposition(
            loads=(0.35,), n_requests=800,
        )
    return extensions.ext_request_decomposition()


#: Registry of all experiments, keyed by the paper artifact they
#: reproduce (see DESIGN.md's per-experiment index).
EXPERIMENTS: Dict[str, ExperimentFn] = {
    "fig3": _fig3,
    "table2": _table2,
    "fig4": _fig4,
    "table3": _table3,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig6_summary": _fig6_summary,
    "fig7": _fig7,
    "fig9a": _fig9a,
    "fig9": _fig9,
    "fig9_summary": _fig9_summary,
    "ext_arrival_burstiness": _ext_arrival_burstiness,
    "ext_replica_selection": _ext_replica_selection,
    "ext_scale": _ext_scale,
    "ext_four_classes": _ext_four_classes,
    "ext_request_decomposition": _ext_request_decomposition,
    "ablation_inaccurate_cdf": _ablation_inaccurate_cdf,
    "ablation_online_updating": _ablation_online_updating,
    "ablation_admission_threshold": _ablation_admission_threshold,
    "ablation_server_slowdown": _ablation_server_slowdown,
}


def get_experiment(name: str) -> ExperimentFn:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {name!r}; known: {known}"
        ) from None


def run_experiment(name: str, quick: bool = False) -> ExperimentReport:
    """Run one registered experiment and return its report."""
    return get_experiment(name)(quick)
