"""Structured experiment reports.

Every experiment in the registry returns an :class:`ExperimentReport`:
a named table of rows plus the parameters that produced it.  The CLI
and the benchmark suite print them via :meth:`ExperimentReport.format_table`,
and EXPERIMENTS.md records paper-vs-measured from the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.errors import ExperimentError


@dataclass
class ExperimentReport:
    """One reproduced table or figure."""

    experiment_id: str
    title: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    columns: List[str] = field(default_factory=list)
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ExperimentError(
                f"{self.experiment_id}: row missing columns {missing}"
            )
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        if name not in self.columns:
            raise ExperimentError(
                f"{self.experiment_id}: unknown column {name!r}"
            )
        return [row[name] for row in self.rows]

    def select(self, **filters: Any) -> List[Dict[str, Any]]:
        """Rows matching all equality filters."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in filters.items())
        ]

    def format_table(self, float_format: str = "{:.4g}") -> str:
        """Render as an aligned plain-text table."""

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        header = list(self.columns)
        body = [[fmt(row[c]) for c in header] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in body)) if body else len(h)
            for i, h in enumerate(header)
        ]
        lines = [
            f"# {self.experiment_id}: {self.title}",
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines.extend(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in body
        )
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_csv(self, path) -> None:
        """Write the rows as a CSV file (one column per report column)."""
        import csv
        from pathlib import Path

        with Path(path).open("w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=self.columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({c: row[c] for c in self.columns})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "parameters": dict(self.parameters),
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": self.notes,
        }
