"""Experiment harness: the paper's evaluation (§IV), reproducible.

* :mod:`repro.experiments.maxload` — bisection search for the maximum
  load at which every query type meets its SLO (the paper's headline
  metric in Figs. 4–6);
* :mod:`repro.experiments.sweep` — tail-latency-vs-load curves;
* :mod:`repro.experiments.parallel` — process-pool fan-out with
  deterministic per-task seeding (serial ≡ parallel, bit for bit);
* :mod:`repro.experiments.setups` — builders for the paper's workload
  configurations;
* :mod:`repro.experiments.registry` — one callable per table/figure.
"""

from repro.experiments.maxload import MaxLoadResult, find_max_load
from repro.experiments.parallel import resolve_workers, run_simulations
from repro.experiments.sweep import SweepPoint, load_sweep
from repro.experiments.setups import (
    paper_single_class_config,
    paper_two_class_config,
    paper_oldi_config,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "EXPERIMENTS",
    "MaxLoadResult",
    "SweepPoint",
    "find_max_load",
    "get_experiment",
    "load_sweep",
    "paper_oldi_config",
    "paper_single_class_config",
    "paper_two_class_config",
    "resolve_workers",
    "run_experiment",
    "run_simulations",
]
