"""Command-line interface: ``tailguard`` / ``python -m repro``.

Subcommands:

* ``list`` — show all registered experiments;
* ``run EXPERIMENT [--quick] [--json] [--csv PATH]`` — run one
  experiment and print its table (JSON and CSV may be combined; the
  table is printed only when neither is requested);
* ``all [--quick]`` — run every experiment in registry order;
* ``simulate`` — run a one-off simulation with explicit parameters;
* ``faults`` — run a one-off fault-injected simulation (crashes,
  retry, hedging) and print the tail plus the fault counters;
* ``overload`` — run a one-off simulation under an overload policy
  (adaptive admission, optional degradation / circuit breakers /
  drift re-bootstrap) and print the degradation counters;
* ``trace record / replay`` — query-trace capture and paired replay;
* ``trace run`` — run a traced simulation and export the task
  lifecycle as Chrome trace-event JSON (``chrome://tracing`` /
  Perfetto) or JSONL;
* ``report`` — run a traced simulation (optionally fault-injected)
  and print the tail-forensics report: per-mechanism latency
  attribution, per-class SLO error budgets with multi-window burn
  rates, and the slowest-query waterfalls;
* ``federation`` — run a one-off two-level shard federation (front
  tier routing over per-shard TF-EDFQ clusters) and print the
  federation-scope summary plus a per-shard table.

Exit codes: 0 on success, 2 for configuration errors (bad flags or an
invalid setup), 1 for runtime failures inside a simulation or
experiment.  Library errors print a one-line message instead of a
traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.cluster import ClusterConfig, simulate
from repro.errors import ConfigurationError, ExperimentError, SimulationError
from repro.experiments.parallel import run_simulations
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.setups import paper_single_class_config
from repro.faults import CrashProcess, FaultPlan, HedgePolicy, RetryPolicy
from repro.federation import (
    ROUTERS,
    FederationConfig,
    SpillPolicy,
    simulate_federation,
)
from repro.metrics import LatencyCollector
from repro.replicas import (
    AdaptiveHedgePolicy,
    HedgeSuppressionPolicy,
    ReplicaPolicy,
    ReplicaScorer,
)
from repro.overload import (
    AdaptiveAdmissionPolicy,
    BreakerPolicy,
    DegradePolicy,
    DriftPolicy,
    OverloadPolicy,
)
from repro.obs import (
    TraceRecorder,
    render_report,
    tail_forensics_report,
    text_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.workloads import generate_queries, load_trace, save_trace


def _cmd_list(args: argparse.Namespace) -> int:
    for name in EXPERIMENTS:
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    report = run_experiment(args.experiment, quick=args.quick,
                            workers=args.workers)
    if args.csv:
        report.to_csv(args.csv)
        print(f"wrote {len(report.rows)} rows to {args.csv}")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    if not args.csv and not args.json:
        print(report.format_table())
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    config = paper_single_class_config(
        args.workload, args.slo_ms, n_servers=args.servers,
        n_queries=args.queries, seed=args.seed,
    ).at_load(args.load)
    rng = np.random.default_rng(args.seed)
    specs = generate_queries(config.workload, args.queries, rng)
    save_trace(specs, args.out)
    print(f"recorded {len(specs)} queries to {args.out}")
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    specs = load_trace(args.trace)
    bench_workload = paper_single_class_config(
        args.workload, 1.0, n_servers=args.servers, n_queries=1,
    ).workload
    config = ClusterConfig(
        n_servers=args.servers,
        policy=args.policy,
        specs=specs,
        seed=args.seed,
        server_cdfs={sid: bench_workload.service_time
                     for sid in range(args.servers)},
    )
    result = simulate(config)
    print(f"replayed {len(specs)} queries under {result.policy_name}: "
          f"utilization={result.utilization():.3f} "
          f"miss_ratio={result.deadline_miss_ratio():.4f}")
    for (class_name, fanout), tail in result.per_type_tails().items():
        print(f"  {class_name} kf={fanout:<4d} p99={tail:.3f} ms")
    return 0


def _cmd_trace_run(args: argparse.Namespace) -> int:
    """Run one traced simulation and export the lifecycle events."""
    config = paper_single_class_config(
        args.workload, args.slo_ms, policy=args.policy,
        n_servers=args.servers, n_queries=args.queries, seed=args.seed,
    ).at_load(args.load)
    recorder = TraceRecorder(sample_interval_ms=args.sample_interval)
    # Routed through the parallel runner: with --workers the simulation
    # executes in a worker process and the recorder's events, counters
    # and histogram are merged back into this parent-side recorder.
    result = run_simulations([config.with_recorder(recorder)],
                             workers=args.workers)[0]

    collector = LatencyCollector()
    for class_name, fanout in result.types():
        for value in result.latencies(class_name, fanout):
            collector.record(class_name, fanout, float(value))

    if args.format == "chrome":
        n = write_chrome_trace(recorder, args.trace_out)
        what = "trace events"
    else:
        n = write_jsonl(recorder, args.trace_out)
        what = "JSONL events"
    print(text_summary(recorder, collector))
    print(f"policy={result.policy_name} load={args.load:.2f} "
          f"utilization={result.utilization():.3f} "
          f"miss_ratio={result.deadline_miss_ratio():.4f}")
    print(f"wrote {n} {what} to {args.trace_out}")
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    for name in EXPERIMENTS:
        print(f"=== {name} ===", flush=True)
        report = run_experiment(name, quick=args.quick,
                                workers=args.workers)
        print(report.format_table())
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = paper_single_class_config(
        args.workload,
        args.slo_ms,
        policy=args.policy,
        n_servers=args.servers,
        n_queries=args.queries,
        seed=args.seed,
    ).at_load(args.load)
    result = simulate(config)
    print(f"policy={result.policy_name} load={args.load:.2f} "
          f"utilization={result.utilization():.3f} "
          f"miss_ratio={result.deadline_miss_ratio():.4f}")
    for (class_name, fanout), tail in result.per_type_tails().items():
        print(f"  {class_name} kf={fanout:<4d} p99={tail:.3f} ms "
              f"({result.count(class_name, fanout)} queries)")
    return 0


def _replica_policy_from_args(args: argparse.Namespace
                              ) -> "ReplicaPolicy | None":
    """Assemble the optional replica layer from ``faults`` flags."""
    scorer = None
    if args.tail_weight > 0.0 or args.scored_fanout:
        scorer = ReplicaScorer(tail_weight=args.tail_weight,
                               scored_fanout=args.scored_fanout)
    suppression = None
    if args.suppress_hedges:
        suppression = HedgeSuppressionPolicy(
            pressure_threshold_ms=args.pressure_threshold_ms)
    adaptive = None
    if args.adaptive_hedge:
        adaptive = AdaptiveHedgePolicy(
            target_win_ratio=args.target_win_ratio,
            max_duplicate_fraction=args.hedge_budget)
    if scorer is None and suppression is None and adaptive is None:
        return None
    return ReplicaPolicy(scorer=scorer, suppression=suppression,
                         adaptive=adaptive)


def _cmd_faults(args: argparse.Namespace) -> int:
    """One-off fault-injected simulation with crash/retry/hedge knobs."""
    retry = None
    if args.retries > 0:
        retry = RetryPolicy(max_retries=args.retries,
                            backoff_ms=args.backoff_ms,
                            timeout_ms=args.timeout_ms)
    hedge = None
    if args.hedge:
        hedge = HedgePolicy(quantile=args.hedge_quantile,
                            delay_ms=args.hedge_delay_ms,
                            max_hedges=args.max_hedges)
    plan = FaultPlan(
        crashes=CrashProcess(mtbf_ms=args.mtbf_ms, mttr_ms=args.mttr_ms,
                             seed=args.seed),
        retry=retry,
        hedge=hedge,
    )
    rpolicy = _replica_policy_from_args(args)
    if rpolicy is not None and rpolicy.needs_hedging and hedge is None:
        raise ConfigurationError(
            "--suppress-hedges/--adaptive-hedge need --hedge")
    config = paper_single_class_config(
        args.workload, args.slo_ms, policy=args.policy,
        n_servers=args.servers, n_queries=args.queries, seed=args.seed,
    ).at_load(args.load).with_faults(plan)
    if rpolicy is not None:
        config = config.with_replicas(rpolicy)
    result = simulate(config)
    print(f"policy={result.policy_name} load={args.load:.2f} "
          f"utilization={result.utilization():.3f} "
          f"miss_ratio={result.deadline_miss_ratio():.4f}")
    print(f"server_failures={result.server_failures} "
          f"tasks_retried={result.tasks_retried} "
          f"tasks_hedged={result.tasks_hedged} "
          f"tasks_cancelled={result.tasks_cancelled} "
          f"failed_queries={result.queries_failed()} "
          f"(failed_ratio={result.failed_ratio():.4f})")
    if result.replicas is not None:
        rc = result.replicas
        print(f"hedges_suppressed={result.hedges_suppressed} "
              f"duplicate_fraction={rc.duplicate_fraction():.4f} "
              f"hedge_win_ratio={rc.win_ratio():.3f} "
              f"hedge_delay_factor={rc.delay_scale():.3f}")
    for (class_name, fanout), tail in result.per_type_tails().items():
        print(f"  {class_name} kf={fanout:<4d} p99={tail:.3f} ms "
              f"({result.count(class_name, fanout)} queries)")
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    """One-off overload-protected simulation with degradation knobs."""
    degrade = None
    if args.degrade:
        degrade = DegradePolicy(min_coverage=args.min_coverage,
                                pressure_alpha=args.pressure_alpha,
                                safety=args.safety)
    breakers = None
    if args.breakers:
        breakers = BreakerPolicy(miss_threshold=args.breaker_misses,
                                 open_ms=args.breaker_open_ms,
                                 half_open_probes=args.half_open_probes,
                                 close_successes=args.close_successes)
    drift = None
    if args.drift:
        drift = DriftPolicy(threshold=args.drift_threshold,
                            window=args.drift_window,
                            check_interval=args.drift_interval)
    policy = OverloadPolicy(
        admission=AdaptiveAdmissionPolicy(
            target_miss_ratio=args.target_miss_ratio,
            max_latch_ms=args.max_latch_ms),
        breakers=breakers,
        degrade=degrade,
        drift=drift,
    )
    config = paper_single_class_config(
        args.workload, args.slo_ms, policy=args.policy,
        n_servers=args.servers, n_queries=args.queries, seed=args.seed,
    ).at_load(args.load).with_overload(policy)
    if args.mtbf_ms is not None:
        config = config.with_faults(FaultPlan(crashes=CrashProcess(
            mtbf_ms=args.mtbf_ms, mttr_ms=args.mttr_ms, seed=args.seed)))
    result = simulate(config)
    print(f"policy={result.policy_name} load={args.load:.2f} "
          f"utilization={result.utilization():.3f} "
          f"miss_ratio={result.deadline_miss_ratio():.4f}")
    print(f"rejected={int(result.rejected.sum())} "
          f"(rejection_ratio={result.rejection_ratio():.4f}) "
          f"degraded_queries={result.degraded_queries} "
          f"shed_tasks={result.shed_tasks} "
          f"breaker_trips={result.breaker_trips} "
          f"cdf_rebootstraps={result.cdf_rebootstraps}")
    print(f"coverage_p50={result.coverage_p50():.3f} "
          f"coverage_p99={result.coverage_p99():.3f} "
          f"admit_probability={result.overload.admit_probability:.3f}")
    for (class_name, fanout), tail in result.per_type_tails().items():
        print(f"  {class_name} kf={fanout:<4d} p99={tail:.3f} ms "
              f"({result.count(class_name, fanout)} queries)")
    return 0


def _cmd_federation(args: argparse.Namespace) -> int:
    """One-off two-level federation run with routing/spill knobs."""
    shard = paper_single_class_config(
        args.workload, args.slo_ms, policy=args.policy,
        n_servers=args.servers_per_shard, seed=args.seed,
    )
    fed = FederationConfig(
        tuple(shard.with_seed(args.seed + 1 + s)
              for s in range(args.shards)),
        workload=shard.workload,
        n_queries=args.queries,
        seed=args.seed,
        router=args.router,
        n_tenants=args.tenants,
        tenant_alpha=args.tenant_alpha,
        spill=SpillPolicy(margin_ms=args.spill_margin_ms) if args.spill
        else None,
    ).at_load(args.load)
    result = simulate_federation(fed, workers=args.workers)
    if args.json:
        document = {
            "n_shards": fed.n_shards,
            "total_servers": fed.total_servers,
            "router": fed.router,
            "summary": result.summary(),
            "shards": result.shard_rows(),
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(f"federation: {fed.n_shards} shards x "
          f"{args.servers_per_shard} servers "
          f"({fed.total_servers} total) router={fed.router} "
          f"load={args.load:.2f}")
    print(f"p99={result.tail(99.0):.3f} ms "
          f"utilization={result.utilization():.3f} "
          f"miss_ratio={result.deadline_miss_ratio():.4f} "
          f"imbalance={result.shard_imbalance():.3f} "
          f"spilled={result.spill_count()}")
    for row in result.shard_rows():
        line = (f"  shard {int(row['shard']):<3d} "
                f"queries={int(row['queries']):<8d} "
                f"spilled_in={int(row['spilled_in']):<6d}")
        if "p99" in row:
            line += (f"util={row['utilization']:.3f} "
                     f"p99={row['p99']:.3f} ms")
        print(line)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run one traced simulation and print its tail-forensics report."""
    config = paper_single_class_config(
        args.workload, args.slo_ms, policy=args.policy,
        n_servers=args.servers, n_queries=args.queries, seed=args.seed,
    ).at_load(args.load)
    if args.mtbf_ms is not None:
        retry = None
        if args.retries > 0:
            retry = RetryPolicy(max_retries=args.retries,
                                backoff_ms=args.backoff_ms)
        hedge = None
        if args.hedge:
            hedge = HedgePolicy(quantile=args.hedge_quantile,
                                delay_ms=args.hedge_delay_ms,
                                max_hedges=args.max_hedges)
        config = config.with_faults(FaultPlan(
            crashes=CrashProcess(mtbf_ms=args.mtbf_ms, mttr_ms=args.mttr_ms,
                                 seed=args.seed),
            retry=retry,
            hedge=hedge,
        ))
    recorder = TraceRecorder()
    result = run_simulations([config.with_recorder(recorder)],
                             workers=args.workers)[0]
    report = tail_forensics_report(result, top_k=args.top,
                                   percentile=args.percentile)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
    if args.json:
        # Keep stdout pure JSON so it pipes into jq and friends.
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(render_report(report))
    if args.out:
        print(f"wrote forensics JSON to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tailguard",
        description="TailGuard (ICDCS 2023) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    workers_help = ("fan independent simulations out over N worker "
                    "processes (-1 = all CPUs; default: serial, "
                    "bit-identical results either way)")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--quick", action="store_true",
                            help="reduced scale for a fast look")
    run_parser.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON")
    run_parser.add_argument("--csv", metavar="PATH",
                            help="also write the rows to a CSV file")
    run_parser.add_argument("--workers", type=int, default=None, metavar="N",
                            help=workers_help)

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--quick", action="store_true")
    all_parser.add_argument("--workers", type=int, default=None, metavar="N",
                            help=workers_help)

    sim_parser = sub.add_parser("simulate", help="one-off simulation")
    sim_parser.add_argument("--workload", default="masstree",
                            choices=["masstree", "shore", "xapian"])
    sim_parser.add_argument("--policy", default="tailguard")
    sim_parser.add_argument("--slo-ms", type=float, default=1.0)
    sim_parser.add_argument("--load", type=float, default=0.4)
    sim_parser.add_argument("--servers", type=int, default=100)
    sim_parser.add_argument("--queries", type=int, default=20_000)
    sim_parser.add_argument("--seed", type=int, default=1)

    faults_parser = sub.add_parser(
        "faults", help="one-off fault-injected simulation")
    faults_parser.add_argument("--workload", default="masstree",
                               choices=["masstree", "shore", "xapian"])
    faults_parser.add_argument("--policy", default="tailguard")
    faults_parser.add_argument("--slo-ms", type=float, default=1.0)
    faults_parser.add_argument("--load", type=float, default=0.4)
    faults_parser.add_argument("--servers", type=int, default=100)
    faults_parser.add_argument("--queries", type=int, default=20_000)
    faults_parser.add_argument("--seed", type=int, default=1)
    faults_parser.add_argument("--mtbf-ms", type=float, default=500.0,
                               help="per-server mean time between failures")
    faults_parser.add_argument("--mttr-ms", type=float, default=20.0,
                               help="per-server mean time to repair")
    faults_parser.add_argument("--retries", type=int, default=0, metavar="N",
                               help="kill-and-requeue with up to N retries "
                                    "per task copy (0 = pause mode)")
    faults_parser.add_argument("--backoff-ms", type=float, default=0.1,
                               help="requeue backoff per attempt")
    faults_parser.add_argument("--timeout-ms", type=float, default=None,
                               help="retry queued copies older than this")
    faults_parser.add_argument("--hedge", action="store_true",
                               help="duplicate slow tasks after a delay")
    faults_parser.add_argument("--hedge-quantile", type=float, default=0.95,
                               help="hedge delay = this quantile of the "
                                    "primary server's service CDF")
    faults_parser.add_argument("--hedge-delay-ms", type=float, default=None,
                               help="explicit hedge delay (overrides "
                                    "--hedge-quantile)")
    faults_parser.add_argument("--max-hedges", type=int, default=1,
                               help="duplicates per task slot")
    faults_parser.add_argument("--tail-weight", type=float, default=0.0,
                               help="replica score = queue depth + this x "
                                    "per-server tail EWMA (0 = bare "
                                    "least-loaded)")
    faults_parser.add_argument("--scored-fanout", action="store_true",
                               help="also place initial fanout on the "
                                    "best-scored servers")
    faults_parser.add_argument("--suppress-hedges", action="store_true",
                               help="withhold duplicates while cluster "
                                    "pressure is high (needs --hedge)")
    faults_parser.add_argument("--pressure-threshold-ms", type=float,
                               default=1.0,
                               help="pressure EWMA above this suppresses "
                                    "hedges")
    faults_parser.add_argument("--adaptive-hedge", action="store_true",
                               help="AIMD-tune the hedge delay online "
                                    "against the duplicate-win ratio "
                                    "(needs --hedge)")
    faults_parser.add_argument("--target-win-ratio", type=float,
                               default=0.35,
                               help="duplicate-win ratio the adaptive "
                                    "controller steers toward")
    faults_parser.add_argument("--hedge-budget", type=float, default=0.15,
                               help="hard cap on the duplicate-load "
                                    "fraction (hedges / base launches)")

    overload_parser = sub.add_parser(
        "overload", help="one-off overload-protected simulation")
    overload_parser.add_argument("--workload", default="masstree",
                                 choices=["masstree", "shore", "xapian"])
    overload_parser.add_argument("--policy", default="tailguard")
    overload_parser.add_argument("--slo-ms", type=float, default=1.0)
    overload_parser.add_argument("--load", type=float, default=0.6)
    overload_parser.add_argument("--servers", type=int, default=100)
    overload_parser.add_argument("--queries", type=int, default=20_000)
    overload_parser.add_argument("--seed", type=int, default=1)
    overload_parser.add_argument("--target-miss-ratio", type=float,
                                 default=0.005,
                                 help="AIMD admission steers the "
                                      "deadline-miss ratio toward this")
    overload_parser.add_argument("--max-latch-ms", type=float, default=50.0,
                                 help="evict a stale all-miss window after "
                                      "this much silence")
    overload_parser.add_argument("--degrade", action="store_true",
                                 help="serve denied queries at reduced "
                                      "fanout when the budget fits")
    overload_parser.add_argument("--min-coverage", type=float, default=0.3,
                                 help="floor on the dispatched fanout "
                                      "fraction of a degraded query")
    overload_parser.add_argument("--pressure-alpha", type=float, default=0.05,
                                 help="EWMA weight of the overshoot "
                                      "pressure signal")
    overload_parser.add_argument("--safety", type=float, default=2.0,
                                 help="pressure multiplier a degraded "
                                      "fanout's budget must clear")
    overload_parser.add_argument("--breakers", action="store_true",
                                 help="per-server circuit breakers")
    overload_parser.add_argument("--breaker-misses", type=int, default=2,
                                 help="consecutive misses that trip a "
                                      "breaker open")
    overload_parser.add_argument("--breaker-open-ms", type=float, default=3.0,
                                 help="open window before half-open probing")
    overload_parser.add_argument("--half-open-probes", type=int, default=4,
                                 help="probe tasks allowed while half-open")
    overload_parser.add_argument("--close-successes", type=int, default=4,
                                 help="on-time probes that close a breaker")
    overload_parser.add_argument("--drift", action="store_true",
                                 help="KS drift monitor + CDF re-bootstrap")
    overload_parser.add_argument("--drift-threshold", type=float,
                                 default=0.15,
                                 help="KS distance that triggers a "
                                      "re-bootstrap")
    overload_parser.add_argument("--drift-window", type=int, default=500,
                                 help="per-server service samples per check")
    overload_parser.add_argument("--drift-interval", type=int, default=200,
                                 help="samples between checks")
    overload_parser.add_argument("--mtbf-ms", type=float, default=None,
                                 help="also crash servers at this MTBF "
                                      "(pause mode)")
    overload_parser.add_argument("--mttr-ms", type=float, default=0.3,
                                 help="repair time for --mtbf-ms crashes")

    report_parser = sub.add_parser(
        "report", help="tail-forensics report for one traced run")
    report_parser.add_argument("--json", action="store_true",
                               help="print the report document as JSON "
                                    "instead of text")
    report_parser.add_argument("--out", metavar="PATH",
                               help="also write the JSON document here")
    report_parser.add_argument("--top", type=int, default=5, metavar="K",
                               help="slowest-query waterfalls to include")
    report_parser.add_argument("--percentile", type=float, default=99.0,
                               help="tail percentile to attribute")
    report_parser.add_argument("--workload", default="masstree",
                               choices=["masstree", "shore", "xapian"])
    report_parser.add_argument("--policy", default="tailguard")
    report_parser.add_argument("--slo-ms", type=float, default=1.0)
    report_parser.add_argument("--load", type=float, default=0.4)
    report_parser.add_argument("--servers", type=int, default=100)
    report_parser.add_argument("--queries", type=int, default=20_000)
    report_parser.add_argument("--seed", type=int, default=1)
    report_parser.add_argument("--workers", type=int, default=None,
                               metavar="N", help=workers_help)
    report_parser.add_argument("--mtbf-ms", type=float, default=None,
                               help="crash servers at this MTBF so the "
                                    "report has mitigations to attribute")
    report_parser.add_argument("--mttr-ms", type=float, default=20.0,
                               help="repair time for --mtbf-ms crashes")
    report_parser.add_argument("--retries", type=int, default=0, metavar="N",
                               help="kill-and-requeue with up to N retries "
                                    "per task copy (0 = pause mode)")
    report_parser.add_argument("--backoff-ms", type=float, default=0.1,
                               help="requeue backoff per attempt")
    report_parser.add_argument("--hedge", action="store_true",
                               help="duplicate slow tasks after a delay")
    report_parser.add_argument("--hedge-quantile", type=float, default=0.95,
                               help="hedge delay = this quantile of the "
                                    "primary server's service CDF")
    report_parser.add_argument("--hedge-delay-ms", type=float, default=None,
                               help="explicit hedge delay (overrides "
                                    "--hedge-quantile)")
    report_parser.add_argument("--max-hedges", type=int, default=1,
                               help="duplicates per task slot")

    federation_parser = sub.add_parser(
        "federation", help="one-off two-level shard federation run")
    federation_parser.add_argument("--shards", type=int, default=4,
                                   help="number of shard clusters")
    federation_parser.add_argument("--servers-per-shard", type=int,
                                   default=120,
                                   help="servers in each shard (must fit "
                                        "the workload's largest fanout)")
    federation_parser.add_argument("--router", default="jsq",
                                   choices=list(ROUTERS),
                                   help="inter-shard routing policy")
    federation_parser.add_argument("--spill", action="store_true",
                                   help="re-route queries whose primary "
                                        "shard cannot meet their budget")
    federation_parser.add_argument("--spill-margin-ms", type=float,
                                   default=0.0,
                                   help="tolerated budget overshoot before "
                                        "spilling")
    federation_parser.add_argument("--tenants", type=int, default=64,
                                   help="tenant population (tenant router)")
    federation_parser.add_argument("--tenant-alpha", type=float, default=1.1,
                                   help="Zipf exponent of tenant popularity")
    federation_parser.add_argument("--workload", default="masstree",
                                   choices=["masstree", "shore", "xapian"])
    federation_parser.add_argument("--policy", default="tailguard")
    federation_parser.add_argument("--slo-ms", type=float, default=20.0)
    federation_parser.add_argument("--load", type=float, default=0.6)
    federation_parser.add_argument("--queries", type=int, default=20_000)
    federation_parser.add_argument("--seed", type=int, default=1)
    federation_parser.add_argument("--json", action="store_true",
                                   help="emit machine-readable JSON")
    federation_parser.add_argument("--workers", type=int, default=None,
                                   metavar="N", help=workers_help)

    trace_parser = sub.add_parser("trace", help="record/replay query traces")
    trace_sub = trace_parser.add_subparsers(dest="trace_command",
                                            required=True)
    record_parser = trace_sub.add_parser("record", help="record a trace")
    record_parser.add_argument("--out", required=True)
    record_parser.add_argument("--workload", default="masstree",
                               choices=["masstree", "shore", "xapian"])
    record_parser.add_argument("--slo-ms", type=float, default=1.0)
    record_parser.add_argument("--load", type=float, default=0.4)
    record_parser.add_argument("--servers", type=int, default=100)
    record_parser.add_argument("--queries", type=int, default=20_000)
    record_parser.add_argument("--seed", type=int, default=1)
    replay_parser = trace_sub.add_parser("replay", help="replay a trace")
    replay_parser.add_argument("--trace", required=True)
    replay_parser.add_argument("--workload", default="masstree",
                               choices=["masstree", "shore", "xapian"])
    replay_parser.add_argument("--policy", default="tailguard")
    replay_parser.add_argument("--servers", type=int, default=100)
    replay_parser.add_argument("--seed", type=int, default=1)
    trace_run_parser = trace_sub.add_parser(
        "run", help="run a traced simulation and export lifecycle events")
    trace_run_parser.add_argument("--trace-out", required=True,
                                  metavar="PATH",
                                  help="output file for the trace")
    trace_run_parser.add_argument("--format", default="chrome",
                                  choices=["chrome", "jsonl"],
                                  help="chrome://tracing / Perfetto JSON "
                                       "or one event per JSONL line")
    trace_run_parser.add_argument("--sample-interval", type=float,
                                  default=None, metavar="MS",
                                  help="sample per-server queue/utilization/"
                                       "miss-ratio series every MS sim-ms")
    trace_run_parser.add_argument("--workload", default="masstree",
                                  choices=["masstree", "shore", "xapian"])
    trace_run_parser.add_argument("--policy", default="tailguard")
    trace_run_parser.add_argument("--slo-ms", type=float, default=1.0)
    trace_run_parser.add_argument("--load", type=float, default=0.4)
    trace_run_parser.add_argument("--servers", type=int, default=100)
    trace_run_parser.add_argument("--queries", type=int, default=20_000)
    trace_run_parser.add_argument("--seed", type=int, default=1)
    trace_run_parser.add_argument("--workers", type=int, default=None,
                                  metavar="N",
                                  help="run the simulation in a worker "
                                       "process and merge the trace home "
                                       "(exercises the parallel runner's "
                                       "obs round-trip)")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "all": _cmd_all,
        "simulate": _cmd_simulate,
        "faults": _cmd_faults,
        "overload": _cmd_overload,
        "report": _cmd_report,
        "federation": _cmd_federation,
    }
    try:
        if args.command == "trace":
            trace_handlers = {
                "record": _cmd_trace_record,
                "replay": _cmd_trace_replay,
                "run": _cmd_trace_run,
            }
            return trace_handlers[args.trace_command](args)
        return handlers[args.command](args)
    except ConfigurationError as exc:
        print(f"tailguard: configuration error: {exc}", file=sys.stderr)
        return 2
    except (SimulationError, ExperimentError) as exc:
        print(f"tailguard: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
