"""Overload protection and graceful degradation.

Four cooperating mechanisms behind one declarative
:class:`OverloadPolicy`: adaptive (AIMD) admission, per-server circuit
breakers, partial-fanout degradation, and CDF drift re-bootstrap.
Attach a policy to :class:`~repro.cluster.config.ClusterConfig` (the
fast path) or call :func:`install_overload` on the DES kernel; both
paths share the same deterministic :class:`OverloadController`.

The semantics contract lives in ``docs/overload.md``.
"""

from repro.overload.admission import AdaptiveAdmission
from repro.overload.breaker import BreakerBank
from repro.overload.controller import (
    OverloadController,
    OverloadDecision,
    install_overload,
)
from repro.overload.policy import (
    AdaptiveAdmissionPolicy,
    BreakerPolicy,
    DegradePolicy,
    DriftPolicy,
    OverloadPolicy,
)

__all__ = [
    "AdaptiveAdmission",
    "AdaptiveAdmissionPolicy",
    "BreakerBank",
    "BreakerPolicy",
    "DegradePolicy",
    "DriftPolicy",
    "OverloadController",
    "OverloadDecision",
    "OverloadPolicy",
    "install_overload",
]
