"""Per-server circuit breakers (overload mechanism 2).

One breaker per task server, with the classic three-state machine:

* **CLOSED** — traffic flows; ``miss_threshold`` *consecutive*
  queuing-deadline misses trip it OPEN.
* **OPEN** — the dispatcher routes this server's shards elsewhere (or
  sheds them).  After ``open_ms`` the breaker lazily transitions to
  half-open on the next permit check.  A breaker opened by the fault
  layer's ``fail`` hook stays open until the matching ``recover``.
* **HALF_OPEN** — at most ``half_open_probes`` probe tasks are let
  through; ``close_successes`` consecutive on-time probes close the
  breaker, one missed probe re-trips it.

The bank is deliberately split into a pure :meth:`permits` (safe to
call while *searching* for a routing) and a :meth:`consume` that
charges the probe budget only once a task is actually committed to a
server — a replacement search must not burn probes on servers it ends
up not using.  State transitions are returned as ``"open"``/``"close"``
strings so the owning controller can emit the matching obs events; the
bank itself knows nothing about recorders.
"""

from __future__ import annotations

from typing import Optional

from repro.overload.policy import BreakerPolicy

CLOSED, OPEN, HALF_OPEN = 0, 1, 2

_STATE_NAMES = {CLOSED: "closed", OPEN: "open", HALF_OPEN: "half-open"}


class BreakerBank:
    """The circuit breakers of one simulated cluster."""

    def __init__(self, policy: BreakerPolicy, n_servers: int) -> None:
        self.policy = policy
        self.n_servers = n_servers
        self._state = [CLOSED] * n_servers
        self._open_until = [0.0] * n_servers
        self._consecutive_misses = [0] * n_servers
        self._probes = [0] * n_servers
        self._successes = [0] * n_servers
        #: Total CLOSED/HALF_OPEN -> OPEN transitions.
        self.trips = 0

    def state_name(self, server_id: int) -> str:
        return _STATE_NAMES[self._state[server_id]]

    def _refresh(self, server_id: int, now: float) -> None:
        """Lazy OPEN -> HALF_OPEN once the open window has elapsed."""
        if (self._state[server_id] == OPEN
                and now >= self._open_until[server_id]):
            self._state[server_id] = HALF_OPEN
            self._probes[server_id] = 0
            self._successes[server_id] = 0

    def permits(self, server_id: int, now: float) -> bool:
        """Whether a new task may be routed to this server.

        Pure with respect to the probe budget: call freely while
        searching for replacements, then :meth:`consume` for the
        servers actually used.
        """
        self._refresh(server_id, now)
        state = self._state[server_id]
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        return self._probes[server_id] < self.policy.half_open_probes

    def consume(self, server_id: int, now: float) -> None:
        """Charge one committed task against a half-open probe budget."""
        if self._state[server_id] == HALF_OPEN:
            self._probes[server_id] += 1

    def _trip(self, server_id: int, now: float, until: float) -> str:
        self._state[server_id] = OPEN
        self._open_until[server_id] = until
        self._consecutive_misses[server_id] = 0
        self._probes[server_id] = 0
        self._successes[server_id] = 0
        self.trips += 1
        return "open"

    def record(self, server_id: int, missed: bool, now: float
               ) -> Optional[str]:
        """Feed one dequeue outcome; returns a transition or ``None``."""
        self._refresh(server_id, now)
        state = self._state[server_id]
        if missed:
            self._consecutive_misses[server_id] += 1
            if state == HALF_OPEN:
                # One failed probe re-trips immediately.
                return self._trip(server_id, now, now + self.policy.open_ms)
            if (state == CLOSED and self._consecutive_misses[server_id]
                    >= self.policy.miss_threshold):
                return self._trip(server_id, now, now + self.policy.open_ms)
            return None
        self._consecutive_misses[server_id] = 0
        if state == HALF_OPEN:
            self._successes[server_id] += 1
            if self._successes[server_id] >= self.policy.close_successes:
                self._state[server_id] = CLOSED
                return "close"
        return None

    def on_server_fail(self, server_id: int, now: float) -> Optional[str]:
        """Fault-layer hook: hold the breaker open for the whole
        downtime (no timed half-open — the server is known dead)."""
        was_open = self._state[server_id] == OPEN
        transition = self._trip(server_id, now, float("inf"))
        if was_open:
            # Already open (e.g. tripped by misses just before the
            # crash): extend, but it is not a new trip or transition.
            self.trips -= 1
            return None
        return transition

    def on_server_recover(self, server_id: int, now: float) -> None:
        """Fault-layer hook: a recovered server goes straight to
        half-open probing — its backlog may still be sick."""
        if self._state[server_id] == OPEN:
            self._state[server_id] = HALF_OPEN
            self._probes[server_id] = 0
            self._successes[server_id] = 0
