"""AIMD admit-probability control (overload mechanism 1).

:class:`AdaptiveAdmission` keeps the moving-window bookkeeping of
:class:`~repro.core.admission.DeadlineMissRatioAdmission` (same window
bounds, same deterministic duty-cycle thinning) but replaces the
control law: instead of the paper's binary gate, the admit probability
is steered toward a *target* miss ratio with a hysteresis band.

* ratio above ``target * (1 + hysteresis)`` — multiplicative decrease;
* ratio below ``target * (1 - hysteresis)`` — additive increase;
* inside the band — hold (the band is what damps oscillation on a
  bursty miss process).

Anti-windup comes from two sides: the probability is hard-clamped to
``[floor, 1]`` so the integrator cannot run away, and the inherited
``max_latch_ms`` window flush guarantees a stale all-miss window cannot
keep the controller shut after the overload that filled it has passed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.admission import DeadlineMissRatioAdmission


class AdaptiveAdmission(DeadlineMissRatioAdmission):
    """Admit-probability controller targeting a deadline-miss ratio."""

    def __init__(
        self,
        target_miss_ratio: float = 0.02,
        window_tasks: int = 5_000,
        window_ms: Optional[float] = None,
        min_samples: int = 200,
        decrease: float = 0.7,
        increase: float = 0.08,
        floor: float = 0.05,
        hysteresis: float = 0.25,
        ctl_interval_ms: float = 25.0,
        max_latch_ms: Optional[float] = None,
    ) -> None:
        super().__init__(
            threshold=target_miss_ratio,
            window_tasks=window_tasks,
            window_ms=window_ms,
            min_samples=min_samples,
            mode="duty-cycle",
            decrease=decrease,
            increase=increase,
            floor=floor,
            ctl_interval_ms=ctl_interval_ms,
            max_latch_ms=max_latch_ms,
        )
        self._hysteresis = float(hysteresis)
        #: Every probability adjustment as ``(time, probability)``,
        #: starting from the initial 1.0 — the property tests assert
        #: boundedness and recovery on this trace.
        self.probability_trace: List[Tuple[float, float]] = [(0.0, 1.0)]

    def _decide_duty_cycle(self, now: float) -> bool:
        if (self._seen >= self.min_samples
                and now - self._last_control >= self._ctl_interval):
            self._last_control = now
            ratio = self.miss_ratio()
            target = self.threshold
            if ratio > target * (1.0 + self._hysteresis):
                probability = max(
                    self._floor, self._admit_probability * self._decrease
                )
            elif ratio < target * (1.0 - self._hysteresis):
                probability = min(
                    1.0, self._admit_probability + self._increase
                )
            else:
                probability = self._admit_probability
            if probability != self._admit_probability:
                self._admit_probability = probability
                self.probability_trace.append((now, probability))
        self._duty_accumulator += self._admit_probability
        if self._duty_accumulator >= 1.0:
            self._duty_accumulator -= 1.0
            return True
        return False
